// S2 -- session serving: incremental re-solve latency under a delta stream.
//
// The serving pitch of srv::Session is that a delta (customer arrives/
// leaves, demand drift, antenna added) re-solves in a fraction of a
// from-scratch greedy run while staying byte-identical to one. This bench
// quantifies that on a serving-scale instance: n = 1e5 customers over a
// disk, k = 6 annular ring antennas (radial bands partition the disk, so a
// customer delta dirties few bands -- the workload shape the dirty-window
// memo is built for). A 200-delta mixed stream (45% add, 30% remove, 20%
// demand_set, 5% antenna_add) runs through one session; each delta's
// re-solve is timed individually, and the same post-delta instances are
// spot-checked bitwise against srv::run_solver.
//
// BENCH_s2_serve.json carries delta p50/p99, the full re-solve median, and
// their ratio (speedup_median). The acceptance gate is speedup >= 5x.
//
// Usage: bench_s2_serve [n] [deltas]   (defaults 100000, 200)

#include <cstdlib>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/srv/session.hpp"

namespace {

using namespace sectorpack;

/// n customers uniform over a disk, k thin annular ring antennas at
/// distinct radii (the F7 regime: each band holds a few percent of the
/// point set, capacities stay small enough for the exact window DP).
/// Non-identical specs, so greedy (and the session replay) keeps one
/// window cache per antenna.
model::Instance ring_instance(std::size_t n, std::size_t k) {
  sim::Rng rng(2024);
  sim::WorkloadConfig wl;
  wl.num_customers = n;
  wl.disk_radius = 120.0;
  wl.demand = sim::DemandDist::kUniformInt;
  wl.demand_min = 1;
  wl.demand_max = 10;
  std::vector<model::Customer> customers = sim::generate_customers(wl, rng);

  std::vector<model::AntennaSpec> antennas;
  for (std::size_t j = 0; j < k; ++j) {
    model::AntennaSpec spec;
    spec.rho = 0.7 + 0.05 * static_cast<double>(j);
    spec.min_range = 20.0 + 16.0 * static_cast<double>(j);
    spec.range = spec.min_range + 3.0;
    spec.capacity = 60.0 + 10.0 * static_cast<double>(j);
    antennas.push_back(spec);
  }
  return model::Instance(std::move(customers), std::move(antennas));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 100'000;
  const std::size_t deltas =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 200;
  bench_util::print_experiment_header(
      std::cout, "S2", "session serving (incremental delta re-solve)");
  bench::BenchReport report("s2_serve");

  const srv::SolverKey key{"greedy", 1, 0, ""};
  srv::Session session(ring_instance(n, 6), key);

  const bench_util::Timer init_timer;
  session.solve_initial({});
  const double initial_ms = init_timer.elapsed_ms();
  std::cout << "  n=" << n << " k=6 initial solve " << initial_ms << " ms\n";

  // The mixed delta stream. Removals target random current indices; adds
  // land anywhere on the disk so every radial band gets dirtied over the
  // run.
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> coord(-110.0, 110.0);
  std::uniform_int_distribution<int> demand(1, 10);
  std::uniform_int_distribution<int> mix(0, 99);

  std::vector<double> delta_ms;
  delta_ms.reserve(deltas);
  std::uint64_t memo_hits = 0;
  std::uint64_t fresh_evals = 0;
  double dirty_sum = 0.0;
  for (std::size_t step = 0; step < deltas; ++step) {
    const int op = mix(gen);
    const bench_util::Timer timer;
    srv::ResolveStats stats;
    if (op < 45) {
      model::Customer c;
      c.pos = {coord(gen), coord(gen)};
      c.demand = static_cast<double>(demand(gen));
      stats = session.customer_add(c, {});
    } else if (op < 75) {
      std::uniform_int_distribution<std::size_t> idx(
          0, session.instance().num_customers() - 1);
      stats = session.customer_remove(idx(gen), {});
    } else if (op < 95) {
      std::uniform_int_distribution<std::size_t> idx(
          0, session.instance().num_customers() - 1);
      stats = session.demand_set(idx(gen), static_cast<double>(demand(gen)),
                                 {});
    } else {
      // Another thin ring, offset between the seed bands so it sees a
      // fresh customer slice.
      model::AntennaSpec spec;
      spec.rho = 0.75;
      spec.min_range = 28.0 + static_cast<double>(step % 5) * 16.0;
      spec.range = spec.min_range + 3.0;
      spec.capacity = 60.0;
      stats = session.antenna_add(spec, {});
    }
    delta_ms.push_back(timer.elapsed_ms());
    memo_hits += stats.memo_hits;
    fresh_evals += stats.fresh_evals;
    dirty_sum += stats.dirty_ratio;
  }

  // Reference: from-scratch greedy on the final post-stream instance (the
  // cost a session-less server would pay per delta).
  const model::Instance final_inst(
      std::vector<model::Customer>(session.instance().customers().begin(),
                                   session.instance().customers().end()),
      std::vector<model::AntennaSpec>(session.instance().antennas().begin(),
                                      session.instance().antennas().end()));
  model::Solution full_sol;
  const std::vector<double> full_times = bench::time_repetitions(
      5, [&] { full_sol = srv::run_solver(final_inst, key, {}); });
  const bench::RepStats full = bench::summarize_times(full_times);

  // Byte-identity spot check at the end of the stream.
  if (model::to_string(full_sol) != model::to_string(session.solution())) {
    std::cerr << "FAIL: incremental solution diverged from from-scratch\n";
    return 1;
  }

  std::vector<double> sorted = delta_ms;
  const double p50 = bench_util::percentile(sorted, 0.5);
  const double p99 = bench_util::percentile(sorted, 0.99);
  const double speedup = p50 > 0.0 ? full.median_ms / p50 : 0.0;
  const double avg_dirty = dirty_sum / static_cast<double>(deltas);

  bench_util::Table table({"deltas", "p50_ms", "p99_ms", "full_med_ms",
                           "speedup", "memo_hits", "fresh", "dirty"});
  table.add_row({bench_util::cell(deltas), bench_util::cell(p50, 3),
                 bench_util::cell(p99, 3),
                 bench_util::cell(full.median_ms, 1),
                 bench_util::cell(speedup, 1),
                 bench_util::cell(std::size_t{memo_hits}),
                 bench_util::cell(std::size_t{fresh_evals}),
                 bench_util::cell(avg_dirty, 3)});
  table.print(std::cout);

  report.metric("n", static_cast<double>(n));
  report.metric("deltas", static_cast<double>(deltas));
  report.metric("initial_solve_ms", initial_ms);
  report.metric("delta.p50_ms", p50);
  report.metric("delta.p99_ms", p99);
  report.metric_times("full_resolve", full_times);
  report.metric("speedup_median", speedup);
  report.metric("memo_hits", static_cast<double>(memo_hits));
  report.metric("fresh_evals", static_cast<double>(fresh_evals));
  report.metric("dirty_ratio_mean", avg_dirty);
  report.write();

  if (speedup < 5.0) {
    std::cerr << "FAIL: median delta re-solve speedup " << speedup
              << "x < 5x gate\n";
    return 1;
  }
  std::cout << "  speedup gate: " << speedup << "x >= 5x  OK\n";
  return 0;
}
