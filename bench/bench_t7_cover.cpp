// T7 -- the dual problem: minimum antennas to serve all demand.
//
// Small instances compare both heuristics against the exact escalating-k
// solver; large instances report heuristic counts against the certified
// lower bound max(ceil(demand/capacity), min-arcs-to-cover).
//
// Expected shape: exact == lower bound on most random instances (the bound
// is usually tight); greedy and next-fit within a small additive factor of
// exact; next-fit == min-arcs exactly in the uncapacitated regime; counts
// decrease monotonically in beam width.

#include "bench_common.hpp"

using namespace bench;

namespace {

std::vector<model::Customer> random_customers(std::uint64_t seed,
                                              std::size_t n) {
  sim::Rng rng(seed);
  sim::WorkloadConfig wc;
  wc.num_customers = n;
  wc.spatial = sim::Spatial::kUniformDisk;
  wc.disk_radius = 9.0;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 6;
  return sim::generate_customers(wc, rng);
}

}  // namespace

int main() {
  bench_util::print_experiment_header(
      std::cout, "T7", "minimum antennas to cover all demand");

  // Part 1: vs exact (n=7).
  {
    std::cout << "vs exact (n=7, rho=90deg, range=10, capacity=15):\n";
    bench_util::Table table(
        {"trial", "lower_bound", "exact", "greedy", "nextfit"});
    const model::AntennaSpec type{geom::kPi / 2.0, 10.0, 15.0};
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
      const auto customers = random_customers(trial + 7100, 7);
      const std::size_t lb = cover::lower_bound(customers, type);
      const std::size_t exact =
          cover::solve_exact(customers, type, 7).num_antennas();
      const std::size_t greedy =
          cover::solve_greedy(customers, type).num_antennas();
      const std::size_t nextfit =
          cover::solve_sweep_nextfit(customers, type).num_antennas();
      table.add_row({bench_util::cell(trial), bench_util::cell(lb),
                     bench_util::cell(exact), bench_util::cell(greedy),
                     bench_util::cell(nextfit)});
    }
    table.print(std::cout);
  }

  // Part 2: large instances vs the lower bound, sweeping beam width.
  {
    std::cout << "\nvs lower bound (n=300, capacity=40):\n";
    bench_util::Table table({"rho_deg", "lower_bound", "greedy", "nextfit",
                             "greedy/LB", "time_greedy_ms"});
    const auto customers = random_customers(42, 300);
    for (double deg : {30.0, 60.0, 90.0, 180.0, 360.0}) {
      const model::AntennaSpec type{geom::deg_to_rad(deg), 10.0, 40.0};
      const std::size_t lb = cover::lower_bound(customers, type);
      bench_util::Timer timer;
      const std::size_t greedy =
          cover::solve_greedy(customers, type).num_antennas();
      const double ms = timer.elapsed_ms();
      const std::size_t nextfit =
          cover::solve_sweep_nextfit(customers, type).num_antennas();
      table.add_row(
          {bench_util::cell(deg, 0), bench_util::cell(lb),
           bench_util::cell(greedy), bench_util::cell(nextfit),
           bench_util::cell(static_cast<double>(greedy) /
                                static_cast<double>(lb),
                            3),
           bench_util::cell(ms, 1)});
    }
    table.print(std::cout);
    std::cout << "\nCounts must be >= lower_bound and nonincreasing in"
                 " rho.\n";
  }
  return 0;
}
