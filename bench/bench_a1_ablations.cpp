// A1 -- ablations of the design choices DESIGN.md calls out.
//
// A1.1 Candidate set: the leading-edge-only discretization is lossless
//      (lemma) and halves the window count vs both-edges; dense random
//      orientations never beat it.
// A1.2 Oracle inside the multi-antenna greedy: exact vs FPTAS vs greedy
//      per-round packing -- quality/time trade-off of the oracle choice.
// A1.3 Exact dispatch: meet-in-the-middle vs branch & bound on
//      equal-density items (the B&B failure mode motivating solve_mim).
// A1.4 Local-search pass budget: marginal value of each re-orientation
//      sweep over the greedy start.

#include "bench_common.hpp"

using namespace bench;

namespace {

struct Circle {
  std::vector<double> thetas;
  std::vector<double> values;
  std::vector<double> demands;
};

Circle make_circle(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Circle c;
  c.thetas.resize(n);
  c.demands.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.thetas[i] = rng.uniform(0.0, geom::kTwoPi);
    c.demands[i] = static_cast<double>(rng.uniform_int(1, 10));
  }
  c.values = c.demands;
  return c;
}

}  // namespace

int main() {
  bench_util::print_experiment_header(std::cout, "A1", "design ablations");

  // A1.1 -- candidate set.
  {
    std::cout << "A1.1 candidate-set ablation (P1, n=150, 5 seeds):\n";
    bench_util::Table table({"candidates", "windows_tested", "best_value",
                             "matches_leading", "time_ms"});
    double lead_value = 0.0;
    for (int variant = 0; variant < 3; ++variant) {
      double total_ms = 0.0;
      double value_sum = 0.0;
      std::size_t windows = 0;
      bool all_match = true;
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const Circle c = make_circle(150, 100 + seed);
        double total = 0.0;
        for (double d : c.demands) total += d;
        const double cap = total / 3.0;
        const double rho = 1.2;

        bench_util::Timer timer;
        double best = 0.0;
        if (variant == 0) {  // leading edge (the library's sweep)
          best = single::best_window(c.thetas, c.demands, rho, cap,
                                     knapsack::Oracle::exact())
                     .value;
          windows += geom::WindowSweep(c.thetas, rho).num_windows();
        } else {
          std::vector<double> cands;
          if (variant == 1) {  // both edges
            cands = geom::candidate_orientations(
                c.thetas, rho, geom::CandidateEdges::kBoth);
          } else {  // dense random orientations, 2n of them
            sim::Rng rng(999 + seed);
            for (int t = 0; t < 300; ++t) {
              cands.push_back(rng.uniform(0.0, geom::kTwoPi));
            }
          }
          windows += cands.size();
          std::vector<knapsack::Item> items;
          for (double alpha : cands) {
            const geom::Arc window(alpha, rho);
            items.clear();
            for (std::size_t i = 0; i < c.thetas.size(); ++i) {
              if (window.contains(geom::normalize(c.thetas[i]))) {
                items.push_back({c.demands[i], c.demands[i]});
              }
            }
            best = std::max(best,
                            knapsack::solve_exact_auto(items, cap).value);
          }
        }
        total_ms += timer.elapsed_ms();
        value_sum += best;
        if (variant == 0) lead_value += best;
      }
      // Leading-edge is lossless: both-edges must not exceed it, and the
      // random sampler may only fall short.
      if (variant == 1 &&
          std::abs(value_sum - lead_value) > 1e-6) {
        all_match = false;
      }
      if (variant == 2 && value_sum > lead_value + 1e-6) all_match = false;
      const char* name = variant == 0   ? "leading-edge"
                         : variant == 1 ? "both-edges"
                                        : "random-300";
      table.add_row({name, bench_util::cell(windows / 5),
                     bench_util::cell(value_sum / 5.0, 1),
                     variant == 0 ? "-" : (all_match ? "yes" : "NO -- BUG"),
                     bench_util::cell(total_ms / 5.0, 2)});
    }
    table.print(std::cout);
    std::cout << "(leading-edge must match both-edges' value with ~half"
                 " the windows; random sampling may only lose)\n";
  }

  // A1.2 -- oracle inside the greedy.
  {
    std::cout << "\nA1.2 oracle choice inside sectors greedy "
                 "(n=150, k=4, 4 seeds):\n";
    bench_util::Table table({"oracle", "served_mean", "vs_exact_oracle",
                             "time_ms"});
    std::vector<std::pair<const char*, knapsack::Oracle>> oracles = {
        {"exact", knapsack::Oracle::exact()},
        {"fptas-0.10", knapsack::Oracle::fptas(0.10)},
        {"greedy", knapsack::Oracle::greedy()},
    };
    std::vector<double> served(oracles.size(), 0.0);
    std::vector<double> times(oracles.size(), 0.0);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const model::Instance inst = make_workload(
          sim::Spatial::kHotspots, 150, 4, 1.2, 0.4, 500 + seed);
      for (std::size_t o = 0; o < oracles.size(); ++o) {
        sectors::GreedyConfig config;
        config.oracle = oracles[o].second;
        bench_util::Timer timer;
        served[o] +=
            model::served_demand(inst, sectors::solve_greedy(inst, config));
        times[o] += timer.elapsed_ms();
      }
    }
    for (std::size_t o = 0; o < oracles.size(); ++o) {
      table.add_row({oracles[o].first, bench_util::cell(served[o] / 4.0, 1),
                     bench_util::cell(served[o] / served[0], 4),
                     bench_util::cell(times[o] / 4.0, 2)});
    }
    table.print(std::cout);
  }

  // A1.3 -- MIM vs B&B on equal-density items.
  {
    std::cout << "\nA1.3 exact dispatch on equal-density items "
                 "(value == weight, uniform(1,2)):\n";
    bench_util::Table table({"n", "mim_ms", "bb_ms", "bb_nodes_ok"});
    for (std::size_t n : {16u, 20u, 24u}) {
      sim::Rng rng(123 + n);
      std::vector<knapsack::Item> items;
      for (std::size_t i = 0; i < n; ++i) {
        const double w = rng.uniform(1.0, 2.0);
        items.push_back({w, w});
      }
      const double cap = 0.6 * static_cast<double>(n);

      bench_util::Timer t1;
      const double vm = knapsack::solve_mim(items, cap).value;
      const double mim_ms = t1.elapsed_ms();

      bench_util::Timer t2;
      std::string bb_status = "yes";
      double bb_ms = 0.0;
      try {
        const double vb =
            knapsack::solve_bb(items, cap, /*node_limit=*/1u << 24).value;
        bb_ms = t2.elapsed_ms();
        if (std::abs(vb - vm) > 1e-9) bb_status = "VALUE MISMATCH";
      } catch (const std::runtime_error&) {
        bb_ms = t2.elapsed_ms();
        bb_status = "node limit hit";
      }
      table.add_row({bench_util::cell(n), bench_util::cell(mim_ms, 2),
                     bench_util::cell(bb_ms, 2), bb_status});
    }
    table.print(std::cout);
    std::cout << "(MIM time is bounded by 2^{n/2}; B&B degrades or trips"
                 " its node limit as n grows)\n";
  }

  // A1.4 -- local-search pass budget, starting from the NAIVE deployment.
  // (Starting from greedy the search is already at a local optimum on
  // random workloads -- itself an ablation finding; so the pass budget is
  // measured as repair power over the uniform baseline.)
  {
    std::cout << "\nA1.4 local-search pass budget repairing the uniform "
                 "baseline (n=150, k=4, 4 seeds):\n";
    bench_util::Table table({"max_passes", "served_mean", "gain_vs_start"});
    double start_ref = 0.0;
    for (std::size_t passes : {0u, 1u, 2u, 4u, 16u}) {
      double served = 0.0;
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const model::Instance inst = make_workload(
            sim::Spatial::kHotspots, 150, 4, 1.0, 0.35, 700 + seed);
        model::Solution sol = sectors::solve_uniform_orientations(inst);
        if (passes > 0) {
          sectors::LocalSearchConfig config;
          config.max_passes = passes;
          sol = sectors::improve(inst, std::move(sol), config);
        }
        served += model::served_demand(inst, sol);
      }
      if (passes == 0) start_ref = served;
      table.add_row({bench_util::cell(passes),
                     bench_util::cell(served / 4.0, 1),
                     bench_util::cell(served / start_ref, 4)});
    }
    table.print(std::cout);
    std::cout << "(gains should concentrate in the first pass or two;"
                 " greedy starts are already local optima on these"
                 " workloads)\n";
  }
  return 0;
}
