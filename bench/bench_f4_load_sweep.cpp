// F4 -- capacity stress: solver behaviour vs offered load.
//
// Load factor L = total demand / total capacity sweeps 0.25 .. 4.0 on a
// fixed hotspot workload (n=120, k=3, rho=80deg). Reports served demand as
// a fraction of the certified bound and as a fraction of total capacity.
//
// Expected shape: under light load (L < 1) everything reachable is served
// and utilization is low; past L = 1 the system saturates -- served demand
// tracks capacity, utilization -> 1, and the knapsack packing quality
// (rather than coverage) becomes the binding term. The gap between greedy
// and local search is widest around L ~ 1 where packing is combinatorially
// hardest.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "F4", "load sweep (hotspots, n=120, k=3, rho=80deg)");

  sim::Rng rng(6060);
  sim::WorkloadConfig wc;
  wc.num_customers = 120;
  wc.spatial = sim::Spatial::kHotspots;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 10;
  const std::vector<model::Customer> customers =
      sim::generate_customers(wc, rng);
  double total_demand = 0.0;
  for (const auto& c : customers) total_demand += c.demand;

  bench_util::Table table({"load_factor", "greedy/bound", "ls/bound",
                           "uniform/bound", "ls_utilization"});

  for (double load : {0.25, 0.5, 1.0, 1.5, 2.0, 4.0}) {
    const double cap = std::max(1.0, std::floor(total_demand / (3.0 * load)));
    std::vector<model::AntennaSpec> specs(
        3, model::AntennaSpec{geom::deg_to_rad(80.0), 250.0, cap});
    const model::Instance inst{customers, specs};

    const double bound = bounds::orientation_free_bound(inst);
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    const model::Solution ls_sol = sectors::solve_local_search(inst);
    const double ls = model::served_demand(inst, ls_sol);
    const double uniform = model::served_demand(
        inst, sectors::solve_uniform_orientations(inst));

    table.add_row({bench_util::cell(load, 2),
                   bench_util::cell(ratio(greedy, bound), 4),
                   bench_util::cell(ratio(ls, bound), 4),
                   bench_util::cell(ratio(uniform, bound), 4),
                   bench_util::cell(ls / (3.0 * cap), 3)});
  }
  table.print(std::cout);
  std::cout << "\nUtilization should rise toward 1.0 as load grows; the"
               " uniform baseline falls behind\nthe adaptive planners"
               " hardest under saturation.\n";
  return 0;
}
