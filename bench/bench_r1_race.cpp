// R1 -- portfolio racing vs. its constituent families.
//
// Two regimes, mirroring docs/performance.md "Portfolio racing":
//
//  - contested: a random workload where no family proves optimality.
//    The race must return a value at least as good as the best single
//    family (it selects the best settled lane), and its wall time is
//    compared against running the whole portfolio sequentially -- the
//    honest baseline for "one answer from N solvers".
//
//  - dominant: a saturating instance where local search provably reaches
//    the trivial upper bound. The winner's optimality proof cancels the
//    still-running annealing lane (configured with a huge iteration
//    budget), so the race finishes orders of magnitude before the
//    sequential portfolio would. This is the cancel-on-winner payoff.
//
// Metrics land in BENCH_r1_race.json: per-family and race wall times
// (min/median/p95 over repetitions), the value ratio race/best-family
// (must be >= 1), and the obs snapshot carrying race.winner.<family>,
// race.cancelled, race.incumbent_publishes and race.exchange_adoptions.

#include "bench_common.hpp"

using namespace bench;

namespace {

/// Every customer inside one narrow arc, one wide-beam antenna with
/// capacity for all of them: local search provably serves everyone, so
/// the race's proved-optimal exit fires deterministically.
model::Instance saturating_instance(std::size_t n) {
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    const double theta =
        0.05 + 0.2 * static_cast<double>(i) / static_cast<double>(n);
    b.add_customer_polar(theta, 5.0 + static_cast<double>(i % 40), 1.0);
  }
  b.add_identical_antennas(1, /*rho=*/1.0, /*range=*/60.0,
                           /*capacity=*/static_cast<double>(n));
  return b.build();
}

constexpr std::size_t kReps = 3;

struct FamilyRun {
  double value = 0.0;
  std::vector<double> times_ms;
};

/// Run one registry family on `inst` through the same dispatch the race
/// lanes use, so the comparison is apples-to-apples.
FamilyRun run_family(const model::Instance& inst, const std::string& name,
                     std::uint64_t iterations) {
  const srv::SolverFamily* family = srv::find_solver_family(name);
  const srv::SolverKey key{name, /*seed=*/1, iterations, ""};
  FamilyRun out;
  model::Solution sol;
  out.times_ms = time_repetitions(
      kReps, [&] { sol = family->run(inst, key, core::SolveOptions{}); });
  out.value = model::served_demand(inst, sol);
  return out;
}

}  // namespace

int main() {
  bench_util::print_experiment_header(std::cout, "R1",
                                      "portfolio racing vs single families");
  BenchReport report("r1_race");

  const std::vector<std::string> portfolio{"greedy", "local-search",
                                           "annealing"};

  // -------------------------------------------------------------------
  // Regime 1: contested random workload, moderate annealing budget.
  {
    const model::Instance inst =
        make_workload(sim::Spatial::kHotspots, /*n=*/1500, /*k=*/6,
                      /*rho=*/0.9, /*capacity_fraction=*/0.35, /*seed=*/71);
    const std::uint64_t iterations = 2000;

    bench_util::Table table({"solver", "value", "median_ms"});
    double best_value = 0.0;
    double sequential_median_ms = 0.0;
    for (const std::string& name : portfolio) {
      const FamilyRun r = run_family(inst, name, iterations);
      best_value = std::max(best_value, r.value);
      sequential_median_ms += summarize_times(r.times_ms).median_ms;
      report.metric_times("contested." + name, r.times_ms);
      report.metric("contested." + name + ".value", r.value);
      table.add_row({name, bench_util::cell(r.value, 0),
                     bench_util::cell(summarize_times(r.times_ms).median_ms,
                                      2)});
    }

    race::RaceConfig config;
    config.portfolio = portfolio;
    config.iterations = iterations;
    race::RaceStats stats;
    model::Solution sol;
    const std::vector<double> race_ms =
        time_repetitions(kReps, [&] { sol = race::solve(inst, config, &stats); });
    const double race_value = model::served_demand(inst, sol);
    table.add_row({"race(" + stats.winner + ")",
                   bench_util::cell(race_value, 0),
                   bench_util::cell(summarize_times(race_ms).median_ms, 2)});
    table.print(std::cout);
    std::cout << "winner=" << stats.winner
              << " value_ratio_vs_best=" << ratio(race_value, best_value)
              << " sequential_portfolio_ms=" << sequential_median_ms << "\n";

    report.metric_times("contested.race", race_ms);
    report.metric("contested.race.value", race_value);
    report.metric("contested.race.value_ratio_vs_best",
                  ratio(race_value, best_value));
    report.metric("contested.sequential_portfolio.median_ms",
                  sequential_median_ms);
  }

  // -------------------------------------------------------------------
  // Regime 2: dominant family + huge annealing budget. Greedy is left
  // out of the portfolio so the win happens in Phase B and the proof
  // must actively cancel the running annealing lane: cancel-on-winner is
  // the difference between ~local-search-speed and minutes of annealing.
  {
    // Big enough that the winner needs tens of milliseconds: the losing
    // lane is then reliably in flight when the proof lands.
    const model::Instance inst = saturating_instance(6000);
    const std::vector<std::string> duel{"local-search", "annealing"};
    const std::uint64_t iterations = 5000000;

    // Annealing standalone at this budget would run for minutes; time the
    // cheap families only and report annealing via the race's cancel.
    double best_value = 0.0;
    bench_util::Table table({"solver", "value", "median_ms"});
    for (const std::string& name : {std::string("greedy"),
                                    std::string("local-search")}) {
      const FamilyRun r = run_family(inst, name, iterations);
      best_value = std::max(best_value, r.value);
      report.metric_times("dominant." + name, r.times_ms);
      report.metric("dominant." + name + ".value", r.value);
      table.add_row({name, bench_util::cell(r.value, 0),
                     bench_util::cell(summarize_times(r.times_ms).median_ms,
                                      2)});
    }

    race::RaceConfig config;
    config.portfolio = duel;
    config.iterations = iterations;
    race::RaceStats stats;
    model::Solution sol;
    const std::vector<double> race_ms =
        time_repetitions(kReps, [&] { sol = race::solve(inst, config, &stats); });
    const double race_value = model::served_demand(inst, sol);
    table.add_row({"race(" + stats.winner + ")",
                   bench_util::cell(race_value, 0),
                   bench_util::cell(summarize_times(race_ms).median_ms, 2)});
    table.print(std::cout);
    std::cout << "winner=" << stats.winner
              << " proved_optimal=" << (stats.proved_optimal ? 1 : 0)
              << " cancelled=" << stats.cancelled
              << " value_ratio_vs_best=" << ratio(race_value, best_value)
              << "\n";

    report.metric_times("dominant.race", race_ms);
    report.metric("dominant.race.value", race_value);
    report.metric("dominant.race.value_ratio_vs_best",
                  ratio(race_value, best_value));
    report.metric("dominant.race.proved_optimal",
                  stats.proved_optimal ? 1.0 : 0.0);
    report.metric("dominant.race.cancelled",
                  static_cast<double>(stats.cancelled));
  }

  report.write();
  return 0;
}
