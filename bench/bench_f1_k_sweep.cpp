// F1 -- served demand vs number of antennas k (figure series).
//
// Fixed workload (hotspot city, 150 customers), antennas of 60-degree beams
// with a fixed absolute capacity each; k sweeps 1..10. Series: greedy,
// local search, uniform baseline, plus the certified upper bound.
//
// Expected shape: all curves increase in k with diminishing returns
// (submodular-style concavity for greedy); local search >= greedy >=
// uniform at every k; curves flatten when either all demand hotspots are
// claimed or total capacity exceeds total demand.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "F1", "served demand vs k (hotspots, n=150, rho=60deg)");

  // Build the customer side once so every k sees the same city.
  sim::Rng rng(2718);
  sim::WorkloadConfig wc;
  wc.num_customers = 150;
  wc.spatial = sim::Spatial::kHotspots;
  wc.num_hotspots = 4;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 10;
  const std::vector<model::Customer> customers =
      sim::generate_customers(wc, rng);
  double total_demand = 0.0;
  for (const auto& c : customers) total_demand += c.demand;
  const double per_antenna_capacity = std::floor(total_demand / 8.0);

  bench_util::Table table({"k", "uniform", "greedy", "local_search",
                           "annealing", "upper_bound", "greedy/bound"});

  for (std::size_t k = 1; k <= 10; ++k) {
    std::vector<model::AntennaSpec> specs(
        k, model::AntennaSpec{geom::deg_to_rad(60.0), 250.0,
                              per_antenna_capacity});
    const model::Instance inst{customers, specs};

    const double uniform = model::served_demand(
        inst, sectors::solve_uniform_orientations(inst));
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    const double ls =
        model::served_demand(inst, sectors::solve_local_search(inst));
    sectors::AnnealConfig anneal;
    anneal.seed = k;
    anneal.iterations = 600;
    const double annealed =
        model::served_demand(inst, sectors::solve_annealing(inst, anneal));
    const double bound = bounds::orientation_free_bound(inst);

    table.add_row({bench_util::cell(k), bench_util::cell(uniform, 0),
                   bench_util::cell(greedy, 0), bench_util::cell(ls, 0),
                   bench_util::cell(annealed, 0), bench_util::cell(bound, 0),
                   bench_util::cell(ratio(greedy, bound), 3)});
  }
  table.print(std::cout);
  std::cout << "\nTotal demand: " << total_demand
            << "; per-antenna capacity: " << per_antenna_capacity << "\n";
  std::cout << "Expect concave growth in k and local_search >= greedy >="
               " uniform rowwise.\n";
  return 0;
}
