// S1 -- serving soak: sustained batch requests through srv::run_batch.
//
// The ROADMAP's soak gate: push a request mix (3 instances x 4 solver
// families, with repeats so the result cache sees hits) through the batch
// engine at several worker counts, and report end-to-end request latency
// p50/p99 (from the srv.request_ms HDR histogram -- the same path a
// production scrape reads) plus cache hit-rate. BENCH_s1_soak.json feeds
// scripts/bench_compare.py, so serving-latency regressions gate like
// solver regressions.
//
// Usage: bench_s1_soak [reps]   (default 5; the JSON carries the medians)

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/srv/engine.hpp"

namespace {

using namespace sectorpack;

std::string request_line(const std::string& instance_text,
                         const std::string& solver, int seed) {
  std::string line = "{\"instance\":\"";
  for (const char c : instance_text) {
    if (c == '\n') {
      line += "\\n";
    } else if (c == '"') {
      line += "\\\"";
    } else {
      line += c;
    }
  }
  line += "\",\"solver\":\"" + solver + "\"";
  if (solver == "annealing") {
    line += ",\"seed\":" + std::to_string(seed) + ",\"iterations\":400";
  }
  line += "}";
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t reps =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 5;
  bench_util::print_experiment_header(
      std::cout, "S1", "serving soak (batch engine, request latency + cache)");
  bench::BenchReport report("s1_soak");

  // Three instances spanning the workload shapes, four solver families
  // (exact excluded: its runtime dwarfs the serving path and would turn a
  // latency soak into an exact-solver bench). Each (instance, family) pair
  // repeats so the fingerprint cache contributes hits like a steady-state
  // server, for 240 requests per batch run.
  const std::vector<model::Instance> instances = {
      bench::make_workload(sim::Spatial::kUniformDisk, 60, 3, 1.0, 0.5, 101),
      bench::make_workload(sim::Spatial::kHotspots, 80, 4, 0.8, 0.4, 202),
      bench::make_workload(sim::Spatial::kRing, 40, 2, 1.2, 0.6, 303),
  };
  const std::vector<std::string> families = {"greedy", "local-search",
                                             "uniform", "annealing"};
  std::string input;
  std::size_t total_requests = 0;
  for (int repeat = 0; repeat < 20; ++repeat) {
    for (const model::Instance& inst : instances) {
      const std::string text = model::to_string(inst);
      for (const std::string& family : families) {
        input += request_line(text, family, repeat % 4);
        input += "\n";
        ++total_requests;
      }
    }
  }

  bench_util::Table table({"jobs", "requests", "t_med_ms", "p50_req_ms",
                           "p99_req_ms", "hit_rate"});

  for (const unsigned jobs : {1u, 4u}) {
    double p50 = 0.0;
    double p99 = 0.0;
    double hit_rate = 0.0;
    bool failed = false;
    const std::vector<double> times = bench::time_repetitions(reps, [&] {
      obs::reset();  // per-rep histograms: quantiles reflect this run only
      srv::BatchConfig config;
      config.jobs = jobs;
      config.cache_entries = 64;
      std::istringstream in(input);
      std::ostringstream out;
      const srv::BatchReport batch = srv::run_batch(in, out, config);
      if (batch.ok != total_requests) {
        std::cerr << "soak run failed: " << batch.to_string() << "\n";
        failed = true;
        return;
      }
      const obs::Snapshot snap = obs::snapshot();
      if (const obs::HdrHistogramSnapshot* h =
              snap.hdr_histogram("srv.request_ms")) {
        p50 = h->quantile(0.5);
        p99 = h->quantile(0.99);
      }
      const double lookups =
          static_cast<double>(batch.cache_hits + batch.cache_misses);
      hit_rate = lookups > 0.0
                     ? static_cast<double>(batch.cache_hits) / lookups
                     : 0.0;
    });
    if (failed) return 1;
    const bench::RepStats stats = bench::summarize_times(times);
    table.add_row({bench_util::cell(std::size_t{jobs}),
                   bench_util::cell(total_requests),
                   bench_util::cell(stats.median_ms, 1),
                   bench_util::cell(p50, 3), bench_util::cell(p99, 3),
                   bench_util::cell(hit_rate, 3)});
    const std::string key = "soak_j" + std::to_string(jobs);
    report.metric_times(key, times);
    report.metric(key + ".p50_request_ms", p50);
    report.metric(key + ".p99_request_ms", p99);
    report.metric(key + ".cache_hit_rate", hit_rate);
  }

  table.print(std::cout);
  report.metric("requests", static_cast<double>(total_requests));
  report.write();
  return 0;
}
