// F3 -- FPTAS epsilon sweep: solution quality vs running time.
//
// Single antenna, n = 60 integer-demand customers, capacity 40% of demand.
// For each eps, the full P1 pipeline runs with an FPTAS oracle; ratios are
// against the exact pipeline.
//
// Expected shape: ratio >= 1 - eps everywhere (usually ~1 because the
// demands are small integers); time grows roughly like 1/eps, the defining
// FPTAS trade-off.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "F3", "FPTAS eps sweep on P1 (n=60, rho=90deg)");

  bench_util::Table table({"eps", "floor(1-eps)", "ratio_mean", "ratio_min",
                           "time_ms", "time*eps"});

  const int trials = 5;
  const double rho = geom::deg_to_rad(90.0);

  for (double eps : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
    std::vector<double> ratios;
    double total_ms = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      const model::Instance inst =
          make_workload(sim::Spatial::kUniformDisk, 60, 1, rho, 0.4,
                        9000 + static_cast<std::uint64_t>(trial));
      const double exact =
          model::served_demand(inst, single::solve_exact(inst));
      bench_util::Timer timer;
      const model::Solution sol = single::solve_fptas(inst, eps);
      total_ms += timer.elapsed_ms();
      ratios.push_back(ratio(model::served_demand(inst, sol), exact));
    }
    const auto s = bench_util::summarize(ratios);
    const double mean_ms = total_ms / trials;
    table.add_row({bench_util::cell(eps, 3), bench_util::cell(1.0 - eps, 3),
                   bench_util::cell(s.mean, 4), bench_util::cell(s.min, 4),
                   bench_util::cell(mean_ms, 2),
                   bench_util::cell(mean_ms * eps, 3)});
  }
  table.print(std::cout);
  std::cout << "\nratio_min must dominate floor(1-eps); time*eps roughly"
               " constant confirms the ~1/eps cost.\n";
  return 0;
}
