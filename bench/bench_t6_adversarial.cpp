// T6 -- adversarial gadgets: algorithms at their proven floors.
//
// Each gadget is a constructed instance on which an approximation
// algorithm's ratio approaches its theoretical worst case. This is the
// empirical counterpart of the paper family's tightness examples.
//
// Expected shape: knapsack-greedy ratio -> 0.5 as capacity grows (never
// below); the sector greedy hits ~0.505 on the range-shadow trap; best-fit
// assignment strands demand on the fragmentation trap while exact packs
// everything; exact solvers are immune to all gadgets.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(std::cout, "T6",
                                      "adversarial gadget floors");

  // Gadget 1: knapsack greedy -> 1/2.
  {
    std::cout << "knapsack greedy on {C/2+1, C/2, C/2}:\n";
    bench_util::Table table({"capacity", "greedy", "exact", "ratio"});
    for (double cap : {10.0, 100.0, 1000.0, 100000.0}) {
      const sim::KnapsackGadget g = sim::greedy_half_gadget(cap);
      const double greedy = knapsack::solve_greedy(g.items, g.capacity).value;
      const double exact =
          knapsack::solve_exact_auto(g.items, g.capacity).value;
      table.add_row({bench_util::cell(cap, 0), bench_util::cell(greedy, 0),
                     bench_util::cell(exact, 0),
                     bench_util::cell(greedy / exact, 5)});
    }
    table.print(std::cout);
    std::cout << "(ratio must decrease toward 0.5 and never cross it)\n";
  }

  // Gadget 2: the same trap embedded in a single-antenna sweep.
  {
    std::cout << "\nsingle-antenna embedding (capacity 1000):\n";
    bench_util::Table table({"solver", "served", "ratio_vs_exact"});
    const model::Instance inst = sim::single_antenna_trap(1000.0);
    const double exact =
        model::served_demand(inst, single::solve_exact(inst));
    const auto row = [&](const char* name, const model::Solution& sol) {
      const double v = model::served_demand(inst, sol);
      table.add_row({name, bench_util::cell(v, 0),
                     bench_util::cell(ratio(v, exact), 4)});
    };
    row("greedy-oracle", single::solve_greedy(inst));
    row("fptas-0.10", single::solve_fptas(inst, 0.10));
    row("fptas-0.01", single::solve_fptas(inst, 0.01));
    row("exact", single::solve_exact(inst));
    table.print(std::cout);
  }

  // Gadget 3: range-shadow trap for the multi-antenna greedy.
  {
    std::cout << "\nrange-shadow trap (k=2):\n";
    bench_util::Table table({"solver", "served", "ratio_vs_exact"});
    const model::Instance inst = sim::range_shadow_trap();
    const double exact =
        model::served_demand(inst, sectors::solve_exact(inst));
    const auto row = [&](const char* name, const model::Solution& sol) {
      const double v = model::served_demand(inst, sol);
      table.add_row({name, bench_util::cell(v, 1),
                     bench_util::cell(ratio(v, exact), 4)});
    };
    row("greedy", sectors::solve_greedy(inst));
    row("local-search", sectors::solve_local_search(inst));
    row("exact", sectors::solve_exact(inst));
    table.print(std::cout);
  }

  // Gadget 4: fragmentation trap for best-fit assignment.
  {
    std::cout << "\nfragmentation trap (fixed orientations, k=2):\n";
    bench_util::Table table({"solver", "served", "ratio_vs_exact"});
    const model::Instance inst = sim::fragmentation_trap();
    const std::vector<double> alphas(inst.num_antennas(), 0.0);
    const double exact = model::served_demand(
        inst, sectorpack::assign::solve_exact(inst, alphas));
    const auto row = [&](const char* name, const model::Solution& sol) {
      const double v = model::served_demand(inst, sol);
      table.add_row({name, bench_util::cell(v, 0),
                     bench_util::cell(ratio(v, exact), 4)});
    };
    row("best-fit-greedy", sectorpack::assign::solve_greedy(inst, alphas));
    row("successive(exact)",
        sectorpack::assign::solve_successive(inst, alphas));
    row("exact", sectorpack::assign::solve_exact(inst, alphas));
    table.print(std::cout);
  }
  return 0;
}
