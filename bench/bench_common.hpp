#pragma once
// Shared workload builders and ratio plumbing for the experiment benches.
// Every experiment is seeded and replayable; trial seeds derive from the
// experiment id so tables are stable across runs.

#include <iostream>
#include <string>
#include <vector>

#include "src/bench_util/stats.hpp"
#include "src/bench_util/table.hpp"
#include "src/bench_util/timer.hpp"
#include "src/sectorpack.hpp"

namespace bench {

using namespace sectorpack;

/// n customers with integer demands (DP-friendly), k identical antennas.
/// capacity_fraction is of total demand.
inline model::Instance make_workload(sim::Spatial spatial, std::size_t n,
                                     std::size_t k, double rho,
                                     double capacity_fraction,
                                     std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::WorkloadConfig wc;
  wc.num_customers = n;
  wc.spatial = spatial;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 10;
  sim::AntennaConfig ac;
  ac.count = k;
  ac.rho = rho;
  ac.range = 250.0;  // everyone in range: angles-only by default
  ac.capacity_fraction = capacity_fraction;
  return sim::make_instance(wc, ac, rng);
}

inline const char* spatial_name(sim::Spatial s) {
  switch (s) {
    case sim::Spatial::kUniformDisk:
      return "uniform";
    case sim::Spatial::kHotspots:
      return "hotspot";
    case sim::Spatial::kRing:
      return "ring";
    case sim::Spatial::kArcBand:
      return "arcband";
  }
  return "?";
}

/// Ratio of a solver value against a reference, guarding zero references.
inline double ratio(double value, double reference) {
  if (reference <= 0.0) return 1.0;
  return value / reference;
}

}  // namespace bench
