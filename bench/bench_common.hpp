#pragma once
// Shared workload builders, ratio plumbing, and machine-readable reporting
// for the experiment benches. Every experiment is seeded and replayable;
// trial seeds derive from the experiment id so tables are stable across
// runs. Besides the human table, each bench can emit a BENCH_<name>.json
// artifact (wall time, its own metrics, and an obs registry snapshot) so
// the perf trajectory is diffable across PRs.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/bench_util/stats.hpp"
#include "src/bench_util/table.hpp"
#include "src/bench_util/timer.hpp"
#include "src/sectorpack.hpp"

namespace bench {

using namespace sectorpack;

/// n customers with integer demands (DP-friendly), k identical antennas.
/// capacity_fraction is of total demand.
inline model::Instance make_workload(sim::Spatial spatial, std::size_t n,
                                     std::size_t k, double rho,
                                     double capacity_fraction,
                                     std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::WorkloadConfig wc;
  wc.num_customers = n;
  wc.spatial = spatial;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 10;
  sim::AntennaConfig ac;
  ac.count = k;
  ac.rho = rho;
  ac.range = 250.0;  // everyone in range: angles-only by default
  ac.capacity_fraction = capacity_fraction;
  return sim::make_instance(wc, ac, rng);
}

inline const char* spatial_name(sim::Spatial s) {
  switch (s) {
    case sim::Spatial::kUniformDisk:
      return "uniform";
    case sim::Spatial::kHotspots:
      return "hotspot";
    case sim::Spatial::kRing:
      return "ring";
    case sim::Spatial::kArcBand:
      return "arcband";
  }
  return "?";
}

/// Ratio of a solver value against a reference, guarding zero references.
inline double ratio(double value, double reference) {
  if (reference <= 0.0) return 1.0;
  return value / reference;
}

// ---------------------------------------------------------------------------
// Repetition timing: benches report min/median/p95 over repetitions rather
// than a single (noisy) run.

struct RepStats {
  std::size_t reps = 0;
  double min_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;
};

inline RepStats summarize_times(std::span<const double> times_ms) {
  RepStats s;
  s.reps = times_ms.size();
  if (times_ms.empty()) return s;
  s.min_ms = bench_util::summarize(times_ms).min;
  s.median_ms = bench_util::percentile(times_ms, 0.5);
  s.p95_ms = bench_util::percentile(times_ms, 0.95);
  return s;
}

/// Run `fn` `reps` times and collect per-repetition wall times (ms).
template <typename Fn>
inline std::vector<double> time_repetitions(std::size_t reps, Fn&& fn) {
  std::vector<double> times_ms;
  times_ms.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    bench_util::Timer timer;
    fn();
    times_ms.push_back(timer.elapsed_ms());
  }
  return times_ms;
}

// ---------------------------------------------------------------------------
// BENCH_<name>.json artifact writer.
//
// Schema (docs/observability.md):
//   { "bench": "<name>", "wall_seconds": W,
//     "metrics": { "<key>": number, ... },
//     "obs": <obs::Snapshot::to_json()> }
//
// Construction enables obs so the solvers' counters populate the snapshot.
// Files land in $SECTORPACK_BENCH_DIR if set, else the working directory.

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    obs::set_enabled(true);
  }

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Record a repetition series as <key>.min_ms/.median_ms/.p95_ms/.reps.
  void metric_times(const std::string& key,
                    std::span<const double> times_ms) {
    const RepStats s = summarize_times(times_ms);
    metric(key + ".min_ms", s.min_ms);
    metric(key + ".median_ms", s.median_ms);
    metric(key + ".p95_ms", s.p95_ms);
    metric(key + ".reps", static_cast<double>(s.reps));
  }

  /// Write BENCH_<name>.json; returns the path ("" on failure, which is
  /// reported to stderr but never fatal: the human table already printed).
  std::string write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("SECTORPACK_BENCH_DIR")) {
      if (*env != '\0') dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return "";
    }
    out << "{\"bench\":\"" << obs::json_escape(name_)
        << "\",\"wall_seconds\":" << obs::json_number(wall_.elapsed_seconds())
        << ",\"metrics\":{";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << obs::json_escape(metrics_[i].first)
          << "\":" << obs::json_number(metrics_[i].second);
    }
    out << "},\"obs\":" << obs::snapshot().to_json() << "}\n";
    std::cerr << "wrote " << path << "\n";
    return path;
  }

 private:
  std::string name_;
  bench_util::Timer wall_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace bench
