// T5 -- P0 fixed-orientation packing (multiple knapsack with eligibility).
//
// Orientations are frozen at random angles; only the assignment is solved.
// Small instances compare against the exact branch & bound; all sizes
// compare against the exact fractional (max-flow) bound, which certifies
// the LP gap.
//
// Expected shape: successive-knapsack >= 1/2 of exact (proven floor),
// typically ~0.95+; the flow bound is near-tight (small integrality gap)
// on unit-ish demands and looser on heavy-tailed demands.

#include "bench_common.hpp"

using namespace bench;

namespace {

std::vector<double> random_alphas(sim::Rng& rng, std::size_t k) {
  std::vector<double> alphas(k);
  for (double& a : alphas) a = rng.uniform(0.0, geom::kTwoPi);
  return alphas;
}

}  // namespace

int main() {
  bench_util::print_experiment_header(
      std::cout, "T5", "fixed-orientation assignment (multiple knapsack)");

  // Part 1: vs exact assignment (n=14, k=3).
  {
    std::cout << "vs exact (n=14, k=3):\n";
    bench_util::Table table({"solver", "ratio_mean", "ratio_min"});
    const int trials = 10;
    std::vector<double> r_greedy;
    std::vector<double> r_succ_exact;
    std::vector<double> r_succ_greedy;
    std::vector<double> r_lp;
    std::vector<double> r_flow;
    for (int trial = 0; trial < trials; ++trial) {
      const std::uint64_t seed = 6000 + static_cast<std::uint64_t>(trial);
      const model::Instance inst = make_workload(
          sim::Spatial::kUniformDisk, 14, 3, geom::deg_to_rad(100.0), 0.5,
          seed);
      sim::Rng rng(seed * 13 + 1);
      const auto alphas = random_alphas(rng, 3);
      const double exact = model::served_demand(
          inst, sectorpack::assign::solve_exact(inst, alphas));
      if (exact <= 0.0) continue;
      r_greedy.push_back(
          ratio(model::served_demand(
                    inst, sectorpack::assign::solve_greedy(inst, alphas)),
                exact));
      r_succ_exact.push_back(ratio(
          model::served_demand(
              inst, sectorpack::assign::solve_successive(inst, alphas)),
          exact));
      r_succ_greedy.push_back(
          ratio(model::served_demand(
                    inst, sectorpack::assign::solve_successive(
                              inst, alphas, knapsack::Oracle::greedy())),
                exact));
      r_lp.push_back(
          ratio(model::served_demand(
                    inst, sectorpack::assign::solve_lp_rounding(inst, alphas)),
                exact));
      r_flow.push_back(ratio(
          bounds::fixed_orientation_fractional_bound(inst, alphas), exact));
    }
    const auto add = [&](const char* name, const std::vector<double>& r) {
      const auto s = bench_util::summarize(r);
      table.add_row({name, bench_util::cell(s.mean, 4),
                     bench_util::cell(s.min, 4)});
    };
    add("best-fit-greedy", r_greedy);
    add("successive(exact)", r_succ_exact);
    add("successive(greedy)", r_succ_greedy);
    add("lp-rounding", r_lp);
    add("flow-bound/exact", r_flow);
    table.print(std::cout);
    std::cout << "(flow-bound/exact >= 1 always; its excess over 1 is the"
                 " integrality gap)\n";
  }

  // Part 2: large instances vs the flow bound.
  {
    std::cout << "\nvs flow bound (n=400, k=6):\n";
    bench_util::Table table(
        {"workload", "solver", "ratio_vs_flow", "time_ms"});
    for (sim::Spatial spatial :
         {sim::Spatial::kUniformDisk, sim::Spatial::kHotspots}) {
      const model::Instance inst = make_workload(
          spatial, 400, 6, geom::deg_to_rad(90.0), 0.5, 8123);
      sim::Rng rng(977);
      const auto alphas = random_alphas(rng, 6);
      const double flow =
          bounds::fixed_orientation_fractional_bound(inst, alphas);

      {
        bench_util::Timer timer;
        const double v = model::served_demand(
            inst, sectorpack::assign::solve_greedy(inst, alphas));
        table.add_row({spatial_name(spatial), "best-fit-greedy",
                       bench_util::cell(ratio(v, flow), 4),
                       bench_util::cell(timer.elapsed_ms(), 2)});
      }
      {
        bench_util::Timer timer;
        const double v = model::served_demand(
            inst, sectorpack::assign::solve_successive(inst, alphas));
        table.add_row({spatial_name(spatial), "successive(exact)",
                       bench_util::cell(ratio(v, flow), 4),
                       bench_util::cell(timer.elapsed_ms(), 2)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
