// F5 -- runtime scaling of every solver family (google-benchmark).
//
// Complexity expectations being verified:
//   WindowSweep construction      O(n log n)
//   Knapsack greedy               O(n log n)
//   Knapsack DP                   O(n * C)
//   P1 sweep + greedy oracle      O(n^2 log n)
//   Uncapacitated k-arc DP        O(n^2 k)
//   Multi-antenna greedy          O(k^2 * P1)
// Reported time should grow by ~the predicted factor between consecutive
// doublings of n (the shape check; absolute numbers are machine-specific).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace bench;

namespace {

struct Circle {
  std::vector<double> thetas;
  std::vector<double> demands;
};

Circle make_circle(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  Circle c;
  c.thetas.resize(n);
  c.demands.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.thetas[i] = rng.uniform(0.0, geom::kTwoPi);
    c.demands[i] = static_cast<double>(rng.uniform_int(1, 10));
  }
  return c;
}

}  // namespace

static void BM_WindowSweepConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circle c = make_circle(n, 1);
  for (auto _ : state) {
    geom::WindowSweep sweep(c.thetas, 1.0);
    benchmark::DoNotOptimize(sweep.num_windows());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WindowSweepConstruction)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oNLogN)
    ->MinTime(0.1)
    ->Unit(benchmark::kMicrosecond);

static void BM_KnapsackGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circle c = make_circle(n, 2);
  std::vector<knapsack::Item> items(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {c.demands[i], c.demands[i]};
    total += c.demands[i];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        knapsack::solve_greedy(items, total / 2.0).value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackGreedy)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oNLogN)
    ->MinTime(0.1)
    ->Unit(benchmark::kMicrosecond);

static void BM_KnapsackDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circle c = make_circle(n, 3);
  std::vector<knapsack::Item> items(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    items[i] = {c.demands[i], c.demands[i]};
    total += c.demands[i];
  }
  const double cap = std::floor(total / 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knapsack::solve_exact_dp(items, cap).value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackDp)
    ->RangeMultiplier(2)
    ->Range(128, 2048)
    ->Complexity(benchmark::oNSquared)  // C grows with n here
    ->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);

static void BM_SingleSweepGreedyOracle(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circle c = make_circle(n, 4);
  double total = 0.0;
  for (double d : c.demands) total += d;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        single::best_window(c.thetas, c.demands, 1.0, total / 4.0,
                            knapsack::Oracle::greedy())
            .value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleSweepGreedyOracle)
    ->RangeMultiplier(2)
    ->Range(128, 2048)
    ->Complexity(benchmark::oNSquared)
    ->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);

static void BM_SingleUniformFastPath(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circle c = make_circle(n, 9);
  const double cap = static_cast<double>(n) / 4.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        single::best_window_uniform(c.thetas, 1.0, 1.0, cap).value);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SingleUniformFastPath)
    ->RangeMultiplier(4)
    ->Range(256, 65536)
    ->Complexity(benchmark::oNLogN)
    ->MinTime(0.1)
    ->Unit(benchmark::kMicrosecond);

static void BM_UncapArcDp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Circle c = make_circle(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        angles::solve_uncap_dp(c.thetas, c.demands, 0.5, 4).covered);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_UncapArcDp)
    ->RangeMultiplier(2)
    ->Range(128, 2048)
    ->Complexity(benchmark::oNSquared)
    ->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);

static void BM_SectorsGreedy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const model::Instance inst = make_workload(
      sim::Spatial::kUniformDisk, n, 4, geom::deg_to_rad(70.0), 0.4, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model::served_demand(inst, sectors::solve_greedy(inst)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SectorsGreedy)
    ->RangeMultiplier(2)
    ->Range(64, 512)
    ->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);

static void BM_FlowBound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const model::Instance inst = make_workload(
      sim::Spatial::kUniformDisk, n, 4, geom::deg_to_rad(90.0), 0.4, 7);
  const std::vector<double> alphas = {0.0, 1.5, 3.0, 4.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bounds::fixed_orientation_fractional_bound(inst, alphas));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowBound)
    ->RangeMultiplier(4)
    ->Range(256, 4096)
    ->MinTime(0.1)
    ->Unit(benchmark::kMillisecond);
