// F6 -- parallel orientation sweep: strong scaling of the P1 sweep.
//
// The window sweep is embarrassingly parallel across candidate windows;
// best_window(parallel=true) distributes chunks over a thread pool with a
// deterministic chunk-ordered reduction (results must be bit-identical to
// serial).
//
// Honesty note: this machine exposes a single hardware core, so measured
// speedups are expected to be ~1.0 (or slightly below, from pool overhead).
// The table still demonstrates (a) determinism across thread counts and
// (b) bounded overhead of the parallel path; on a multicore host the same
// binary shows near-linear scaling for large n.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "F6", "parallel sweep scaling (P1, greedy oracle)");

  const std::size_t n = 4000;
  sim::Rng rng(4242);
  std::vector<double> thetas(n);
  std::vector<double> demands(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    thetas[i] = rng.uniform(0.0, geom::kTwoPi);
    demands[i] = static_cast<double>(rng.uniform_int(1, 10));
    total += demands[i];
  }
  const double cap = total / 4.0;
  const knapsack::Oracle oracle = knapsack::Oracle::greedy();

  // Serial reference.
  double serial_ms = 0.0;
  single::WindowChoice serial_choice;
  {
    bench_util::Timer timer;
    serial_choice = single::best_window(thetas, demands, 1.0, cap, oracle,
                                        /*parallel=*/false);
    serial_ms = timer.elapsed_ms();
  }

  bench_util::Table table({"threads", "time_ms", "speedup", "value",
                           "identical_to_serial"});
  table.add_row({"serial", bench_util::cell(serial_ms, 1), "1.00",
                 bench_util::cell(serial_choice.value, 0), "-"});

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    bench_util::Timer timer;
    const single::WindowChoice via_api = single::best_window(
        thetas, demands, 1.0, cap, oracle, /*parallel=*/true, &pool);
    const double ms = timer.elapsed_ms();
    const bool identical = via_api.value == serial_choice.value &&
                           via_api.alpha == serial_choice.alpha &&
                           via_api.chosen == serial_choice.chosen;
    table.add_row({bench_util::cell(std::size_t{threads}),
                   bench_util::cell(ms, 1),
                   bench_util::cell(serial_ms / ms, 2),
                   bench_util::cell(via_api.value, 0),
                   identical ? "yes" : "NO -- BUG"});
  }
  table.print(std::cout);
  std::cout << "\nhardware_concurrency = "
            << std::thread::hardware_concurrency()
            << "; on a 1-core host speedup ~1.0 is the honest expectation."
            << "\n";
  return 0;
}
