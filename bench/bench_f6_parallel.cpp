// F6 -- parallel orientation sweep: strong scaling of the P1 sweep.
//
// The window sweep is embarrassingly parallel across candidate windows;
// best_window(parallel=true) distributes chunks over a thread pool with a
// deterministic chunk-ordered reduction (results must be bit-identical to
// serial).
//
// Honesty note: this machine exposes a single hardware core, so measured
// speedups are expected to be ~1.0 (or slightly below, from pool overhead).
// The table still demonstrates (a) determinism across thread counts and
// (b) bounded overhead of the parallel path; on a multicore host the same
// binary shows near-linear scaling for large n.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "F6", "parallel sweep scaling (P1, greedy oracle)");
  BenchReport report("f6_parallel");

  const std::size_t n = 4000;
  const std::size_t reps = 5;
  sim::Rng rng(4242);
  std::vector<double> thetas(n);
  std::vector<double> demands(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    thetas[i] = rng.uniform(0.0, geom::kTwoPi);
    demands[i] = static_cast<double>(rng.uniform_int(1, 10));
    total += demands[i];
  }
  const double cap = total / 4.0;
  const knapsack::Oracle oracle = knapsack::Oracle::greedy();

  // Serial reference: min over repetitions (least-noise estimator).
  single::WindowChoice serial_choice;
  const std::vector<double> serial_times = time_repetitions(reps, [&] {
    serial_choice = single::best_window(thetas, demands, 1.0, cap, oracle,
                                        /*parallel=*/false);
  });
  const RepStats serial = summarize_times(serial_times);
  report.metric_times("serial", serial_times);

  bench_util::Table table({"threads", "t_min_ms", "t_med_ms", "t_p95_ms",
                           "speedup", "value", "identical_to_serial"});
  table.add_row({"serial", bench_util::cell(serial.min_ms, 1),
                 bench_util::cell(serial.median_ms, 1),
                 bench_util::cell(serial.p95_ms, 1), "1.00",
                 bench_util::cell(serial_choice.value, 0), "-"});

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    single::WindowChoice via_api;
    const std::vector<double> times = time_repetitions(reps, [&] {
      via_api = single::best_window(thetas, demands, 1.0, cap, oracle,
                                    /*parallel=*/true, &pool);
    });
    const RepStats t = summarize_times(times);
    const bool identical = via_api.value == serial_choice.value &&
                           via_api.alpha == serial_choice.alpha &&
                           via_api.chosen == serial_choice.chosen;
    table.add_row({bench_util::cell(std::size_t{threads}),
                   bench_util::cell(t.min_ms, 1),
                   bench_util::cell(t.median_ms, 1),
                   bench_util::cell(t.p95_ms, 1),
                   bench_util::cell(serial.min_ms / t.min_ms, 2),
                   bench_util::cell(via_api.value, 0),
                   identical ? "yes" : "NO -- BUG"});
    report.metric_times("threads_" + std::to_string(threads), times);
  }
  table.print(std::cout);
  report.write();
  std::cout << "\nhardware_concurrency = "
            << std::thread::hardware_concurrency()
            << "; on a 1-core host speedup ~1.0 is the honest expectation."
            << "\n";
  return 0;
}
