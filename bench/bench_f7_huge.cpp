// F7 -- huge-instance scaling: polar-grid crossover and wedge sharding.
//
// Workload: n customers uniform on a disk of radius 100 with unit demands,
// k = 4 antennas with small distinct ranges (each covers ~0.5% of the disk),
// the regime the spatial index targets -- queries touch a thin annulus of a
// giant point set, so a flat O(n) scan per query is almost pure waste.
//
// Three flat-vs-indexed pairs per size (eligibility, single-antenna solve,
// sectors greedy) are timed with the crossover pinned via
// set_spatial_index_mode; outputs are bit-identical by construction (tested
// in test_polar_grid.cpp), so this bench measures time only. The grid build
// is prewarmed and reported as its own metric: it is paid once per instance
// and amortized over every query a real solve performs, and folding it into
// one arbitrary repetition would just add noise.
//
// The shard solve is timed against the indexed greedy. Honesty note: on a
// single-core host the shard speedup is ~1.0 (it trades seam loss for
// parallelism this machine does not have); the interesting single-core
// numbers are the flat-vs-indexed ratios. A small n pair below the
// crossover threshold is included so the "flat wins when tiny" half of the
// heuristic is measured, not assumed.

#include "bench_common.hpp"

using namespace bench;

namespace {

model::Instance huge_instance(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    // Uniform on the disk: r = R * sqrt(u).
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         100.0 * std::sqrt(rng.uniform01()), 1.0);
  }
  const double ranges[] = {2.0, 2.4, 2.8, 3.2};
  for (std::size_t j = 0; j < 4; ++j) {
    b.add_antenna(0.7 + 0.1 * static_cast<double>(j), ranges[j],
                  40.0 + 20.0 * static_cast<double>(j));
  }
  return b.build();
}

struct Pair {
  RepStats flat;
  RepStats indexed;
};

// Time `fn` under both forced modes; flat first so the indexed runs reuse
// any instance-level caches the flat runs populated (there are none today;
// the order just makes that true by construction if one appears).
template <typename Fn>
Pair time_modes(std::size_t reps, Fn&& fn) {
  Pair p;
  geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceFlat);
  p.flat = summarize_times(time_repetitions(reps, fn));
  geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceIndexed);
  p.indexed = summarize_times(time_repetitions(reps, fn));
  geom::set_spatial_index_mode(geom::SpatialIndexMode::kAuto);
  return p;
}

double speedup(const Pair& p) {
  return p.indexed.median_ms > 0.0 ? p.flat.median_ms / p.indexed.median_ms
                                   : 0.0;
}

}  // namespace

int main() {
  bench_util::print_experiment_header(
      std::cout, "F7", "huge instances: polar grid crossover + sharding");
  BenchReport report("f7_huge");
  bench_util::Table table({"n", "stage", "flat_med_ms", "idx_med_ms",
                           "speedup"});

  // Below the crossover threshold kAuto stays flat; measure both forced
  // modes to show the flat path is the right default there.
  {
    const model::Instance small = huge_instance(2000, 7);
    std::vector<double> alphas(small.num_antennas(), 0.5);
    const Pair p = time_modes(
        9, [&] { (void)assign::compute_eligibility(small, alphas); });
    report.metric("eligibility_n2000.flat.median_ms", p.flat.median_ms);
    report.metric("eligibility_n2000.indexed.median_ms",
                  p.indexed.median_ms);
    table.add_row({"2000", "eligibility", bench_util::cell(p.flat.median_ms, 3),
                   bench_util::cell(p.indexed.median_ms, 3),
                   bench_util::cell(speedup(p), 2)});
  }

  for (std::size_t n : {std::size_t{100000}, std::size_t{1000000},
                        std::size_t{10000000}}) {
    const std::size_t reps = n <= 100000 ? 5 : (n <= 1000000 ? 3 : 2);
    const std::string tag = "_n" + std::to_string(n);
    const model::Instance inst = huge_instance(n, 42 + n);

    // Grid build, paid once per instance and reported separately (the
    // queries below run against the warm cache, as every solve after the
    // first query does).
    bench_util::Timer build_timer;
    (void)inst.polar_grid();
    const double build_ms = build_timer.elapsed_ms();
    report.metric("grid_build" + tag + ".ms", build_ms);

    // The query primitive itself: one radial-band query per antenna, the
    // operation every adopter's inner loop performs. This is where the
    // index's asymptotic win shows undiluted by per-solve fixed costs
    // (solution allocation, window evaluation) that both paths share.
    {
      std::vector<std::size_t> out;
      const Pair p = time_modes(reps, [&] {
        for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
          inst.in_range_customers(j, out);
        }
      });
      report.metric("query" + tag + ".flat.median_ms", p.flat.median_ms);
      report.metric("query" + tag + ".indexed.median_ms",
                    p.indexed.median_ms);
      report.metric("query" + tag + ".speedup_median", speedup(p));
      table.add_row({bench_util::cell(n), "query",
                     bench_util::cell(p.flat.median_ms, 3),
                     bench_util::cell(p.indexed.median_ms, 3),
                     bench_util::cell(speedup(p), 2)});
    }

    // Eligibility: k sector queries vs k full scans.
    std::vector<double> alphas(inst.num_antennas(), 0.5);
    {
      const Pair p = time_modes(
          reps, [&] { (void)assign::compute_eligibility(inst, alphas); });
      report.metric("eligibility" + tag + ".flat.median_ms",
                    p.flat.median_ms);
      report.metric("eligibility" + tag + ".indexed.median_ms",
                    p.indexed.median_ms);
      report.metric("eligibility" + tag + ".speedup_median", speedup(p));
      table.add_row({bench_util::cell(n), "eligibility",
                     bench_util::cell(p.flat.median_ms, 2),
                     bench_util::cell(p.indexed.median_ms, 2),
                     bench_util::cell(speedup(p), 2)});
    }

    // Single-antenna solve (unit demands: the uniform fast path).
    {
      const Pair p =
          time_modes(reps, [&] { (void)single::solve_greedy(inst); });
      report.metric("single" + tag + ".flat.median_ms", p.flat.median_ms);
      report.metric("single" + tag + ".indexed.median_ms",
                    p.indexed.median_ms);
      report.metric("single" + tag + ".speedup_median", speedup(p));
      table.add_row({bench_util::cell(n), "single",
                     bench_util::cell(p.flat.median_ms, 2),
                     bench_util::cell(p.indexed.median_ms, 2),
                     bench_util::cell(speedup(p), 2)});
    }

    // Sectors greedy, the end-to-end solver the sharding wraps.
    sectors::GreedyConfig gc;
    gc.oracle = knapsack::Oracle::greedy();
    RepStats greedy_indexed;
    {
      const Pair p = time_modes(
          reps, [&] { (void)sectors::solve_greedy(inst, gc); });
      greedy_indexed = p.indexed;
      report.metric("greedy" + tag + ".flat.median_ms", p.flat.median_ms);
      report.metric("greedy" + tag + ".indexed.median_ms",
                    p.indexed.median_ms);
      report.metric("greedy" + tag + ".speedup_median", speedup(p));
      table.add_row({bench_util::cell(n), "greedy",
                     bench_util::cell(p.flat.median_ms, 2),
                     bench_util::cell(p.indexed.median_ms, 2),
                     bench_util::cell(speedup(p), 2)});
    }

    // Shard solve (kAuto: real deployment configuration).
    {
      shard::ShardConfig sc;
      shard::ShardStats stats;
      const std::vector<double> times =
          time_repetitions(reps, [&] { (void)shard::solve(inst, sc, &stats); });
      const RepStats t = summarize_times(times);
      report.metric_times("shard" + tag, times);
      report.metric("shard" + tag + ".vs_indexed_greedy",
                    t.median_ms > 0.0 ? greedy_indexed.median_ms / t.median_ms
                                      : 0.0);
      report.metric("shard" + tag + ".repair_moved",
                    static_cast<double>(stats.repair_moved));
      table.add_row({bench_util::cell(n), "shard", "-",
                     bench_util::cell(t.median_ms, 2),
                     bench_util::cell(t.median_ms > 0.0
                                          ? greedy_indexed.median_ms /
                                                t.median_ms
                                          : 0.0,
                                      2)});
    }
  }

  table.print(std::cout);
  report.write();
  std::cout << "\nhardware_concurrency = "
            << std::thread::hardware_concurrency()
            << "; shard speedup ~1.0 on a 1-core host is the honest "
               "expectation -- the flat-vs-indexed ratios are the headline "
               "here.\n";
  return 0;
}
