// T4 -- P3 multi-antenna solver quality.
//
// Small instances: ratios against the exact solver (enumerated candidate
// orientation tuples + exact assignment). Large instances: ratios against
// the certified orientation-free upper bound (so reported ratios are lower
// bounds on the true ratios against OPT).
//
// Expected shape: local search >= greedy >= uniform; greedy well above its
// worst case on random workloads; ratios vs the (loose) bound still high.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "T4", "multi-antenna solvers: small exact, large bounded");
  BenchReport report("t4_sectors");

  // Part 1: vs exact (n=9, k=2).
  {
    bench_util::Table table(
        {"solver", "ratio_mean", "ratio_min", "trials"});
    const int trials = 8;
    std::vector<double> r_greedy;
    std::vector<double> r_ls;
    std::vector<double> r_anneal;
    std::vector<double> r_uniform;
    for (int trial = 0; trial < trials; ++trial) {
      const model::Instance inst =
          make_workload(sim::Spatial::kUniformDisk, 9, 2,
                        geom::deg_to_rad(80.0), 0.5,
                        4000 + static_cast<std::uint64_t>(trial));
      const double exact =
          model::served_demand(inst, sectors::solve_exact(inst));
      r_greedy.push_back(ratio(
          model::served_demand(inst, sectors::solve_greedy(inst)), exact));
      r_ls.push_back(ratio(
          model::served_demand(inst, sectors::solve_local_search(inst)),
          exact));
      sectors::AnnealConfig anneal;
      anneal.seed = static_cast<std::uint64_t>(trial);
      anneal.iterations = 800;
      r_anneal.push_back(ratio(
          model::served_demand(inst, sectors::solve_annealing(inst, anneal)),
          exact));
      r_uniform.push_back(
          ratio(model::served_demand(
                    inst, sectors::solve_uniform_orientations(inst)),
                exact));
    }
    const auto add = [&](const char* name, const std::vector<double>& r) {
      const auto s = bench_util::summarize(r);
      table.add_row({name, bench_util::cell(s.mean, 4),
                     bench_util::cell(s.min, 4),
                     bench_util::cell(std::size_t(trials))});
      report.metric(std::string("vs_exact.") + name + ".ratio_mean", s.mean);
      report.metric(std::string("vs_exact.") + name + ".ratio_min", s.min);
    };
    std::cout << "vs exact (n=9, k=2, rho=80deg, capacity=50%):\n";
    add("greedy", r_greedy);
    add("local-search", r_ls);
    add("annealing", r_anneal);
    add("uniform", r_uniform);
    table.print(std::cout);
  }

  // Part 2: vs certified upper bound (n=150, k=4).
  {
    std::cout << "\nvs orientation-free bound (n=150, k=4, rho=70deg):\n";
    bench_util::Table table({"workload", "solver", "ratio_vs_bound_mean",
                             "ratio_min"});
    const int trials = 4;
    for (sim::Spatial spatial :
         {sim::Spatial::kUniformDisk, sim::Spatial::kHotspots,
          sim::Spatial::kRing}) {
      std::vector<double> r_greedy;
      std::vector<double> r_ls;
      std::vector<double> r_uniform;
      for (int trial = 0; trial < trials; ++trial) {
        const model::Instance inst =
            make_workload(spatial, 150, 4, geom::deg_to_rad(70.0), 0.4,
                          5000 + static_cast<std::uint64_t>(trial));
        const double bound = bounds::orientation_free_bound(inst);
        r_greedy.push_back(ratio(
            model::served_demand(inst, sectors::solve_greedy(inst)), bound));
        r_ls.push_back(ratio(
            model::served_demand(inst, sectors::solve_local_search(inst)),
            bound));
        r_uniform.push_back(
            ratio(model::served_demand(
                      inst, sectors::solve_uniform_orientations(inst)),
                  bound));
      }
      const auto add = [&](const char* name, const std::vector<double>& r) {
        const auto s = bench_util::summarize(r);
        table.add_row({spatial_name(spatial), name,
                       bench_util::cell(s.mean, 4),
                       bench_util::cell(s.min, 4)});
        report.metric(std::string("vs_bound.") + spatial_name(spatial) +
                          "." + name + ".ratio_mean",
                      s.mean);
      };
      add("greedy", r_greedy);
      add("local-search", r_ls);
      add("uniform", r_uniform);
    }
    table.print(std::cout);
  }
  report.write();
  return 0;
}
