// T2 -- P1 single-sector solver quality across workload geographies.
//
// One antenna (60 deg beam, capacity = 30% of demand), n = 200 customers
// with integer demands drawn from four spatial distributions. Ratios are
// against the exact sweep (candidate orientations x exact knapsack).
//
// Expected shape: exact == 1; fptas >= 1 - eps; greedy >= 0.5 and usually
// far above; the arcband geography concentrates demand so ratios tighten.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "T2", "single-sector solvers by workload (n=200, rho=60deg)");

  bench_util::Table table({"workload", "solver", "ratio_mean", "ratio_min",
                           "time_ms"});

  const int trials = 5;
  const double rho = geom::deg_to_rad(60.0);

  struct Solver {
    std::string name;
    knapsack::Oracle oracle;
  };
  const std::vector<Solver> solvers = {
      {"exact", knapsack::Oracle::exact()},
      {"fptas-0.10", knapsack::Oracle::fptas(0.10)},
      {"greedy", knapsack::Oracle::greedy()},
  };

  for (sim::Spatial spatial :
       {sim::Spatial::kUniformDisk, sim::Spatial::kHotspots,
        sim::Spatial::kRing, sim::Spatial::kArcBand}) {
    std::vector<std::vector<double>> ratios(solvers.size());
    std::vector<double> times(solvers.size(), 0.0);
    for (int trial = 0; trial < trials; ++trial) {
      const model::Instance inst =
          make_workload(spatial, 200, 1, rho, 0.3,
                        7000 + static_cast<std::uint64_t>(trial));
      const double exact =
          model::served_demand(inst, single::solve_exact(inst));
      for (std::size_t s = 0; s < solvers.size(); ++s) {
        single::Config config;
        config.oracle = solvers[s].oracle;
        bench_util::Timer timer;
        const model::Solution sol = single::solve(inst, config);
        times[s] += timer.elapsed_ms();
        ratios[s].push_back(ratio(model::served_demand(inst, sol), exact));
      }
    }
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      const auto summary = bench_util::summarize(ratios[s]);
      table.add_row({spatial_name(spatial), solvers[s].name,
                     bench_util::cell(summary.mean, 4),
                     bench_util::cell(summary.min, 4),
                     bench_util::cell(times[s] / trials, 3)});
    }
  }
  table.print(std::cout);
  return 0;
}
