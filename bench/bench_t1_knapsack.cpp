// T1 -- Knapsack engine quality.
//
// For each instance size, random subset-sum style demand items (value ==
// weight, the shape the sector solvers feed the oracle), capacity = half of
// total demand. Reports each solver's approximation ratio against the exact
// DP and its running time.
//
// Expected shape (theory): exact ratios == 1; greedy >= 0.5 but typically
// >= 0.95 on random inputs; FPTAS(eps) >= 1 - eps with time growing ~ 1/eps.

#include "bench_common.hpp"

using namespace bench;

namespace {

std::vector<knapsack::Item> random_demand_items(sim::Rng& rng,
                                                std::size_t n) {
  std::vector<knapsack::Item> items(n);
  for (auto& it : items) {
    const double d = static_cast<double>(rng.uniform_int(1, 100));
    it = {d, d};
  }
  return items;
}

}  // namespace

int main() {
  bench_util::print_experiment_header(
      std::cout, "T1", "knapsack engine: ratio vs exact, time (ms)");
  BenchReport report("t1_knapsack");

  struct Solver {
    std::string name;
    knapsack::Oracle oracle;
  };
  const std::vector<Solver> solvers = {
      {"exact-dp", knapsack::Oracle(knapsack::OracleKind::kExactDP)},
      {"exact-bb", knapsack::Oracle(knapsack::OracleKind::kExactBB)},
      {"greedy", knapsack::Oracle::greedy()},
      {"fptas-0.10", knapsack::Oracle::fptas(0.10)},
      {"fptas-0.05", knapsack::Oracle::fptas(0.05)},
  };

  bench_util::Table table({"n", "solver", "ratio_mean", "ratio_min",
                           "t_min_ms", "t_med_ms", "t_p95_ms", "floor"});

  const int trials = 5;
  for (std::size_t n : {20u, 50u, 100u, 200u}) {
    std::vector<std::vector<double>> ratios(solvers.size());
    std::vector<std::vector<double>> times(solvers.size());
    for (int trial = 0; trial < trials; ++trial) {
      sim::Rng rng(1000 * n + static_cast<std::uint64_t>(trial));
      const auto items = random_demand_items(rng, n);
      double total = 0.0;
      for (const auto& it : items) total += it.weight;
      const double cap = std::floor(total / 2.0);
      const double exact = knapsack::solve_exact_dp(items, cap).value;
      for (std::size_t s = 0; s < solvers.size(); ++s) {
        bench_util::Timer timer;
        const double value = solvers[s].oracle.solve(items, cap).value;
        times[s].push_back(timer.elapsed_ms());
        ratios[s].push_back(ratio(value, exact));
      }
    }
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      const auto summary = bench_util::summarize(ratios[s]);
      const RepStats t = summarize_times(times[s]);
      table.add_row({bench_util::cell(n), solvers[s].name,
                     bench_util::cell(summary.mean, 4),
                     bench_util::cell(summary.min, 4),
                     bench_util::cell(t.min_ms, 3),
                     bench_util::cell(t.median_ms, 3),
                     bench_util::cell(t.p95_ms, 3),
                     bench_util::cell(solvers[s].oracle.guarantee(), 2)});
      const std::string key =
          solvers[s].name + ".n" + std::to_string(n);
      report.metric_times(key, times[s]);
      report.metric(key + ".ratio_min", summary.min);
    }
  }
  table.print(std::cout);
  report.write();
  std::cout << "\nEvery ratio_min must be >= its floor column; exact rows"
               " must be 1.0000.\n";
  return 0;
}
