// T8 -- value-weighted packing (revenue objective).
//
// Customers carry a value decoupled from their demand (Pareto-ish revenue
// on uniform-int demands). The solver stack maximizes served value while
// capacity is consumed by demand. Small instances compare against the
// weighted exact solver; the table also contrasts the value-aware solvers
// with a demand-blind run (same geometry, values ignored) to quantify what
// value-awareness buys.
//
// Expected shape: exact >= local-search >= greedy on value; the
// demand-blind column trails the value-aware one by a visible margin
// whenever high-value customers hide among heavy low-value ones.

#include <array>

#include "bench_common.hpp"

using namespace bench;

namespace {

model::Instance weighted_instance(std::uint64_t seed, std::size_t n,
                                  std::size_t k, double capacity_fraction) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  double total_demand = 0.0;
  std::vector<std::array<double, 4>> rows;
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double r = rng.uniform(1.0, 9.0);
    const double demand = static_cast<double>(rng.uniform_int(1, 10));
    // Heavy-tailed revenue, independent of demand.
    const double value = std::min(200.0, std::ceil(rng.pareto(1.0, 1.3)));
    rows.push_back({theta, r, demand, value});
    total_demand += demand;
  }
  for (const auto& row : rows) {
    b.add_weighted_customer_polar(row[0], row[1], row[2], row[3]);
  }
  const double cap =
      std::floor(total_demand * capacity_fraction / static_cast<double>(k));
  b.add_identical_antennas(k, geom::deg_to_rad(80.0), 10.0, cap);
  return b.build();
}

// The same instance with values erased (value := demand), used to measure
// what a demand-blind planner forgoes.
model::Instance strip_values(const model::Instance& inst) {
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    b.add_customer_polar(inst.theta(i), inst.radius(i), inst.demand(i));
  }
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    const model::AntennaSpec& a = inst.antenna(j);
    b.add_antenna(a.rho, a.range, a.capacity);
  }
  return b.build();
}

}  // namespace

int main() {
  bench_util::print_experiment_header(std::cout, "T8",
                                      "value-weighted packing (revenue)");

  // Part 1: ratios vs weighted exact (n=8, k=2).
  {
    std::cout << "vs exact (n=8, k=2):\n";
    bench_util::Table table({"solver", "value_ratio_mean", "value_ratio_min"});
    std::vector<double> r_greedy;
    std::vector<double> r_ls;
    for (std::uint64_t trial = 0; trial < 8; ++trial) {
      const model::Instance inst = weighted_instance(trial + 8100, 8, 2, 0.5);
      const double exact =
          model::served_value(inst, sectors::solve_exact(inst));
      if (exact <= 0.0) continue;
      r_greedy.push_back(
          model::served_value(inst, sectors::solve_greedy(inst)) / exact);
      r_ls.push_back(
          model::served_value(inst, sectors::solve_local_search(inst)) /
          exact);
    }
    const auto add = [&](const char* name, const std::vector<double>& r) {
      const auto s = bench_util::summarize(r);
      table.add_row({name, bench_util::cell(s.mean, 4),
                     bench_util::cell(s.min, 4)});
    };
    add("greedy", r_greedy);
    add("local-search", r_ls);
    table.print(std::cout);
  }

  // Part 2: value-aware vs demand-blind planning (n=200, k=4).
  {
    std::cout << "\nvalue-aware vs demand-blind (n=200, k=4):\n";
    bench_util::Table table({"trial", "value_aware", "demand_blind",
                             "uplift", "bound"});
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
      const model::Instance inst =
          weighted_instance(trial + 8200, 200, 4, 0.4);
      const model::Instance blind = strip_values(inst);

      const double aware =
          model::served_value(inst, sectors::solve_local_search(inst));
      // Demand-blind: plan orientations/assignment on the stripped
      // instance, then evaluate the plan's served VALUE on the real one.
      const model::Solution blind_plan = sectors::solve_local_search(blind);
      double blind_value = 0.0;
      for (std::size_t i = 0; i < inst.num_customers(); ++i) {
        if (blind_plan.assign[i] != model::kUnserved) {
          blind_value += inst.value(i);
        }
      }
      const double bound = bounds::orientation_free_bound(inst);
      table.add_row({bench_util::cell(trial), bench_util::cell(aware, 0),
                     bench_util::cell(blind_value, 0),
                     bench_util::cell(
                         blind_value > 0 ? aware / blind_value : 1.0, 3),
                     bench_util::cell(bound, 0)});
    }
    table.print(std::cout);
    std::cout << "\nuplift > 1 quantifies the revenue gained by planning"
                 " with values instead of raw demand.\n";
  }
  return 0;
}
