// F2 -- served demand vs beam width rho (figure series).
//
// Fixed uniform-disk workload, k = 3 antennas with capacity 30% of demand
// each; rho sweeps from 10 to 360 degrees. Series: greedy, local search,
// uniform baseline, upper bound.
//
// Expected shape: a geometry-limited rising segment (narrow beams cannot
// see enough demand) crossing into a capacity-limited plateau at
// ~min(total capacity, demand); the uniform baseline trails the adaptive
// planners most in the mid-width regime where orientation choice matters.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "F2", "served demand vs rho (uniform disk, n=150, k=3)");

  sim::Rng rng(1414);
  sim::WorkloadConfig wc;
  wc.num_customers = 150;
  wc.spatial = sim::Spatial::kUniformDisk;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 1;
  wc.demand_max = 10;
  const std::vector<model::Customer> customers =
      sim::generate_customers(wc, rng);
  double total_demand = 0.0;
  for (const auto& c : customers) total_demand += c.demand;
  const double cap = std::floor(0.3 * total_demand);

  bench_util::Table table({"rho_deg", "uniform", "greedy", "local_search",
                           "upper_bound", "ls/bound"});

  for (double deg : {10.0, 20.0, 40.0, 60.0, 90.0, 120.0, 180.0, 240.0,
                     300.0, 360.0}) {
    std::vector<model::AntennaSpec> specs(
        3, model::AntennaSpec{geom::deg_to_rad(deg), 250.0, cap});
    const model::Instance inst{customers, specs};

    const double uniform = model::served_demand(
        inst, sectors::solve_uniform_orientations(inst));
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    const double ls =
        model::served_demand(inst, sectors::solve_local_search(inst));
    const double bound = bounds::orientation_free_bound(inst);

    table.add_row({bench_util::cell(deg, 0), bench_util::cell(uniform, 0),
                   bench_util::cell(greedy, 0), bench_util::cell(ls, 0),
                   bench_util::cell(bound, 0),
                   bench_util::cell(ratio(ls, bound), 3)});
  }
  table.print(std::cout);
  std::cout << "\nTotal demand: " << total_demand << "; total capacity: "
            << 3.0 * cap << "\n";
  return 0;
}
