// T3 -- P2 uncapacitated k-arc cover: optimality and polynomial runtime.
//
// The structural result: choosing k equal-width arcs to maximize covered
// demand is solvable exactly in O(n^2 k) by the circular DP. The first
// table cross-checks the DP against brute force on tiny instances (ratio
// must be exactly 1); the second charts runtime growth, which should scale
// ~quadratically in n and linearly in k.

#include "bench_common.hpp"

using namespace bench;

int main() {
  bench_util::print_experiment_header(
      std::cout, "T3", "uncapacitated k-arc cover DP (optimal, poly-time)");

  // Part 1: optimality cross-check vs brute force.
  {
    bench_util::Table table({"n", "k", "rho", "dp=brute(all trials)"});
    sim::Rng rng(31337);
    for (std::size_t n : {6u, 9u, 12u}) {
      for (std::size_t k : {1u, 2u, 3u}) {
        bool all_equal = true;
        const double rho = 0.3 + 0.2 * static_cast<double>(k);
        for (int trial = 0; trial < 10; ++trial) {
          std::vector<double> thetas(n);
          std::vector<double> demands(n);
          for (std::size_t i = 0; i < n; ++i) {
            thetas[i] = rng.uniform(0.0, geom::kTwoPi);
            demands[i] = static_cast<double>(rng.uniform_int(1, 9));
          }
          const double dp =
              angles::solve_uncap_dp(thetas, demands, rho, k).covered;
          const double bf =
              angles::solve_uncap_brute(thetas, demands, rho, k).covered;
          if (std::abs(dp - bf) > 1e-9) all_equal = false;
        }
        table.add_row({bench_util::cell(n), bench_util::cell(k),
                       bench_util::cell(rho, 2),
                       all_equal ? "yes" : "NO -- BUG"});
      }
    }
    table.print(std::cout);
  }

  // Part 2: runtime scaling.
  {
    std::cout << "\nRuntime scaling (rho = 0.5):\n";
    bench_util::Table table(
        {"n", "k", "covered_frac", "time_ms", "time/(n^2 k) ns"});
    for (std::size_t n : {100u, 300u, 1000u, 2000u}) {
      for (std::size_t k : {2u, 4u, 8u}) {
        sim::Rng rng(500 + n + k);
        std::vector<double> thetas(n);
        std::vector<double> demands(n);
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          thetas[i] = rng.uniform(0.0, geom::kTwoPi);
          demands[i] = static_cast<double>(rng.uniform_int(1, 9));
          total += demands[i];
        }
        bench_util::Timer timer;
        const auto res = angles::solve_uncap_dp(thetas, demands, 0.5, k);
        const double ms = timer.elapsed_ms();
        const double per_op =
            ms * 1e6 /
            (static_cast<double>(n) * static_cast<double>(n) *
             static_cast<double>(k));
        table.add_row({bench_util::cell(n), bench_util::cell(k),
                       bench_util::cell(res.covered / total, 3),
                       bench_util::cell(ms, 2),
                       bench_util::cell(per_op, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\ntime/(n^2 k) should be roughly constant across rows"
                 " (polynomial-time confirmation).\n";
  }
  return 0;
}
