#!/usr/bin/env bash
# Reproduce everything: build, full test suite, every experiment table,
# then the static-analysis gate. Outputs land in test_output.txt and
# bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

# Static-analysis gate summary (clang-tidy profile or GCC fallback + the
# sp-lint domain rules + the clang thread-safety analysis; see
# docs/static-analysis.md). Reported pass/fail either way so the
# reproduction log always states both gates' verdicts -- including
# "thread-safety: SKIP(clang missing)" on a GCC-only host, where the
# capability annotations compile to nothing and only sp-lint's textual
# concurrency rules enforce the lock discipline.
GATE="PASS"
LINT_LOG="$(mktemp)"
scripts/check.sh --lint 2>&1 | tee "$LINT_LOG" || GATE="FAIL"
TS_LINE="$(grep -o '\[gate\] thread-safety: .*' "$LINT_LOG" | tail -1 \
           || true)"
rm -f "$LINT_LOG"

echo
echo "[gate] lint: $GATE"
echo "${TS_LINE:-[gate] thread-safety: UNKNOWN (no verdict line in lint log)}"
echo "Done. See test_output.txt and bench_output.txt."
if [ "$GATE" != "PASS" ]; then
  exit 1
fi
