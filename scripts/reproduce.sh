#!/usr/bin/env bash
# Reproduce everything: build, full test suite, every experiment table,
# then the static-analysis gate. Outputs land in test_output.txt and
# bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

# Static-analysis gate summary (clang-tidy profile or GCC fallback + the
# sp-lint domain rules; see docs/static-analysis.md). Reported pass/fail
# either way so the reproduction log always states the gate's verdict.
GATE="PASS"
scripts/check.sh --lint || GATE="FAIL"

echo
echo "[gate] lint: $GATE"
echo "Done. See test_output.txt and bench_output.txt."
if [ "$GATE" != "PASS" ]; then
  exit 1
fi
