#!/usr/bin/env bash
# Reproduce everything: build, full test suite, every experiment table.
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo
echo "Done. See test_output.txt and bench_output.txt."
