#!/usr/bin/env bash
# Project gate: static analysis + format + contracts + sanitizers.
#
# Stages (default run executes all of them, in this order):
#   lint       clang-tidy profile (.clang-tidy) over compile_commands.json
#              from a dedicated build-lint/ configure, via
#              tools/lint/run_clang_tidy.py (GCC -Werror diagnostics
#              fallback when clang-tidy is not installed), plus the
#              sectorpack domain linter tools/lint/sp_lint.py, plus the
#              Clang Thread Safety Analysis gate over the SP_* capability
#              annotations (tools/lint/run_thread_safety.py; prints
#              "[gate] thread-safety: PASS|SKIP(clang missing)|FAIL",
#              SP_REQUIRE_THREAD_SAFETY=1 turns SKIP into FAIL). Fails on
#              any new diagnostic or unwaived domain-rule violation.
#   format     clang-format --dry-run -Werror over src/ tools/ bench/
#              tests/ against .clang-format. Skipped (with a notice) when
#              clang-format is not installed, unless SP_REQUIRE_FORMAT=1.
#   contracts  full test suite with SECTORPACK_CONTRACTS=ON (Debug): every
#              SP_REQUIRE/SP_ENSURE/SP_ASSERT live, solver entry points
#              re-verify their solutions via src/verify/ on every return.
#   sanitize   the ASan+UBSan battery (or TSan with --tsan): full test
#              suite plus the hostile-input corpus and the CLI exit-code
#              table from docs/robustness.md.
#   batch      the `sectorpack batch` corpus (docs/serving.md): a
#              200-request mixed valid/malformed/deadline-expiring run at
#              --jobs 8 under ASan+UBSan and again under TSan, asserting
#              one response per request, exact per-status counts,
#              miss/solve byte-identity, verified cache hits, and cache
#              metrics in --stats json.
#   serve      the `sectorpack serve` session contract (docs/serving.md):
#              one register plus 50 mixed deltas (add/remove/demand/
#              antenna) under ASan+UBSan; every response's incremental
#              solution must be byte-identical to a from-scratch greedy
#              solve of the same post-delta instance, and the delta stream
#              must produce dirty-window memo hits.
#   huge       the spatial-index contract at scale (docs/performance.md): a
#              sanitized 10^5-customer instance solved with --spatial flat
#              and --spatial index must produce byte-identical solution
#              files, and the shard solver's output must pass the
#              named-invariant verifier. No --time-limit anywhere: deadline
#              stops are wall-clock nondeterministic and would break the
#              byte comparison.
#   race       the portfolio-racing contract (docs/performance.md): a
#              sanitized `solve --solver race` run must produce a verified,
#              byte-identical-across-repeats solution with a
#              race.winner.<family> counter in --stats json, and a
#              dominant-family duel must prove cancel-on-winner
#              (race.cancelled >= 1 with status complete). Repeated under
#              TSan by the --tsan battery.
#   obs        the telemetry contract (docs/observability.md): a batch run
#              under ASan+UBSan with --metrics-out / --metrics-jsonl /
#              --metrics-interval 1 / --access-log / --stats json, long
#              enough for >= 2 periodic exporter ticks. Validates the
#              Prometheus exposition with tools/lint/prom_check.py, every
#              JSONL snapshot envelope, one access-log line per request in
#              response order, SLO/quality keys in --stats json, and the
#              --metrics-* flag usage errors.
#
# Usage: scripts/check.sh [--lint | --format | --contracts | --tsan |
#                          --fuzz | --batch | --serve | --huge | --race |
#                          --obs] [build-dir]
#   no flag      run every stage (lint, format, contracts, sanitize,
#                batch, serve, huge, race, obs)
#   --lint       static analysis only
#   --format     format check only
#   --contracts  contracts-enabled test build only
#   --tsan       ThreadSanitizer battery (exclusive with ASan): test suite
#                and CLI table, then the 50-delta serve byte-identity run
#                and a short 80-request --batch --jobs 8 corpus, all TSan
#   --fuzz       hostile-input battery only (ASan+UBSan)
#   --batch      batch-engine corpus only (ASan+UBSan, then TSan)
#   --serve      session-serving byte-identity gate only (ASan+UBSan)
#   --huge       spatial-index scale contract only (ASan+UBSan)
#   --race       portfolio-racing contract only (ASan+UBSan)
#   --obs        telemetry contract only (ASan+UBSan)
#
# Each stage prints a summary line "[gate] <stage>: PASS"; the first
# failing stage aborts the run (set -e).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="all"
TSAN="${SECTORPACK_TSAN:-0}"
case "${1:-}" in
  --tsan) MODE="sanitize"; TSAN=1; shift ;;
  --fuzz) MODE="fuzz"; shift ;;
  --batch) MODE="batch"; shift ;;
  --serve) MODE="serve"; shift ;;
  --huge) MODE="huge"; shift ;;
  --race) MODE="race"; shift ;;
  --obs) MODE="obs"; shift ;;
  --lint) MODE="lint"; shift ;;
  --format) MODE="format"; shift ;;
  --contracts) MODE="contracts"; shift ;;
esac
if [[ "$TSAN" == "1" && "$MODE" == "all" ]]; then
  MODE="sanitize"   # legacy env-var invocation: TSan battery only
fi

JOBS="$(nproc)"

run_lint() {
  cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  python3 tools/lint/run_clang_tidy.py --build-dir build-lint
  python3 tools/lint/sp_lint.py
  # Clang Thread Safety Analysis over the SP_* capability annotations
  # (src/core/sync.hpp). The pass exists only in clang; exit 3 means no
  # clang++ on PATH, reported as SKIP unless SP_REQUIRE_THREAD_SAFETY=1
  # promotes missing tooling to failure (same policy as SP_REQUIRE_FORMAT).
  local ts_rc=0
  python3 tools/lint/run_thread_safety.py --build-dir build-lint || ts_rc=$?
  case "$ts_rc" in
    0) echo "[gate] thread-safety: PASS" ;;
    3)
      if [[ "${SP_REQUIRE_THREAD_SAFETY:-0}" == "1" ]]; then
        echo "[gate] thread-safety: FAIL (clang++ not installed but" \
             "SP_REQUIRE_THREAD_SAFETY=1)" >&2
        return 1
      fi
      echo "[gate] thread-safety: SKIP(clang missing)"
      ;;
    *)
      echo "[gate] thread-safety: FAIL" >&2
      return 1
      ;;
  esac
  echo "[gate] lint: PASS"
}

run_format() {
  if ! command -v clang-format > /dev/null 2>&1; then
    if [[ "${SP_REQUIRE_FORMAT:-0}" == "1" ]]; then
      echo "[gate] format: FAIL (clang-format not installed but" \
           "SP_REQUIRE_FORMAT=1)" >&2
      return 1
    fi
    echo "[gate] format: SKIP (clang-format not installed; .clang-format" \
         "is authoritative when it is)"
    return 0
  fi
  git ls-files 'src/*.[ch]pp' 'tools/*.[ch]pp' 'bench/*.[ch]pp' \
               'tests/*.[ch]pp' 'examples/*.[ch]pp' \
    | xargs clang-format --dry-run -Werror
  echo "[gate] format: PASS"
}

run_contracts() {
  cmake -B build-contracts -S . -DSECTORPACK_CONTRACTS=ON \
    -DCMAKE_BUILD_TYPE=Debug > /dev/null
  cmake --build build-contracts -j"$JOBS"
  ctest --test-dir build-contracts --output-on-failure -j"$JOBS"
  echo "[gate] contracts: PASS"
}

run_sanitize() {
  local fuzz_only="$1"
  local build_dir cmake_flags label
  if [[ "$TSAN" == "1" ]]; then
    build_dir="${BUILD_DIR_OVERRIDE:-build-tsan}"
    cmake_flags=(-DSECTORPACK_TSAN=ON -DSECTORPACK_SANITIZE=OFF)
    label="TSan"
  else
    build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
    cmake_flags=(-DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF)
    label="ASan + UBSan"
  fi

  cmake -B "$build_dir" -S . \
    "${cmake_flags[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j"$JOBS"

  if [[ "$fuzz_only" == "1" ]]; then
    # Hostile-input corpus only: IO garbage/mutation fuzzers and the
    # deadline degradation tests.
    ctest --test-dir "$build_dir" --output-on-failure -j"$JOBS" \
      -R 'Robustness|Fuzz|Deadline'
  else
    ctest --test-dir "$build_dir" --output-on-failure -j"$JOBS"
  fi

  # -------------------------------------------------------------------------
  # CLI exit-code battery: malformed files and bad flag values must exit
  # 1 / 2 respectively -- never crash, never exit 0 -- and hitting
  # --time-limit must NOT be an error.

  local CLI="$build_dir/tools/sectorpack"
  local TMP
  TMP="$(mktemp -d)"
  # Self-clearing: a RETURN trap outlives the function that set it and
  # would re-fire (with $TMP unbound) at the next function return.
  trap 'rm -rf "$TMP"; trap - RETURN' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  # Hostile instance files -> runtime error (1).
  printf 'sectorpack-instance v1\ncustomers 9223372036854775807\n' \
    > "$TMP/forged_count.inst"
  printf 'sectorpack-instance v1\ncustomers 1\n1 2 3 junk\nantennas 1\n0.5 10 5\n' \
    > "$TMP/trailing.inst"
  printf 'sectorpack-instance v1\ncustomers 1\nnan 2 3\nantennas 1\n0.5 10 5\n' \
    > "$TMP/nan.inst"
  printf 'sectorpack-instance v2\ncustomers 1\n1 2 3\nantennas 1\n0.5 10 5 0\n' \
    > "$TMP/truncated_v2.inst"
  expect_rc 1 "$CLI" solve --in "$TMP/forged_count.inst"
  expect_rc 1 "$CLI" solve --in "$TMP/trailing.inst"
  expect_rc 1 "$CLI" info  --in "$TMP/nan.inst"
  expect_rc 1 "$CLI" info  --in "$TMP/truncated_v2.inst"
  expect_rc 1 "$CLI" solve --in "$TMP/does_not_exist.inst"

  # Bad invocations -> usage error (2). ok.inst exists so the usage error,
  # not a file error, is what decides the exit code.
  expect_rc 0 "$CLI" generate --n 300 --k 4 --seed 3 -o "$TMP/ok.inst"
  expect_rc 2 "$CLI" frobnicate
  expect_rc 2 "$CLI" generate --n -5
  expect_rc 2 "$CLI" generate --n banana
  expect_rc 2 "$CLI" solve --time-limit banana --in "$TMP/ok.inst"
  expect_rc 2 "$CLI" solve --time-limit -1 --in "$TMP/ok.inst"
  expect_rc 2 "$CLI" solve --in
  expect_rc 2 "$CLI" solve --no-such-flag 1 --in "$TMP/ok.inst"

  # Repeated single-valued flags are typos or mangled scripts: exit 2
  # naming the flag (the old behavior silently kept the last value). -o is
  # an alias of --out, so mixing the two spellings collides as well.
  expect_rc 2 "$CLI" solve --in "$TMP/ok.inst" --seed 1 --seed 2
  grep -q 'duplicate option --seed' "$TMP/err"
  expect_rc 2 "$CLI" solve --in "$TMP/ok.inst" -o "$TMP/a.sol" --out "$TMP/b.sol"
  grep -q 'duplicate option --out' "$TMP/err"
  expect_rc 2 "$CLI" generate --n 5 --n 6
  grep -q 'duplicate option --n' "$TMP/err"

  # A deadline hit is NOT an error: exit 0, status surfaced, feasible output.
  expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver local-search \
    --time-limit 0 -o "$TMP/ok.sol" --stats json
  grep -q 'status=budget_exhausted' "$TMP/err"
  grep -q 'deadline.expired' "$TMP/out"
  grep -q 'status budget_exhausted' "$TMP/ok.sol"
  expect_rc 0 "$CLI" validate --in "$TMP/ok.inst" --solution "$TMP/ok.sol"
  # ... and without a limit the solution file carries no status line.
  expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver greedy -o "$TMP/full.sol"
  ! grep -q 'status' "$TMP/full.sol"

  # The named-invariant verifier accepts every solver's output and rejects
  # a hand-corrupted file with the invariant's name.
  expect_rc 0 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/ok.sol"
  expect_rc 0 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/full.sol"
  for solver in uniform annealing; do
    expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver "$solver" \
      -o "$TMP/s.sol"
    expect_rc 0 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/s.sol"
  done
  # Corrupt a served assignment to a non-existent antenna index.
  sed 's/^3$/99/' "$TMP/full.sol" > "$TMP/corrupt.sol"
  if cmp -s "$TMP/full.sol" "$TMP/corrupt.sol"; then
    # No customer on antenna 3: corrupt the first served one instead.
    awk '!done && /^[0-9]+$/ && NR > 5 { $0 = "99"; done = 1 } { print }' \
      "$TMP/full.sol" > "$TMP/corrupt.sol"
  fi
  expect_rc 1 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/corrupt.sol"
  grep -q 'assign-range' "$TMP/out"

  echo
  if [[ "$fuzz_only" == "1" ]]; then
    echo "[gate] fuzz: PASS ($label, build dir: $build_dir)"
  else
    echo "[gate] sanitize: PASS ($label, build dir: $build_dir)"
  fi
}

# Drive a mixed corpus (valid / malformed / deadline-expiring) of $3
# requests (default 200; TSan uses a shorter one) through `sectorpack
# batch` in the build at $1 with --jobs $2, then check the per-request
# contract: one response per request in input order, exact per-status
# counts, cache misses byte-identical to single-shot `solve`, cache hits
# accepted by `sectorpack verify`, and cache/queue metrics present in
# --stats json.
run_batch_corpus() {
  local CLI="$1/tools/sectorpack"
  local jobs="$2"
  local count="${3:-200}"
  local TMP
  TMP="$(mktemp -d)"
  # Self-clearing: a RETURN trap outlives the function that set it and
  # would re-fire (with $TMP unbound) at the next function return.
  trap 'rm -rf "$TMP"; trap - RETURN' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  expect_rc 0 "$CLI" generate --n 40 --k 3 --seed 11 -o "$TMP/b1.inst"
  expect_rc 0 "$CLI" generate --n 25 --k 2 --seed 12 --spatial hotspots \
    -o "$TMP/b2.inst"
  expect_rc 0 "$CLI" generate --n 30 --k 4 --seed 13 --spatial ring \
    -o "$TMP/b3.inst"

  python3 - "$TMP" "$count" <<'EOF'
import json, sys
tmp, count = sys.argv[1], int(sys.argv[2])
solvers = ["greedy", "local-search", "uniform", "annealing"]
lines = []
for i in range(count):
    inst = "%s/b%d.inst" % (tmp, i % 3 + 1)
    if i % 20 == 7:  # 10 malformed requests, several flavors
        bad = ['{"solver":"greedy"}',                       # no instance
               'not json at all',
               '{"instance_file":"%s/missing.inst"}' % tmp,
               '{"instance_file":"%s","solver":"qaoa"}' % inst,
               '{"instance_file":"%s","frobnicate":1}' % inst]
        lines.append(bad[(i // 20) % len(bad)])
    elif i % 40 == 15:  # 5 deadline-expiring requests
        lines.append(json.dumps({"id": "r%d" % i, "instance_file": inst,
                                 "solver": "local-search", "time_limit": 0}))
    else:
        lines.append(json.dumps({"id": "r%d" % i, "instance_file": inst,
                                 "solver": solvers[i % 4],
                                 "seed": i % 5 + 1, "iterations": 200}))
open("%s/requests.jsonl" % tmp, "w").write("\n".join(lines) + "\n")
EOF

  expect_rc 0 "$CLI" batch --in "$TMP/requests.jsonl" \
    --out "$TMP/responses.jsonl" --jobs "$jobs" --cache-entries 64 \
    --stats json
  # Cache and queue metrics must be visible in the stats snapshot.
  for metric in srv.cache.hit srv.cache.miss srv.cache.evicted \
                srv.queue.depth srv.requests.ok; do
    grep -q "$metric" "$TMP/out"
  done

  python3 - "$TMP" "$CLI" "$count" <<'EOF'
import json, subprocess, sys
tmp, cli, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
responses = [json.loads(l) for l in open("%s/responses.jsonl" % tmp)]
assert len(responses) == count, \
    "expected %d responses, got %d" % (count, len(responses))
assert [r["index"] for r in responses] == list(range(count)), "out of order"
by_status = {}
for r in responses:
    by_status.setdefault(r["status"], []).append(r)
counts = {k: len(v) for k, v in by_status.items()}
# Expected mix replays the generator's formulas (i%20==7 is malformed,
# i%40==15 deadline-expiring -- disjoint residues, so no double counting).
invalid = sum(1 for i in range(count) if i % 20 == 7)
budget = sum(1 for i in range(count) if i % 40 == 15)
expected = {"ok": count - invalid - budget,
            "invalid": invalid, "budget_exhausted": budget}
assert counts == expected, (counts, expected)

# Cache misses are byte-identical to single-shot `solve` (one per family).
checked = set()
for r in by_status["ok"]:
    if r["cache"] != "miss" or r["solver"] in checked:
        continue
    checked.add(r["solver"])
    i = int(r["id"][1:])
    inst = "%s/b%d.inst" % (tmp, i % 3 + 1)
    single = subprocess.run(
        [cli, "solve", "--in", inst, "--solver", r["solver"],
         "--seed", str(i % 5 + 1), "--iterations", "200", "-o", "-"],
        capture_output=True, text=True, check=True).stdout
    assert r["solution"] == single, "miss differs from solve for %s" % r["id"]
assert checked, "no cache misses found"

# Cache hits pass the named-invariant verifier against their instance.
verified = 0
for r in by_status["ok"]:
    if r["cache"] != "hit" or verified >= 5:
        continue
    i = int(r["id"][1:])
    inst = "%s/b%d.inst" % (tmp, i % 3 + 1)
    open("%s/hit.sol" % tmp, "w").write(r["solution"])
    subprocess.run([cli, "verify", "--in", inst,
                    "--solution", "%s/hit.sol" % tmp],
                   capture_output=True, check=True)
    verified += 1
assert verified > 0, "no cache hits found"

# Degraded requests carry the status in their solution payload.
for r in by_status["budget_exhausted"]:
    assert "status budget_exhausted" in r["solution"], r["id"]
print("batch corpus OK: %d responses, %d miss-identity checks, "
      "%d hit verifications" % (count, len(checked), verified))
EOF
}

# Telemetry contract (docs/observability.md): one sanitized batch run with
# every observability surface enabled, long enough (two deadline-capped
# annealing requests at --time-limit-equivalent 2.6 s) for the periodic
# exporter to tick at least twice at --metrics-interval 1, then validate
# every artifact it produced.
run_obs() {
  local build_dir
  build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
  cmake -B "$build_dir" -S . -DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j"$JOBS"

  # The exposition validator must believe its own fixtures first.
  python3 tools/lint/prom_check.py --self-test

  local CLI="$build_dir/tools/sectorpack"
  local TMP
  TMP="$(mktemp -d)"
  # Self-clearing: a RETURN trap outlives the function that set it and
  # would re-fire (with $TMP unbound) at the next function return.
  trap 'rm -rf "$TMP"; trap - RETURN' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  expect_rc 0 "$CLI" generate --n 40 --k 3 --seed 21 -o "$TMP/o1.inst"
  expect_rc 0 "$CLI" generate --n 25 --k 2 --seed 22 --spatial hotspots \
    -o "$TMP/o2.inst"

  # 62 requests: 60 fast ones across the solver families (with repeats, so
  # the cache produces hits) plus 2 deadline-capped annealing requests
  # whose 2.6 s budgets keep the batch alive across >= 2 exporter ticks.
  python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
solvers = ["greedy", "local-search", "uniform", "annealing"]
lines = []
for i in range(60):
    lines.append(json.dumps({"id": "q%d" % i,
                             "instance_file": "%s/o%d.inst" % (tmp, i % 2 + 1),
                             "solver": solvers[i % 4],
                             "seed": i % 3 + 1, "iterations": 200}))
for i in range(2):
    lines.append(json.dumps({"id": "slow%d" % i,
                             "instance_file": "%s/o1.inst" % tmp,
                             "solver": "annealing", "seed": 7,
                             "iterations": 2000000000, "time_limit": 2.6}))
open("%s/requests.jsonl" % tmp, "w").write("\n".join(lines) + "\n")
EOF

  expect_rc 0 "$CLI" batch --in "$TMP/requests.jsonl" \
    --out "$TMP/responses.jsonl" --jobs 2 --cache-entries 32 \
    --metrics-out "$TMP/metrics.prom" --metrics-jsonl "$TMP/metrics.jsonl" \
    --metrics-interval 1 --access-log "$TMP/access.jsonl" --stats json
  cp "$TMP/out" "$TMP/stats.json"

  # The exposition file is a valid scrape with real content.
  python3 tools/lint/prom_check.py "$TMP/metrics.prom" --min-samples 20

  # Snapshot stream, access log, and stats envelope keep their contracts.
  python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]

requests = [l for l in open("%s/requests.jsonl" % tmp) if l.strip()]
responses = [json.loads(l) for l in open("%s/responses.jsonl" % tmp)]
assert len(responses) == len(requests), \
    "expected %d responses, got %d" % (len(requests), len(responses))

# >= 2 periodic snapshots, each a valid schema-versioned envelope with a
# strictly increasing seq (the final drain export makes one more).
snaps = [json.loads(l) for l in open("%s/metrics.jsonl" % tmp)]
assert len(snaps) >= 2, "expected >= 2 exporter snapshots, got %d" % len(snaps)
for k, snap in enumerate(snaps):
    assert snap["schema_version"] == 1, snap.get("schema_version")
    assert len(snap["emitted_at"]) == 24 and snap["emitted_at"].endswith("Z")
    assert snap["seq"] == k, "seq gap at snapshot %d" % k
    assert "counters" in snap and "histograms" in snap

# Access log: exactly one line per request, in response (== input) order,
# with the full field set on solved lines.
access = [json.loads(l) for l in open("%s/access.jsonl" % tmp)]
assert len(access) == len(requests), \
    "access log has %d lines for %d requests" % (len(access), len(requests))
assert [a["index"] for a in access] == list(range(len(requests)))
for a, r in zip(access, responses):
    assert a["index"] == r["index"] and a["status"] == r["status"]
    assert a["queue_us"] >= 0
    if a["status"] in ("ok", "budget_exhausted"):
        assert a["solver"] and len(a["fingerprint"]) == 32
        assert a["cache"] in ("hit", "miss") and a["solve_us"] >= 0
slow = [a for a in access if a["id"].startswith("slow")]
assert len(slow) == 2 and all(a["deadline_budget_ms"] == 2600.0 for a in slow)

# --stats json: schema-versioned envelope carrying SLO gauges, the quality
# histogram, and the HDR request-latency histogram with quantiles.
stats = json.loads(open("%s/stats.json" % tmp).read())
assert stats["schema_version"] == 1 and stats["wall_ms"] > 0
assert len(stats["emitted_at"]) == 24 and stats["emitted_at"].endswith("Z")
for gauge in ("slo.p50_ms", "slo.p95_ms", "slo.p99_ms",
              "slo.deadline_hit_rate", "slo.cache_hit_rate"):
    assert gauge in stats["gauges"], gauge
hist = stats["histograms"]
assert hist["srv.request_ms"]["count"] == len(
    [r for r in responses if r["status"] in ("ok", "budget_exhausted")])
assert hist["srv.request_ms"]["p99"] >= hist["srv.request_ms"]["p50"] > 0
assert hist["quality.gap_permille"]["count"] > 0
assert any(k.startswith("quality.") and k.endswith(".solves")
           for k in stats["counters"])
print("obs corpus OK: %d responses, %d snapshots, %d access lines"
      % (len(responses), len(snaps), len(access)))
EOF

  # Flag discipline: duplicates and bad values are usage errors (2) that
  # name the offending flag.
  expect_rc 2 "$CLI" batch --in "$TMP/requests.jsonl" \
    --metrics-out "$TMP/a.prom" --metrics-out "$TMP/b.prom"
  grep -q 'duplicate option --metrics-out' "$TMP/err"
  expect_rc 2 "$CLI" batch --in "$TMP/requests.jsonl" \
    --metrics-jsonl "$TMP/a.jsonl" --metrics-interval 1 --metrics-interval 2
  grep -q 'duplicate option --metrics-interval' "$TMP/err"
  expect_rc 2 "$CLI" batch --in "$TMP/requests.jsonl" \
    --metrics-out "$TMP/a.prom" --metrics-interval 0
  grep -q 'metrics-interval' "$TMP/err"
  expect_rc 2 "$CLI" batch --in "$TMP/requests.jsonl" --metrics-interval 1
  grep -q 'metrics-interval' "$TMP/err"
  expect_rc 2 "$CLI" batch --in "$TMP/requests.jsonl" --slo-window 0
  grep -q 'slo-window' "$TMP/err"

  # An unwritable metrics path is a runtime error (1), not silent loss.
  expect_rc 1 "$CLI" batch --in "$TMP/requests.jsonl" \
    --out /dev/null --metrics-out /nonexistent-dir/metrics.prom

  echo "[gate] obs: PASS (ASan+UBSan, build dir: $build_dir)"
}

# Spatial-index scale contract (docs/performance.md): on a 10^5-customer
# instance -- above the kAuto crossover, so `--spatial index` really runs
# the polar grid -- the flat and indexed solves must write byte-identical
# solution files, and the shard solver must produce verifiable output.
# Runs sanitized so any index out-of-bounds in the grid's cell walk at
# scale is caught here, not in production. Deliberately no --time-limit:
# where a deadline stops a solve depends on wall-clock speed, which would
# make the byte comparison flaky.
run_huge() {
  local build_dir
  build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
  cmake -B "$build_dir" -S . -DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j"$JOBS"

  local CLI="$build_dir/tools/sectorpack"
  local TMP
  TMP="$(mktemp -d)"
  # Self-clearing: a RETURN trap outlives the function that set it and
  # would re-fire (with $TMP unbound) at the next function return.
  trap 'rm -rf "$TMP"; trap - RETURN' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  # Small ranges keep each antenna's window to a thin annulus of the
  # 10^5-point disk -- the regime the grid targets, and cheap enough that
  # the exact-oracle greedy stays fast under ASan.
  expect_rc 0 "$CLI" generate --n 100000 --k 4 --demand unit --range 6 \
    --capacity-fraction 0.001 --seed 77 -o "$TMP/huge.inst"

  # The load-bearing check: one solve per mode, byte-identical outputs.
  expect_rc 0 "$CLI" solve --in "$TMP/huge.inst" --solver greedy \
    --spatial flat -o "$TMP/flat.sol"
  expect_rc 0 "$CLI" solve --in "$TMP/huge.inst" --solver greedy \
    --spatial index -o "$TMP/index.sol"
  if ! cmp -s "$TMP/flat.sol" "$TMP/index.sol"; then
    echo "FAIL: --spatial flat and --spatial index solutions differ" >&2
    diff "$TMP/flat.sol" "$TMP/index.sol" | head -20 >&2
    exit 1
  fi
  expect_rc 0 "$CLI" verify --in "$TMP/huge.inst" --solution "$TMP/flat.sol"

  # Shard solve: feasible, verifiable output at scale (the merge/repair
  # path is seam-dependent, so no byte comparison against plain greedy).
  expect_rc 0 "$CLI" solve --in "$TMP/huge.inst" --solver shard \
    -o "$TMP/shard.sol"
  expect_rc 0 "$CLI" verify --in "$TMP/huge.inst" --solution "$TMP/shard.sol"

  echo "[gate] huge: PASS (ASan+UBSan, build dir: $build_dir)"
}

run_batch() {
  local build_dir
  # ASan + UBSan pass.
  build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
  cmake -B "$build_dir" -S . -DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j"$JOBS"
  run_batch_corpus "$build_dir" 8
  # TSan pass at --jobs 8: races in the queue / cache / reorder buffer.
  cmake -B build-tsan -S . -DSECTORPACK_TSAN=ON -DSECTORPACK_SANITIZE=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-tsan -j"$JOBS"
  run_batch_corpus build-tsan 8
  echo "[gate] batch: PASS (ASan+UBSan and TSan, --jobs 8)"
}

# The 50-delta session-serving byte-identity battery against the build at
# $1: one register plus 50 mixed deltas, every response checked bitwise
# against a from-scratch greedy solve of the same post-delta instance.
# Shared by run_serve (ASan+UBSan) and the TSan battery, which reuses it
# for dynamic race coverage of the daemon's monitor/drain paths.
run_serve_corpus() {
  local CLI="$1/tools/sectorpack"
  local TMP
  TMP="$(mktemp -d)"
  # Self-clearing: a RETURN trap outlives the function that set it and
  # would re-fire (with $TMP unbound) at the next function return.
  trap 'rm -rf "$TMP"; trap - RETURN' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  expect_rc 0 "$CLI" generate --n 2000 --k 3 --demand uniform-int \
    --range 25 --capacity-fraction 0.02 --seed 99 -o "$TMP/serve.inst"

  # Build the op stream (register + 50 mixed deltas) AND the per-step
  # expected instance files. Each delta's numeric tokens are written to
  # the JSON op and to the instance text from the SAME decimal literal, so
  # the serve daemon and the from-scratch `solve` parse identical doubles
  # -- the byte comparison below is then exact, not approximate.
  python3 - "$TMP" <<'EOF'
import random, sys
tmp = sys.argv[1]
lines = open("%s/serve.inst" % tmp).read().splitlines()
assert lines[0] == "sectorpack-instance v1", lines[0]
n = int(lines[1].split()[1])
customers = lines[2:2 + n]
k = int(lines[2 + n].split()[1])
antennas = lines[3 + n:3 + n + k]

def write_step(step):
    body = ["sectorpack-instance v1", "customers %d" % len(customers)]
    body += customers
    body += ["antennas %d" % len(antennas)]
    body += antennas
    open("%s/step_%d.inst" % (tmp, step), "w").write("\n".join(body) + "\n")

ops = ['{"op":"register","id":"r","instance_file":"%s/serve.inst",'
       '"solver":"greedy"}' % tmp]
write_step(0)

rng = random.Random(7)
for step in range(1, 51):
    roll = rng.random()
    if roll < 0.40:
        x = repr(round(rng.uniform(-90.0, 90.0), 6))
        y = repr(round(rng.uniform(-90.0, 90.0), 6))
        d = str(rng.randint(1, 9))
        ops.append('{"op":"customer_add","session":"s0","x":%s,"y":%s,'
                   '"demand":%s}' % (x, y, d))
        customers.append("%s %s %s" % (x, y, d))
    elif roll < 0.65:
        i = rng.randrange(len(customers))
        ops.append('{"op":"customer_remove","session":"s0","customer":%d}'
                   % i)
        del customers[i]
    elif roll < 0.90:
        i = rng.randrange(len(customers))
        d = str(rng.randint(1, 9))
        ops.append('{"op":"demand_set","session":"s0","customer":%d,'
                   '"demand":%s}' % (i, d))
        t = customers[i].split()
        t[2] = d
        customers[i] = " ".join(t)
    else:
        rho = repr(round(rng.uniform(0.6, 1.2), 6))
        rg = repr(round(rng.uniform(15.0, 30.0), 6))
        cap = str(rng.randint(30, 60))
        ops.append('{"op":"antenna_add","session":"s0","rho":%s,'
                   '"range":%s,"capacity":%s}' % (rho, rg, cap))
        antennas.append("%s %s %s" % (rho, rg, cap))
    write_step(step)
ops.append('{"op":"close","session":"s0"}')
open("%s/ops.jsonl" % tmp, "w").write("\n".join(ops) + "\n")
EOF

  expect_rc 0 "$CLI" serve --in "$TMP/ops.jsonl" \
    --out "$TMP/responses.jsonl"

  # From-scratch reference solve for every step (register == step 0).
  local i
  for i in $(seq 0 50); do
    expect_rc 0 "$CLI" solve --in "$TMP/step_$i.inst" --solver greedy \
      -o "$TMP/step_$i.sol"
  done

  # The load-bearing check: every serve response's solution is bitwise the
  # from-scratch greedy solution of the post-delta instance.
  python3 - "$TMP" <<'EOF'
import json, sys
tmp = sys.argv[1]
responses = [json.loads(l) for l in open("%s/responses.jsonl" % tmp)]
assert len(responses) == 52, "expected 52 responses, got %d" % len(responses)
assert responses[-1]["op"] == "close" and responses[-1]["status"] == "ok"
for step, r in enumerate(responses[:51]):
    assert r["status"] == "ok", (step, r["status"])
    assert r["session"] == "s0", (step, r)
    assert r["incremental"] is True, (step, r["op"])
    expected = open("%s/step_%d.sol" % (tmp, step)).read()
    if r["solution"] != expected:
        sys.exit("FAIL: step %d (%s): incremental solution differs from "
                 "from-scratch solve" % (step, r["op"]))
deltas = responses[1:51]
hits = sum(r["memo_hits"] for r in deltas)
assert hits > 0, "50 deltas produced zero dirty-window memo hits"
EOF
}

run_serve() {
  local build_dir
  build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
  cmake -B "$build_dir" -S . -DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j"$JOBS"
  run_serve_corpus "$build_dir"
  echo "[gate] serve: PASS (ASan+UBSan, 50-delta byte-identity)"
}

# Portfolio-racing contract (docs/performance.md) against the build at $1:
#   1. contested run: a race over the default portfolio must verify, carry
#      a race.winner.<family> counter in --stats json, and be byte-
#      identical across repeats (the determinism contract).
#   2. dominant-family duel: local-search proves optimality on a
#      saturating arcband instance while annealing holds a huge iteration
#      budget; the proof must cancel the running lane (race.cancelled >= 1)
#      and the result must still be status complete at the upper bound.
run_race_corpus() {
  local CLI="$1/tools/sectorpack"
  local TMP
  TMP="$(mktemp -d)"
  # Self-clearing: a RETURN trap outlives the function that set it and
  # would re-fire (with $TMP unbound) at the next function return.
  trap 'rm -rf "$TMP"; trap - RETURN' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  # 1. Contested race: verified output, winner metric, byte determinism.
  expect_rc 0 "$CLI" generate --n 800 --k 4 --seed 31 --spatial hotspots \
    -o "$TMP/contested.inst"
  expect_rc 0 "$CLI" solve --in "$TMP/contested.inst" --solver race \
    --portfolio greedy,local_search,annealing --iterations 300 \
    -o "$TMP/race1.sol" --stats json
  cp "$TMP/out" "$TMP/stats1.json"
  expect_rc 0 "$CLI" verify --in "$TMP/contested.inst" \
    --solution "$TMP/race1.sol"
  expect_rc 0 "$CLI" solve --in "$TMP/contested.inst" --solver race \
    --portfolio greedy,local_search,annealing --iterations 300 \
    -o "$TMP/race2.sol"
  if ! cmp -s "$TMP/race1.sol" "$TMP/race2.sol"; then
    echo "FAIL: race is not byte-deterministic across repeats" >&2
    exit 1
  fi
  python3 - "$TMP/stats1.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
winners = {k: v for k, v in counters.items() if k.startswith("race.winner.")}
assert winners and sum(winners.values()) == 1, winners
assert counters.get("race.incumbent_publishes", 0) >= 1, counters
EOF

  # 2. Dominant duel: the optimality proof must cancel the running lane.
  # Unit-demand arcband with capacity == demand: local-search provably
  # serves everyone; annealing's budget alone would run for minutes.
  expect_rc 0 "$CLI" generate --n 6000 --k 2 --spatial arcband \
    --demand unit --rho-deg 120 --capacity-fraction 1.0 --seed 5 \
    -o "$TMP/duel.inst"
  expect_rc 0 "$CLI" solve --in "$TMP/duel.inst" --solver race \
    --portfolio local_search,annealing --iterations 500000000 \
    -o "$TMP/duel.sol" --stats json
  cp "$TMP/out" "$TMP/stats2.json"
  grep -q 'status=complete' "$TMP/err"
  ! grep -q 'status budget_exhausted' "$TMP/duel.sol"
  expect_rc 0 "$CLI" verify --in "$TMP/duel.inst" --solution "$TMP/duel.sol"
  python3 - "$TMP/stats2.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("race.winner.local-search", 0) == 1, counters
assert counters.get("race.cancelled", 0) >= 1, \
    "winner's proof did not cancel the running lane: %r" % counters
EOF
  echo "race corpus OK: contested determinism + dominant cancel-on-winner"
}

run_race() {
  local build_dir
  build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
  cmake -B "$build_dir" -S . -DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "$build_dir" -j"$JOBS"
  run_race_corpus "$build_dir"
  echo "[gate] race: PASS (ASan+UBSan, determinism + cancel-on-winner)"
}

BUILD_DIR_OVERRIDE="${1:-}"

# TSan battery: the sanitized test suite plus the serving corpora -- the
# daemon's monitor/drain paths and the batch engine's queue/cache/reorder
# machinery get dynamic race coverage matching the static -Wthread-safety
# coverage. The batch corpus is shortened (80 requests) to keep the TSan
# wall-clock bounded; the serve battery runs in full because its races
# live in the delta/monitor interleaving, not the request volume.
run_tsan() {
  run_sanitize 0
  local build_dir="${BUILD_DIR_OVERRIDE:-build-tsan}"
  run_serve_corpus "$build_dir"
  run_batch_corpus "$build_dir" 8 80
  # Racing under TSan: the incumbent cell, the deadline cancel tree, and
  # the winner declaration are exactly the cross-thread machinery TSan is
  # for (the ctest pass above runs test_race too; this adds the CLI path).
  run_race_corpus "$build_dir"
  echo "[gate] tsan-serving: PASS (TSan, 50-delta serve + 80-request" \
       "batch + race corpus)"
}

case "$MODE" in
  lint) run_lint ;;
  format) run_format ;;
  contracts) run_contracts ;;
  fuzz) run_sanitize 1 ;;
  sanitize)
    if [[ "$TSAN" == "1" ]]; then run_tsan; else run_sanitize 0; fi
    ;;
  batch) run_batch ;;
  serve) run_serve ;;
  huge) run_huge ;;
  race) run_race ;;
  obs) run_obs ;;
  all)
    run_lint
    run_format
    run_contracts
    run_sanitize 0
    run_batch
    run_serve
    run_huge
    run_race
    run_obs
    echo
    echo "All gates passed (lint, format, contracts, sanitize, batch," \
         "serve, huge, race, obs)."
    ;;
esac
