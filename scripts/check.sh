#!/usr/bin/env bash
# Sanitizer gate: build everything with sanitizers on and run the full test
# suite. The obs metrics shards, trace buffers, the work-stealing thread
# pool, and the shared oracle caches are concurrent by design; this keeps
# them provably clean of data races on unsynchronized memory, leaks, and UB
# from day one.
#
# Default mode is ASan+UBSan (SECTORPACK_SANITIZE=ON). Set SECTORPACK_TSAN=1
# in the environment (or pass --tsan) to run a ThreadSanitizer build instead
# -- TSan is exclusive with ASan, so it uses its own build directory.
#
# --fuzz restricts the run to the hostile-input battery: the malformed
# corpus and mutation fuzzers (test_robustness / test_fuzz / test_deadline)
# under ASan+UBSan, plus CLI invocations asserting the exit-code table from
# docs/robustness.md. The default (no-flag) run includes the same battery
# after the full test suite.
#
# Usage: scripts/check.sh [--tsan | --fuzz] [build-dir]
#        (default build dir: build-sanitize, or build-tsan with --tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN="${SECTORPACK_TSAN:-0}"
FUZZ_ONLY=0
if [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
elif [[ "${1:-}" == "--fuzz" ]]; then
  FUZZ_ONLY=1
  shift
fi

if [[ "$TSAN" == "1" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  CMAKE_FLAGS=(-DSECTORPACK_TSAN=ON -DSECTORPACK_SANITIZE=OFF)
  LABEL="TSan"
else
  BUILD_DIR="${1:-build-sanitize}"
  CMAKE_FLAGS=(-DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF)
  LABEL="ASan + UBSan"
fi

cmake -B "$BUILD_DIR" -S . \
  "${CMAKE_FLAGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"

if [[ "$FUZZ_ONLY" == "1" ]]; then
  # Hostile-input corpus only: IO garbage/mutation fuzzers and the deadline
  # degradation tests.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)" \
    -R 'Robustness|Fuzz|Deadline'
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
fi

# ---------------------------------------------------------------------------
# CLI exit-code battery (runs in both modes): malformed files and bad flag
# values must exit 1 / 2 respectively -- never crash, never exit 0 -- and
# hitting --time-limit must NOT be an error.

CLI="$BUILD_DIR/tools/sectorpack"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

expect_rc() {
  local want="$1"
  shift
  local got=0
  "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
  if [[ "$got" != "$want" ]]; then
    echo "FAIL: expected exit $want, got $got: $*" >&2
    cat "$TMP/err" >&2
    exit 1
  fi
}

# Hostile instance files -> runtime error (1).
printf 'sectorpack-instance v1\ncustomers 9223372036854775807\n' \
  > "$TMP/forged_count.inst"
printf 'sectorpack-instance v1\ncustomers 1\n1 2 3 junk\nantennas 1\n0.5 10 5\n' \
  > "$TMP/trailing.inst"
printf 'sectorpack-instance v1\ncustomers 1\nnan 2 3\nantennas 1\n0.5 10 5\n' \
  > "$TMP/nan.inst"
printf 'sectorpack-instance v2\ncustomers 1\n1 2 3\nantennas 1\n0.5 10 5 0\n' \
  > "$TMP/truncated_v2.inst"
expect_rc 1 "$CLI" solve --in "$TMP/forged_count.inst"
expect_rc 1 "$CLI" solve --in "$TMP/trailing.inst"
expect_rc 1 "$CLI" info  --in "$TMP/nan.inst"
expect_rc 1 "$CLI" info  --in "$TMP/truncated_v2.inst"
expect_rc 1 "$CLI" solve --in "$TMP/does_not_exist.inst"

# Bad invocations -> usage error (2). ok.inst exists so the usage error,
# not a file error, is what decides the exit code.
expect_rc 0 "$CLI" generate --n 300 --k 4 --seed 3 -o "$TMP/ok.inst"
expect_rc 2 "$CLI" frobnicate
expect_rc 2 "$CLI" generate --n -5
expect_rc 2 "$CLI" generate --n banana
expect_rc 2 "$CLI" solve --time-limit banana --in "$TMP/ok.inst"
expect_rc 2 "$CLI" solve --time-limit -1 --in "$TMP/ok.inst"
expect_rc 2 "$CLI" solve --in
expect_rc 2 "$CLI" solve --no-such-flag 1 --in "$TMP/ok.inst"

# A deadline hit is NOT an error: exit 0, status surfaced, feasible output.
expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver local-search \
  --time-limit 0 -o "$TMP/ok.sol" --stats json
grep -q 'status=budget_exhausted' "$TMP/err"
grep -q 'deadline.expired' "$TMP/out"
grep -q 'status budget_exhausted' "$TMP/ok.sol"
expect_rc 0 "$CLI" validate --in "$TMP/ok.inst" --solution "$TMP/ok.sol"
# ... and without a limit the solution file carries no status line.
expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver greedy -o "$TMP/full.sol"
! grep -q 'status' "$TMP/full.sol"

echo
if [[ "$FUZZ_ONLY" == "1" ]]; then
  echo "Fuzz battery passed ($LABEL, build dir: $BUILD_DIR)."
else
  echo "Sanitizer check passed ($LABEL, build dir: $BUILD_DIR)."
fi
