#!/usr/bin/env bash
# Sanitizer gate: build everything with sanitizers on and run the full test
# suite. The obs metrics shards, trace buffers, the work-stealing thread
# pool, and the shared oracle caches are concurrent by design; this keeps
# them provably clean of data races on unsynchronized memory, leaks, and UB
# from day one.
#
# Default mode is ASan+UBSan (SECTORPACK_SANITIZE=ON). Set SECTORPACK_TSAN=1
# in the environment (or pass --tsan) to run a ThreadSanitizer build instead
# -- TSan is exclusive with ASan, so it uses its own build directory.
#
# Usage: scripts/check.sh [--tsan] [build-dir]
#        (default build dir: build-sanitize, or build-tsan with --tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

TSAN="${SECTORPACK_TSAN:-0}"
if [[ "${1:-}" == "--tsan" ]]; then
  TSAN=1
  shift
fi

if [[ "$TSAN" == "1" ]]; then
  BUILD_DIR="${1:-build-tsan}"
  CMAKE_FLAGS=(-DSECTORPACK_TSAN=ON -DSECTORPACK_SANITIZE=OFF)
  LABEL="TSan"
else
  BUILD_DIR="${1:-build-sanitize}"
  CMAKE_FLAGS=(-DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF)
  LABEL="ASan + UBSan"
fi

cmake -B "$BUILD_DIR" -S . \
  "${CMAKE_FLAGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo
echo "Sanitizer check passed ($LABEL, build dir: $BUILD_DIR)."
