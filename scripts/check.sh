#!/usr/bin/env bash
# Project gate: static analysis + format + contracts + sanitizers.
#
# Stages (default run executes all of them, in this order):
#   lint       clang-tidy profile (.clang-tidy) over compile_commands.json
#              from a dedicated build-lint/ configure, via
#              tools/lint/run_clang_tidy.py (GCC -Werror diagnostics
#              fallback when clang-tidy is not installed), plus the
#              sectorpack domain linter tools/lint/sp_lint.py. Fails on any
#              new diagnostic or unwaived domain-rule violation.
#   format     clang-format --dry-run -Werror over src/ tools/ bench/
#              tests/ against .clang-format. Skipped (with a notice) when
#              clang-format is not installed, unless SP_REQUIRE_FORMAT=1.
#   contracts  full test suite with SECTORPACK_CONTRACTS=ON (Debug): every
#              SP_REQUIRE/SP_ENSURE/SP_ASSERT live, solver entry points
#              re-verify their solutions via src/verify/ on every return.
#   sanitize   the ASan+UBSan battery (or TSan with --tsan): full test
#              suite plus the hostile-input corpus and the CLI exit-code
#              table from docs/robustness.md.
#
# Usage: scripts/check.sh [--lint | --format | --contracts | --tsan | --fuzz]
#                         [build-dir]
#   no flag      run every stage (lint, format, contracts, sanitize)
#   --lint       static analysis only
#   --format     format check only
#   --contracts  contracts-enabled test build only
#   --tsan       ThreadSanitizer battery only (exclusive with ASan)
#   --fuzz       hostile-input battery only (ASan+UBSan)
#
# Each stage prints a summary line "[gate] <stage>: PASS"; the first
# failing stage aborts the run (set -e).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="all"
TSAN="${SECTORPACK_TSAN:-0}"
case "${1:-}" in
  --tsan) MODE="sanitize"; TSAN=1; shift ;;
  --fuzz) MODE="fuzz"; shift ;;
  --lint) MODE="lint"; shift ;;
  --format) MODE="format"; shift ;;
  --contracts) MODE="contracts"; shift ;;
esac
if [[ "$TSAN" == "1" && "$MODE" == "all" ]]; then
  MODE="sanitize"   # legacy env-var invocation: TSan battery only
fi

JOBS="$(nproc)"

run_lint() {
  cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  python3 tools/lint/run_clang_tidy.py --build-dir build-lint
  python3 tools/lint/sp_lint.py
  echo "[gate] lint: PASS"
}

run_format() {
  if ! command -v clang-format > /dev/null 2>&1; then
    if [[ "${SP_REQUIRE_FORMAT:-0}" == "1" ]]; then
      echo "[gate] format: FAIL (clang-format not installed but" \
           "SP_REQUIRE_FORMAT=1)" >&2
      return 1
    fi
    echo "[gate] format: SKIP (clang-format not installed; .clang-format" \
         "is authoritative when it is)"
    return 0
  fi
  git ls-files 'src/*.[ch]pp' 'tools/*.[ch]pp' 'bench/*.[ch]pp' \
               'tests/*.[ch]pp' 'examples/*.[ch]pp' \
    | xargs clang-format --dry-run -Werror
  echo "[gate] format: PASS"
}

run_contracts() {
  cmake -B build-contracts -S . -DSECTORPACK_CONTRACTS=ON \
    -DCMAKE_BUILD_TYPE=Debug > /dev/null
  cmake --build build-contracts -j"$JOBS"
  ctest --test-dir build-contracts --output-on-failure -j"$JOBS"
  echo "[gate] contracts: PASS"
}

run_sanitize() {
  local fuzz_only="$1"
  local build_dir cmake_flags label
  if [[ "$TSAN" == "1" ]]; then
    build_dir="${BUILD_DIR_OVERRIDE:-build-tsan}"
    cmake_flags=(-DSECTORPACK_TSAN=ON -DSECTORPACK_SANITIZE=OFF)
    label="TSan"
  else
    build_dir="${BUILD_DIR_OVERRIDE:-build-sanitize}"
    cmake_flags=(-DSECTORPACK_SANITIZE=ON -DSECTORPACK_TSAN=OFF)
    label="ASan + UBSan"
  fi

  cmake -B "$build_dir" -S . \
    "${cmake_flags[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" -j"$JOBS"

  if [[ "$fuzz_only" == "1" ]]; then
    # Hostile-input corpus only: IO garbage/mutation fuzzers and the
    # deadline degradation tests.
    ctest --test-dir "$build_dir" --output-on-failure -j"$JOBS" \
      -R 'Robustness|Fuzz|Deadline'
  else
    ctest --test-dir "$build_dir" --output-on-failure -j"$JOBS"
  fi

  # -------------------------------------------------------------------------
  # CLI exit-code battery: malformed files and bad flag values must exit
  # 1 / 2 respectively -- never crash, never exit 0 -- and hitting
  # --time-limit must NOT be an error.

  local CLI="$build_dir/tools/sectorpack"
  local TMP
  TMP="$(mktemp -d)"
  trap 'rm -rf "$TMP"' RETURN

  expect_rc() {
    local want="$1"
    shift
    local got=0
    "$@" >"$TMP/out" 2>"$TMP/err" || got=$?
    if [[ "$got" != "$want" ]]; then
      echo "FAIL: expected exit $want, got $got: $*" >&2
      cat "$TMP/err" >&2
      exit 1
    fi
  }

  # Hostile instance files -> runtime error (1).
  printf 'sectorpack-instance v1\ncustomers 9223372036854775807\n' \
    > "$TMP/forged_count.inst"
  printf 'sectorpack-instance v1\ncustomers 1\n1 2 3 junk\nantennas 1\n0.5 10 5\n' \
    > "$TMP/trailing.inst"
  printf 'sectorpack-instance v1\ncustomers 1\nnan 2 3\nantennas 1\n0.5 10 5\n' \
    > "$TMP/nan.inst"
  printf 'sectorpack-instance v2\ncustomers 1\n1 2 3\nantennas 1\n0.5 10 5 0\n' \
    > "$TMP/truncated_v2.inst"
  expect_rc 1 "$CLI" solve --in "$TMP/forged_count.inst"
  expect_rc 1 "$CLI" solve --in "$TMP/trailing.inst"
  expect_rc 1 "$CLI" info  --in "$TMP/nan.inst"
  expect_rc 1 "$CLI" info  --in "$TMP/truncated_v2.inst"
  expect_rc 1 "$CLI" solve --in "$TMP/does_not_exist.inst"

  # Bad invocations -> usage error (2). ok.inst exists so the usage error,
  # not a file error, is what decides the exit code.
  expect_rc 0 "$CLI" generate --n 300 --k 4 --seed 3 -o "$TMP/ok.inst"
  expect_rc 2 "$CLI" frobnicate
  expect_rc 2 "$CLI" generate --n -5
  expect_rc 2 "$CLI" generate --n banana
  expect_rc 2 "$CLI" solve --time-limit banana --in "$TMP/ok.inst"
  expect_rc 2 "$CLI" solve --time-limit -1 --in "$TMP/ok.inst"
  expect_rc 2 "$CLI" solve --in
  expect_rc 2 "$CLI" solve --no-such-flag 1 --in "$TMP/ok.inst"

  # A deadline hit is NOT an error: exit 0, status surfaced, feasible output.
  expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver local-search \
    --time-limit 0 -o "$TMP/ok.sol" --stats json
  grep -q 'status=budget_exhausted' "$TMP/err"
  grep -q 'deadline.expired' "$TMP/out"
  grep -q 'status budget_exhausted' "$TMP/ok.sol"
  expect_rc 0 "$CLI" validate --in "$TMP/ok.inst" --solution "$TMP/ok.sol"
  # ... and without a limit the solution file carries no status line.
  expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver greedy -o "$TMP/full.sol"
  ! grep -q 'status' "$TMP/full.sol"

  # The named-invariant verifier accepts every solver's output and rejects
  # a hand-corrupted file with the invariant's name.
  expect_rc 0 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/ok.sol"
  expect_rc 0 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/full.sol"
  for solver in uniform annealing; do
    expect_rc 0 "$CLI" solve --in "$TMP/ok.inst" --solver "$solver" \
      -o "$TMP/s.sol"
    expect_rc 0 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/s.sol"
  done
  # Corrupt a served assignment to a non-existent antenna index.
  sed 's/^3$/99/' "$TMP/full.sol" > "$TMP/corrupt.sol"
  if cmp -s "$TMP/full.sol" "$TMP/corrupt.sol"; then
    # No customer on antenna 3: corrupt the first served one instead.
    awk '!done && /^[0-9]+$/ && NR > 5 { $0 = "99"; done = 1 } { print }' \
      "$TMP/full.sol" > "$TMP/corrupt.sol"
  fi
  expect_rc 1 "$CLI" verify --in "$TMP/ok.inst" --solution "$TMP/corrupt.sol"
  grep -q 'assign-range' "$TMP/out"

  echo
  if [[ "$fuzz_only" == "1" ]]; then
    echo "[gate] fuzz: PASS ($label, build dir: $build_dir)"
  else
    echo "[gate] sanitize: PASS ($label, build dir: $build_dir)"
  fi
}

BUILD_DIR_OVERRIDE="${1:-}"

case "$MODE" in
  lint) run_lint ;;
  format) run_format ;;
  contracts) run_contracts ;;
  fuzz) run_sanitize 1 ;;
  sanitize) run_sanitize 0 ;;
  all)
    run_lint
    run_format
    run_contracts
    run_sanitize 0
    echo
    echo "All gates passed (lint, format, contracts, sanitize)."
    ;;
esac
