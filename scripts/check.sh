#!/usr/bin/env bash
# Sanitizer gate: build everything with ASan+UBSan (SECTORPACK_SANITIZE=ON)
# and run the full test suite. The obs metrics shards and trace buffers are
# concurrent by design; this keeps them provably clean of data races on
# unsynchronized memory, leaks, and UB from day one.
#
# Usage: scripts/check.sh [build-dir]   (default: build-sanitize)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-sanitize}"

cmake -B "$BUILD_DIR" -S . \
  -DSECTORPACK_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

echo
echo "Sanitizer check passed (ASan + UBSan, build dir: $BUILD_DIR)."
