#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts and fail on timing regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]

Diffs every metric ending in `.median_ms` that both artifacts report and
exits 1 if any regressed by more than the threshold (default 5%). Medians
are the comparison basis because min is too optimistic under frequency
scaling and p95 too noisy on shared runners; see bench/bench_common.hpp.
Non-timing metrics and obs counters are ignored. When neither artifact
reports medians (some benches only record wall_seconds), wall clock is
compared instead, with the same threshold.

Stdlib only, so it runs on any CI image that has python3.
"""

import argparse
import json
import os
import sys


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics", {})
    medians = {
        key: float(val)
        for key, val in metrics.items()
        if key.endswith(".median_ms") and isinstance(val, (int, float))
    }
    return doc, medians


def fmt_delta(base, cand):
    if base <= 0.0:
        return "n/a"
    return f"{100.0 * (cand - base) / base:+.1f}%"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_<name>.json")
    parser.add_argument("candidate", help="candidate BENCH_<name>.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=5.0,
        help="max tolerated median regression in percent (default: 5)",
    )
    args = parser.parse_args()

    # A bench that exists in the candidate run but has no baseline artifact
    # is *new* (first run after the bench landed): there is nothing to
    # regress against, so pass with a notice instead of crashing. The next
    # run, with this artifact promoted to baseline, compares normally.
    if not os.path.exists(args.baseline) and os.path.exists(args.candidate):
        cand_doc, cand_medians = load_metrics(args.candidate)
        print(
            f"notice: no baseline at {args.baseline}; "
            f"bench {cand_doc.get('bench')!r} is new "
            f"({len(cand_medians)} median metric(s) recorded)."
        )
        print("PASS (new bench, nothing to compare against).")
        return 0

    base_doc, base_medians = load_metrics(args.baseline)
    cand_doc, cand_medians = load_metrics(args.candidate)

    if base_doc.get("bench") != cand_doc.get("bench"):
        print(
            f"warning: comparing different benches "
            f"({base_doc.get('bench')!r} vs {cand_doc.get('bench')!r})",
            file=sys.stderr,
        )

    shared = sorted(set(base_medians) & set(cand_medians))
    limit = args.threshold / 100.0
    regressions = []

    if shared:
        width = max(len(k) for k in shared)
        for key in shared:
            base = base_medians[key]
            cand = cand_medians[key]
            delta = fmt_delta(base, cand)
            flag = ""
            if base > 0.0 and (cand - base) / base > limit:
                regressions.append((key, base, cand))
                flag = "  <-- REGRESSION"
            print(f"{key:<{width}}  {base:10.4f} -> {cand:10.4f} ms "
                  f"({delta}){flag}")
        only_base = sorted(set(base_medians) - set(cand_medians))
        only_cand = sorted(set(cand_medians) - set(base_medians))
        for key in only_base:
            print(f"note: {key} only in baseline", file=sys.stderr)
        for key in only_cand:
            print(f"note: {key} only in candidate", file=sys.stderr)
    else:
        base = float(base_doc.get("wall_seconds", 0.0))
        cand = float(cand_doc.get("wall_seconds", 0.0))
        print("no shared .median_ms metrics; comparing wall_seconds")
        print(f"wall_seconds  {base:.4f} -> {cand:.4f} "
              f"({fmt_delta(base, cand)})")
        if base > 0.0 and (cand - base) / base > limit:
            regressions.append(("wall_seconds", base, cand))

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed more than "
            f"{args.threshold:.1f}%:",
            file=sys.stderr,
        )
        for key, base, cand in regressions:
            print(f"  {key}: {base:.4f} -> {cand:.4f} ({fmt_delta(base, cand)})",
                  file=sys.stderr)
        return 1

    print(f"\nOK: no metric regressed more than {args.threshold:.1f}%.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
