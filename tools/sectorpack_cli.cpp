// sectorpack CLI: generate, solve, validate, bound, cover, render.
//
//   sectorpack generate --n 200 --k 4 --spatial hotspots -o city.inst
//   sectorpack solve --in city.inst --solver local-search -o plan.sol
//   sectorpack validate --in city.inst --solution plan.sol
//   sectorpack bound --in city.inst
//   sectorpack cover --in city.inst --algo greedy
//   sectorpack render --in city.inst --solution plan.sol -o plan.svg
//   sectorpack info --in city.inst
//
// Instances and solutions use the plain-text formats documented in
// src/model/io.hpp. "-" for --in/-o means stdin/stdout.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "src/bench_util/timer.hpp"
#include "src/cover/cover.hpp"
#include "src/sectorpack.hpp"
#include "src/sectors/annealing.hpp"
#include "src/verify/verify.hpp"
#include "src/viz/svg.hpp"

#ifndef SECTORPACK_VERSION
#define SECTORPACK_VERSION "unknown"
#endif

using namespace sectorpack;

namespace {

/// Bad invocation (unknown command/flag, missing value): exit status 2 with
/// a one-line hint, distinct from runtime failures (status 1).
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Strict numeric parsing for flag values. std::stod/std::stoull on their
/// own are the wrong tool here: they throw uncaught std::invalid_argument
/// on garbage (exit 1 with a bare "stod" message), accept trailing junk
/// ("3x" parses as 3), and stoull silently wraps "-1" to 2^64-1. A bad
/// value is a bad invocation, so it must be a UsageError (exit 2) naming
/// the flag and the offending value.
double parse_double_flag(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (value.empty() || pos != value.size()) {
    throw UsageError("--" + key + " expects a number, got '" + value + "'");
  }
  return parsed;
}

std::size_t parse_size_flag(const std::string& key, const std::string& value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw UsageError("--" + key + " expects a non-negative integer, got '" +
                     value + "'");
  }
  try {
    // sp-lint: allow(untrusted-count) CLI flag value, not file input: digits-only pre-validated above, out_of_range mapped to UsageError below
    return static_cast<std::size_t>(std::stoull(value));
  } catch (const std::exception&) {
    throw UsageError("--" + key + " value out of range: '" + value + "'");
  }
}

struct Args {
  std::string command;
  std::map<std::string, std::string> named;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : it->second;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback
                             : parse_double_flag(key, it->second);
  }
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const {
    const auto it = named.find(key);
    return it == named.end() ? fallback : parse_size_flag(key, it->second);
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return named.count(key) > 0;
  }
};

/// --time-limit SEC -> a Deadline for the solver-facing commands. Absent
/// flag means unlimited; zero is allowed (an already-expired deadline
/// exercises the degradation path and still exits 0).
core::SolveOptions solve_options(const Args& args) {
  core::SolveOptions opts;
  if (args.has("time-limit")) {
    const double seconds = args.get_double("time-limit", 0.0);
    if (seconds < 0.0) {
      throw UsageError("--time-limit must be >= 0 seconds");
    }
    opts.deadline = core::Deadline::after(seconds);
  }
  return opts;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) {
      key = key.substr(2);
    } else if (key == "-o") {
      key = "out";
    } else {
      throw UsageError("unexpected argument: " + key);
    }
    if (i + 1 >= argc) {
      throw UsageError("missing value for --" + key);
    }
    // Every flag here is single-valued; a repeated occurrence is a typo or
    // a mangled script, and silently keeping one of the two values (the old
    // behavior kept the last) hides which one took effect. Note -o and
    // --out collide deliberately: they are the same option.
    if (args.named.count(key) > 0) {
      throw UsageError("duplicate option --" + key + " (given more than once)");
    }
    args.named[key] = argv[++i];
  }
  return args;
}

/// Reject any flag the command does not understand, so typos fail loudly
/// instead of being silently swallowed by the Args map.
void require_known(const Args& args,
                   std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : args.named) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw UsageError("unknown option --" + key + " for '" + args.command +
                       "'");
    }
  }
}

/// Shared --stats/--trace-out/--metrics-* plumbing for the solver-facing
/// commands: enables obs before running, runs a periodic obs::Exporter when
/// metrics files are requested, then prints the registry snapshot (as the
/// schema-versioned envelope for `--stats json`) and/or writes the
/// chrome://tracing file afterwards.
int with_observability(const Args& args, int (*run)(const Args&)) {
  const std::string stats = args.get("stats", "");
  if (!stats.empty() && stats != "json" && stats != "text") {
    throw UsageError("--stats must be json or text, got '" + stats + "'");
  }
  const std::string trace_path = args.get("trace-out", "");

  obs::ExporterConfig exporter_config;
  exporter_config.prom_path = args.get("metrics-out", "");
  exporter_config.jsonl_path = args.get("metrics-jsonl", "");
  const bool metrics_files = !exporter_config.prom_path.empty() ||
                             !exporter_config.jsonl_path.empty();
  if (args.has("metrics-interval")) {
    if (!metrics_files) {
      throw UsageError(
          "--metrics-interval requires --metrics-out or --metrics-jsonl");
    }
    const double interval = args.get_double("metrics-interval", 0.0);
    if (!(interval > 0.0)) {
      throw UsageError("--metrics-interval must be > 0 seconds");
    }
    exporter_config.interval_seconds = interval;
  }

  if (!stats.empty() || !trace_path.empty() || metrics_files) {
    obs::set_enabled(true);
  }
  if (!trace_path.empty()) obs::trace_start();

  const bench_util::Timer wall;
  int rc;
  {
    // Scoped so drain/SIGINT cleanup is a normal destructor: the exporter
    // writes one final snapshot and joins before we read the registry below.
    obs::Exporter exporter(exporter_config);
    rc = run(args);
    exporter.stop();
    if (metrics_files && !exporter.healthy()) {
      throw std::runtime_error("metrics export failed (unwritable --metrics-out/--metrics-jsonl path?)");
    }
  }

  if (!trace_path.empty()) {
    if (!obs::trace_stop_to_file(trace_path)) {
      throw std::runtime_error("cannot write trace to " + trace_path);
    }
    std::cerr << "wrote " << trace_path << " ("
              << "load via chrome://tracing or https://ui.perfetto.dev)\n";
  }
  if (stats == "json") {
    std::cout << obs::stats_envelope_json(obs::snapshot(), wall.elapsed_ms())
              << "\n";
  } else if (stats == "text") {
    std::cout << obs::snapshot().to_text();
  }
  return rc;
}

model::Instance load_instance(const Args& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) {
    throw std::runtime_error("--in <instance file> is required");
  }
  if (path == "-") return model::read_instance(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return model::read_instance(in);
}

model::Solution load_solution(const std::string& path) {
  if (path == "-") return model::read_solution(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return model::read_solution(in);
}

void write_text(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::cout << text;
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << text;
}

int cmd_generate(const Args& args) {
  require_known(args, {"n", "k", "spatial", "demand", "radius", "rho-deg",
                       "range", "capacity-fraction", "seed", "out"});
  sim::WorkloadConfig wc;
  wc.num_customers = args.get_size("n", 100);
  const std::string spatial = args.get("spatial", "uniform");
  if (spatial == "uniform") {
    wc.spatial = sim::Spatial::kUniformDisk;
  } else if (spatial == "hotspots") {
    wc.spatial = sim::Spatial::kHotspots;
  } else if (spatial == "ring") {
    wc.spatial = sim::Spatial::kRing;
  } else if (spatial == "arcband") {
    wc.spatial = sim::Spatial::kArcBand;
  } else {
    throw UsageError("unknown --spatial: " + spatial);
  }
  const std::string demand = args.get("demand", "uniform-int");
  if (demand == "unit") {
    wc.demand = sim::DemandDist::kUnit;
  } else if (demand == "uniform-int") {
    wc.demand = sim::DemandDist::kUniformInt;
  } else if (demand == "pareto") {
    wc.demand = sim::DemandDist::kParetoInt;
  } else {
    throw UsageError("unknown --demand: " + demand);
  }
  wc.disk_radius = args.get_double("radius", wc.disk_radius);

  sim::AntennaConfig ac;
  ac.count = args.get_size("k", 3);
  ac.rho = geom::deg_to_rad(args.get_double("rho-deg", 60.0));
  ac.range = args.get_double("range", 1.3 * wc.disk_radius);
  ac.capacity_fraction = args.get_double("capacity-fraction", 0.5);

  sim::Rng rng(args.get_size("seed", 1));
  const model::Instance inst = sim::make_instance(wc, ac, rng);
  write_text(args.get("out", "-"), model::to_string(inst));
  std::cerr << "generated " << inst.num_customers() << " customers, "
            << inst.num_antennas() << " antennas (demand "
            << inst.total_demand() << ", capacity " << inst.total_capacity()
            << ")\n";
  return 0;
}

int cmd_solve(const Args& args) {
  require_known(args, {"in", "solver", "portfolio", "spatial", "seed",
                       "iterations", "time-limit", "out", "svg", "stats",
                       "trace-out", "metrics-out", "metrics-jsonl",
                       "metrics-interval"});
  static const obs::HdrHistogram h_solve_ms = obs::hdr_histogram("cli.solve_ms");
  // Flag values are checked before any file IO so a bad invocation is
  // always a usage error (2), even when --in is also bad.
  const std::string solver = args.get("solver", "local-search");
  if (!srv::is_known_solver(solver)) {
    throw UsageError("unknown --solver: " + solver +
                     " (known: " + srv::solver_family_names("|") + ")");
  }
  std::string portfolio;
  if (args.has("portfolio")) {
    if (solver != "race") {
      throw UsageError("--portfolio requires --solver race");
    }
    portfolio = args.get("portfolio", "");
    try {
      (void)race::parse_portfolio(portfolio);
    } catch (const std::exception& e) {
      throw UsageError(e.what());
    }
  }
  // Pin the flat-vs-indexed crossover (outputs are bit-identical either
  // way; check.sh --huge byte-compares the two paths through this flag).
  const std::string spatial = args.get("spatial", "auto");
  if (spatial == "flat") {
    geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceFlat);
  } else if (spatial == "index") {
    geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceIndexed);
  } else if (spatial == "auto") {
    geom::set_spatial_index_mode(geom::SpatialIndexMode::kAuto);
  } else {
    throw UsageError("unknown --spatial: " + spatial);
  }
  srv::SolverKey key;
  key.family = solver;
  key.seed = args.get_size("seed", 1);
  key.iterations = args.get_size("iterations", 2000);
  key.portfolio = portfolio;
  const core::SolveOptions opts = solve_options(args);
  const model::Instance inst = load_instance(args);

  const bench_util::Timer timer;
  const obs::ScopedSpan span("cli.solve");
  // Shared dispatch with the batch engine (srv::run_solver), so `solve`
  // and a `batch` cache miss produce byte-identical solutions.
  model::Solution sol = srv::run_solver(inst, key, opts);
  h_solve_ms.observe(timer.elapsed_ms());
  if (sol.status == model::SolveStatus::kBudgetExhausted) {
    // Mirror the status into the metrics registry so --stats json carries
    // it alongside the deadline.expired.* counters.
    obs::counter("cli.solve.budget_exhausted").inc();
  }

  const double served = model::served_value(inst, sol);
  const double bound = inst.is_value_weighted()
                           ? bounds::orientation_free_bound(inst)
                           : bounds::flow_window_bound(inst, opts);
  if (obs::enabled()) {
    // Solution-quality telemetry in permille of the cheap demand/capacity
    // bound, mirroring the batch engine's quality.* metrics so one-shot
    // solves and batch solves are comparable (docs/observability.md).
    const double tb = bounds::trivial_bound(inst);
    const double gap =
        tb > 0.0 ? std::clamp(1000.0 * (tb - served) / tb, 0.0, 1000.0) : 0.0;
    obs::hdr_histogram("quality.gap_permille").observe(gap);
    obs::counter("quality." + solver + ".solves").inc();
    obs::counter("quality." + solver + ".gap_permille_sum")
        .add(static_cast<std::uint64_t>(std::llround(gap)));
  }
  std::cerr << "solver=" << solver
            << " status=" << model::to_string(sol.status)
            << " served_value=" << served << " bound=" << bound << " ratio="
            << (bound > 0 ? served / bound : 1.0) << " feasible="
            << (model::is_feasible(inst, sol) ? "yes" : "NO") << "\n";

  if (args.has("out")) {
    write_text(args.get("out", "-"), model::to_string(sol));
  }
  if (args.has("svg")) {
    viz::write_svg(args.get("svg", ""), inst, &sol);
    std::cerr << "wrote " << args.get("svg", "") << "\n";
  }
  return 0;
}

int cmd_validate(const Args& args) {
  require_known(args, {"in", "solution"});
  const model::Instance inst = load_instance(args);
  const model::Solution sol = load_solution(args.get("solution", "-"));
  const model::ValidationReport report = model::validate(inst, sol);
  if (report.ok) {
    std::cout << "OK: served " << model::served_demand(inst, sol) << " of "
              << inst.total_demand() << "\n";
    return 0;
  }
  std::cout << "INFEASIBLE (" << report.errors.size() << " errors):\n";
  for (const std::string& e : report.errors) {
    std::cout << "  " << e << "\n";
  }
  return 1;
}

// Like validate, but runs the named-invariant verifier from src/verify/:
// prints one line per violated invariant and exits 1, or summarizes the
// accepted solution. Stricter than validate (it additionally rejects
// de-normalized orientations and corrupt status bytes), and its output is
// machine-greppable by invariant name.
int cmd_verify(const Args& args) {
  require_known(args, {"in", "solution"});
  const model::Instance inst = load_instance(args);
  const model::Solution sol = load_solution(args.get("solution", "-"));
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  if (report.ok) {
    std::cout << "OK: all invariants hold (served "
              << model::served_demand(inst, sol) << " of "
              << inst.total_demand() << ", status "
              << model::to_string(sol.status) << ")\n";
    return 0;
  }
  std::cout << "INVARIANT VIOLATIONS (" << report.violations.size()
            << "):\n";
  for (const verify::Violation& v : report.violations) {
    std::cout << "  [" << v.invariant << "] " << v.detail << "\n";
  }
  return 1;
}

int cmd_bound(const Args& args) {
  require_known(args, {"in", "time-limit", "stats", "trace-out",
                       "metrics-out", "metrics-jsonl", "metrics-interval"});
  const obs::ScopedSpan span("cli.bound");
  const model::Instance inst = load_instance(args);
  const core::SolveOptions opts = solve_options(args);
  std::cout << "trivial            " << bounds::trivial_bound(inst) << "\n";
  std::cout << "orientation-free   " << bounds::orientation_free_bound(inst)
            << "\n";
  if (inst.is_value_weighted()) {
    std::cout << "flow-window        (n/a: value-weighted instance)\n";
  } else {
    std::cout << "flow-window        " << bounds::flow_window_bound(inst, opts)
              << "\n";
  }
  return 0;
}

int cmd_cover(const Args& args) {
  require_known(args, {"in", "algo", "max-k", "stats", "trace-out",
                       "metrics-out", "metrics-jsonl", "metrics-interval"});
  const obs::ScopedSpan span("cli.cover");
  const model::Instance inst = load_instance(args);
  if (inst.num_antennas() == 0) {
    throw std::runtime_error("cover needs an antenna type (antenna 0)");
  }
  const model::AntennaSpec type = inst.antenna(0);
  const std::vector<model::Customer> customers(inst.customers().begin(),
                                               inst.customers().end());
  const std::string algo = args.get("algo", "greedy");
  cover::CoverResult result;
  if (algo == "greedy") {
    result = cover::solve_greedy(customers, type);
  } else if (algo == "nextfit") {
    result = cover::solve_sweep_nextfit(customers, type);
  } else if (algo == "exact") {
    result = cover::solve_exact(customers, type, args.get_size("max-k", 8));
  } else {
    throw UsageError("unknown --algo: " + algo);
  }
  if (!result.feasible) {
    std::cout << "INFEASIBLE: " << result.blockers.size()
              << " customers can never be served by this antenna type\n";
    return 1;
  }
  std::cout << "antennas needed (" << algo << "): " << result.num_antennas()
            << "  [lower bound: " << cover::lower_bound(customers, type)
            << "]\n";
  for (std::size_t j = 0; j < result.alphas.size(); ++j) {
    std::cout << "  antenna " << j << " at "
              << geom::rad_to_deg(result.alphas[j]) << " deg\n";
  }
  return 0;
}

int cmd_render(const Args& args) {
  require_known(args, {"in", "solution", "out"});
  const model::Instance inst = load_instance(args);
  std::optional<model::Solution> sol;
  if (args.has("solution")) {
    sol = load_solution(args.get("solution", "-"));
  }
  const std::string out = args.get("out", "out.svg");
  viz::write_svg(out, inst, sol ? &*sol : nullptr);
  std::cerr << "wrote " << out << "\n";
  return 0;
}

// Sweep one parameter of the instance's antenna fleet and print a CSV of
// served value per solver -- the CLI face of experiments F1/F2/F4.
int cmd_sweep(const Args& args) {
  require_known(args, {"in", "param", "max"});
  const model::Instance inst = load_instance(args);
  if (inst.num_antennas() == 0) {
    throw std::runtime_error("sweep needs an antenna type (antenna 0)");
  }
  const model::AntennaSpec base = inst.antenna(0);
  const std::vector<model::Customer> customers(inst.customers().begin(),
                                               inst.customers().end());
  const std::string param = args.get("param", "k");

  std::cout << param << ",uniform,greedy,local_search,bound\n";
  const auto run_point = [&](const std::string& label,
                             const std::vector<model::AntennaSpec>& specs) {
    const model::Instance point{customers, specs};
    const double uniform = model::served_value(
        point, sectors::solve_uniform_orientations(point));
    const double greedy =
        model::served_value(point, sectors::solve_greedy(point));
    const double ls =
        model::served_value(point, sectors::solve_local_search(point));
    const double bound = bounds::orientation_free_bound(point);
    std::cout << label << "," << uniform << "," << greedy << "," << ls
              << "," << bound << "\n";
  };

  if (param == "k") {
    const std::size_t k_max = args.get_size("max", 8);
    for (std::size_t k = 1; k <= k_max; ++k) {
      run_point(std::to_string(k),
                std::vector<model::AntennaSpec>(k, base));
    }
  } else if (param == "rho") {
    const std::size_t k = std::max<std::size_t>(inst.num_antennas(), 1);
    for (double deg : {15.0, 30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 270.0,
                       360.0}) {
      model::AntennaSpec spec = base;
      spec.rho = geom::deg_to_rad(deg);
      std::ostringstream label;
      label << deg;
      run_point(label.str(), std::vector<model::AntennaSpec>(k, spec));
    }
  } else if (param == "capacity") {
    const std::size_t k = std::max<std::size_t>(inst.num_antennas(), 1);
    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      model::AntennaSpec spec = base;
      spec.capacity = base.capacity * scale;
      std::ostringstream label;
      label << scale;
      run_point(label.str(), std::vector<model::AntennaSpec>(k, spec));
    }
  } else {
    throw UsageError("unknown --param (use k|rho|capacity)");
  }
  return 0;
}

int cmd_info(const Args& args) {
  require_known(args, {"in"});
  const model::Instance inst = load_instance(args);
  std::cout << "customers        " << inst.num_customers() << "\n";
  std::cout << "antennas         " << inst.num_antennas() << "\n";
  std::cout << "total demand     " << inst.total_demand() << "\n";
  std::cout << "total value      " << inst.total_value() << "\n";
  std::cout << "value-weighted   "
            << (inst.is_value_weighted() ? "yes" : "no") << "\n";
  std::cout << "total capacity   " << inst.total_capacity() << "\n";
  std::cout << "angles-only      " << (inst.is_angles_only() ? "yes" : "no")
            << "\n";
  std::cout << "identical specs  "
            << (inst.antennas_identical() ? "yes" : "no") << "\n";
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    const model::AntennaSpec& a = inst.antenna(j);
    std::cout << "  antenna " << j << ": rho="
              << geom::rad_to_deg(a.rho) << "deg range=" << a.range
              << " capacity=" << a.capacity;
    if (a.min_range > 0.0) std::cout << " min_range=" << a.min_range;
    std::cout << "\n";
  }
  return 0;
}

/// SIGINT -> cooperative drain: the batch engine polls this flag, stops
/// admission, cancels in-flight deadlines, and still writes one response
/// per request. A lock-free atomic store is async-signal-safe.
std::atomic<bool> g_interrupt{false};

int cmd_batch(const Args& args) {
  require_known(args, {"in", "out", "jobs", "time-limit", "cache-entries",
                       "queue-capacity", "stats", "trace-out", "metrics-out",
                       "metrics-jsonl", "metrics-interval", "access-log",
                       "slo-window"});
  srv::BatchConfig config;
  config.jobs = static_cast<unsigned>(args.get_size("jobs", 0));
  if (args.has("time-limit")) {
    const double seconds = args.get_double("time-limit", 0.0);
    if (seconds < 0.0) {
      throw UsageError("--time-limit must be >= 0 seconds");
    }
    config.time_limit = seconds;
  }
  config.cache_entries = args.get_size("cache-entries", 128);
  config.queue_capacity = args.get_size("queue-capacity", 0);
  config.interrupt = &g_interrupt;
  config.slo_window = args.get_size("slo-window", config.slo_window);
  if (config.slo_window == 0) {
    throw UsageError("--slo-window must be >= 1 requests");
  }

  std::ofstream access_log;
  const std::string access_path = args.get("access-log", "");
  if (!access_path.empty()) {
    access_log.open(access_path, std::ios::trunc);
    if (!access_log) throw std::runtime_error("cannot open " + access_path);
    config.access_log = &access_log;
  }

  const std::string in_path = args.get("in", "");
  if (in_path.empty()) {
    throw UsageError("--in <requests.jsonl> is required ('-' for stdin)");
  }
  const std::string out_path = args.get("out", "-");

  std::ifstream fin;
  std::istream* in = &std::cin;
  if (in_path != "-") {
    fin.open(in_path);
    if (!fin) throw std::runtime_error("cannot open " + in_path);
    in = &fin;
  }
  std::ofstream fout;
  std::ostream* out = &std::cout;
  if (out_path != "-") {
    fout.open(out_path);
    if (!fout) throw std::runtime_error("cannot open " + out_path);
    out = &fout;
  }

  using SignalHandler = void (*)(int);
  const SignalHandler previous = std::signal(
      SIGINT, [](int) { g_interrupt.store(true, std::memory_order_relaxed); });
  const srv::BatchReport report = srv::run_batch(*in, *out, config);
  if (previous != SIG_ERR) std::signal(SIGINT, previous);

  out->flush();
  if (!*out) throw std::runtime_error("error writing " + out_path);
  if (!access_path.empty()) {
    access_log.flush();
    if (!access_log) throw std::runtime_error("error writing " + access_path);
  }
  std::cerr << "batch " << report.to_string() << "\n";
  return 0;
}

int cmd_serve(const Args& args) {
  require_known(args, {"in", "out", "time-limit", "max-sessions", "stats",
                       "trace-out", "metrics-out", "metrics-jsonl",
                       "metrics-interval", "slo-window"});
  srv::ServeConfig config;
  if (args.has("time-limit")) {
    const double seconds = args.get_double("time-limit", 0.0);
    if (seconds < 0.0) {
      throw UsageError("--time-limit must be >= 0 seconds");
    }
    config.time_limit = seconds;
  }
  config.max_sessions = args.get_size("max-sessions", config.max_sessions);
  if (config.max_sessions == 0) {
    throw UsageError("--max-sessions must be >= 1");
  }
  config.interrupt = &g_interrupt;
  config.slo_window = args.get_size("slo-window", config.slo_window);
  if (config.slo_window == 0) {
    throw UsageError("--slo-window must be >= 1 requests");
  }

  const std::string in_path = args.get("in", "-");
  const std::string out_path = args.get("out", "-");

  std::ifstream fin;
  std::istream* in = &std::cin;
  if (in_path != "-") {
    fin.open(in_path);
    if (!fin) throw std::runtime_error("cannot open " + in_path);
    in = &fin;
  }
  std::ofstream fout;
  std::ostream* out = &std::cout;
  if (out_path != "-") {
    fout.open(out_path);
    if (!fout) throw std::runtime_error("cannot open " + out_path);
    out = &fout;
  }

  using SignalHandler = void (*)(int);
  const SignalHandler previous = std::signal(
      SIGINT, [](int) { g_interrupt.store(true, std::memory_order_relaxed); });
  const srv::ServeReport report = srv::run_serve(*in, *out, config);
  if (previous != SIG_ERR) std::signal(SIGINT, previous);

  out->flush();
  if (!*out) throw std::runtime_error("error writing " + out_path);
  std::cerr << "serve " << report.to_string() << "\n";
  return 0;
}

int usage() {
  std::cerr <<
      "usage: sectorpack <command> [options]\n"
      "commands:\n"
      "  generate  --n N --k K --spatial uniform|hotspots|ring|arcband\n"
      "            --demand unit|uniform-int|pareto --rho-deg D\n"
      "            --capacity-fraction F --seed S -o FILE\n"
      "  solve     --in FILE --solver " << srv::solver_family_names("|") <<
      "\n"
      "            [--portfolio F1,F2,...] (race only; default\n"
      "             greedy,local-search,annealing)\n"
      "            [--spatial flat|index|auto]\n"
      "            [--time-limit SEC] [-o FILE] [--svg FILE]\n"
      "            [--stats json|text] [--trace-out FILE]\n"
      "            [--metrics-out FILE] [--metrics-jsonl FILE]\n"
      "            [--metrics-interval SEC]\n"
      "            (on expiry: best solution so far, status\n"
      "             budget_exhausted, still exit 0)\n"
      "  batch     --in requests.jsonl --out responses.jsonl [--jobs N]\n"
      "            [--time-limit SEC] [--cache-entries M]\n"
      "            [--queue-capacity Q] [--stats json|text]\n"
      "            [--trace-out FILE] [--metrics-out FILE]\n"
      "            [--metrics-jsonl FILE] [--metrics-interval SEC]\n"
      "            [--access-log FILE] [--slo-window W]\n"
      "            (one JSON response per request, input order; SIGINT\n"
      "            drains gracefully; --metrics-out rewrites a Prometheus\n"
      "            exposition every interval, --access-log appends one\n"
      "            JSONL line per request; see docs/serving.md)\n"
      "  serve     --in ops.jsonl --out responses.jsonl\n"
      "            [--time-limit SEC] [--max-sessions M]\n"
      "            [--slo-window W] [--stats json|text]\n"
      "            [--trace-out FILE] [--metrics-out FILE]\n"
      "            [--metrics-jsonl FILE] [--metrics-interval SEC]\n"
      "            (session daemon: register an instance once, stream\n"
      "            customer_add/customer_remove/demand_set/antenna_add\n"
      "            deltas, get an incrementally re-solved answer per op --\n"
      "            byte-identical to a from-scratch solve; SIGINT drains;\n"
      "            see docs/serving.md \"Session protocol\")\n"
      "  validate  --in FILE --solution FILE\n"
      "  verify    --in FILE --solution FILE   (named-invariant check:\n"
      "            shape, alpha-normalized, assign-range,\n"
      "            sector-containment, capacity, demand-conservation,\n"
      "            status; exit 1 lists each violated invariant)\n"
      "  bound     --in FILE [--time-limit SEC] [--stats json|text]\n"
      "            [--trace-out FILE]\n"
      "  cover     --in FILE --algo greedy|nextfit|exact [--max-k K]\n"
      "            [--stats json|text] [--trace-out FILE]\n"
      "  render    --in FILE [--solution FILE] -o FILE.svg\n"
      "  sweep     --in FILE --param k|rho|capacity [--max K]  (CSV)\n"
      "  info      --in FILE\n"
      "  --version print the version and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "--version" || args.command == "version") {
      std::cout << "sectorpack " << SECTORPACK_VERSION << "\n";
      return 0;
    }
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "solve") return with_observability(args, cmd_solve);
    if (args.command == "batch") return with_observability(args, cmd_batch);
    if (args.command == "serve") return with_observability(args, cmd_serve);
    if (args.command == "validate") return cmd_validate(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "bound") return with_observability(args, cmd_bound);
    if (args.command == "cover") return with_observability(args, cmd_cover);
    if (args.command == "render") return cmd_render(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command.empty()) return usage();
    std::cerr << "error: unknown command '" << args.command
              << "' (run 'sectorpack' with no arguments for usage)\n";
    return 2;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what()
              << " (run 'sectorpack' with no arguments for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
