#!/usr/bin/env python3
"""Clang Thread Safety Analysis gate over compile_commands.json.

Re-drives every src/ translation unit from the compilation database with

    clang++ <recorded flags> -fsyntax-only -Wthread-safety \
        -Wthread-safety-beta -Werror

so every SP_GUARDED_BY / SP_REQUIRES / SP_ACQUIRE annotation declared in
src/core/sync.hpp is actually *checked*: a guarded member touched without
its mutex, a helper called without its declared lock precondition, or a
lock released on the wrong path fails the gate as a compile error.

The analysis pass exists only in clang.  When no clang++ is available
(this container ships only g++) the gate exits with a distinct SKIP code
so callers can report "SKIP(clang missing)" instead of a silent pass --
and `SP_REQUIRE_THREAD_SAFETY=1` lets CI turn that skip into a failure
(scripts/check.sh does the promotion).

Exit status: 0 clean, 1 diagnostics found, 2 setup error (missing
compile_commands.json / no in-scope TUs), 3 skipped (no clang++).
"""

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from run_clang_tidy import (REPO_ROOT, entry_argv, in_scope, load_database,
                            run_one)

EXIT_SKIP = 3

# Only src/ is in scope: the annotations live on src/ types, and tests /
# bench use raw primitives deliberately (gtest orchestration is outside
# the capability discipline; sp-lint's raw-mutex rule draws the same
# boundary).
DEFAULT_PATHS = ("src",)

GATE_FLAGS = [
    "-fsyntax-only",
    # The database was recorded for g++; mute clang-vs-gcc flag and
    # warning-set differences first so the verdict is *only* the analysis
    # (order matters: -Wno-everything would swallow later re-enables).
    "-Wno-unknown-warning-option",
    "-Wno-everything",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror=thread-safety",
    "-Werror=thread-safety-beta",
]


def find_clang(explicit):
    """Newest clang++ on PATH, or None. Honors $CLANGXX / --clang."""
    candidates = [explicit] if explicit else []
    candidates += ["clang++"] + ["clang++-%d" % v for v in range(21, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def thread_safety_argv(clang, entry):
    """The recorded compile command re-targeted at clang++: keep include
    paths, defines and -std; drop code generation (-c/-o) and the original
    compiler; append the analysis flags."""
    argv = entry_argv(entry)
    out = [clang]
    skip = False
    for arg in argv[1:]:
        if skip:
            skip = False
            continue
        if arg == "-o":
            skip = True
            continue
        if arg == "-c":
            continue
        out.append(arg)
    return out + GATE_FLAGS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build-lint"))
    parser.add_argument("--paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="repo-relative directories in scope")
    parser.add_argument("--clang", default=os.environ.get("CLANGXX"),
                        help="clang++ binary (default: search PATH)")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1))
    args = parser.parse_args()

    clang = find_clang(args.clang)
    if clang is None:
        sys.stderr.write(
            "thread-safety: SKIP -- no clang++ on PATH (the analysis pass "
            "is clang-only; sp-lint's concurrency rules still enforce the "
            "textual discipline)\n")
        return EXIT_SKIP

    entries = [e for e in load_database(args.build_dir)
               if in_scope(e["file"], args.paths)]
    if not entries:
        sys.stderr.write("error: no in-scope TUs in compile database\n")
        return 2

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {
            pool.submit(run_one, thread_safety_argv(clang, e),
                        e["directory"]): e["file"]
            for e in entries
        }
        for future in concurrent.futures.as_completed(futures):
            rc, output = future.result()
            if rc != 0:
                failures += 1
                rel = os.path.relpath(futures[future], REPO_ROOT)
                sys.stderr.write("---- %s\n%s\n" % (rel, output.strip()))

    if failures:
        print("thread-safety: FAIL (%d of %d TUs with diagnostics)"
              % (failures, len(entries)))
        return 1
    print("thread-safety: PASS (%d TUs clean under -Wthread-safety)"
          % len(entries))
    return 0


if __name__ == "__main__":
    sys.exit(main())
