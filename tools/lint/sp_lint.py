#!/usr/bin/env python3
"""sp-lint: sectorpack domain rules no generic linter can know.

Rules (see docs/static-analysis.md for the full table):

  raw-assert        assert( is forbidden in src/ -- use the contracts
                    macros (SP_REQUIRE/SP_ENSURE/SP_ASSERT from
                    src/core/contract.hpp), which stay active in
                    SECTORPACK_CONTRACTS builds and name the broken
                    contract. <cassert>/<assert.h> includes count too.
  float-eq          ==/!= against a floating-point literal outside
                    src/geom/: exact comparison belongs in the tolerance
                    helpers (geom::angles_equal, kAngleEps, kRadiusEps).
  deadline-loop     unbounded loops (for(;;), while(true), while(1)) in the
                    solver families (src/{sectors,assign,single,angles,
                    knapsack,bounds,cover,srv}/) must poll the PR-3 deadline
                    machinery (deadline/expired/cancel) inside the body so
                    --time-limit can interrupt them (src/srv/ counts: the
                    batch engine's pump loops must honor drain/cancel).
  untrusted-count   naked integer parses (std::stoull and family, strtoull,
                    atoi) and reserve(<parse>) outside src/model/io --
                    counts from text must go through the clamped readers.
  cpp-include       #include of a .cpp file anywhere: creates double
                    definitions and hides the real dependency graph.
  raw-mutex         direct std::mutex / std::condition_variable /
                    std::lock_guard / std::unique_lock (and friends) in
                    src/ outside src/core/sync.hpp -- lock through the
                    annotated core::Mutex/LockGuard/UniqueLock/CondVar
                    wrappers so Clang thread-safety analysis sees it.
  cv-wait-no-predicate
                    condition-variable .wait(lock) with no predicate:
                    the classic lost-wakeup/spurious-wakeup bug. Pass the
                    predicate to wait(); deliberate polling uses the
                    timed wait_for overload.
  detached-thread   .detach() on a thread anywhere: a detached thread
                    outlives the state it captures, races teardown, and
                    cannot be drained; every thread here is joined.
  relaxed-order-no-rationale
                    memory_order_relaxed in src/ without an adjacent
                    `// sp-sync:` rationale (same line or the preceding
                    12 lines). Relaxed ordering is correct only for a
                    documented reason.
  unannotated-guard a core::Mutex declaration in a src/ file with no
                    SP_GUARDED_BY anywhere in that file: a capability
                    nothing is annotated against guards nothing.

Waivers: a violating line is excused by an inline comment on the same line
or the line directly above:

    // sp-lint: allow(<rule>) <reason>

The reason is mandatory; a waiver without one (or naming an unknown rule)
is itself an error, so waivers stay auditable.

Usage:
    python3 tools/lint/sp_lint.py            # lint the tree
    python3 tools/lint/sp_lint.py FILE...    # lint specific files
    python3 tools/lint/sp_lint.py --list-rules

Exit status: 0 clean, 1 violations, 2 usage/setup error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SCAN_DIRS = ("src", "tools", "bench", "tests", "examples")
SOURCE_EXTS = (".cpp", ".hpp", ".h", ".cc", ".hh")

SOLVER_DIRS = ("src/sectors/", "src/assign/", "src/single/", "src/angles/",
               "src/knapsack/", "src/bounds/", "src/cover/", "src/srv/",
               "src/shard/", "src/race/")

WAIVER_RE = re.compile(
    r"//\s*sp-lint:\s*allow\(([a-z0-9-]+)\)\s*(.*)$")

FLOAT_LIT = r"(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)"

RULES = {
    "raw-assert": "raw assert( in src/; use SP_REQUIRE/SP_ENSURE/SP_ASSERT "
                  "from src/core/contract.hpp",
    "float-eq": "==/!= against a float literal outside src/geom/; use the "
                "geom tolerance helpers",
    "deadline-loop": "unbounded solver loop without a Deadline check in "
                     "its body",
    "untrusted-count": "naked integer parse / reserve-on-parse outside "
                       "src/model/io",
    "cpp-include": "#include of a .cpp file",
    "raw-mutex": "raw std:: sync primitive in src/ outside "
                 "src/core/sync.hpp; use the core::Mutex wrappers",
    "cv-wait-no-predicate": "condition-variable wait() without a "
                            "predicate (lost-wakeup bug)",
    "detached-thread": ".detach() on a thread; every thread must be "
                       "joined",
    "relaxed-order-no-rationale": "memory_order_relaxed without an "
                                  "adjacent // sp-sync: rationale",
    "unannotated-guard": "core::Mutex in a file with no SP_GUARDED_BY "
                         "uses",
    "bad-waiver": "malformed sp-lint waiver (unknown rule or missing "
                  "reason)",
}


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)


def strip_comments_and_strings(text, keep_strings=False):
    """Blank out comments and (unless keep_strings) string/char literals,
    preserving line structure and byte offsets so rule matches report true
    locations."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if ch in "\"'":
                state = ch
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif state == "line":
            if ch == "\n":
                state = None
                out.append(ch)
            else:
                out.append(" ")
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(ch if ch == "\n" else " ")
        else:  # inside a string/char literal
            if ch == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if ch == state:
                state = None
                out.append(ch)
            elif ch == "\n":  # unterminated (macro line continuation etc.)
                state = None
                out.append(ch)
            else:
                out.append(ch if keep_strings else " ")
        i += 1
    return "".join(out)


def collect_waivers(raw_lines, rel, violations):
    """Line -> set of waived rules. A waiver covers its own line and the
    next line (so it can sit above the violating statement)."""
    waived = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if rule not in RULES or rule == "bad-waiver":
            violations.append(Violation(
                rel, idx, "bad-waiver", "unknown rule '%s'" % rule))
            continue
        if not reason:
            violations.append(Violation(
                rel, idx, "bad-waiver",
                "waiver for '%s' needs a reason" % rule))
            continue
        waived.setdefault(idx, set()).add(rule)
        waived.setdefault(idx + 1, set()).add(rule)
    return waived


def line_of(offset, text):
    return text.count("\n", 0, offset) + 1


def loop_body(stripped, open_brace):
    """Text of the brace-balanced block starting at open_brace ('{')."""
    depth = 0
    for i in range(open_brace, len(stripped)):
        if stripped[i] == "{":
            depth += 1
        elif stripped[i] == "}":
            depth -= 1
            if depth == 0:
                return stripped[open_brace:i + 1]
    return stripped[open_brace:]


RAW_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
CASSERT_RE = re.compile(r"#\s*include\s*[<\"](cassert|assert\.h)[>\"]")
FLOAT_EQ_RE = re.compile(
    r"[=!]=\s*[-+]?" + FLOAT_LIT + r"(?![\w.])"
    r"|(?<![\w.])" + FLOAT_LIT + r"\s*[=!]=")
UNBOUNDED_LOOP_RE = re.compile(
    r"\bfor\s*\(\s*;\s*;\s*\)|\bwhile\s*\(\s*(?:true|1)\s*\)")
DEADLINE_RE = re.compile(r"deadline|expired|cancel|stop_requested",
                         re.IGNORECASE)
PARSE_CALL_RE = re.compile(
    r"std\s*::\s*(?:stoull|stoul|stoll|stol|stoi)\b"
    r"|(?<![\w:])(?:strtoull|strtoul|strtoll|strtol|atoi|atol|atoll)\s*\(")
RESERVE_ON_PARSE_RE = re.compile(
    r"\.\s*reserve\s*\([^)]*\bsto(?:i|l|ll|ul|ull)\b")
CPP_INCLUDE_RE = re.compile(r"#\s*include\s*[<\"][^>\"]*\.cpp[>\"]")
RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(?:mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
    r"|#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
CV_WAIT_RE = re.compile(r"\.\s*wait\s*\(")
DETACH_RE = re.compile(r"\.\s*detach\s*\(\s*\)")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
SP_SYNC_COMMENT_RE = re.compile(r"//\s*sp-sync:")
# How far above a memory_order_relaxed use its `// sp-sync:` rationale may
# sit. Wide enough that one comment covers a tight block of relaxed ops
# (a histogram-observe body, a zeroing loop) without comment-per-line spam.
RELAXED_RATIONALE_WINDOW = 12
CORE_MUTEX_DECL_RE = re.compile(
    r"(?:^|[\s(])(?:mutable\s+)?(?:sectorpack\s*::\s*)?core\s*::\s*Mutex\s+"
    r"(\w+)\s*;")
GUARD_ANNOTATION_RE = re.compile(r"\bSP_GUARDED_BY\s*\(")


def call_arg_count(stripped, open_paren):
    """Number of top-level arguments of the call whose '(' is at
    open_paren, or -1 when the call never closes (macro split across
    files etc.). Comments/strings are already blanked in `stripped`."""
    depth = 0
    args = 0
    saw_token = False
    for i in range(open_paren, len(stripped)):
        ch = stripped[i]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return args + 1 if saw_token else args
        elif depth == 1:
            if ch == ",":
                args += 1
            elif not ch.isspace():
                saw_token = True
    return -1


def lint_text(rel, raw):
    """Lint one file's contents; returns the violation list. `rel` is the
    repo-relative path with forward slashes (drives rule scoping)."""
    violations = []
    raw_lines = raw.split("\n")
    waived = collect_waivers(raw_lines, rel, violations)
    stripped = strip_comments_and_strings(raw)

    def report(rule, offset, message):
        line = line_of(offset, stripped)
        if rule in waived.get(line, ()):
            return
        violations.append(Violation(rel, line, rule, message))

    in_src = rel.startswith("src/")

    # raw-assert: src/ only; the contracts header itself is the one place
    # allowed to speak about plain assert.
    if in_src and rel != "src/core/contract.hpp":
        for m in RAW_ASSERT_RE.finditer(stripped):
            report("raw-assert", m.start(),
                   "use SP_REQUIRE/SP_ENSURE/SP_ASSERT "
                   "(src/core/contract.hpp) instead of assert(")
        for m in CASSERT_RE.finditer(stripped):
            report("raw-assert", m.start(),
                   "<%s> include in src/; contracts macros replace assert"
                   % m.group(1))

    # float-eq: src/ outside geom/ (geom owns the tolerance helpers and may
    # compare exactly while implementing them).
    if in_src and not rel.startswith("src/geom/"):
        for m in FLOAT_EQ_RE.finditer(stripped):
            report("float-eq", m.start(),
                   "exact floating-point comparison '%s'; use the geom "
                   "tolerance helpers" % m.group(0).strip())

    # deadline-loop: solver families only.
    if any(rel.startswith(d) for d in SOLVER_DIRS):
        for m in UNBOUNDED_LOOP_RE.finditer(stripped):
            brace = stripped.find("{", m.end())
            semi = stripped.find(";", m.end())
            if brace == -1 or (semi != -1 and semi < brace):
                # Braceless unbounded loop: single-statement body cannot
                # poll a deadline and commit an incumbent; always flag.
                report("deadline-loop", m.start(),
                       "unbounded loop without a body block")
                continue
            if not DEADLINE_RE.search(loop_body(stripped, brace)):
                report("deadline-loop", m.start(),
                       "unbounded loop body never checks the Deadline "
                       "(see src/core/deadline.hpp; PR-3 pattern)")

    # untrusted-count: everywhere in src/ and tools/ except the hardened
    # readers in src/model/io.*.
    if ((in_src or rel.startswith("tools/"))
            and not rel.startswith("src/model/io")):
        for m in PARSE_CALL_RE.finditer(stripped):
            report("untrusted-count", m.start(),
                   "naked integer parse '%s'; parse counts via the "
                   "clamped readers in src/model/io"
                   % m.group(0).strip())
        for m in RESERVE_ON_PARSE_RE.finditer(stripped):
            report("untrusted-count", m.start(),
                   "reserve() directly on a parsed count; clamp first "
                   "(see src/model/io.cpp)")

    # raw-mutex: src/ only; src/core/sync.hpp is the wrapper and the one
    # legal home of the raw primitives. Tests may use them for test-local
    # orchestration (they are not part of the annotated product surface).
    if in_src and rel != "src/core/sync.hpp":
        for m in RAW_MUTEX_RE.finditer(stripped):
            report("raw-mutex", m.start(),
                   "raw '%s'; lock through core::Mutex/LockGuard/"
                   "UniqueLock/CondVar (src/core/sync.hpp)"
                   % m.group(0).strip())

    # cv-wait-no-predicate: everywhere. A one-argument .wait(lock) is the
    # lost-wakeup pattern; zero-argument .wait() (futures) and the
    # two-argument predicate form are fine.
    for m in CV_WAIT_RE.finditer(stripped):
        open_paren = stripped.index("(", m.start())
        if call_arg_count(stripped, open_paren) == 1:
            report("cv-wait-no-predicate", m.start(),
                   "wait(lock) without a predicate loses wakeups; pass "
                   "the condition as a lambda (core::CondVar only "
                   "offers the predicate form)")

    # detached-thread: everywhere.
    for m in DETACH_RE.finditer(stripped):
        report("detached-thread", m.start(),
               ".detach() orphans the thread past its captured state; "
               "keep the handle and join it")

    # relaxed-order-no-rationale: src/ only. The rationale comment lives
    # in the raw text (comments are what we are looking for).
    if in_src:
        for m in RELAXED_RE.finditer(stripped):
            line = line_of(m.start(), stripped)
            lo = max(0, line - 1 - RELAXED_RATIONALE_WINDOW)
            window = raw_lines[lo:line]
            if not any(SP_SYNC_COMMENT_RE.search(l) for l in window):
                report("relaxed-order-no-rationale", m.start(),
                       "memory_order_relaxed without a nearby "
                       "'// sp-sync:' rationale (within %d lines)"
                       % RELAXED_RATIONALE_WINDOW)

    # unannotated-guard: src/ only. File-granular heuristic: declaring a
    # core::Mutex in a file where nothing is SP_GUARDED_BY means the
    # capability protects nothing the analysis can check.
    if in_src and rel != "src/core/sync.hpp":
        if not GUARD_ANNOTATION_RE.search(stripped):
            for m in CORE_MUTEX_DECL_RE.finditer(stripped):
                report("unannotated-guard", m.start(),
                       "core::Mutex '%s' declared but no SP_GUARDED_BY "
                       "in this file; annotate what it protects"
                       % m.group(1))

    # cpp-include: everywhere. Matched against comment-stripped text that
    # KEEPS string literals -- the include path is one.
    for m in CPP_INCLUDE_RE.finditer(
            strip_comments_and_strings(raw, keep_strings=True)):
        report("cpp-include", m.start(),
               "never #include a .cpp file; add it to the build instead")

    return violations


def iter_tree_files():
    for top in SCAN_DIRS:
        top_abs = os.path.join(REPO_ROOT, top)
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    yield os.path.join(dirpath, name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: the whole tree)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="treat paths as relative to this root "
                             "(fixture trees in tests)")
    args = parser.parse_args()

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-16s %s" % (rule, RULES[rule]))
        return 0

    root = os.path.abspath(args.root)
    paths = [os.path.abspath(p) for p in args.files] if args.files else \
        list(iter_tree_files())
    if not paths:
        sys.stderr.write("error: nothing to lint\n")
        return 2

    all_violations = []
    for path in paths:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
        except OSError as exc:
            sys.stderr.write("error: %s: %s\n" % (path, exc))
            return 2
        all_violations.extend(lint_text(rel, raw))

    for v in all_violations:
        print(v)
    if all_violations:
        print("sp-lint: FAIL (%d violations in %d files)"
              % (len(all_violations),
                 len({v.path for v in all_violations})))
        return 1
    print("sp-lint: PASS (%d files clean)" % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
