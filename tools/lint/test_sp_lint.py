#!/usr/bin/env python3
"""Self-test for sp_lint.py: every rule fires on a minimal fixture, stays
quiet on conforming code, and the waiver syntax works (including the two
malformed-waiver cases). Runs under plain unittest (python3
tools/lint/test_sp_lint.py) and is pytest-compatible; wired into ctest as
SpLintSelfTest."""

import unittest

import sp_lint


def violations(rel, text):
    return [(v.rule, v.line) for v in sp_lint.lint_text(rel, text)]


def rules(rel, text):
    return {v.rule for v in sp_lint.lint_text(rel, text)}


class RawAssertTest(unittest.TestCase):
    def test_fires_in_src(self):
        self.assertEqual(
            violations("src/foo/bar.cpp", "void f() { assert(x > 0); }"),
            [("raw-assert", 1)])

    def test_cassert_include_fires(self):
        self.assertIn("raw-assert",
                      rules("src/foo/bar.cpp", "#include <cassert>\n"))

    def test_static_assert_ok(self):
        self.assertEqual(
            rules("src/foo/bar.cpp", "static_assert(sizeof(int) == 4);"),
            set())

    def test_sp_assert_ok(self):
        self.assertEqual(
            rules("src/foo/bar.cpp", "void f() { SP_ASSERT(x > 0); }"),
            set())

    def test_quiet_outside_src(self):
        self.assertEqual(
            rules("tests/test_foo.cpp", "void f() { assert(x); }"), set())

    def test_quiet_in_contract_header(self):
        self.assertEqual(
            rules("src/core/contract.hpp", "// assert( replacement\n"
                  "#define X assert(0)"), set())

    def test_comment_mention_ok(self):
        self.assertEqual(
            rules("src/foo/bar.cpp", "// never call assert( here\n"), set())


class FloatEqTest(unittest.TestCase):
    def test_eq_literal_fires(self):
        self.assertEqual(
            violations("src/sim/g.cpp", "if (x == 0.0) { y(); }"),
            [("float-eq", 1)])

    def test_ne_literal_fires(self):
        self.assertIn("float-eq", rules("src/sim/g.cpp", "bool b = v != 1e-9;"))

    def test_literal_on_left_fires(self):
        self.assertIn("float-eq", rules("src/sim/g.cpp", "if (0.5 == x) {}"))

    def test_integer_compare_ok(self):
        self.assertEqual(rules("src/sim/g.cpp", "if (n == 0) {}"), set())

    def test_inequalities_ok(self):
        self.assertEqual(
            rules("src/sim/g.cpp", "if (x <= 0.0 || x >= 1.5) {}"), set())

    def test_geom_exempt(self):
        self.assertEqual(rules("src/geom/angle.cpp", "if (a == 0.0) {}"),
                         set())


class DeadlineLoopTest(unittest.TestCase):
    UNCHECKED = "void f() {\n  for (;;) {\n    step();\n  }\n}\n"
    CHECKED = ("void f() {\n  while (true) {\n"
               "    if (deadline.expired()) break;\n    step();\n  }\n}\n")

    def test_unchecked_loop_fires(self):
        self.assertEqual(violations("src/sectors/x.cpp", self.UNCHECKED),
                         [("deadline-loop", 2)])

    def test_checked_loop_ok(self):
        self.assertEqual(rules("src/sectors/x.cpp", self.CHECKED), set())

    def test_while_1_fires(self):
        self.assertIn("deadline-loop",
                      rules("src/knapsack/x.cpp",
                            "void f() { while (1) { g(); } }"))

    def test_non_solver_dir_exempt(self):
        self.assertEqual(rules("src/par/x.cpp", self.UNCHECKED), set())

    def test_shard_is_a_solver_dir(self):
        self.assertEqual(violations("src/shard/x.cpp", self.UNCHECKED),
                         [("deadline-loop", 2)])

    def test_bounded_loop_ok(self):
        self.assertEqual(
            rules("src/sectors/x.cpp",
                  "void f() { for (int i = 0; i < n; ++i) { g(); } }"),
            set())

    def test_braceless_fires(self):
        self.assertIn("deadline-loop",
                      rules("src/bounds/x.cpp", "void f() { while (true) g(); }"))


class UntrustedCountTest(unittest.TestCase):
    def test_stoull_fires_in_src(self):
        self.assertIn("untrusted-count",
                      rules("src/foo/x.cpp", "auto n = std::stoull(tok);"))

    def test_stoull_fires_in_tools(self):
        self.assertIn("untrusted-count",
                      rules("tools/x.cpp", "auto n = std::stoull(tok);"))

    def test_model_io_exempt(self):
        self.assertEqual(rules("src/model/io.cpp", "std::stoull(tok);"),
                         set())

    def test_reserve_on_parse_fires(self):
        self.assertIn("untrusted-count",
                      rules("src/foo/x.cpp", "v.reserve(std::stoull(tok));"))

    def test_plain_reserve_ok(self):
        self.assertEqual(rules("src/foo/x.cpp", "v.reserve(items.size());"),
                         set())

    def test_bench_exempt(self):
        self.assertEqual(rules("bench/x.cpp", "std::stoi(argv[1]);"), set())


class CppIncludeTest(unittest.TestCase):
    def test_fires_everywhere(self):
        for rel in ("src/a/b.cpp", "tests/t.cpp", "bench/b.cpp"):
            self.assertIn("cpp-include",
                          rules(rel, '#include "src/model/io.cpp"'))

    def test_hpp_include_ok(self):
        self.assertEqual(
            rules("src/a/b.cpp", '#include "src/model/io.hpp"'), set())


class RawMutexTest(unittest.TestCase):
    def test_std_mutex_member_fires(self):
        self.assertEqual(
            violations("src/foo/x.hpp", "class C { std::mutex mu_; };"),
            [("raw-mutex", 1)])

    def test_lock_guard_fires(self):
        self.assertIn(
            "raw-mutex",
            rules("src/foo/x.cpp",
                  "void f() { std::lock_guard<std::mutex> l(m); }"))

    def test_unique_lock_fires(self):
        self.assertIn("raw-mutex",
                      rules("src/foo/x.cpp", "std::unique_lock lk(m);"))

    def test_condition_variable_fires(self):
        self.assertIn("raw-mutex",
                      rules("src/foo/x.hpp", "std::condition_variable cv_;"))

    def test_mutex_include_fires(self):
        self.assertIn("raw-mutex",
                      rules("src/foo/x.hpp", "#include <mutex>\n"))

    def test_shared_mutex_include_fires(self):
        self.assertIn("raw-mutex",
                      rules("src/foo/x.hpp", "#include <shared_mutex>\n"))

    def test_sync_header_exempt(self):
        self.assertNotIn(
            "raw-mutex",
            rules("src/core/sync.hpp", "std::mutex mu_;\n#include <mutex>"))

    def test_tests_exempt(self):
        self.assertEqual(
            rules("tests/test_x.cpp", "std::mutex mu; std::unique_lock l(mu);"),
            set())

    def test_core_mutex_ok(self):
        self.assertNotIn(
            "raw-mutex",
            rules("src/foo/x.hpp",
                  "core::Mutex mu_;\nint v_ SP_GUARDED_BY(mu_);"))

    def test_waiver_works(self):
        self.assertEqual(
            rules("src/foo/x.hpp",
                  "#include <mutex>  // sp-lint: allow(raw-mutex) fixture"),
            set())


class CvWaitNoPredicateTest(unittest.TestCase):
    def test_one_arg_wait_fires(self):
        self.assertIn("cv-wait-no-predicate",
                      rules("tests/test_x.cpp", "cv.wait(lock);"))

    def test_fires_in_src_too(self):
        # src/ would already fail raw-mutex for the cv itself, but the wait
        # rule must fire independently (core::CondVar could grow the overload).
        self.assertIn("cv-wait-no-predicate",
                      rules("src/foo/x.cpp", "cv_.wait(lock);"))

    def test_predicate_wait_ok(self):
        self.assertNotIn(
            "cv-wait-no-predicate",
            rules("tests/test_x.cpp",
                  "cv.wait(lock, [&] { return ready; });"))

    def test_multiline_predicate_ok(self):
        self.assertNotIn(
            "cv-wait-no-predicate",
            rules("tests/test_x.cpp",
                  "cv.wait(lock, [&] {\n  return a ||\n         b;\n});"))

    def test_future_wait_ok(self):
        self.assertNotIn("cv-wait-no-predicate",
                         rules("tests/test_x.cpp", "fut.wait();"))

    def test_nested_commas_do_not_fool_arity(self):
        # One argument containing commas inside nested parens is still arity 1.
        self.assertIn("cv-wait-no-predicate",
                      rules("tests/test_x.cpp", "cv.wait(pick(a, b));"))

    def test_waiver_works(self):
        self.assertEqual(
            rules("tests/test_x.cpp",
                  "cv.wait(lock);  // sp-lint: allow(cv-wait-no-predicate)"
                  " fixture"),
            set())


class DetachedThreadTest(unittest.TestCase):
    def test_detach_fires_everywhere(self):
        for rel in ("src/a/b.cpp", "tests/t.cpp", "tools/t.cpp"):
            self.assertIn("detached-thread", rules(rel, "t.detach();"))

    def test_join_ok(self):
        self.assertEqual(rules("src/a/b.cpp", "t.join();"), set())

    def test_comment_mention_ok(self):
        self.assertEqual(
            rules("src/a/b.cpp", "// never call .detach() here\n"), set())

    def test_waiver_works(self):
        self.assertEqual(
            rules("src/a/b.cpp",
                  "t.detach();  // sp-lint: allow(detached-thread) fixture"),
            set())


class RelaxedOrderTest(unittest.TestCase):
    def test_bare_relaxed_fires(self):
        self.assertEqual(
            violations("src/foo/x.cpp",
                       "n_.fetch_add(1, std::memory_order_relaxed);"),
            [("relaxed-order-no-rationale", 1)])

    def test_same_line_rationale_ok(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "n_.fetch_add(1, std::memory_order_relaxed);"
                  "  // sp-sync: stats only"),
            set())

    def test_preceding_rationale_ok(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "// sp-sync: monotonic counter, no ordering needed\n"
                  "n_.fetch_add(1, std::memory_order_relaxed);"),
            set())

    def test_rationale_window_covers_block(self):
        pad = "f();\n" * (sp_lint.RELAXED_RATIONALE_WINDOW - 1)
        text = ("// sp-sync: whole block is best-effort stats\n" + pad +
                "n_.load(std::memory_order_relaxed);")
        self.assertEqual(rules("src/foo/x.cpp", text), set())

    def test_rationale_outside_window_fires(self):
        pad = "f();\n" * (sp_lint.RELAXED_RATIONALE_WINDOW + 1)
        text = ("// sp-sync: too far away\n" + pad +
                "n_.load(std::memory_order_relaxed);")
        self.assertIn("relaxed-order-no-rationale",
                      rules("src/foo/x.cpp", text))

    def test_acquire_release_need_no_comment(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "flag_.store(true, std::memory_order_release);"),
            set())

    def test_tests_exempt(self):
        self.assertEqual(
            rules("tests/test_x.cpp",
                  "n.load(std::memory_order_relaxed);"),
            set())

    def test_waiver_works(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "// sp-lint: allow(relaxed-order-no-rationale) fixture\n"
                  "n_.load(std::memory_order_relaxed);"),
            set())


class UnannotatedGuardTest(unittest.TestCase):
    def test_guardless_mutex_fires(self):
        self.assertEqual(
            violations("src/foo/x.hpp",
                       "class C {\n  core::Mutex mu_;\n  int v_;\n};"),
            [("unannotated-guard", 2)])

    def test_guarded_file_ok(self):
        self.assertEqual(
            rules("src/foo/x.hpp",
                  "class C {\n  core::Mutex mu_;\n"
                  "  int v_ SP_GUARDED_BY(mu_);\n};"),
            set())

    def test_mutable_and_qualified_forms_fire(self):
        self.assertIn(
            "unannotated-guard",
            rules("src/foo/x.hpp", "mutable core::Mutex mu_;"))
        self.assertIn(
            "unannotated-guard",
            rules("src/foo/x.hpp", "sectorpack::core::Mutex mu_;"))

    def test_tests_exempt(self):
        self.assertEqual(rules("tests/test_x.cpp", "core::Mutex mu_;"),
                         set())

    def test_waiver_works(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "// sp-lint: allow(unannotated-guard) local mutex fixture\n"
                  "core::Mutex mu;"),
            set())


class WaiverTest(unittest.TestCase):
    def test_same_line_waiver(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "assert(x);  // sp-lint: allow(raw-assert) fixture"),
            set())

    def test_previous_line_waiver(self):
        self.assertEqual(
            rules("src/foo/x.cpp",
                  "// sp-lint: allow(raw-assert) legacy shim\nassert(x);"),
            set())

    def test_waiver_does_not_leak_two_lines_down(self):
        self.assertIn(
            "raw-assert",
            rules("src/foo/x.cpp",
                  "// sp-lint: allow(raw-assert) here\n\nassert(x);"))

    def test_waiver_is_rule_specific(self):
        self.assertIn(
            "raw-assert",
            rules("src/foo/x.cpp",
                  "// sp-lint: allow(float-eq) wrong rule\nassert(x);"))

    def test_missing_reason_rejected(self):
        self.assertEqual(
            violations("src/foo/x.cpp", "// sp-lint: allow(raw-assert)"),
            [("bad-waiver", 1)])

    def test_unknown_rule_rejected(self):
        self.assertEqual(
            violations("src/foo/x.cpp",
                       "// sp-lint: allow(made-up-rule) because"),
            [("bad-waiver", 1)])


class StripperTest(unittest.TestCase):
    def test_strings_ignored(self):
        self.assertEqual(
            rules("src/foo/x.cpp", 'const char* s = "assert(x)";'), set())

    def test_block_comments_ignored(self):
        self.assertEqual(
            rules("src/foo/x.cpp", "/* assert(x) == 0.0 */ int y;"), set())

    def test_line_numbers_survive_stripping(self):
        text = "// comment\n/* block\n   more */\nassert(x);\n"
        self.assertEqual(violations("src/foo/x.cpp", text),
                         [("raw-assert", 4)])


if __name__ == "__main__":
    unittest.main()
