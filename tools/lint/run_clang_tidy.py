#!/usr/bin/env python3
"""Static-diagnostics gate over compile_commands.json.

Runs the project .clang-tidy profile over every translation unit under
src/, tools/ and bench/, failing on any diagnostic (the profile sets
WarningsAsErrors: '*').  The compilation database comes from a dedicated
lint configure, e.g.:

    cmake -B build-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    python3 tools/lint/run_clang_tidy.py --build-dir build-lint

When clang-tidy is not installed (this container ships only g++), the gate
degrades to a compiler-diagnostics pass instead of silently passing: each
TU is re-driven with its exact recorded command plus -fsyntax-only -Werror
and a curated set of extra GCC warnings approximating the tidy profile's
bugprone/performance value.  Either mode fails on any new diagnostic, so
seeding e.g. a narrowing conversion turns the gate red in both.

Exit status: 0 clean, 1 diagnostics found, 2 setup error (missing
compile_commands.json, no usable tool).
"""

import argparse
import concurrent.futures
import json
import os
import shlex
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# Directories whose TUs the gate covers (tests are exercised by ctest and
# kept out of the tidy scope deliberately: gtest macros expand to code the
# bugprone checks flag spuriously).
DEFAULT_PATHS = ("src", "tools", "bench")

# Extra warnings for the GCC fallback, chosen to approximate the value of
# the enabled tidy checks.  Curated like the .clang-tidy suppressions: each
# exclusion below the list documents why it is not here.
#   -Wuseless-cast: fires on casts kept for documentation/symmetry in
#     template-heavy code; tidy has no equivalent in our profile.
#   -Wold-style-cast: benchmark/gtest macros expand C-style casts we do not
#     control.
FALLBACK_EXTRA_FLAGS = [
    "-fsyntax-only",
    "-Werror",
    "-Wall",
    "-Wextra",
    "-Wpedantic",
    "-Wshadow",
    "-Wconversion",
    "-Wsign-conversion",
    "-Wdouble-promotion",
    "-Wnon-virtual-dtor",
    "-Woverloaded-virtual",
    "-Wcast-qual",
    "-Wlogical-op",
    "-Wduplicated-cond",
    "-Wduplicated-branches",
    "-Wnull-dereference",
    "-Wformat=2",
]


def load_database(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.stderr.write(
            "error: %s not found -- configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first\n" % db_path)
        sys.exit(2)
    with open(db_path, encoding="utf-8") as fh:
        return json.load(fh)


def in_scope(path, paths):
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    if rel.startswith(".."):
        return False
    return any(rel == p or rel.startswith(p + os.sep) for p in paths)


def entry_argv(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry["command"])


def fallback_argv(entry):
    """The recorded compile command, minus code generation, plus the gate
    flags. Dropping -c/-o keeps include paths, defines and -std exact."""
    argv = entry_argv(entry)
    out = []
    skip = False
    for arg in argv:
        if skip:
            skip = False
            continue
        if arg == "-o":
            skip = True
            continue
        if arg == "-c":
            continue
        out.append(arg)
    return out + FALLBACK_EXTRA_FLAGS


def run_one(argv, directory):
    proc = subprocess.run(argv, cwd=directory, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT,
                                                            "build-lint"))
    parser.add_argument("--paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="repo-relative directories in scope")
    parser.add_argument("--clang-tidy", default=os.environ.get("CLANG_TIDY",
                                                               "clang-tidy"))
    parser.add_argument("--mode", choices=("auto", "clang-tidy", "compiler"),
                        default="auto",
                        help="auto prefers clang-tidy, falls back to the "
                             "compiler-diagnostics pass when absent")
    parser.add_argument("--jobs", type=int,
                        default=max(1, os.cpu_count() or 1))
    args = parser.parse_args()

    entries = [e for e in load_database(args.build_dir)
               if in_scope(e["file"], args.paths)]
    if not entries:
        sys.stderr.write("error: no in-scope TUs in compile database\n")
        sys.exit(2)

    mode = args.mode
    if mode == "auto":
        mode = "clang-tidy" if shutil.which(args.clang_tidy) else "compiler"
    if mode == "clang-tidy" and not shutil.which(args.clang_tidy):
        sys.stderr.write("error: clang-tidy not found (%s)\n"
                         % args.clang_tidy)
        sys.exit(2)
    if mode == "compiler":
        sys.stderr.write(
            "note: clang-tidy unavailable; running compiler-diagnostics "
            "fallback (GCC -Werror + curated warnings)\n")

    jobs = []
    for entry in entries:
        if mode == "clang-tidy":
            argv = [args.clang_tidy, "-p", args.build_dir, "--quiet",
                    entry["file"]]
        else:
            argv = fallback_argv(entry)
        jobs.append((entry["file"], argv, entry["directory"]))

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = {pool.submit(run_one, argv, d): f for f, argv, d in jobs}
        for future in concurrent.futures.as_completed(futures):
            rc, output = future.result()
            # clang-tidy exits 0 with pure "N warnings suppressed" noise;
            # real findings always carry a "warning:"/"error:" line.
            noisy = any(marker in output
                        for marker in ("warning:", "error:"))
            if rc != 0 or noisy:
                failures += 1
                rel = os.path.relpath(futures[future], REPO_ROOT)
                sys.stderr.write("---- %s\n%s\n" % (rel, output.strip()))

    label = "clang-tidy" if mode == "clang-tidy" else "gcc-fallback"
    if failures:
        print("lint(%s): FAIL (%d of %d TUs with diagnostics)"
              % (label, failures, len(jobs)))
        return 1
    print("lint(%s): PASS (%d TUs clean)" % (label, len(jobs)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
