#!/usr/bin/env python3
"""prom_check: validate a Prometheus text-exposition (0.0.4) file.

The obs::Exporter rewrites a text-exposition file every --metrics-interval
seconds; this checker is the contract for that output, run by
`scripts/check.sh --obs` against a real export. It enforces what a scraper
would rely on:

  * every non-empty line is a comment (`# TYPE` / `# HELP`) or a sample;
  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
  * a `# TYPE` line precedes the first sample of its metric, and no metric
    is typed twice;
  * sample values parse as floats (+Inf/-Inf/NaN allowed);
  * for every histogram: `_bucket{le="..."}` series has strictly ascending
    `le` thresholds, cumulative (nondecreasing) counts, ends with
    le="+Inf", the +Inf bucket equals `_count`, and both `_sum` and
    `_count` samples exist.

Usage:
    python3 tools/lint/prom_check.py FILE [--min-samples N]
    python3 tools/lint/prom_check.py --self-test

Exit status: 0 valid, 1 violations found, 2 usage error.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$")
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_value(text):
    """Float per the exposition format; returns None when unparseable."""
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def base_metric(name):
    """Strip the histogram/summary sample suffix to the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_text(text, min_samples=1):
    """Return a list of 'line N: message' violations (empty == valid)."""
    errors = []
    types = {}            # metric family -> declared type
    sampled = set()       # families that already emitted a sample
    histograms = {}       # family -> {"buckets": [(le, v)], "sum": v|None,
                          #            "count": v|None}
    samples = 0

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue

        def err(message, lineno=lineno):
            errors.append("line %d: %s" % (lineno, message))

        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue  # free-form comment: legal, ignored
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in TYPES:
                    err("malformed TYPE line: %r" % line)
                    continue
                name = parts[2]
                if not NAME_RE.match(name):
                    err("invalid metric name in TYPE line: %r" % name)
                elif name in types:
                    err("duplicate TYPE for metric %r" % name)
                elif name in sampled:
                    err("TYPE for %r appears after its samples" % name)
                else:
                    types[name] = parts[3]
                    if parts[3] == "histogram":
                        histograms[name] = {
                            "buckets": [], "sum": None, "count": None}
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            err("unparseable sample line: %r" % line)
            continue
        name = match.group("name")
        family = base_metric(name)
        if family not in types and name not in types:
            err("sample %r has no preceding TYPE line" % name)
            family = name  # keep scanning; avoid cascading errors
        value = parse_value(match.group("value"))
        if value is None:
            err("unparseable value %r for %r" % (match.group("value"), name))
            continue
        samples += 1
        sampled.add(family if family in types else name)

        labels = {}
        if match.group("labels"):
            for part in match.group("labels").split(","):
                lm = LABEL_RE.match(part.strip())
                if not lm:
                    err("malformed label %r on %r" % (part, name))
                    break
                labels[lm.group("key")] = lm.group("val")

        if family in histograms:
            hist = histograms[family]
            if name == family + "_bucket":
                if "le" not in labels:
                    err("bucket sample for %r lacks an le label" % family)
                    continue
                le = parse_value(labels["le"])
                if le is None and labels["le"] != "+Inf":
                    err("bucket le=%r is not a float" % labels["le"])
                    continue
                hist["buckets"].append((le, value, lineno))
            elif name == family + "_sum":
                hist["sum"] = value
            elif name == family + "_count":
                hist["count"] = value
            elif name == family:
                err("bare sample %r for a histogram-typed metric" % name)

    for family, hist in sorted(histograms.items()):
        if family not in sampled:
            continue  # typed but never sampled: legal
        buckets = hist["buckets"]
        if not buckets:
            errors.append("histogram %r has no _bucket series" % family)
            continue
        for (lo, _, _), (hi, _, lineno) in zip(buckets, buckets[1:]):
            if not hi > lo:
                errors.append(
                    "line %d: histogram %r le thresholds not ascending "
                    "(%r after %r)" % (lineno, family, hi, lo))
        for (_, lo, _), (_, hi, lineno) in zip(buckets, buckets[1:]):
            if hi < lo:
                errors.append(
                    "line %d: histogram %r bucket counts not cumulative "
                    "(%r after %r)" % (lineno, family, hi, lo))
        if buckets[-1][0] != math.inf:
            errors.append(
                "histogram %r bucket series does not end with le=\"+Inf\""
                % family)
        if hist["count"] is None:
            errors.append("histogram %r lacks a _count sample" % family)
        elif buckets[-1][0] == math.inf and buckets[-1][1] != hist["count"]:
            errors.append(
                "histogram %r +Inf bucket (%r) != _count (%r)"
                % (family, buckets[-1][1], hist["count"]))
        if hist["sum"] is None:
            errors.append("histogram %r lacks a _sum sample" % family)

    if samples < min_samples:
        errors.append(
            "only %d samples found (expected at least %d)"
            % (samples, min_samples))
    return errors


# ---------------------------------------------------------------------------
# Self-test fixtures: each is (description, text, expected_error_fragment or
# None for valid).

SELF_TESTS = [
    ("valid counters, gauges, histogram", """\
# TYPE sectorpack_srv_requests_ok counter
sectorpack_srv_requests_ok 240
# TYPE sectorpack_slo_p99_ms gauge
sectorpack_slo_p99_ms 11.9
# TYPE sectorpack_srv_request_ms histogram
sectorpack_srv_request_ms_bucket{le="0.5"} 3
sectorpack_srv_request_ms_bucket{le="1"} 5
sectorpack_srv_request_ms_bucket{le="+Inf"} 7
sectorpack_srv_request_ms_sum 12.25
sectorpack_srv_request_ms_count 7
""", None),
    ("sample before TYPE", """\
sectorpack_orphan 1
""", "no preceding TYPE"),
    ("duplicate TYPE", """\
# TYPE sectorpack_a counter
# TYPE sectorpack_a counter
sectorpack_a 1
""", "duplicate TYPE"),
    ("unparseable value", """\
# TYPE sectorpack_a counter
sectorpack_a banana
""", "unparseable value"),
    ("le thresholds out of order", """\
# TYPE sectorpack_h histogram
sectorpack_h_bucket{le="2"} 1
sectorpack_h_bucket{le="1"} 2
sectorpack_h_bucket{le="+Inf"} 2
sectorpack_h_sum 3
sectorpack_h_count 2
""", "not ascending"),
    ("non-cumulative bucket counts", """\
# TYPE sectorpack_h histogram
sectorpack_h_bucket{le="1"} 5
sectorpack_h_bucket{le="2"} 3
sectorpack_h_bucket{le="+Inf"} 5
sectorpack_h_sum 3
sectorpack_h_count 5
""", "not cumulative"),
    ("missing +Inf bucket", """\
# TYPE sectorpack_h histogram
sectorpack_h_bucket{le="1"} 5
sectorpack_h_sum 3
sectorpack_h_count 5
""", "does not end with"),
    ("+Inf bucket disagrees with _count", """\
# TYPE sectorpack_h histogram
sectorpack_h_bucket{le="+Inf"} 4
sectorpack_h_sum 3
sectorpack_h_count 5
""", "!= _count"),
    ("histogram missing _sum", """\
# TYPE sectorpack_h histogram
sectorpack_h_bucket{le="+Inf"} 5
sectorpack_h_count 5
""", "lacks a _sum"),
    ("invalid metric name", """\
# TYPE 9starts_with_digit counter
9starts_with_digit 1
""", "invalid metric name"),
    ("min-samples floor", "", "only 0 samples"),
]


def self_test():
    failures = 0
    for description, text, expected in SELF_TESTS:
        errors = check_text(text, min_samples=1)
        if expected is None:
            if errors:
                print("SELF-TEST FAIL (%s): unexpected errors %r"
                      % (description, errors))
                failures += 1
        else:
            if not any(expected in e for e in errors):
                print("SELF-TEST FAIL (%s): wanted %r in %r"
                      % (description, expected, errors))
                failures += 1
    if failures:
        return 1
    print("prom_check self-test OK (%d cases)" % len(SELF_TESTS))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", nargs="?", help="exposition file to check")
    parser.add_argument("--min-samples", type=int, default=1,
                        help="fail unless at least N samples are present")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded fixture suite and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.file:
        parser.error("FILE is required unless --self-test is given")
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print("prom_check: cannot read %s: %s" % (args.file, exc),
              file=sys.stderr)
        return 2
    errors = check_text(text, min_samples=args.min_samples)
    for error in errors:
        print("%s: %s" % (args.file, error))
    if errors:
        return 1
    print("%s: valid Prometheus exposition" % args.file)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
