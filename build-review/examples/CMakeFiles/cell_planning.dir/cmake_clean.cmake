file(REMOVE_RECURSE
  "CMakeFiles/cell_planning.dir/cell_planning.cpp.o"
  "CMakeFiles/cell_planning.dir/cell_planning.cpp.o.d"
  "cell_planning"
  "cell_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
