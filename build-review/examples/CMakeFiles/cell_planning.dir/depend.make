# Empty dependencies file for cell_planning.
# This may be replaced when dependencies are built.
