file(REMOVE_RECURSE
  "CMakeFiles/revenue_management.dir/revenue_management.cpp.o"
  "CMakeFiles/revenue_management.dir/revenue_management.cpp.o.d"
  "revenue_management"
  "revenue_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revenue_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
