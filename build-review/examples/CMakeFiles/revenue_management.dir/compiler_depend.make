# Empty compiler generated dependencies file for revenue_management.
# This may be replaced when dependencies are built.
