file(REMOVE_RECURSE
  "CMakeFiles/beam_width_study.dir/beam_width_study.cpp.o"
  "CMakeFiles/beam_width_study.dir/beam_width_study.cpp.o.d"
  "beam_width_study"
  "beam_width_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_width_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
