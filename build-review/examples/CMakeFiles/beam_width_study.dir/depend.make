# Empty dependencies file for beam_width_study.
# This may be replaced when dependencies are built.
