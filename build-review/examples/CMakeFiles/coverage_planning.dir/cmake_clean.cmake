file(REMOVE_RECURSE
  "CMakeFiles/coverage_planning.dir/coverage_planning.cpp.o"
  "CMakeFiles/coverage_planning.dir/coverage_planning.cpp.o.d"
  "coverage_planning"
  "coverage_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
