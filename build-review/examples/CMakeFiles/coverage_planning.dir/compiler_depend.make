# Empty compiler generated dependencies file for coverage_planning.
# This may be replaced when dependencies are built.
