# Empty compiler generated dependencies file for adversarial_demo.
# This may be replaced when dependencies are built.
