file(REMOVE_RECURSE
  "CMakeFiles/adversarial_demo.dir/adversarial_demo.cpp.o"
  "CMakeFiles/adversarial_demo.dir/adversarial_demo.cpp.o.d"
  "adversarial_demo"
  "adversarial_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
