# Empty compiler generated dependencies file for test_assign.
# This may be replaced when dependencies are built.
