file(REMOVE_RECURSE
  "CMakeFiles/test_assign.dir/test_assign.cpp.o"
  "CMakeFiles/test_assign.dir/test_assign.cpp.o.d"
  "test_assign"
  "test_assign.pdb"
  "test_assign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
