file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz.dir/test_fuzz.cpp.o"
  "CMakeFiles/test_fuzz.dir/test_fuzz.cpp.o.d"
  "test_fuzz"
  "test_fuzz.pdb"
  "test_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
