# Empty dependencies file for test_single.
# This may be replaced when dependencies are built.
