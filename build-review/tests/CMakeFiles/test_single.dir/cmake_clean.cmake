file(REMOVE_RECURSE
  "CMakeFiles/test_single.dir/test_single.cpp.o"
  "CMakeFiles/test_single.dir/test_single.cpp.o.d"
  "test_single"
  "test_single.pdb"
  "test_single[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
