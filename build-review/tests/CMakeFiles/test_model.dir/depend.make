# Empty dependencies file for test_model.
# This may be replaced when dependencies are built.
