file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/test_model.cpp.o"
  "CMakeFiles/test_model.dir/test_model.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
