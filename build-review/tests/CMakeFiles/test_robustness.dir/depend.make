# Empty dependencies file for test_robustness.
# This may be replaced when dependencies are built.
