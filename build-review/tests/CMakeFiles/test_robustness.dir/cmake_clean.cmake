file(REMOVE_RECURSE
  "CMakeFiles/test_robustness.dir/test_robustness.cpp.o"
  "CMakeFiles/test_robustness.dir/test_robustness.cpp.o.d"
  "test_robustness"
  "test_robustness.pdb"
  "test_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
