file(REMOVE_RECURSE
  "CMakeFiles/test_annulus.dir/test_annulus.cpp.o"
  "CMakeFiles/test_annulus.dir/test_annulus.cpp.o.d"
  "test_annulus"
  "test_annulus.pdb"
  "test_annulus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
