# Empty dependencies file for test_annulus.
# This may be replaced when dependencies are built.
