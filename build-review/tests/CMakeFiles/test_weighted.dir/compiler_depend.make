# Empty compiler generated dependencies file for test_weighted.
# This may be replaced when dependencies are built.
