file(REMOVE_RECURSE
  "CMakeFiles/test_weighted.dir/test_weighted.cpp.o"
  "CMakeFiles/test_weighted.dir/test_weighted.cpp.o.d"
  "test_weighted"
  "test_weighted.pdb"
  "test_weighted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
