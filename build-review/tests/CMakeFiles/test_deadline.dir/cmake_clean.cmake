file(REMOVE_RECURSE
  "CMakeFiles/test_deadline.dir/test_deadline.cpp.o"
  "CMakeFiles/test_deadline.dir/test_deadline.cpp.o.d"
  "test_deadline"
  "test_deadline.pdb"
  "test_deadline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
