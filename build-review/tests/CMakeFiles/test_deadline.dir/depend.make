# Empty dependencies file for test_deadline.
# This may be replaced when dependencies are built.
