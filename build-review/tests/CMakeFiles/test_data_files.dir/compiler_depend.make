# Empty compiler generated dependencies file for test_data_files.
# This may be replaced when dependencies are built.
