file(REMOVE_RECURSE
  "CMakeFiles/test_data_files.dir/test_data_files.cpp.o"
  "CMakeFiles/test_data_files.dir/test_data_files.cpp.o.d"
  "test_data_files"
  "test_data_files.pdb"
  "test_data_files[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
