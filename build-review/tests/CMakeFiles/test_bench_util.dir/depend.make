# Empty dependencies file for test_bench_util.
# This may be replaced when dependencies are built.
