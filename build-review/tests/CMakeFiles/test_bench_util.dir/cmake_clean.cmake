file(REMOVE_RECURSE
  "CMakeFiles/test_bench_util.dir/test_bench_util.cpp.o"
  "CMakeFiles/test_bench_util.dir/test_bench_util.cpp.o.d"
  "test_bench_util"
  "test_bench_util.pdb"
  "test_bench_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
