file(REMOVE_RECURSE
  "CMakeFiles/test_annealing.dir/test_annealing.cpp.o"
  "CMakeFiles/test_annealing.dir/test_annealing.cpp.o.d"
  "test_annealing"
  "test_annealing.pdb"
  "test_annealing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
