# Empty compiler generated dependencies file for test_annealing.
# This may be replaced when dependencies are built.
