file(REMOVE_RECURSE
  "CMakeFiles/test_geom_vec2.dir/test_geom_vec2.cpp.o"
  "CMakeFiles/test_geom_vec2.dir/test_geom_vec2.cpp.o.d"
  "test_geom_vec2"
  "test_geom_vec2.pdb"
  "test_geom_vec2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_vec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
