# Empty compiler generated dependencies file for test_geom_vec2.
# This may be replaced when dependencies are built.
