file(REMOVE_RECURSE
  "CMakeFiles/test_par.dir/test_par.cpp.o"
  "CMakeFiles/test_par.dir/test_par.cpp.o.d"
  "test_par"
  "test_par.pdb"
  "test_par[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
