# Empty dependencies file for test_par.
# This may be replaced when dependencies are built.
