file(REMOVE_RECURSE
  "CMakeFiles/test_cover.dir/test_cover.cpp.o"
  "CMakeFiles/test_cover.dir/test_cover.cpp.o.d"
  "test_cover"
  "test_cover.pdb"
  "test_cover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
