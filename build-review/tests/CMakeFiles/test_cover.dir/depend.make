# Empty dependencies file for test_cover.
# This may be replaced when dependencies are built.
