# Empty compiler generated dependencies file for test_incremental.
# This may be replaced when dependencies are built.
