file(REMOVE_RECURSE
  "CMakeFiles/test_incremental.dir/test_incremental.cpp.o"
  "CMakeFiles/test_incremental.dir/test_incremental.cpp.o.d"
  "test_incremental"
  "test_incremental.pdb"
  "test_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
