file(REMOVE_RECURSE
  "CMakeFiles/test_viz.dir/test_viz.cpp.o"
  "CMakeFiles/test_viz.dir/test_viz.cpp.o.d"
  "test_viz"
  "test_viz.pdb"
  "test_viz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
