# Empty compiler generated dependencies file for test_viz.
# This may be replaced when dependencies are built.
