file(REMOVE_RECURSE
  "CMakeFiles/test_bounds.dir/test_bounds.cpp.o"
  "CMakeFiles/test_bounds.dir/test_bounds.cpp.o.d"
  "test_bounds"
  "test_bounds.pdb"
  "test_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
