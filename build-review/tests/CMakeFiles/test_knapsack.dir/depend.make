# Empty dependencies file for test_knapsack.
# This may be replaced when dependencies are built.
