file(REMOVE_RECURSE
  "CMakeFiles/test_knapsack.dir/test_knapsack.cpp.o"
  "CMakeFiles/test_knapsack.dir/test_knapsack.cpp.o.d"
  "test_knapsack"
  "test_knapsack.pdb"
  "test_knapsack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
