file(REMOVE_RECURSE
  "CMakeFiles/test_model_io.dir/test_model_io.cpp.o"
  "CMakeFiles/test_model_io.dir/test_model_io.cpp.o.d"
  "test_model_io"
  "test_model_io.pdb"
  "test_model_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
