# Empty compiler generated dependencies file for test_model_io.
# This may be replaced when dependencies are built.
