file(REMOVE_RECURSE
  "CMakeFiles/test_geom_sweep.dir/test_geom_sweep.cpp.o"
  "CMakeFiles/test_geom_sweep.dir/test_geom_sweep.cpp.o.d"
  "test_geom_sweep"
  "test_geom_sweep.pdb"
  "test_geom_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
