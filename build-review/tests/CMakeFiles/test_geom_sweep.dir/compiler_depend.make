# Empty compiler generated dependencies file for test_geom_sweep.
# This may be replaced when dependencies are built.
