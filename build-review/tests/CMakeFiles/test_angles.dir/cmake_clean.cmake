file(REMOVE_RECURSE
  "CMakeFiles/test_angles.dir/test_angles.cpp.o"
  "CMakeFiles/test_angles.dir/test_angles.cpp.o.d"
  "test_angles"
  "test_angles.pdb"
  "test_angles[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_angles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
