file(REMOVE_RECURSE
  "CMakeFiles/test_sectors.dir/test_sectors.cpp.o"
  "CMakeFiles/test_sectors.dir/test_sectors.cpp.o.d"
  "test_sectors"
  "test_sectors.pdb"
  "test_sectors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
