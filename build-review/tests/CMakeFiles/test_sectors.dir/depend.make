# Empty dependencies file for test_sectors.
# This may be replaced when dependencies are built.
