file(REMOVE_RECURSE
  "CMakeFiles/test_obs.dir/test_obs.cpp.o"
  "CMakeFiles/test_obs.dir/test_obs.cpp.o.d"
  "test_obs"
  "test_obs.pdb"
  "test_obs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
