# Empty compiler generated dependencies file for test_geom_arc.
# This may be replaced when dependencies are built.
