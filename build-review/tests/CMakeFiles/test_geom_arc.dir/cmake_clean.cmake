file(REMOVE_RECURSE
  "CMakeFiles/test_geom_arc.dir/test_geom_arc.cpp.o"
  "CMakeFiles/test_geom_arc.dir/test_geom_arc.cpp.o.d"
  "test_geom_arc"
  "test_geom_arc.pdb"
  "test_geom_arc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_arc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
