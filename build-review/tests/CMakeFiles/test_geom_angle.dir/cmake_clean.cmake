file(REMOVE_RECURSE
  "CMakeFiles/test_geom_angle.dir/test_geom_angle.cpp.o"
  "CMakeFiles/test_geom_angle.dir/test_geom_angle.cpp.o.d"
  "test_geom_angle"
  "test_geom_angle.pdb"
  "test_geom_angle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
