# Empty dependencies file for test_geom_angle.
# This may be replaced when dependencies are built.
