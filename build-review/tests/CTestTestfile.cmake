# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_geom_angle[1]_include.cmake")
include("/root/repo/build-review/tests/test_geom_arc[1]_include.cmake")
include("/root/repo/build-review/tests/test_geom_vec2[1]_include.cmake")
include("/root/repo/build-review/tests/test_geom_sweep[1]_include.cmake")
include("/root/repo/build-review/tests/test_model[1]_include.cmake")
include("/root/repo/build-review/tests/test_model_io[1]_include.cmake")
include("/root/repo/build-review/tests/test_knapsack[1]_include.cmake")
include("/root/repo/build-review/tests/test_incremental[1]_include.cmake")
include("/root/repo/build-review/tests/test_assign[1]_include.cmake")
include("/root/repo/build-review/tests/test_single[1]_include.cmake")
include("/root/repo/build-review/tests/test_angles[1]_include.cmake")
include("/root/repo/build-review/tests/test_sectors[1]_include.cmake")
include("/root/repo/build-review/tests/test_bounds[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs[1]_include.cmake")
include("/root/repo/build-review/tests/test_par[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_cover[1]_include.cmake")
include("/root/repo/build-review/tests/test_annealing[1]_include.cmake")
include("/root/repo/build-review/tests/test_viz[1]_include.cmake")
include("/root/repo/build-review/tests/test_weighted[1]_include.cmake")
include("/root/repo/build-review/tests/test_annulus[1]_include.cmake")
include("/root/repo/build-review/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build-review/tests/test_robustness[1]_include.cmake")
include("/root/repo/build-review/tests/test_deadline[1]_include.cmake")
include("/root/repo/build-review/tests/test_bench_util[1]_include.cmake")
include("/root/repo/build-review/tests/test_data_files[1]_include.cmake")
