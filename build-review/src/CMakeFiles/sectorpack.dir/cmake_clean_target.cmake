file(REMOVE_RECURSE
  "libsectorpack.a"
)
