
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/angles/capacitated.cpp" "src/CMakeFiles/sectorpack.dir/angles/capacitated.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/angles/capacitated.cpp.o.d"
  "/root/repo/src/angles/uncapacitated.cpp" "src/CMakeFiles/sectorpack.dir/angles/uncapacitated.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/angles/uncapacitated.cpp.o.d"
  "/root/repo/src/assign/eligibility.cpp" "src/CMakeFiles/sectorpack.dir/assign/eligibility.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/assign/eligibility.cpp.o.d"
  "/root/repo/src/assign/exact.cpp" "src/CMakeFiles/sectorpack.dir/assign/exact.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/assign/exact.cpp.o.d"
  "/root/repo/src/assign/greedy.cpp" "src/CMakeFiles/sectorpack.dir/assign/greedy.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/assign/greedy.cpp.o.d"
  "/root/repo/src/assign/lp_rounding.cpp" "src/CMakeFiles/sectorpack.dir/assign/lp_rounding.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/assign/lp_rounding.cpp.o.d"
  "/root/repo/src/assign/successive.cpp" "src/CMakeFiles/sectorpack.dir/assign/successive.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/assign/successive.cpp.o.d"
  "/root/repo/src/bench_util/stats.cpp" "src/CMakeFiles/sectorpack.dir/bench_util/stats.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/bench_util/stats.cpp.o.d"
  "/root/repo/src/bench_util/table.cpp" "src/CMakeFiles/sectorpack.dir/bench_util/table.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/bench_util/table.cpp.o.d"
  "/root/repo/src/bounds/dinic.cpp" "src/CMakeFiles/sectorpack.dir/bounds/dinic.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/bounds/dinic.cpp.o.d"
  "/root/repo/src/bounds/upper.cpp" "src/CMakeFiles/sectorpack.dir/bounds/upper.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/bounds/upper.cpp.o.d"
  "/root/repo/src/core/deadline.cpp" "src/CMakeFiles/sectorpack.dir/core/deadline.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/core/deadline.cpp.o.d"
  "/root/repo/src/cover/cover.cpp" "src/CMakeFiles/sectorpack.dir/cover/cover.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/cover/cover.cpp.o.d"
  "/root/repo/src/geom/angle.cpp" "src/CMakeFiles/sectorpack.dir/geom/angle.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/geom/angle.cpp.o.d"
  "/root/repo/src/geom/arc.cpp" "src/CMakeFiles/sectorpack.dir/geom/arc.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/geom/arc.cpp.o.d"
  "/root/repo/src/geom/sweep.cpp" "src/CMakeFiles/sectorpack.dir/geom/sweep.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/geom/sweep.cpp.o.d"
  "/root/repo/src/knapsack/branch_bound.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/branch_bound.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/branch_bound.cpp.o.d"
  "/root/repo/src/knapsack/dp.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/dp.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/dp.cpp.o.d"
  "/root/repo/src/knapsack/fptas.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/fptas.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/fptas.cpp.o.d"
  "/root/repo/src/knapsack/fractional.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/fractional.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/fractional.cpp.o.d"
  "/root/repo/src/knapsack/greedy.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/greedy.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/greedy.cpp.o.d"
  "/root/repo/src/knapsack/incremental.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/incremental.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/incremental.cpp.o.d"
  "/root/repo/src/knapsack/mim.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/mim.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/mim.cpp.o.d"
  "/root/repo/src/knapsack/oracle.cpp" "src/CMakeFiles/sectorpack.dir/knapsack/oracle.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/knapsack/oracle.cpp.o.d"
  "/root/repo/src/model/instance.cpp" "src/CMakeFiles/sectorpack.dir/model/instance.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/model/instance.cpp.o.d"
  "/root/repo/src/model/io.cpp" "src/CMakeFiles/sectorpack.dir/model/io.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/model/io.cpp.o.d"
  "/root/repo/src/model/solution.cpp" "src/CMakeFiles/sectorpack.dir/model/solution.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/model/solution.cpp.o.d"
  "/root/repo/src/model/validate.cpp" "src/CMakeFiles/sectorpack.dir/model/validate.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/model/validate.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/sectorpack.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/sectorpack.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/obs/trace.cpp.o.d"
  "/root/repo/src/par/parallel_for.cpp" "src/CMakeFiles/sectorpack.dir/par/parallel_for.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/par/parallel_for.cpp.o.d"
  "/root/repo/src/par/thread_pool.cpp" "src/CMakeFiles/sectorpack.dir/par/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/par/thread_pool.cpp.o.d"
  "/root/repo/src/sectors/annealing.cpp" "src/CMakeFiles/sectorpack.dir/sectors/annealing.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sectors/annealing.cpp.o.d"
  "/root/repo/src/sectors/exact.cpp" "src/CMakeFiles/sectorpack.dir/sectors/exact.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sectors/exact.cpp.o.d"
  "/root/repo/src/sectors/greedy.cpp" "src/CMakeFiles/sectorpack.dir/sectors/greedy.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sectors/greedy.cpp.o.d"
  "/root/repo/src/sectors/local_search.cpp" "src/CMakeFiles/sectorpack.dir/sectors/local_search.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sectors/local_search.cpp.o.d"
  "/root/repo/src/sim/adversarial.cpp" "src/CMakeFiles/sectorpack.dir/sim/adversarial.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sim/adversarial.cpp.o.d"
  "/root/repo/src/sim/generators.cpp" "src/CMakeFiles/sectorpack.dir/sim/generators.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sim/generators.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/sectorpack.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/sim/rng.cpp.o.d"
  "/root/repo/src/single/candidates.cpp" "src/CMakeFiles/sectorpack.dir/single/candidates.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/single/candidates.cpp.o.d"
  "/root/repo/src/single/solver.cpp" "src/CMakeFiles/sectorpack.dir/single/solver.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/single/solver.cpp.o.d"
  "/root/repo/src/single/uniform.cpp" "src/CMakeFiles/sectorpack.dir/single/uniform.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/single/uniform.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/CMakeFiles/sectorpack.dir/viz/svg.cpp.o" "gcc" "src/CMakeFiles/sectorpack.dir/viz/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
