# Empty dependencies file for sectorpack.
# This may be replaced when dependencies are built.
