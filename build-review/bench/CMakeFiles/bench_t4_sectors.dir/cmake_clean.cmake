file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_sectors.dir/bench_t4_sectors.cpp.o"
  "CMakeFiles/bench_t4_sectors.dir/bench_t4_sectors.cpp.o.d"
  "bench_t4_sectors"
  "bench_t4_sectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_sectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
