# Empty compiler generated dependencies file for bench_t4_sectors.
# This may be replaced when dependencies are built.
