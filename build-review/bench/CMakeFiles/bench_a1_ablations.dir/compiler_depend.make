# Empty compiler generated dependencies file for bench_a1_ablations.
# This may be replaced when dependencies are built.
