file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_ablations.dir/bench_a1_ablations.cpp.o"
  "CMakeFiles/bench_a1_ablations.dir/bench_a1_ablations.cpp.o.d"
  "bench_a1_ablations"
  "bench_a1_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
