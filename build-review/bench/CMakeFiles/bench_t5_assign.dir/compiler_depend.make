# Empty compiler generated dependencies file for bench_t5_assign.
# This may be replaced when dependencies are built.
