file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_assign.dir/bench_t5_assign.cpp.o"
  "CMakeFiles/bench_t5_assign.dir/bench_t5_assign.cpp.o.d"
  "bench_t5_assign"
  "bench_t5_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
