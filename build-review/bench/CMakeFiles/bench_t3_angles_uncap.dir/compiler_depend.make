# Empty compiler generated dependencies file for bench_t3_angles_uncap.
# This may be replaced when dependencies are built.
