file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_angles_uncap.dir/bench_t3_angles_uncap.cpp.o"
  "CMakeFiles/bench_t3_angles_uncap.dir/bench_t3_angles_uncap.cpp.o.d"
  "bench_t3_angles_uncap"
  "bench_t3_angles_uncap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_angles_uncap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
