file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_weighted.dir/bench_t8_weighted.cpp.o"
  "CMakeFiles/bench_t8_weighted.dir/bench_t8_weighted.cpp.o.d"
  "bench_t8_weighted"
  "bench_t8_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
