# Empty dependencies file for bench_t8_weighted.
# This may be replaced when dependencies are built.
