file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_scaling.dir/bench_f5_scaling.cpp.o"
  "CMakeFiles/bench_f5_scaling.dir/bench_f5_scaling.cpp.o.d"
  "bench_f5_scaling"
  "bench_f5_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
