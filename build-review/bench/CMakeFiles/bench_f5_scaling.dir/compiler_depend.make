# Empty compiler generated dependencies file for bench_f5_scaling.
# This may be replaced when dependencies are built.
