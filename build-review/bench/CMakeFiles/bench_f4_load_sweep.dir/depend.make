# Empty dependencies file for bench_f4_load_sweep.
# This may be replaced when dependencies are built.
