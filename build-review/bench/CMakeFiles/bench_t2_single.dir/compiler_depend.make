# Empty compiler generated dependencies file for bench_t2_single.
# This may be replaced when dependencies are built.
