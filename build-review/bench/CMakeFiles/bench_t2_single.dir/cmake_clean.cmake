file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_single.dir/bench_t2_single.cpp.o"
  "CMakeFiles/bench_t2_single.dir/bench_t2_single.cpp.o.d"
  "bench_t2_single"
  "bench_t2_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
