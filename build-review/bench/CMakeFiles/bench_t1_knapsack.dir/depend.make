# Empty dependencies file for bench_t1_knapsack.
# This may be replaced when dependencies are built.
