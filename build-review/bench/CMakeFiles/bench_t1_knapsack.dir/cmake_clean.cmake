file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_knapsack.dir/bench_t1_knapsack.cpp.o"
  "CMakeFiles/bench_t1_knapsack.dir/bench_t1_knapsack.cpp.o.d"
  "bench_t1_knapsack"
  "bench_t1_knapsack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_knapsack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
