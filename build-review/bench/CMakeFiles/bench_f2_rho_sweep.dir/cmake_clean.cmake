file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_rho_sweep.dir/bench_f2_rho_sweep.cpp.o"
  "CMakeFiles/bench_f2_rho_sweep.dir/bench_f2_rho_sweep.cpp.o.d"
  "bench_f2_rho_sweep"
  "bench_f2_rho_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_rho_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
