# Empty dependencies file for bench_f2_rho_sweep.
# This may be replaced when dependencies are built.
