# Empty compiler generated dependencies file for bench_t6_adversarial.
# This may be replaced when dependencies are built.
