file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_adversarial.dir/bench_t6_adversarial.cpp.o"
  "CMakeFiles/bench_t6_adversarial.dir/bench_t6_adversarial.cpp.o.d"
  "bench_t6_adversarial"
  "bench_t6_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
