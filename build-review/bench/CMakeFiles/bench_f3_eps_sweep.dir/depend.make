# Empty dependencies file for bench_f3_eps_sweep.
# This may be replaced when dependencies are built.
