file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_eps_sweep.dir/bench_f3_eps_sweep.cpp.o"
  "CMakeFiles/bench_f3_eps_sweep.dir/bench_f3_eps_sweep.cpp.o.d"
  "bench_f3_eps_sweep"
  "bench_f3_eps_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_eps_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
