file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_cover.dir/bench_t7_cover.cpp.o"
  "CMakeFiles/bench_t7_cover.dir/bench_t7_cover.cpp.o.d"
  "bench_t7_cover"
  "bench_t7_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
