# Empty compiler generated dependencies file for bench_t7_cover.
# This may be replaced when dependencies are built.
