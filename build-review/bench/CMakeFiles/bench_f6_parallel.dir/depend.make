# Empty dependencies file for bench_f6_parallel.
# This may be replaced when dependencies are built.
