file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_parallel.dir/bench_f6_parallel.cpp.o"
  "CMakeFiles/bench_f6_parallel.dir/bench_f6_parallel.cpp.o.d"
  "bench_f6_parallel"
  "bench_f6_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
