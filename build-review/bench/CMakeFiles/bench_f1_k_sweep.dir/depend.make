# Empty dependencies file for bench_f1_k_sweep.
# This may be replaced when dependencies are built.
