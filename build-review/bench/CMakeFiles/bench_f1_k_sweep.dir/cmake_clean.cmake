file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_k_sweep.dir/bench_f1_k_sweep.cpp.o"
  "CMakeFiles/bench_f1_k_sweep.dir/bench_f1_k_sweep.cpp.o.d"
  "bench_f1_k_sweep"
  "bench_f1_k_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
