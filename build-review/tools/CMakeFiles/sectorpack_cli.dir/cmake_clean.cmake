file(REMOVE_RECURSE
  "CMakeFiles/sectorpack_cli.dir/sectorpack_cli.cpp.o"
  "CMakeFiles/sectorpack_cli.dir/sectorpack_cli.cpp.o.d"
  "sectorpack"
  "sectorpack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sectorpack_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
