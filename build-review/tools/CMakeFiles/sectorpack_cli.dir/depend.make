# Empty dependencies file for sectorpack_cli.
# This may be replaced when dependencies are built.
