// Tests for the serving-grade telemetry layer: Prometheus text exposition
// (src/obs/exporter), the schema-versioned stats envelope, the periodic
// Exporter thread, and the rolling-window SloTracker.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/exporter.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/slo.hpp"
#include "tests/json_test_util.hpp"

using namespace sectorpack;
using testjson::JsonObject;
using testjson::JsonParser;
using testjson::JsonValue;

namespace {

class ObsExportTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_enabled(true); }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse "name value" / "name{le=\"x\"} value" exposition lines for one
/// metric; returns (le, value) pairs for its _bucket series.
std::vector<std::pair<std::string, double>> bucket_series(
    const std::string& text, const std::string& metric) {
  std::vector<std::pair<std::string, double>> out;
  std::istringstream is(text);
  std::string line;
  const std::string prefix = metric + "_bucket{le=\"";
  while (std::getline(is, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t close = line.find("\"}", prefix.size());
    out.emplace_back(line.substr(prefix.size(), close - prefix.size()),
                     std::stod(line.substr(close + 2)));
  }
  return out;
}

}  // namespace

TEST_F(ObsExportTest, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::prometheus_name("srv.request_ms"),
            "sectorpack_srv_request_ms");
  EXPECT_EQ(obs::prometheus_name("quality.local-search.solves"),
            "sectorpack_quality_local_search_solves");
  EXPECT_EQ(obs::prometheus_name("ok_name_09"), "sectorpack_ok_name_09");
}

TEST_F(ObsExportTest, ToPrometheusCountersAndGauges) {
  obs::Registry reg;
  reg.counter("a.count").add(7);
  reg.gauge("b.gauge").set(-1.5);
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE sectorpack_a_count counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("sectorpack_a_count 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sectorpack_b_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("sectorpack_b_gauge -1.5\n"), std::string::npos);
}

TEST_F(ObsExportTest, ToPrometheusHistogramIsCumulativeWithInf) {
  obs::Registry reg;
  const obs::HdrHistogram h = reg.hdr_histogram("c.hist_ms");
  for (double v : {0.5, 1.0, 3.0, 100.0, 100.0}) h.observe(v);
  const std::string text = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE sectorpack_c_hist_ms histogram\n"),
            std::string::npos);
  const auto series = bucket_series(text, "sectorpack_c_hist_ms");
  ASSERT_GE(series.size(), 2u);
  // Cumulative and nondecreasing; the final +Inf bucket equals _count.
  double prev = 0.0;
  for (const auto& [le, value] : series) {
    EXPECT_GE(value, prev) << "le=" << le;
    prev = value;
  }
  EXPECT_EQ(series.back().first, "+Inf");
  EXPECT_DOUBLE_EQ(series.back().second, 5.0);
  EXPECT_NE(text.find("sectorpack_c_hist_ms_count 5\n"), std::string::npos);
  EXPECT_NE(text.find("sectorpack_c_hist_ms_sum 204.5\n"), std::string::npos);
}

TEST_F(ObsExportTest, StatsEnvelopeCarriesVersionTimestampAndSnapshot) {
  obs::Registry reg;
  reg.counter("env.count").add(3);
  const std::string json = obs::stats_envelope_json(reg.snapshot(), 12.5, 4);
  const JsonValue root = JsonParser(json).parse();
  const JsonObject& obj = root.object();
  EXPECT_DOUBLE_EQ(obj.at("schema_version").number(),
                   static_cast<double>(obs::kStatsSchemaVersion));
  EXPECT_DOUBLE_EQ(obj.at("wall_ms").number(), 12.5);
  EXPECT_DOUBLE_EQ(obj.at("seq").number(), 4.0);
  // ISO-8601 UTC: "YYYY-MM-DDThh:mm:ss.mmmZ".
  const std::string& at = obj.at("emitted_at").str();
  ASSERT_EQ(at.size(), 24u);
  EXPECT_EQ(at[4], '-');
  EXPECT_EQ(at[10], 'T');
  EXPECT_EQ(at[19], '.');
  EXPECT_EQ(at.back(), 'Z');
  // The registry snapshot fields are spliced in unchanged.
  EXPECT_DOUBLE_EQ(obj.at("counters").object().at("env.count").number(), 3.0);
  // Without a seq, the key is omitted entirely.
  const JsonValue no_seq =
      JsonParser(obs::stats_envelope_json(reg.snapshot(), 1.0)).parse();
  EXPECT_EQ(no_seq.object().count("seq"), 0u);
}

TEST_F(ObsExportTest, ExporterWritesJsonlAndPromAndStopsCleanly) {
  obs::Registry reg;
  reg.counter("exp.count").add(11);
  const std::string dir = ::testing::TempDir();
  const std::string prom = dir + "obs_exporter_test.prom";
  const std::string jsonl = dir + "obs_exporter_test.jsonl";
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());
  {
    obs::ExporterConfig config;
    config.interval_seconds = 0.02;
    config.prom_path = prom;
    config.jsonl_path = jsonl;
    obs::Exporter exporter(config, &reg);
    // Let at least one periodic tick fire before the final stop() export.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    exporter.stop();
    EXPECT_TRUE(exporter.healthy());
    EXPECT_GE(exporter.ticks(), 2u);
    exporter.stop();  // idempotent
  }
  // Prometheus file holds the latest full exposition.
  const std::string text = slurp(prom);
  EXPECT_NE(text.find("sectorpack_exp_count 11\n"), std::string::npos);
  // JSONL: one valid envelope per tick, seq strictly increasing from 0.
  std::ifstream in(jsonl);
  std::string line;
  long expected_seq = 0;
  while (std::getline(in, line)) {
    const JsonValue root = JsonParser(line).parse();
    EXPECT_DOUBLE_EQ(root.object().at("schema_version").number(),
                     static_cast<double>(obs::kStatsSchemaVersion));
    EXPECT_DOUBLE_EQ(root.object().at("seq").number(),
                     static_cast<double>(expected_seq));
    ++expected_seq;
  }
  EXPECT_GE(expected_seq, 2);
}

TEST_F(ObsExportTest, ExporterStopWhileTickMidWrite) {
  // Teardown race: stop() arrives while the export thread is likely
  // mid-tick (0.01 s interval, the minimum) and while a writer keeps
  // mutating the registry being snapshotted. stop() must wake the
  // in-flight wait, let a mid-write tick finish, run the final export,
  // and join; under TSan any regression in the stop/tick handshake or in
  // Registry::snapshot's locking fails this test.
  obs::Registry reg;
  const std::string dir = ::testing::TempDir();
  const std::string prom = dir + "obs_exporter_midtick.prom";
  const std::string jsonl = dir + "obs_exporter_midtick.jsonl";
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());
  obs::ExporterConfig config;
  config.interval_seconds = 0.01;
  config.prom_path = prom;
  config.jsonl_path = jsonl;
  obs::Exporter exporter(config, &reg);
  std::atomic<bool> quit{false};
  std::thread writer([&] {
    obs::Counter racing = reg.counter("exp.midtick");
    while (!quit.load(std::memory_order_acquire)) racing.add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  exporter.stop();
  exporter.stop();  // idempotent even right after a mid-tick stop
  quit.store(true, std::memory_order_release);
  writer.join();
  EXPECT_TRUE(exporter.healthy());
  EXPECT_GE(exporter.ticks(), 1u);
  // The final export landed a complete exposition despite the race.
  EXPECT_NE(slurp(prom).find("sectorpack_exp_midtick"), std::string::npos);
}

TEST_F(ObsExportTest, ExporterInertWithoutPaths) {
  obs::Exporter exporter(obs::ExporterConfig{});
  exporter.stop();
  EXPECT_EQ(exporter.ticks(), 0u);
  EXPECT_TRUE(exporter.healthy());
}

TEST_F(ObsExportTest, ExporterReportsUnwritablePath) {
  obs::ExporterConfig config;
  config.interval_seconds = 60.0;  // only the final stop() export runs
  config.jsonl_path = "/nonexistent-dir/obs_exporter_test.jsonl";
  obs::Exporter exporter(config);
  exporter.stop();
  EXPECT_FALSE(exporter.healthy());
}

// ---------------------------------------------------------------------------
// SloTracker

TEST_F(ObsExportTest, SloTrackerEmptySummary) {
  const obs::SloTracker slo(16);
  const obs::SloTracker::Summary s = slo.summary();
  EXPECT_EQ(s.window, 16u);
  EXPECT_EQ(s.in_window, 0u);
  EXPECT_EQ(s.total, 0u);
  EXPECT_DOUBLE_EQ(s.p99_ms, 0.0);
}

TEST_F(ObsExportTest, SloTrackerExactPercentilesAndRates) {
  obs::SloTracker slo(100);
  // Latencies 1..100 ms, all solves; the odd requests hit their deadline.
  for (int i = 1; i <= 100; ++i) {
    slo.record(static_cast<double>(i), /*deadline_ok=*/i % 2 == 1,
               obs::SloKind::kSolve);
  }
  const obs::SloTracker::Summary s = slo.summary();
  EXPECT_EQ(s.in_window, 100u);
  EXPECT_EQ(s.total, 100u);
  EXPECT_EQ(s.solves, 100u);
  // Nearest-rank over 1..100: pXX is exactly XX.
  EXPECT_DOUBLE_EQ(s.p50_ms, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 99.0);
  EXPECT_DOUBLE_EQ(s.deadline_hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(s.cache_hit_rate, 0.0);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("p99_ms=99"), std::string::npos);
  EXPECT_NE(str.find("deadline_hit_rate=0.5"), std::string::npos);
  EXPECT_NE(str.find("solves=100"), std::string::npos);
}

TEST_F(ObsExportTest, SloTrackerKindsKeepSolvePercentilesUndiluted) {
  obs::SloTracker slo(100);
  // Ten slow solves at 100ms, forty near-zero cache hits, ten rejected
  // requests. The old accounting let the hits drag p50 to ~0 and hid the
  // rejections entirely; the kinds keep the percentiles on solves only and
  // fold rejections into the deadline hit-rate.
  for (int i = 0; i < 10; ++i) {
    slo.record(100.0, /*deadline_ok=*/true, obs::SloKind::kSolve);
  }
  for (int i = 0; i < 40; ++i) {
    slo.record(0.01, /*deadline_ok=*/true, obs::SloKind::kCacheHit);
  }
  for (int i = 0; i < 10; ++i) {
    slo.record(0.0, /*deadline_ok=*/false, obs::SloKind::kRejected);
  }
  const obs::SloTracker::Summary s = slo.summary();
  EXPECT_EQ(s.in_window, 60u);
  EXPECT_EQ(s.solves, 10u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 100.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 100.0);
  // 50 of 60 window samples met their deadline (10 rejections missed).
  EXPECT_NEAR(s.deadline_hit_rate, 50.0 / 60.0, 1e-12);
  // Hits over answered requests only: 40 / (40 + 10).
  EXPECT_DOUBLE_EQ(s.cache_hit_rate, 0.8);
}

TEST_F(ObsExportTest, SloTrackerWindowEvictsOldSamples) {
  obs::SloTracker slo(4);
  for (int i = 0; i < 100; ++i) {
    slo.record(1000.0, /*deadline_ok=*/false, obs::SloKind::kSolve);
  }
  // The last 4 samples overwrite the slow history entirely.
  for (int i = 0; i < 4; ++i) {
    slo.record(1.0, /*deadline_ok=*/true, obs::SloKind::kSolve);
  }
  const obs::SloTracker::Summary s = slo.summary();
  EXPECT_EQ(s.window, 4u);
  EXPECT_EQ(s.in_window, 4u);
  EXPECT_EQ(s.total, 104u);
  EXPECT_EQ(s.solves, 4u);
  EXPECT_DOUBLE_EQ(s.p99_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.deadline_hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.cache_hit_rate, 0.0);
}

TEST_F(ObsExportTest, SloTrackerPublishSetsGauges) {
  obs::Registry reg;
  obs::SloTracker slo(8);
  slo.record(10.0, /*deadline_ok=*/true, obs::SloKind::kSolve);
  slo.record(20.0, /*deadline_ok=*/false, obs::SloKind::kCacheHit);
  slo.publish(&reg);
  const obs::Snapshot snap = reg.snapshot();
  double window = 0.0;
  double p99 = 0.0;
  double hit = -1.0;
  double solves = -1.0;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "slo.window") window = value;
    if (name == "slo.p99_ms") p99 = value;
    if (name == "slo.deadline_hit_rate") hit = value;
    if (name == "slo.solve_samples") solves = value;
  }
  EXPECT_DOUBLE_EQ(window, 8.0);
  // Percentiles cover the solve only; the cache hit is excluded.
  EXPECT_DOUBLE_EQ(p99, 10.0);
  EXPECT_DOUBLE_EQ(hit, 0.5);
  EXPECT_DOUBLE_EQ(solves, 1.0);
}

TEST_F(ObsExportTest, SloTrackerConcurrentRecords) {
  obs::SloTracker slo(1024);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&slo] {
      for (int i = 0; i < 500; ++i) {
        slo.record(5.0, /*deadline_ok=*/true, obs::SloKind::kSolve);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::SloTracker::Summary s = slo.summary();
  EXPECT_EQ(s.total, 2000u);
  EXPECT_EQ(s.in_window, 1024u);
  EXPECT_DOUBLE_EQ(s.p50_ms, 5.0);
}
