#include "src/angles/angles.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/geom/arc.hpp"
#include "src/model/validate.hpp"
#include "src/sectors/sectors.hpp"
#include "src/sim/rng.hpp"

namespace angles = sectorpack::angles;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;

namespace {

void random_circle(sim::Rng& rng, std::size_t n, std::vector<double>& thetas,
                   std::vector<double>& demands) {
  thetas.resize(n);
  demands.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    thetas[i] = rng.uniform(0.0, geom::kTwoPi);
    demands[i] = static_cast<double>(rng.uniform_int(1, 9));
  }
}

double coverage_of(const std::vector<double>& thetas,
                   const std::vector<double>& demands,
                   const std::vector<double>& alphas, double rho) {
  double total = 0.0;
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    for (double a : alphas) {
      if (geom::Arc(a, rho).contains(geom::normalize(thetas[i]))) {
        total += demands[i];
        break;
      }
    }
  }
  return total;
}

}  // namespace

TEST(UncapDp, MatchesBruteForceSmall) {
  sim::Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(9);
    const std::size_t k = 1 + rng.uniform_int(3);
    const double rho = rng.uniform(0.2, 2.0);
    std::vector<double> thetas;
    std::vector<double> demands;
    random_circle(rng, n, thetas, demands);
    const auto dp = angles::solve_uncap_dp(thetas, demands, rho, k);
    const auto bf = angles::solve_uncap_brute(thetas, demands, rho, k);
    EXPECT_NEAR(dp.covered, bf.covered, 1e-9)
        << "trial " << trial << " n=" << n << " k=" << k << " rho=" << rho;
  }
}

TEST(UncapDp, ResultSelfConsistent) {
  sim::Rng rng(32);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 5 + rng.uniform_int(80);
    const std::size_t k = 1 + rng.uniform_int(5);
    const double rho = rng.uniform(0.1, 1.5);
    std::vector<double> thetas;
    std::vector<double> demands;
    random_circle(rng, n, thetas, demands);
    const auto res = angles::solve_uncap_dp(thetas, demands, rho, k);
    EXPECT_LE(res.alphas.size(), k);
    // Geometric re-evaluation of the chosen arcs equals the DP value.
    EXPECT_NEAR(coverage_of(thetas, demands, res.alphas, rho), res.covered,
                1e-9)
        << "trial " << trial;
    // covered_customers is exactly the geometric cover set.
    double listed = 0.0;
    for (std::size_t i : res.covered_customers) listed += demands[i];
    EXPECT_NEAR(listed, res.covered, 1e-9);
  }
}

TEST(UncapDp, FullCoverageWhenArcsSpanCircle) {
  sim::Rng rng(33);
  std::vector<double> thetas;
  std::vector<double> demands;
  random_circle(rng, 30, thetas, demands);
  const double total = std::accumulate(demands.begin(), demands.end(), 0.0);
  // 4 arcs of width pi/2+ cover everything.
  const auto res =
      angles::solve_uncap_dp(thetas, demands, geom::kPi / 2.0 + 0.01, 4);
  EXPECT_NEAR(res.covered, total, 1e-9);
  EXPECT_EQ(res.covered_customers.size(), 30u);
}

TEST(UncapDp, MonotoneInK) {
  sim::Rng rng(34);
  std::vector<double> thetas;
  std::vector<double> demands;
  random_circle(rng, 50, thetas, demands);
  double prev = 0.0;
  for (std::size_t k = 1; k <= 6; ++k) {
    const auto res = angles::solve_uncap_dp(thetas, demands, 0.6, k);
    EXPECT_GE(res.covered + 1e-9, prev) << "k=" << k;
    prev = res.covered;
  }
}

TEST(UncapDp, MonotoneInRho) {
  sim::Rng rng(35);
  std::vector<double> thetas;
  std::vector<double> demands;
  random_circle(rng, 50, thetas, demands);
  double prev = 0.0;
  for (double rho = 0.2; rho < geom::kTwoPi; rho += 0.4) {
    const auto res = angles::solve_uncap_dp(thetas, demands, rho, 2);
    EXPECT_GE(res.covered + 1e-9, prev) << "rho=" << rho;
    prev = res.covered;
  }
}

TEST(UncapDp, EdgeCases) {
  EXPECT_DOUBLE_EQ(angles::solve_uncap_dp({}, {}, 1.0, 3).covered, 0.0);
  const std::vector<double> one_theta = {1.0};
  const std::vector<double> one_demand = {5.0};
  EXPECT_DOUBLE_EQ(
      angles::solve_uncap_dp(one_theta, one_demand, 1.0, 0).covered, 0.0);
  const auto res = angles::solve_uncap_dp(one_theta, one_demand, 0.5, 1);
  EXPECT_DOUBLE_EQ(res.covered, 5.0);
  ASSERT_EQ(res.alphas.size(), 1u);
  EXPECT_TRUE(geom::Arc(res.alphas[0], 0.5).contains(1.0));
}

TEST(UncapDp, MismatchedSpansThrow) {
  const std::vector<double> thetas = {1.0, 2.0};
  const std::vector<double> demands = {1.0};
  EXPECT_THROW((void)angles::solve_uncap_dp(thetas, demands, 1.0, 1),
               std::invalid_argument);
}

TEST(UncapDp, AllSameAngle) {
  const std::vector<double> thetas(6, 2.5);
  const std::vector<double> demands = {1, 2, 3, 4, 5, 6};
  const auto res = angles::solve_uncap_dp(thetas, demands, 0.1, 1);
  EXPECT_DOUBLE_EQ(res.covered, 21.0);
}

TEST(UncapDp, DemandConcentrationWins) {
  // Heavy cluster at angle 0, light spread elsewhere: a single arc must
  // take the cluster.
  std::vector<double> thetas = {0.0, 0.05, 0.1, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> demands = {10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0};
  const auto res = angles::solve_uncap_dp(thetas, demands, 0.3, 1);
  EXPECT_DOUBLE_EQ(res.covered, 30.0);
}

TEST(CapacitatedAngles, ThrowsOnOutOfRange) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.0, 50.0, 1.0)
                                   .add_antenna(1.0, 10.0, 5.0)
                                   .build();
  EXPECT_THROW((void)angles::solve_capacitated(inst), std::invalid_argument);
  EXPECT_THROW((void)angles::solve_capacitated_exact(inst),
               std::invalid_argument);
}

TEST(CapacitatedAngles, HeuristicBelowExactAndFeasible) {
  sim::Rng rng(36);
  for (int trial = 0; trial < 12; ++trial) {
    model::InstanceBuilder b;
    const std::size_t n = 4 + rng.uniform_int(5);
    for (std::size_t i = 0; i < n; ++i) {
      b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                           rng.uniform(1.0, 9.0),
                           static_cast<double>(rng.uniform_int(1, 6)));
    }
    b.add_identical_antennas(2, rng.uniform(0.8, 2.5), 10.0,
                             static_cast<double>(rng.uniform_int(4, 15)));
    const model::Instance inst = b.build();

    const model::Solution heur = angles::solve_capacitated(inst);
    const model::Solution exact = angles::solve_capacitated_exact(inst);
    EXPECT_TRUE(model::is_feasible(inst, heur));
    EXPECT_TRUE(model::is_feasible(inst, exact));
    EXPECT_LE(model::served_demand(inst, heur),
              model::served_demand(inst, exact) + 1e-9)
        << "trial " << trial;
  }
}

// Parameterized k-sweep: DP coverage never exceeds total demand and is
// achieved exactly when k*rho wraps the circle.
class UncapKProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UncapKProperty, CoverageBounds) {
  const std::size_t k = GetParam();
  sim::Rng rng(40 + k);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 5 + rng.uniform_int(60);
    const double rho = rng.uniform(0.1, 2.2);
    std::vector<double> thetas;
    std::vector<double> demands;
    random_circle(rng, n, thetas, demands);
    const double total =
        std::accumulate(demands.begin(), demands.end(), 0.0);
    const auto res = angles::solve_uncap_dp(thetas, demands, rho, k);
    EXPECT_LE(res.covered, total + 1e-9);
    EXPECT_GE(res.covered, 0.0);
    if (static_cast<double>(k) * rho >= geom::kTwoPi) {
      EXPECT_NEAR(res.covered, total, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, UncapKProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));
