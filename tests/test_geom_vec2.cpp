#include "src/geom/vec2.hpp"

#include <gtest/gtest.h>

#include "src/sim/rng.hpp"

namespace geom = sectorpack::geom;
using geom::Vec2;

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0};
  const Vec2 b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);   // b is CCW of a
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);  // a is CW of b
  EXPECT_DOUBLE_EQ(a.dot(a), 1.0);
}

TEST(Vec2, Norms) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(Vec2{}.norm(), 0.0);
}

TEST(Vec2, PolarAxes) {
  EXPECT_NEAR(geom::to_polar({1.0, 0.0}).theta, 0.0, 1e-15);
  EXPECT_NEAR(geom::to_polar({0.0, 1.0}).theta, geom::kPi / 2.0, 1e-15);
  EXPECT_NEAR(geom::to_polar({-1.0, 0.0}).theta, geom::kPi, 1e-15);
  EXPECT_NEAR(geom::to_polar({0.0, -1.0}).theta, 1.5 * geom::kPi, 1e-15);
}

TEST(Vec2, OriginPolarConvention) {
  const geom::Polar p = geom::to_polar({0.0, 0.0});
  EXPECT_DOUBLE_EQ(p.theta, 0.0);
  EXPECT_DOUBLE_EQ(p.r, 0.0);
}

TEST(Vec2, PolarThetaAlwaysNormalized) {
  sectorpack::sim::Rng rng(5);
  for (int t = 0; t < 1000; ++t) {
    const Vec2 v{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    const geom::Polar p = geom::to_polar(v);
    EXPECT_GE(p.theta, 0.0);
    EXPECT_LT(p.theta, geom::kTwoPi);
    EXPECT_GE(p.r, 0.0);
  }
}

TEST(Vec2, PolarRoundtripCartesian) {
  sectorpack::sim::Rng rng(6);
  for (int t = 0; t < 1000; ++t) {
    const Vec2 v{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
    const Vec2 back = geom::from_polar(geom::to_polar(v));
    EXPECT_NEAR(back.x, v.x, 1e-9 * (1.0 + v.norm()));
    EXPECT_NEAR(back.y, v.y, 1e-9 * (1.0 + v.norm()));
  }
}

TEST(Vec2, PolarRoundtripAngular) {
  sectorpack::sim::Rng rng(9);
  for (int t = 0; t < 1000; ++t) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double r = rng.uniform(0.1, 50.0);
    const geom::Polar p = geom::to_polar(geom::from_polar(theta, r));
    EXPECT_NEAR(p.r, r, 1e-9 * r);
    EXPECT_LE(geom::angular_distance(p.theta, theta), 1e-9);
  }
}
