#include "src/viz/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/sectors/sectors.hpp"
#include "src/sim/generators.hpp"

namespace viz = sectorpack::viz;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;

namespace {

model::Instance sample_instance() {
  return sim::uniform_disk_instance(25, 3, geom::kPi / 3.0, 8.0, 11);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

TEST(Svg, WellFormedDocument) {
  const model::Instance inst = sample_instance();
  const std::string svg = viz::render_svg(inst);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(Svg, OneCircleMarkPerCustomer) {
  const model::Instance inst = sample_instance();
  viz::SvgOptions options;
  options.draw_range_rings = false;
  const std::string svg = viz::render_svg(inst, nullptr, options);
  // 25 customers, no rings, no solution -> exactly 25 circles.
  EXPECT_EQ(count_occurrences(svg, "<circle"), 25u);
}

TEST(Svg, SolutionAddsWedges) {
  const model::Instance inst = sample_instance();
  const model::Solution sol = sectorpack::sectors::solve_greedy(inst);
  const std::string svg = viz::render_svg(inst, &sol);
  // One wedge path per antenna (rho < 2*pi here).
  EXPECT_EQ(count_occurrences(svg, "<path"), inst.num_antennas());
  EXPECT_EQ(count_occurrences(svg, "<text"), inst.num_antennas());
}

TEST(Svg, FullCircleAntennaRendersAsCircle) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.5, 5.0, 1.0);
  b.add_antenna(geom::kTwoPi, 10.0, 5.0);
  const model::Instance inst = b.build();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.assign[0] = 0;
  const std::string svg = viz::render_svg(inst, &sol);
  EXPECT_EQ(count_occurrences(svg, "<path"), 0u);  // circle, not a wedge
}

TEST(Svg, RespectsCanvasSize) {
  const model::Instance inst = sample_instance();
  viz::SvgOptions options;
  options.size_px = 400.0;
  const std::string svg = viz::render_svg(inst, nullptr, options);
  EXPECT_NE(svg.find("width='400'"), std::string::npos);
}

TEST(Svg, WriteSvgRoundtrip) {
  const model::Instance inst = sample_instance();
  const std::string path = "test_viz_out.svg";
  viz::write_svg(path, inst);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, viz::render_svg(inst));
  std::remove(path.c_str());
}

TEST(Svg, WriteSvgBadPathThrows) {
  const model::Instance inst = sample_instance();
  EXPECT_THROW(viz::write_svg("/nonexistent-dir/x.svg", inst),
               std::runtime_error);
}

TEST(Svg, EmptyInstanceStillRenders) {
  const model::Instance inst{{}, {}};
  const std::string svg = viz::render_svg(inst);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}
