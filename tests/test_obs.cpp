// Tests for src/obs/: counter/gauge/histogram semantics, concurrent
// increments through par::parallel_for, trace-JSON well-formedness (parsed
// with a minimal JSON reader below), and the no-op path when obs is off.

#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "src/knapsack/knapsack.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/par/parallel_for.hpp"
#include "src/par/thread_pool.hpp"

using namespace sectorpack;

namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON reader: enough to prove the emitted artifacts are
// well-formed and to look up values. Throws std::runtime_error on any
// syntax error.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json error at " + std::to_string(pos_) + ": " +
                             why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(text_[pos_ + static_cast<std::size_t>(i)]))) {
                fail("bad \\u escape");
              }
            }
            pos_ += 4;
            out += '?';  // code point itself is irrelevant to these tests
            break;
          }
          default: fail("bad escape char");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') {
      ++pos_;
      auto obj = std::make_shared<JsonObject>();
      if (!consume('}')) {
        do {
          std::string key = parse_string();
          expect(':');
          (*obj)[std::move(key)] = parse_value();
        } while (consume(','));
        expect('}');
      }
      return {obj};
    }
    if (c == '[') {
      ++pos_;
      auto arr = std::make_shared<JsonArray>();
      if (!consume(']')) {
        do {
          arr->push_back(parse_value());
        } while (consume(','));
        expect(']');
      }
      return {arr};
    }
    if (c == '"') return {parse_string()};
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return {true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return {false};
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return {nullptr};
    }
    // number
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad value");
    return {std::stod(text_.substr(start, pos_ - start))};
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// Re-enable/disable around each test so ordering never leaks state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_enabled(true); }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

}  // namespace

TEST_F(ObsTest, CounterAccumulatesAndSnapshots) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("test.counter");
  c.inc();
  c.add(41);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 42u);
  EXPECT_EQ(snap.counter("test.unregistered"), 0u);
}

TEST_F(ObsTest, SameNameSharesOneSlot) {
  obs::Registry reg;
  reg.counter("dup").inc();
  reg.counter("dup").add(2);
  EXPECT_EQ(reg.snapshot().counter("dup"), 3u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST_F(ObsTest, DisabledWritesAreDropped) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("test.noop");
  const obs::Gauge g = reg.gauge("test.noop_gauge");
  const obs::Histogram h = reg.histogram("test.noop_hist");
  obs::set_enabled(false);
  c.add(100);
  g.set(3.5);
  h.observe(1.0);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.noop"), 0u);
  EXPECT_TRUE(snap.gauges.empty());  // unset gauges are omitted
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST_F(ObsTest, DefaultConstructedHandlesAreSafe) {
  const obs::Counter c;
  const obs::Gauge g;
  const obs::Histogram h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);  // must not crash
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::Registry reg;
  const obs::Gauge g = reg.gauge("test.gauge");
  g.set(1.0);
  g.set(-2.5);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "test.gauge");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, -2.5);
}

TEST_F(ObsTest, HistogramStatsAndBuckets) {
  obs::Registry reg;
  const obs::Histogram h = reg.histogram("test.hist");
  for (double v : {0.5, 1.0, 3.0, 100.0}) h.observe(v);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, 104.5);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
  EXPECT_DOUBLE_EQ(hs.mean(), 104.5 / 4.0);
  // 0.5 -> bucket 0 ([0,1)), 1.0 -> bucket 1 ([1,2)), 3.0 -> bucket 2
  // ([2,4)), 100.0 -> bucket 7 ([64,128)).
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.buckets[7], 1u);
  // Quantiles stay within the observed range and are monotone.
  const double p25 = hs.quantile(0.25);
  const double p95 = hs.quantile(0.95);
  EXPECT_GE(p25, hs.min);
  EXPECT_LE(p95, hs.max);
  EXPECT_LE(p25, p95);
  EXPECT_DOUBLE_EQ(hs.quantile(0.0), hs.min);
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), hs.max);
}

TEST_F(ObsTest, HistogramBucketIndexEdges) {
  EXPECT_EQ(obs::histogram_bucket_index(-1.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(0.999), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1.0), 1u);
  EXPECT_EQ(obs::histogram_bucket_index(2.0), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(1e30), obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_lower(0), 0.0);
  EXPECT_EQ(obs::histogram_bucket_lower(1), 1.0);
  EXPECT_EQ(obs::histogram_bucket_lower(4), 8.0);
}

TEST_F(ObsTest, ConcurrentCountersFromParallelFor) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("test.parallel");
  const obs::Histogram h = reg.histogram("test.parallel_hist");
  par::ThreadPool pool(4);
  const std::size_t n = 100000;
  par::parallel_for(
      n, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          c.inc();
          h.observe(static_cast<double>(i % 16));
        }
      },
      &pool);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.parallel"), n);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, n);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 15.0);
}

TEST_F(ObsTest, ResetZeroesValuesKeepsNames) {
  obs::Registry reg;
  reg.counter("test.reset").add(7);
  reg.gauge("test.reset_gauge").set(1.0);
  reg.histogram("test.reset_hist").observe(2.0);
  reg.reset();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.reset"), 0u);
  EXPECT_TRUE(snap.gauges.empty());
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  // Still registered: writing again works against the same slot.
  reg.counter("test.reset").inc();
  EXPECT_EQ(reg.snapshot().counter("test.reset"), 1u);
}

TEST_F(ObsTest, RegistriesAreIndependent) {
  obs::Registry a;
  obs::Registry b;
  a.counter("shared.name").add(5);
  b.counter("shared.name").add(9);
  EXPECT_EQ(a.snapshot().counter("shared.name"), 5u);
  EXPECT_EQ(b.snapshot().counter("shared.name"), 9u);
}

TEST_F(ObsTest, SnapshotJsonIsWellFormed) {
  obs::Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(2.25);
  reg.histogram("c.hist\"quoted").observe(5.0);
  const JsonValue root = JsonParser(reg.snapshot().to_json()).parse();
  const JsonObject& obj = root.object();
  EXPECT_DOUBLE_EQ(obj.at("counters").object().at("a.count").number(), 3.0);
  EXPECT_DOUBLE_EQ(obj.at("gauges").object().at("b.gauge").number(), 2.25);
  const JsonObject& hist =
      obj.at("histograms").object().at("c.hist\"quoted").object();
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 5.0);
  ASSERT_EQ(hist.at("buckets").array().size(), 1u);
}

TEST_F(ObsTest, SnapshotTextListsEveryMetric) {
  obs::Registry reg;
  reg.counter("t.count").add(3);
  reg.gauge("t.gauge").set(1.5);
  reg.histogram("t.hist").observe(4.0);
  const std::string text = reg.snapshot().to_text();
  EXPECT_NE(text.find("t.count 3"), std::string::npos);
  EXPECT_NE(text.find("t.gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("t.hist count=1"), std::string::npos);
}

TEST_F(ObsTest, TraceJsonWellFormedAndLoadable) {
  obs::trace_start();
  {
    const obs::ScopedSpan outer("test.outer");
    const obs::ScopedSpan inner("test.inner");
    obs::trace_counter("test.series", 1.25);
    obs::trace_instant("test.instant");
  }
  // Spans recorded from pool threads land in per-thread buffers.
  par::ThreadPool pool(2);
  par::parallel_for(
      8, 1,
      [&](std::size_t, std::size_t) {
        const obs::ScopedSpan span("test.worker");
      },
      &pool);
  EXPECT_GE(obs::trace_event_count(), 4u);

  std::ostringstream os;
  obs::trace_stop(os);
  EXPECT_FALSE(obs::trace_enabled());

  const JsonValue root = JsonParser(os.str()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_GE(events.size(), 4u);
  bool saw_outer = false;
  bool saw_counter = false;
  bool saw_worker = false;
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.object();
    // Every event carries the fields chrome://tracing requires.
    const std::string& ph = e.at("ph").str();
    EXPECT_TRUE(ph == "X" || ph == "C" || ph == "i");
    EXPECT_GE(e.at("ts").number(), 0.0);
    EXPECT_GT(e.at("tid").number(), 0.0);
    if (e.at("name").str() == "test.outer") {
      saw_outer = true;
      EXPECT_EQ(ph, "X");
      EXPECT_GE(e.at("dur").number(), 0.0);
    }
    if (e.at("name").str() == "test.series") {
      saw_counter = true;
      EXPECT_EQ(ph, "C");
      EXPECT_DOUBLE_EQ(e.at("args").object().at("value").number(), 1.25);
    }
    if (e.at("name").str() == "test.worker") saw_worker = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_worker);
}

TEST_F(ObsTest, TraceFileRoundTrip) {
  obs::trace_start();
  { const obs::ScopedSpan span("test.file_span"); }
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::trace_stop_to_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue root = JsonParser(ss.str()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].object().at("name").str(), "test.file_span");
}

TEST_F(ObsTest, TraceNoopWhenNoSession) {
  // No trace_start: spans must record nothing and cost nothing observable.
  EXPECT_FALSE(obs::trace_enabled());
  { const obs::ScopedSpan span("test.ignored"); }
  obs::trace_counter("test.ignored", 1.0);
  obs::trace_start();
  EXPECT_EQ(obs::trace_event_count(), 0u);  // prior events discarded
  std::ostringstream os;
  obs::trace_stop(os);
  const JsonValue root = JsonParser(os.str()).parse();
  EXPECT_TRUE(root.object().at("traceEvents").array().empty());
}

TEST_F(ObsTest, SolverCountersPopulate) {
  // End-to-end: the instrumented solvers feed the global registry.
  obs::reset();
  std::vector<knapsack::Item> items;
  for (int i = 1; i <= 10; ++i) {
    items.push_back({static_cast<double>(i), static_cast<double>(i)});
  }
  (void)knapsack::solve_exact_dp(items, 27.0);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_GE(snap.counter("knapsack.dp_calls"), 1u);
  // 10 items, capacity 27 -> 10 * 28 cells.
  EXPECT_GE(snap.counter("knapsack.dp_cells"), 280u);
}
