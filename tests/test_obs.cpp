// Tests for src/obs/: counter/gauge/histogram semantics (fixed-bucket and
// HDR log-linear), concurrent increments through par::parallel_for, trace
// JSON well-formedness (parsed with tests/json_test_util.hpp), and the
// no-op path when obs is off.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/knapsack/knapsack.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/par/parallel_for.hpp"
#include "src/par/thread_pool.hpp"
#include "src/geom/angle.hpp"
#include "src/model/instance.hpp"
#include "src/model/io.hpp"
#include "src/srv/engine.hpp"
#include "tests/json_test_util.hpp"

using namespace sectorpack;
using testjson::JsonArray;
using testjson::JsonObject;
using testjson::JsonParser;
using testjson::JsonValue;

namespace {

/// Re-enable/disable around each test so ordering never leaks state.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_enabled(true); }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

}  // namespace

TEST_F(ObsTest, CounterAccumulatesAndSnapshots) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("test.counter");
  c.inc();
  c.add(41);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.counter"), 42u);
  EXPECT_EQ(snap.counter("test.unregistered"), 0u);
}

TEST_F(ObsTest, SameNameSharesOneSlot) {
  obs::Registry reg;
  reg.counter("dup").inc();
  reg.counter("dup").add(2);
  EXPECT_EQ(reg.snapshot().counter("dup"), 3u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST_F(ObsTest, DisabledWritesAreDropped) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("test.noop");
  const obs::Gauge g = reg.gauge("test.noop_gauge");
  const obs::Histogram h = reg.histogram("test.noop_hist");
  obs::set_enabled(false);
  c.add(100);
  g.set(3.5);
  h.observe(1.0);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.noop"), 0u);
  EXPECT_TRUE(snap.gauges.empty());  // unset gauges are omitted
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST_F(ObsTest, DefaultConstructedHandlesAreSafe) {
  const obs::Counter c;
  const obs::Gauge g;
  const obs::Histogram h;
  c.inc();
  g.set(1.0);
  h.observe(1.0);  // must not crash
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::Registry reg;
  const obs::Gauge g = reg.gauge("test.gauge");
  g.set(1.0);
  g.set(-2.5);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "test.gauge");
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, -2.5);
}

TEST_F(ObsTest, HistogramStatsAndBuckets) {
  obs::Registry reg;
  const obs::Histogram h = reg.histogram("test.hist");
  for (double v : {0.5, 1.0, 3.0, 100.0}) h.observe(v);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, 104.5);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
  EXPECT_DOUBLE_EQ(hs.mean(), 104.5 / 4.0);
  // 0.5 -> bucket 0 ([0,1)), 1.0 -> bucket 1 ([1,2)), 3.0 -> bucket 2
  // ([2,4)), 100.0 -> bucket 7 ([64,128)).
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 1u);
  EXPECT_EQ(hs.buckets[7], 1u);
  // Quantiles stay within the observed range and are monotone.
  const double p25 = hs.quantile(0.25);
  const double p95 = hs.quantile(0.95);
  EXPECT_GE(p25, hs.min);
  EXPECT_LE(p95, hs.max);
  EXPECT_LE(p25, p95);
  EXPECT_DOUBLE_EQ(hs.quantile(0.0), hs.min);
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), hs.max);
}

TEST_F(ObsTest, HistogramBucketIndexEdges) {
  EXPECT_EQ(obs::histogram_bucket_index(-1.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(0.999), 0u);
  EXPECT_EQ(obs::histogram_bucket_index(1.0), 1u);
  EXPECT_EQ(obs::histogram_bucket_index(2.0), 2u);
  EXPECT_EQ(obs::histogram_bucket_index(1e30), obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_lower(0), 0.0);
  EXPECT_EQ(obs::histogram_bucket_lower(1), 1.0);
  EXPECT_EQ(obs::histogram_bucket_lower(4), 8.0);
}

TEST_F(ObsTest, ConcurrentCountersFromParallelFor) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("test.parallel");
  const obs::Histogram h = reg.histogram("test.parallel_hist");
  par::ThreadPool pool(4);
  const std::size_t n = 100000;
  par::parallel_for(
      n, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          c.inc();
          h.observe(static_cast<double>(i % 16));
        }
      },
      &pool);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.parallel"), n);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, n);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 0.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 15.0);
}

TEST_F(ObsTest, ResetZeroesValuesKeepsNames) {
  obs::Registry reg;
  reg.counter("test.reset").add(7);
  reg.gauge("test.reset_gauge").set(1.0);
  reg.histogram("test.reset_hist").observe(2.0);
  reg.reset();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("test.reset"), 0u);
  EXPECT_TRUE(snap.gauges.empty());
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  // Still registered: writing again works against the same slot.
  reg.counter("test.reset").inc();
  EXPECT_EQ(reg.snapshot().counter("test.reset"), 1u);
}

TEST_F(ObsTest, RegistriesAreIndependent) {
  obs::Registry a;
  obs::Registry b;
  a.counter("shared.name").add(5);
  b.counter("shared.name").add(9);
  EXPECT_EQ(a.snapshot().counter("shared.name"), 5u);
  EXPECT_EQ(b.snapshot().counter("shared.name"), 9u);
}

TEST_F(ObsTest, SnapshotJsonIsWellFormed) {
  obs::Registry reg;
  reg.counter("a.count").add(3);
  reg.gauge("b.gauge").set(2.25);
  reg.histogram("c.hist\"quoted").observe(5.0);
  const JsonValue root = JsonParser(reg.snapshot().to_json()).parse();
  const JsonObject& obj = root.object();
  EXPECT_DOUBLE_EQ(obj.at("counters").object().at("a.count").number(), 3.0);
  EXPECT_DOUBLE_EQ(obj.at("gauges").object().at("b.gauge").number(), 2.25);
  const JsonObject& hist =
      obj.at("histograms").object().at("c.hist\"quoted").object();
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 1.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 5.0);
  ASSERT_EQ(hist.at("buckets").array().size(), 1u);
}

TEST_F(ObsTest, SnapshotTextListsEveryMetric) {
  obs::Registry reg;
  reg.counter("t.count").add(3);
  reg.gauge("t.gauge").set(1.5);
  reg.histogram("t.hist").observe(4.0);
  const std::string text = reg.snapshot().to_text();
  EXPECT_NE(text.find("t.count 3"), std::string::npos);
  EXPECT_NE(text.find("t.gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("t.hist count=1"), std::string::npos);
}

TEST_F(ObsTest, TraceJsonWellFormedAndLoadable) {
  obs::trace_start();
  {
    const obs::ScopedSpan outer("test.outer");
    const obs::ScopedSpan inner("test.inner");
    obs::trace_counter("test.series", 1.25);
    obs::trace_instant("test.instant");
  }
  // Spans recorded from pool threads land in per-thread buffers.
  par::ThreadPool pool(2);
  par::parallel_for(
      8, 1,
      [&](std::size_t, std::size_t) {
        const obs::ScopedSpan span("test.worker");
      },
      &pool);
  EXPECT_GE(obs::trace_event_count(), 4u);

  std::ostringstream os;
  obs::trace_stop(os);
  EXPECT_FALSE(obs::trace_enabled());

  const JsonValue root = JsonParser(os.str()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_GE(events.size(), 4u);
  bool saw_outer = false;
  bool saw_counter = false;
  bool saw_worker = false;
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.object();
    // Every event carries the fields chrome://tracing requires.
    const std::string& ph = e.at("ph").str();
    EXPECT_TRUE(ph == "X" || ph == "C" || ph == "i");
    EXPECT_GE(e.at("ts").number(), 0.0);
    EXPECT_GT(e.at("tid").number(), 0.0);
    if (e.at("name").str() == "test.outer") {
      saw_outer = true;
      EXPECT_EQ(ph, "X");
      EXPECT_GE(e.at("dur").number(), 0.0);
    }
    if (e.at("name").str() == "test.series") {
      saw_counter = true;
      EXPECT_EQ(ph, "C");
      EXPECT_DOUBLE_EQ(e.at("args").object().at("value").number(), 1.25);
    }
    if (e.at("name").str() == "test.worker") saw_worker = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_worker);
}

TEST_F(ObsTest, TraceFileRoundTrip) {
  obs::trace_start();
  { const obs::ScopedSpan span("test.file_span"); }
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::trace_stop_to_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const JsonValue root = JsonParser(ss.str()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].object().at("name").str(), "test.file_span");
}

TEST_F(ObsTest, TraceNoopWhenNoSession) {
  // No trace_start: spans must record nothing and cost nothing observable.
  EXPECT_FALSE(obs::trace_enabled());
  { const obs::ScopedSpan span("test.ignored"); }
  obs::trace_counter("test.ignored", 1.0);
  obs::trace_start();
  EXPECT_EQ(obs::trace_event_count(), 0u);  // prior events discarded
  std::ostringstream os;
  obs::trace_stop(os);
  const JsonValue root = JsonParser(os.str()).parse();
  EXPECT_TRUE(root.object().at("traceEvents").array().empty());
}

// ---------------------------------------------------------------------------
// HDR log-linear histograms

TEST_F(ObsTest, HdrBucketIndexEdges) {
  const unsigned bits = obs::kHdrDefaultSubBits;
  const std::size_t sub = std::size_t{1} << bits;
  // Below range (including junk) lands in bucket 0.
  EXPECT_EQ(obs::hdr_bucket_index(-1.0, bits), 0u);
  EXPECT_EQ(obs::hdr_bucket_index(0.0, bits), 0u);
  EXPECT_EQ(obs::hdr_bucket_index(std::nan(""), bits), 0u);
  // Exactly the range minimum is the first bucket; 1.0 starts the octave
  // at exponent 0.
  EXPECT_EQ(obs::hdr_bucket_index(std::ldexp(1.0, obs::kHdrMinExp), bits), 0u);
  EXPECT_EQ(obs::hdr_bucket_index(1.0, bits),
            static_cast<std::size_t>(-obs::kHdrMinExp) * sub);
  // Above range clamps to the last bucket.
  EXPECT_EQ(obs::hdr_bucket_index(1e30, bits), obs::hdr_bucket_count(bits) - 1);
  // lower/upper bracket the value that maps into the bucket.
  for (double v : {0.002, 0.5, 1.0, 1.5, 3.25, 1000.0, 123456.0}) {
    const std::size_t b = obs::hdr_bucket_index(v, bits);
    EXPECT_GE(v, obs::hdr_bucket_lower(b, bits)) << v;
    EXPECT_LT(v, obs::hdr_bucket_upper(b, bits)) << v;
  }
  // Buckets tile the range: each upper bound is the next lower bound, and
  // relative width never exceeds 2^-sub_bits.
  for (std::size_t b = 0; b + 1 < obs::hdr_bucket_count(bits); ++b) {
    const double lo = obs::hdr_bucket_lower(b, bits);
    const double hi = obs::hdr_bucket_upper(b, bits);
    EXPECT_DOUBLE_EQ(hi, obs::hdr_bucket_lower(b + 1, bits));
    EXPECT_LE((hi - lo) / lo, std::ldexp(1.0, -static_cast<int>(bits)) + 1e-12);
  }
}

TEST_F(ObsTest, HdrHistogramStats) {
  obs::Registry reg;
  const obs::HdrHistogram h = reg.hdr_histogram("test.hdr");
  for (double v : {0.5, 1.0, 3.0, 100.0}) h.observe(v);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.hdr_histograms.size(), 1u);
  const obs::HdrHistogramSnapshot& hs = snap.hdr_histograms[0];
  EXPECT_EQ(hs.name, "test.hdr");
  EXPECT_EQ(hs.sub_bits, obs::kHdrDefaultSubBits);
  EXPECT_EQ(hs.count, 4u);
  EXPECT_DOUBLE_EQ(hs.sum, 104.5);
  EXPECT_DOUBLE_EQ(hs.min, 0.5);
  EXPECT_DOUBLE_EQ(hs.max, 100.0);
  EXPECT_DOUBLE_EQ(hs.mean(), 104.5 / 4.0);
  ASSERT_EQ(hs.buckets.size(), 4u);  // sparse: only non-empty buckets
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < hs.buckets.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(hs.buckets[i - 1].first, hs.buckets[i].first);
    }
    total += hs.buckets[i].second;
  }
  EXPECT_EQ(total, hs.count);
  EXPECT_DOUBLE_EQ(hs.quantile(0.0), hs.min);
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), hs.max);
  // Lookup helper finds it; misses return nullptr.
  EXPECT_EQ(snap.hdr_histogram("test.hdr"), &hs);
  EXPECT_EQ(snap.hdr_histogram("test.other"), nullptr);
}

TEST_F(ObsTest, HdrQuantileWithinOnePercent) {
  obs::Registry reg;
  const obs::HdrHistogram h = reg.hdr_histogram("test.hdr_q");
  // Known distribution: 1..10000 each observed once, so the true q-quantile
  // is q*10000 (up to rank rounding). Spans ~13 octaves.
  const int n = 10000;
  for (int i = 1; i <= n; ++i) h.observe(static_cast<double>(i));
  const obs::Snapshot snap = reg.snapshot();
  const obs::HdrHistogramSnapshot* hs = snap.hdr_histogram("test.hdr_q");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, static_cast<std::uint64_t>(n));
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = q * n;
    const double got = hs->quantile(q);
    // Acceptance bound: <= 1% relative error (default precision gives
    // bucket widths <= 0.79%; allow rank rounding of +-1 sample on top).
    EXPECT_NEAR(got, exact, 0.01 * exact + 1.0) << "q=" << q;
  }
  // Monotone in q.
  double prev = hs->quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = hs->quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_F(ObsTest, HdrLowPrecisionStillBracketsQuantiles) {
  obs::Registry reg;
  const obs::HdrHistogram h = reg.hdr_histogram("test.hdr_coarse", 2);
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const obs::Snapshot snap = reg.snapshot();
  const obs::HdrHistogramSnapshot* hs = snap.hdr_histogram("test.hdr_coarse");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->sub_bits, 2u);
  // 2 sub-bits -> 25% bucket width; the estimate must stay within one
  // bucket of truth and inside the recorded range.
  const double p50 = hs->quantile(0.5);
  EXPECT_NEAR(p50, 500.0, 0.25 * 500.0 + 1.0);
  EXPECT_GE(hs->quantile(0.0), hs->min);
  EXPECT_LE(hs->quantile(1.0), hs->max);
}

TEST_F(ObsTest, HdrRegistrationConflictsThrow) {
  obs::Registry reg;
  (void)reg.hdr_histogram("test.conflict", 7);
  (void)reg.hdr_histogram("test.conflict", 7);  // same precision: fine
  EXPECT_THROW((void)reg.hdr_histogram("test.conflict", 3),
               std::invalid_argument);
  // One name means one distribution: a fixed-bucket histogram name cannot
  // be reused as HDR and vice versa.
  (void)reg.histogram("test.fixed");
  EXPECT_THROW((void)reg.hdr_histogram("test.fixed"), std::invalid_argument);
  (void)reg.hdr_histogram("test.hdr_only");
  EXPECT_THROW((void)reg.histogram("test.hdr_only"), std::invalid_argument);
}

TEST_F(ObsTest, HdrDisabledAndDefaultHandlesAreSafe) {
  obs::Registry reg;
  const obs::HdrHistogram h = reg.hdr_histogram("test.hdr_off");
  obs::set_enabled(false);
  h.observe(5.0);
  ASSERT_EQ(reg.snapshot().hdr_histograms.size(), 1u);
  EXPECT_EQ(reg.snapshot().hdr_histograms[0].count, 0u);
  const obs::HdrHistogram empty;
  empty.observe(1.0);  // must not crash
}

TEST_F(ObsTest, HdrConcurrentObservationsMerge) {
  obs::Registry reg;
  const obs::HdrHistogram h = reg.hdr_histogram("test.hdr_par");
  par::ThreadPool pool(4);
  const std::size_t n = 100000;
  par::parallel_for(
      n, 1,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          h.observe(static_cast<double>(1 + i % 1000));
        }
      },
      &pool);
  const obs::Snapshot snap = reg.snapshot();
  const obs::HdrHistogramSnapshot* hs = snap.hdr_histogram("test.hdr_par");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, n);
  EXPECT_DOUBLE_EQ(hs->min, 1.0);
  EXPECT_DOUBLE_EQ(hs->max, 1000.0);
  std::uint64_t total = 0;
  for (const auto& [bucket, count] : hs->buckets) total += count;
  EXPECT_EQ(total, n);
}

TEST_F(ObsTest, HdrResetZeroesValuesKeepsRegistration) {
  obs::Registry reg;
  reg.hdr_histogram("test.hdr_reset").observe(3.0);
  reg.reset();
  ASSERT_EQ(reg.snapshot().hdr_histograms.size(), 1u);
  EXPECT_EQ(reg.snapshot().hdr_histograms[0].count, 0u);
  EXPECT_TRUE(reg.snapshot().hdr_histograms[0].buckets.empty());
  reg.hdr_histogram("test.hdr_reset").observe(9.0);
  EXPECT_EQ(reg.snapshot().hdr_histograms[0].count, 1u);
}

TEST_F(ObsTest, HdrSnapshotJsonAndText) {
  obs::Registry reg;
  reg.hdr_histogram("test.hdr_json").observe(2.5);
  reg.hdr_histogram("test.hdr_json").observe(40.0);
  const obs::Snapshot snap = reg.snapshot();
  const JsonValue root = JsonParser(snap.to_json()).parse();
  const JsonObject& hist =
      root.object().at("histograms").object().at("test.hdr_json").object();
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 42.5);
  EXPECT_DOUBLE_EQ(hist.at("precision_bits").number(),
                   static_cast<double>(obs::kHdrDefaultSubBits));
  EXPECT_GT(hist.at("p99").number(), 0.0);
  ASSERT_EQ(hist.at("buckets").array().size(), 2u);
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("test.hdr_json count=2"), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Gauge merge across threads (regression for the shard-merge design: gauges
// live in shared State with one atomic cell, so the snapshot value is the
// last write in wall-clock order, never a function of registration order).

TEST_F(ObsTest, GaugeConcurrentWritesYieldOneWrittenValue) {
  obs::Registry reg;
  // Register from the main thread first so registration order is fixed
  // before any worker writes.
  const obs::Gauge g = reg.gauge("test.gauge_race");
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 1000; ++i) {
        g.set(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Whichever thread wrote last wins; the value must be one of the written
  // values, never a blend or a stale per-shard default.
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  const double v = snap.gauges[0].second;
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, 8.0);
  EXPECT_DOUBLE_EQ(v, std::floor(v));
  // A write after all joins is the definitive last write and must win
  // regardless of which thread's shard "registered" first.
  g.set(-7.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges[0].second, -7.5);
}

// ---------------------------------------------------------------------------
// Tracing under concurrent batch load: every request records exactly one
// "srv.request" span, and the trace stays parseable after 100 requests
// solved across multiple workers (run under TSan via the full suite).

TEST_F(ObsTest, TraceSpansMatchBatchRequestCount) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.3, 5.0, 10.0)
                                   .add_customer_polar(2.1, 7.0, 4.0)
                                   .add_customer_polar(4.0, 3.0, 6.0)
                                   .add_antenna(geom::kPi / 3, 10.0, 12.0)
                                   .build();
  std::string line = "{\"instance\":\"";
  for (const char c : model::to_string(inst)) {
    if (c == '\n') {
      line += "\\n";
    } else if (c == '"') {
      line += "\\\"";
    } else {
      line += c;
    }
  }
  line += "\",\"solver\":\"greedy\"}";

  const std::size_t requests = 100;
  std::ostringstream input;
  for (std::size_t i = 0; i < requests; ++i) input << line << "\n";

  obs::trace_start();
  std::istringstream in(input.str());
  std::ostringstream out;
  srv::BatchConfig config;
  config.jobs = 4;
  config.cache_entries = 0;  // every request takes the full solve path
  const srv::BatchReport report = srv::run_batch(in, out, config);
  EXPECT_EQ(report.requests, requests);
  EXPECT_EQ(report.ok, requests);

  std::ostringstream trace;
  obs::trace_stop(trace);
  const JsonValue root = JsonParser(trace.str()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  std::size_t request_spans = 0;
  for (const JsonValue& ev : events) {
    const JsonObject& e = ev.object();
    if (e.at("name").str() == "srv.request" && e.at("ph").str() == "X") {
      ++request_spans;
    }
  }
  EXPECT_EQ(request_spans, requests);
}

TEST_F(ObsTest, SolverCountersPopulate) {
  // End-to-end: the instrumented solvers feed the global registry.
  obs::reset();
  std::vector<knapsack::Item> items;
  for (int i = 1; i <= 10; ++i) {
    items.push_back({static_cast<double>(i), static_cast<double>(i)});
  }
  (void)knapsack::solve_exact_dp(items, 27.0);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_GE(snap.counter("knapsack.dp_calls"), 1u);
  // 10 items, capacity 27 -> 10 * 28 cells.
  EXPECT_GE(snap.counter("knapsack.dp_cells"), 280u);
}
