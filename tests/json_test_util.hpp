#pragma once
// Minimal strict JSON reader shared by the observability tests: enough to
// prove emitted artifacts (snapshots, traces, exporter files, access logs)
// are well-formed and to look up values. Throws std::runtime_error on any
// syntax error. Test-only -- production code never parses its own output.

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace sectorpack::testjson {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v;

  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    const JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json error at " + std::to_string(pos_) + ": " +
                             why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(
                      text_[pos_ + static_cast<std::size_t>(i)]))) {
                fail("bad \\u escape");
              }
            }
            pos_ += 4;
            out += '?';  // code point itself is irrelevant to these tests
            break;
          }
          default: fail("bad escape char");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_value() {
    const char c = peek();
    if (c == '{') {
      ++pos_;
      auto obj = std::make_shared<JsonObject>();
      if (!consume('}')) {
        do {
          std::string key = parse_string();
          expect(':');
          (*obj)[std::move(key)] = parse_value();
        } while (consume(','));
        expect('}');
      }
      return {obj};
    }
    if (c == '[') {
      ++pos_;
      auto arr = std::make_shared<JsonArray>();
      if (!consume(']')) {
        do {
          arr->push_back(parse_value());
        } while (consume(','));
        expect(']');
      }
      return {arr};
    }
    if (c == '"') return {parse_string()};
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return {true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return {false};
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return {nullptr};
    }
    // number
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad value");
    return {std::stod(text_.substr(start, pos_ - start))};
  }

  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace sectorpack::testjson
