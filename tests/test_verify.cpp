// The src/verify/ named-invariant verifier: a feasible solution passes
// every invariant; each corruption mode is rejected under its own
// invariant name (the property the `sectorpack verify` subcommand and the
// contracts-build solver postconditions rely on); and every solver
// family's output verifies clean on generated instances.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

model::Instance small_instance(std::uint64_t seed = 7) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (int i = 0; i < 40; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(1.0, 9.0),
                         static_cast<double>(rng.uniform_int(1, 9)));
  }
  b.add_identical_antennas(3, 1.0, 10.0, 30.0);
  return b.build();
}

// A solution with at least one served customer, so corruptions below have
// something to corrupt.
model::Solution served_solution(const model::Instance& inst) {
  model::Solution sol = sectors::solve_greedy(inst);
  EXPECT_GT(model::served_count(sol), 0u);
  return sol;
}

std::size_t first_served(const model::Solution& sol) {
  for (std::size_t i = 0; i < sol.assign.size(); ++i) {
    if (sol.assign[i] != model::kUnserved) return i;
  }
  ADD_FAILURE() << "no served customer";
  return 0;
}

}  // namespace

TEST(Verify, FeasibleSolutionPassesAllInvariants) {
  const model::Instance inst = small_instance();
  const model::Solution sol = served_solution(inst);
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.to_string(), "all invariants hold");
}

TEST(Verify, EmptySolutionPasses) {
  const model::Instance inst = small_instance();
  const model::Solution sol = model::Solution::empty_for(inst);
  EXPECT_TRUE(verify::verify_solution(inst, sol).ok);
}

TEST(Verify, ShapeMismatchNamed) {
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  sol.alpha.pop_back();
  verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has("shape")) << report.to_string();

  sol = served_solution(inst);
  sol.assign.push_back(model::kUnserved);
  report = verify::verify_solution(inst, sol);
  EXPECT_TRUE(report.has("shape")) << report.to_string();
}

TEST(Verify, DenormalizedAlphaNamed) {
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  sol.alpha[0] = -0.5;  // finite but outside [0, 2*pi)
  verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has("alpha-normalized")) << report.to_string();

  sol = served_solution(inst);
  sol.alpha[1] = geom::kTwoPi + 1.0;
  EXPECT_TRUE(verify::verify_solution(inst, sol).has("alpha-normalized"));

  sol = served_solution(inst);
  sol.alpha[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(verify::verify_solution(inst, sol).has("alpha-normalized"));
}

TEST(Verify, ValidateAcceptsWhatVerifyAccepts) {
  // verify is strictly stronger than model::validate: spot-check the
  // "accepts" direction on solver output.
  const model::Instance inst = small_instance();
  const model::Solution sol = served_solution(inst);
  EXPECT_TRUE(verify::verify_solution(inst, sol).ok);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(Verify, OutOfRangeAssignmentNamed) {
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  sol.assign[first_served(sol)] =
      static_cast<std::int32_t>(inst.num_antennas());
  verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has("assign-range")) << report.to_string();

  sol = served_solution(inst);
  sol.assign[first_served(sol)] = -7;  // not kUnserved, not an antenna
  EXPECT_TRUE(verify::verify_solution(inst, sol).has("assign-range"));
}

TEST(Verify, ContainmentViolationNamed) {
  // Rotate one antenna 180 degrees away from its packed customers: they
  // fall outside the oriented sector (rho = 1.0 << pi).
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  const std::size_t i = first_served(sol);
  const auto j = static_cast<std::size_t>(sol.assign[i]);
  sol.alpha[j] = geom::normalize(sol.alpha[j] + geom::kPi);
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has("sector-containment")) << report.to_string();
}

TEST(Verify, OverfullSectorNamed) {
  // One antenna, wide open, capacity far below the total demand; assigning
  // everyone overloads it without breaking containment.
  model::InstanceBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.add_customer_polar(0.1 * i, 5.0, 10.0);
  }
  b.add_antenna(geom::kTwoPi, 10.0, 25.0);
  const model::Instance inst = b.build();
  model::Solution sol = model::Solution::empty_for(inst);
  for (auto& a : sol.assign) a = 0;
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has("capacity")) << report.to_string();
  EXPECT_FALSE(report.has("sector-containment")) << report.to_string();
}

TEST(Verify, StaleStatusByteNamed) {
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  sol.status = static_cast<model::SolveStatus>(7);  // no such enumerator
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.has("status")) << report.to_string();
}

TEST(Verify, BudgetExhaustedStatusIsLegal) {
  // kBudgetExhausted is a first-class status: same feasibility contract.
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  sol.status = model::SolveStatus::kBudgetExhausted;
  EXPECT_TRUE(verify::verify_solution(inst, sol).ok);
}

TEST(Verify, MultipleViolationsAllReported) {
  const model::Instance inst = small_instance();
  model::Solution sol = served_solution(inst);
  sol.alpha[0] = -1.0;
  sol.status = static_cast<model::SolveStatus>(9);
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_TRUE(report.has("alpha-normalized"));
  EXPECT_TRUE(report.has("status"));
  EXPECT_GE(report.violations.size(), 2u);
  // to_string carries one "invariant: detail" line per violation.
  const std::string text = report.to_string();
  EXPECT_NE(text.find("alpha-normalized:"), std::string::npos) << text;
  EXPECT_NE(text.find("status:"), std::string::npos) << text;
}

// Every solver family's output verifies clean -- the runtime face of the
// contracts-build postcondition, exercised here in all build modes.
TEST(Verify, AllSolverOutputsVerify) {
  const model::Instance inst = small_instance(21);
  const std::vector<double> uniform_alphas(inst.num_antennas(), 0.0);

  const auto check = [&](const model::Solution& sol, const char* which) {
    const verify::VerifyReport report = verify::verify_solution(inst, sol);
    EXPECT_TRUE(report.ok) << which << ": " << report.to_string();
  };

  check(sectors::solve_greedy(inst), "sectors.greedy");
  check(sectors::solve_local_search(inst), "sectors.local_search");
  check(sectors::solve_uniform_orientations(inst), "sectors.uniform");
  sectors::AnnealConfig anneal;
  anneal.iterations = 200;
  check(sectors::solve_annealing(inst, anneal), "sectors.annealing");
  check(assign::solve_greedy(inst, uniform_alphas), "assign.greedy");
  check(assign::solve_successive(inst, uniform_alphas),
        "assign.successive");
  check(assign::solve_lp_rounding(inst, uniform_alphas),
        "assign.lp_rounding");
  check(single::solve_exact(inst), "single.exact");
  check(single::solve_greedy(inst), "single.greedy");
}

TEST(Verify, ExactSolverOutputsVerifyOnTinyInstance) {
  sim::Rng rng(5);
  model::InstanceBuilder b;
  for (int i = 0; i < 8; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi), 5.0,
                         static_cast<double>(rng.uniform_int(1, 4)));
  }
  b.add_identical_antennas(2, 1.0, 10.0, 6.0);
  const model::Instance inst = b.build();
  const verify::VerifyReport report =
      verify::verify_solution(inst, sectors::solve_exact(inst));
  EXPECT_TRUE(report.ok) << report.to_string();

  const std::vector<double> alphas(inst.num_antennas(), 0.0);
  EXPECT_TRUE(
      verify::verify_solution(inst, assign::solve_exact(inst, alphas)).ok);
}

TEST(Verify, DeadlineExpiredIncumbentsVerify) {
  // Budget-exhausted incumbents obey the same invariants as complete
  // solutions (feasibility degrades never).
  const model::Instance inst = small_instance(33);
  core::SolveOptions expired;
  expired.deadline = core::Deadline::after(0.0);
  sectors::LocalSearchConfig config;
  config.solve = expired;
  const model::Solution sol = sectors::solve_local_search(inst, config);
  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted);
  const verify::VerifyReport report = verify::verify_solution(inst, sol);
  EXPECT_TRUE(report.ok) << report.to_string();
}
