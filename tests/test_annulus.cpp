// Annular sectors: antennas with a near-field dead zone (min_range > 0).
// The default min_range = 0 recovers the paper's plain pie-slice sector;
// these tests pin the annular semantics end to end.

#include <gtest/gtest.h>

#include "src/cover/cover.hpp"
#include "src/sectorpack.hpp"

using namespace sectorpack;

TEST(AnnulusSector, GeometryContainment) {
  const geom::Sector s{0.0, geom::kPi / 2.0, 10.0, 3.0};
  EXPECT_TRUE(s.contains(geom::Polar{0.5, 5.0}));
  EXPECT_TRUE(s.contains(geom::Polar{0.5, 3.0}));   // inner edge closed
  EXPECT_TRUE(s.contains(geom::Polar{0.5, 10.0}));  // outer edge closed
  EXPECT_FALSE(s.contains(geom::Polar{0.5, 2.9}));  // inside dead zone
  EXPECT_FALSE(s.contains(geom::Polar{0.5, 10.1}));
  EXPECT_FALSE(s.contains(geom::Polar{2.0, 5.0}));  // wrong angle
  EXPECT_FALSE(s.contains(geom::Polar{0.0, 0.0}));  // origin in dead zone
}

TEST(AnnulusSector, AreaFormula) {
  const geom::Sector s{0.0, geom::kPi, 10.0, 6.0};
  EXPECT_NEAR(s.area(), 0.5 * geom::kPi * (100.0 - 36.0), 1e-12);
}

TEST(AnnulusSector, RotationPreservesMinRadius) {
  const geom::Sector s{1.0, 0.5, 8.0, 2.0};
  EXPECT_DOUBLE_EQ(s.rotated(0.7).min_radius(), 2.0);
}

TEST(AnnulusModel, ValidationBounds) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 1.0);
  b.add_antenna(1.0, 10.0, 5.0, /*min_range=*/-1.0);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
  model::InstanceBuilder b2;
  b2.add_customer_polar(0.1, 5.0, 1.0);
  b2.add_antenna(1.0, 10.0, 5.0, /*min_range=*/10.0);  // == range
  EXPECT_THROW((void)b2.build(), std::invalid_argument);
}

TEST(AnnulusModel, InRangeRespectsDeadZone) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 2.0, 1.0)
                                   .add_customer_polar(0.1, 5.0, 1.0)
                                   .add_antenna(1.0, 10.0, 5.0, 3.0)
                                   .build();
  EXPECT_FALSE(inst.in_range(0, 0));
  EXPECT_TRUE(inst.in_range(1, 0));
  EXPECT_TRUE(inst.has_annular_antennas());
}

TEST(AnnulusModel, ValidatorRejectsDeadZoneAssignment) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 2.0, 1.0)
                                   .add_antenna(1.0, 10.0, 5.0, 3.0)
                                   .build();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.assign[0] = 0;
  EXPECT_FALSE(model::is_feasible(inst, sol));
}

TEST(AnnulusSolvers, SingleExactSkipsDeadZone) {
  // Near customer is richer but inside the dead zone.
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 2.0, 9.0)
                                   .add_customer_polar(0.1, 6.0, 4.0)
                                   .add_antenna(1.0, 10.0, 20.0, 3.0)
                                   .build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 4.0);
  EXPECT_EQ(sol.assign[0], model::kUnserved);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(AnnulusSolvers, MixedFleetUsesComplementaryBands) {
  // A short-range antenna covers the near band, an annular long-range
  // antenna the far band; both customers get served only by the pair.
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 2.0, 5.0);
  b.add_customer_polar(0.1, 8.0, 5.0);
  b.add_antenna(1.0, 4.0, 5.0);         // near band only
  b.add_antenna(1.0, 10.0, 5.0, 5.0);   // far band only
  const model::Instance inst = b.build();
  const model::Solution sol = sectors::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 10.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  // Greedy also gets both: the two antennas see disjoint customers.
  EXPECT_DOUBLE_EQ(
      model::served_demand(inst, sectors::solve_greedy(inst)), 10.0);
}

TEST(AnnulusSolvers, BoundsStillDominate) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Rng rng(seed + 61);
    model::InstanceBuilder b;
    for (int i = 0; i < 7; ++i) {
      b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                           rng.uniform(1.0, 10.0),
                           static_cast<double>(rng.uniform_int(1, 6)));
    }
    b.add_antenna(1.5, 10.0, 12.0, 3.0);
    b.add_antenna(1.5, 5.0, 12.0);
    const model::Instance inst = b.build();
    const double exact =
        model::served_demand(inst, sectors::solve_exact(inst));
    EXPECT_GE(bounds::orientation_free_bound(inst) + 1e-6, exact) << seed;
    EXPECT_GE(bounds::flow_window_bound(inst) + 1e-6, exact) << seed;
  }
}

TEST(AnnulusCover, BlockersIncludeDeadZone) {
  const std::vector<model::Customer> customers = {
      {geom::from_polar(0.0, 1.0), 1.0},  // inside dead zone
      {geom::from_polar(1.0, 5.0), 1.0},
  };
  const model::AntennaSpec type{geom::kPi, 10.0, 5.0, 2.0};
  const cover::CoverResult r = cover::solve_greedy(customers, type);
  EXPECT_FALSE(r.feasible);
  ASSERT_EQ(r.blockers.size(), 1u);
  EXPECT_EQ(r.blockers[0], 0u);
}

TEST(AnnulusIO, V2RoundtripPreservesMinRange) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 5.0, 2.0)
                                   .add_antenna(1.0, 10.0, 5.0, 2.5)
                                   .build();
  const std::string text = model::to_string(inst);
  EXPECT_NE(text.find("sectorpack-instance v2"), std::string::npos);
  const model::Instance back = model::instance_from_string(text);
  ASSERT_EQ(back.num_antennas(), 1u);
  EXPECT_DOUBLE_EQ(back.antenna(0).min_range, 2.5);
  EXPECT_TRUE(back.has_annular_antennas());
}

TEST(AnnulusIO, PlainInstanceStaysV1) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 5.0, 2.0)
                                   .add_antenna(1.0, 10.0, 5.0)
                                   .build();
  EXPECT_NE(model::to_string(inst).find("sectorpack-instance v1"),
            std::string::npos);
  EXPECT_FALSE(inst.has_annular_antennas());
}

TEST(AnnulusIdentity, MinRangeZeroBehavesAsBefore) {
  // Differential check: adding min_range = 0 explicitly changes nothing.
  sim::Rng rng(5);
  model::InstanceBuilder b1;
  model::InstanceBuilder b2;
  for (int i = 0; i < 12; ++i) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double r = rng.uniform(1.0, 9.0);
    const double d = static_cast<double>(rng.uniform_int(1, 5));
    b1.add_customer_polar(theta, r, d);
    b2.add_customer_polar(theta, r, d);
  }
  b1.add_identical_antennas(2, 1.4, 10.0, 9.0);
  b2.add_antenna(1.4, 10.0, 9.0, 0.0);
  b2.add_antenna(1.4, 10.0, 9.0, 0.0);
  EXPECT_DOUBLE_EQ(
      model::served_demand(b1.build(), sectors::solve_greedy(b1.build())),
      model::served_demand(b2.build(), sectors::solve_greedy(b2.build())));
}
