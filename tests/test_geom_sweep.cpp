#include "src/geom/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/geom/arc.hpp"
#include "src/sim/rng.hpp"

namespace geom = sectorpack::geom;

namespace {

std::vector<double> random_angles(sectorpack::sim::Rng& rng, std::size_t n) {
  std::vector<double> thetas(n);
  for (double& t : thetas) t = rng.uniform(0.0, geom::kTwoPi);
  return thetas;
}

// Reference: members of a window computed by direct containment checks.
std::set<std::size_t> naive_members(const std::vector<double>& thetas,
                                    double alpha, double rho) {
  std::set<std::size_t> members;
  const geom::Arc arc(alpha, rho);
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    if (arc.contains(geom::normalize(thetas[i]))) members.insert(i);
  }
  return members;
}

}  // namespace

TEST(Candidates, LeadingEdgeSetIsCustomerAngles) {
  const std::vector<double> thetas = {0.5, 1.5, 3.0};
  const auto cands = geom::candidate_orientations(thetas, 1.0);
  ASSERT_EQ(cands.size(), 3u);
  EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
  EXPECT_NEAR(cands[0], 0.5, 1e-12);
  EXPECT_NEAR(cands[1], 1.5, 1e-12);
  EXPECT_NEAR(cands[2], 3.0, 1e-12);
}

TEST(Candidates, BothEdgesDoublesTheSet) {
  const std::vector<double> thetas = {1.0, 2.0};
  const auto cands = geom::candidate_orientations(
      thetas, 0.5, geom::CandidateEdges::kBoth);
  ASSERT_EQ(cands.size(), 4u);
  // {1.0, 2.0} u {0.5, 1.5}
  EXPECT_NEAR(cands[0], 0.5, 1e-12);
  EXPECT_NEAR(cands[1], 1.0, 1e-12);
  EXPECT_NEAR(cands[2], 1.5, 1e-12);
  EXPECT_NEAR(cands[3], 2.0, 1e-12);
}

TEST(Candidates, DuplicatesRemoved) {
  const std::vector<double> thetas = {1.0, 1.0, 1.0 + geom::kTwoPi};
  const auto cands = geom::candidate_orientations(thetas, 0.5);
  EXPECT_EQ(cands.size(), 1u);
}

TEST(Candidates, EmptyInput) {
  EXPECT_TRUE(geom::candidate_orientations({}, 1.0).empty());
}

TEST(WindowSweep, EmptyInput) {
  const geom::WindowSweep sweep(std::vector<double>{}, 1.0);
  EXPECT_EQ(sweep.num_windows(), 0u);
}

TEST(WindowSweep, SingleCustomer) {
  const std::vector<double> thetas = {2.0};
  const geom::WindowSweep sweep(thetas, 0.5);
  ASSERT_EQ(sweep.num_windows(), 1u);
  EXPECT_NEAR(sweep.alpha(0), 2.0, 1e-12);
  ASSERT_EQ(sweep.members(0).size(), 1u);
  EXPECT_EQ(sweep.members(0)[0], 0u);
}

TEST(WindowSweep, MembersMatchNaive) {
  sectorpack::sim::Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(40);
    const double rho = rng.uniform(0.05, geom::kTwoPi);
    const auto thetas = random_angles(rng, n);
    const geom::WindowSweep sweep(thetas, rho);
    ASSERT_GT(sweep.num_windows(), 0u);
    for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
      const auto span = sweep.members(w);
      const std::set<std::size_t> got(span.begin(), span.end());
      const auto want = naive_members(thetas, sweep.alpha(w), rho);
      EXPECT_EQ(got, want) << "trial=" << trial << " w=" << w
                           << " alpha=" << sweep.alpha(w) << " rho=" << rho;
    }
  }
}

TEST(WindowSweep, FullCircleWindowContainsEveryone) {
  sectorpack::sim::Rng rng(102);
  const auto thetas = random_angles(rng, 25);
  const geom::WindowSweep sweep(thetas, geom::kTwoPi);
  for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
    EXPECT_EQ(sweep.members(w).size(), thetas.size());
  }
}

TEST(WindowSweep, DuplicateAnglesShareWindow) {
  const std::vector<double> thetas = {1.0, 1.0, 2.0};
  const geom::WindowSweep sweep(thetas, 0.5);
  EXPECT_EQ(sweep.num_windows(), 2u);
  EXPECT_EQ(sweep.members(0).size(), 2u);  // both duplicates
}

TEST(WindowSweep, CandidateCompleteness) {
  // Candidate-orientation lemma, checked empirically: for any random
  // orientation alpha, the member set of [alpha, alpha+rho] is a subset of
  // the member set of some candidate window.
  sectorpack::sim::Rng rng(103);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(25);
    const double rho = rng.uniform(0.1, 3.0);
    const auto thetas = random_angles(rng, n);
    const geom::WindowSweep sweep(thetas, rho);

    for (int probe = 0; probe < 20; ++probe) {
      const double alpha = rng.uniform(0.0, geom::kTwoPi);
      const auto arbitrary = naive_members(thetas, alpha, rho);
      bool dominated = arbitrary.empty();
      for (std::size_t w = 0; w < sweep.num_windows() && !dominated; ++w) {
        const auto span = sweep.members(w);
        const std::set<std::size_t> cand(span.begin(), span.end());
        dominated = std::includes(cand.begin(), cand.end(),
                                  arbitrary.begin(), arbitrary.end());
      }
      EXPECT_TRUE(dominated)
          << "window at alpha=" << alpha << " rho=" << rho
          << " not dominated by any candidate window (trial " << trial << ")";
    }
  }
}

TEST(WindowSweep, MembersOrderedCcwFromLeadingEdge) {
  sectorpack::sim::Rng rng(104);
  const auto thetas = random_angles(rng, 30);
  const double rho = 2.0;
  const geom::WindowSweep sweep(thetas, rho);
  for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
    const auto span = sweep.members(w);
    double prev = -1.0;
    for (std::size_t idx : span) {
      const double off =
          geom::ccw_delta(sweep.alpha(w), geom::normalize(thetas[idx]));
      const double off_adj = off >= geom::kTwoPi - 1e-9 ? 0.0 : off;
      EXPECT_GE(off_adj + 1e-9, prev);
      prev = off_adj;
    }
  }
}

// Parameterized: number of windows never exceeds the number of distinct
// angles, across widths.
class SweepWidthProperty : public ::testing::TestWithParam<double> {};

TEST_P(SweepWidthProperty, WindowCountBoundedByDistinctAngles) {
  sectorpack::sim::Rng rng(200 + static_cast<std::uint64_t>(GetParam() * 10));
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(60);
    const auto thetas = random_angles(rng, n);
    const geom::WindowSweep sweep(thetas, GetParam());
    EXPECT_LE(sweep.num_windows(), n);
    EXPECT_GE(sweep.num_windows(), 1u);
    for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
      EXPECT_GE(sweep.members(w).size(), 1u);  // leading edge is a member
      EXPECT_LE(sweep.members(w).size(), n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SweepWidthProperty,
                         ::testing::Values(0.01, 0.3, 1.0, geom::kPi, 5.0,
                                           geom::kTwoPi));

// --- Delta iterator -------------------------------------------------------

namespace {

// Reference: replay a sweep's deltas on an explicit membership set and
// compare against the materialized member span of every window.
void check_delta_replay(const std::vector<double>& thetas, double rho,
                        const char* label) {
  const geom::WindowSweep sweep(thetas, rho);
  const std::size_t nw = sweep.num_windows();
  ASSERT_GE(nw, 1u) << label;

  std::multiset<std::size_t> live;
  const auto first = sweep.members(0);
  live.insert(first.begin(), first.end());
  for (std::size_t w = 1; w < nw; ++w) {
    const geom::WindowDelta d = sweep.delta(w);
    // Leave before enter: every leaver must currently be a member.
    for (std::size_t idx : d.leave) {
      const auto it = live.find(idx);
      ASSERT_NE(it, live.end())
          << label << ": window " << w << " removes non-member " << idx;
      live.erase(it);
    }
    for (std::size_t idx : d.enter) live.insert(idx);

    const auto span = sweep.members(w);
    const std::multiset<std::size_t> want(span.begin(), span.end());
    ASSERT_EQ(live, want) << label << ": window " << w
                          << " delta replay diverged from members()";
  }
}

}  // namespace

TEST(WindowSweepDelta, ReplayMatchesMaterializedWindowsRandom) {
  sectorpack::sim::Rng rng(777);
  for (double rho : {0.05, 0.7, geom::kPi, 5.5, geom::kTwoPi - 1e-6}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 1 + rng.uniform_int(50);
      check_delta_replay(random_angles(rng, n), rho, "random");
    }
  }
}

TEST(WindowSweepDelta, ReplayWithClusteredDuplicates) {
  sectorpack::sim::Rng rng(778);
  for (int trial = 0; trial < 20; ++trial) {
    // Few distinct angles, many repeats: deltas move whole duplicate runs.
    std::vector<double> thetas;
    const std::size_t clusters = 1 + rng.uniform_int(6);
    std::vector<double> centers = random_angles(rng, clusters);
    for (std::size_t c = 0; c < clusters; ++c) {
      const std::size_t reps = 1 + rng.uniform_int(5);
      for (std::size_t r = 0; r < reps; ++r) thetas.push_back(centers[c]);
    }
    check_delta_replay(thetas, 1.0, "clustered");
  }
}

TEST(WindowSweep, AllDuplicateAnglesCollapseToOneWindow) {
  const std::vector<double> thetas(7, 2.25);
  const geom::WindowSweep sweep(thetas, 0.5);
  ASSERT_EQ(sweep.num_windows(), 1u);
  EXPECT_EQ(sweep.members(0).size(), 7u);
  EXPECT_NEAR(sweep.alpha(0), 2.25, 1e-12);
}

TEST(WindowSweep, FullCircleWidthEveryWindowHoldsEveryone) {
  sectorpack::sim::Rng rng(779);
  for (double rho : {geom::kTwoPi, geom::kTwoPi + 3.0}) {
    const auto thetas = random_angles(rng, 12);
    const geom::WindowSweep sweep(thetas, rho);
    for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
      EXPECT_EQ(sweep.members(w).size(), thetas.size())
          << "rho=" << rho << " window " << w;
    }
    check_delta_replay(thetas, rho, "full-circle");
  }
}

TEST(WindowSweep, SingleDirection) {
  const std::vector<double> thetas = {4.0};
  const geom::WindowSweep sweep(thetas, 1.0);
  ASSERT_EQ(sweep.num_windows(), 1u);
  ASSERT_EQ(sweep.members(0).size(), 1u);
  EXPECT_EQ(sweep.members(0)[0], 0u);
  EXPECT_EQ(sweep.num_directions(), 1u);
  EXPECT_EQ(sweep.sorted_index(0), 0u);
  EXPECT_EQ(sweep.window_first(0), 0u);
  EXPECT_EQ(sweep.window_end(0), 1u);
}

// Regression: dedup must compare against the last *kept* candidate, not
// collapse a whole chain of pairwise-close angles. With spacing just under
// kAngleEps, elements two steps apart are distinct and must survive.
TEST(Candidates, NearEpsChainKeepsDistinctElements) {
  const double step = 0.6 * geom::kAngleEps;
  const std::vector<double> thetas = {1.0, 1.0 + step, 1.0 + 2 * step,
                                      1.0 + 3 * step};
  const auto cands = geom::candidate_orientations(thetas, 0.5);
  // Kept: 1.0 (first), 1.0+2*step (1.2*eps from last kept), others merged.
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_NEAR(cands[0], 1.0, 1e-12);
  EXPECT_NEAR(cands[1], 1.0 + 2 * step, 1e-12);
}
