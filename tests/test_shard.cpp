#include "src/shard/shard.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "src/bench_util/timer.hpp"
#include "src/core/deadline.hpp"
#include "src/model/solution.hpp"
#include "src/model/validate.hpp"
#include "src/sectors/sectors.hpp"
#include "src/sim/generators.hpp"
#include "src/sim/rng.hpp"

namespace bench_util = sectorpack::bench_util;
namespace shard = sectorpack::shard;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;
namespace core = sectorpack::core;

namespace {

model::Instance random_instance(std::uint64_t seed, std::size_t n,
                                std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(0.5, 100.0),
                         static_cast<double>(rng.uniform_int(1, 4)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    b.add_antenna(rng.uniform(0.4, 1.5), rng.uniform(25.0, 90.0),
                  static_cast<double>(rng.uniform_int(30, 120)));
  }
  return b.build();
}

}  // namespace

TEST(Shard, FeasibleAcrossShapes) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const model::Instance inst =
        random_instance(seed, 400 + 150 * seed, 2 + seed);
    shard::ShardConfig config;
    config.annuli = seed % 2 == 0 ? 1 : 3;
    shard::ShardStats stats;
    const model::Solution sol = shard::solve(inst, config, &stats);
    const auto report = model::validate(inst, sol);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.errors.empty() ? "" : report.errors[0]);
    EXPECT_GE(stats.shards, 1u);
  }
}

TEST(Shard, DeterministicAndParallelInvariant) {
  const model::Instance inst = random_instance(11, 1200, 5);
  shard::ShardConfig config;
  config.annuli = 2;
  const model::Solution a = shard::solve(inst, config);
  const model::Solution b = shard::solve(inst, config);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.assign, b.assign);

  config.parallel = false;
  const model::Solution serial = shard::solve(inst, config);
  EXPECT_EQ(a.alpha, serial.alpha);
  EXPECT_EQ(a.assign, serial.assign);
}

// With a single wedge and a single band there is exactly one shard holding
// the whole instance, so sharding reduces to the plain sectors greedy with
// the same oracle (repair has no seams to work on).
TEST(Shard, SingleShardMatchesPlainGreedy) {
  const model::Instance inst = random_instance(21, 800, 4);
  shard::ShardConfig config;
  config.wedges = 1;
  config.annuli = 1;
  shard::ShardStats stats;
  const model::Solution sharded = shard::solve(inst, config, &stats);
  EXPECT_EQ(stats.shards, 1u);
  EXPECT_EQ(stats.repair_moved, 0u);

  sectorpack::sectors::GreedyConfig gc;
  gc.oracle = config.oracle;
  gc.parallel = false;
  const model::Solution plain = sectorpack::sectors::solve_greedy(inst, gc);
  EXPECT_EQ(sharded.alpha, plain.alpha);
  EXPECT_EQ(sharded.assign, plain.assign);
}

// Seam repair only ever adds assignments: served demand with repair enabled
// (default) is >= served demand when the repair zone is forced empty.
TEST(Shard, RepairNeverDegrades) {
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    const model::Instance inst = random_instance(seed, 1500, 6);
    shard::ShardConfig config;
    shard::ShardStats stats;
    const model::Solution repaired = shard::solve(inst, config, &stats);

    config.seam_eps = 0.0;  // no seam zone: merge only
    const model::Solution merged = shard::solve(inst, config);
    EXPECT_GE(model::served_demand(inst, repaired),
              model::served_demand(inst, merged))
        << "seed " << seed;
    const auto served_count = [&](const model::Solution& s) {
      std::size_t c = 0;
      for (auto a : s.assign) c += a != model::kUnserved;
      return c;
    };
    EXPECT_EQ(served_count(repaired), served_count(merged) + stats.repair_moved)
        << "seed " << seed;
  }
}

TEST(Shard, PreExpiredDeadlineReturnsFeasibleBudgetExhausted) {
  const model::Instance inst = random_instance(41, 300, 3);
  shard::ShardConfig config;
  config.solve.deadline = core::Deadline::after(0.0);
  const model::Solution sol = shard::solve(inst, config);
  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted);
  const auto report = model::validate(inst, sol);
  EXPECT_TRUE(report.ok);
}

// Regression: shard's per-slice deadlines used to snapshot the global
// budget without sharing its cancel flag, so a drain/SIGINT mid-solve let
// in-flight shard sub-solves run out their full slices. after_at_most now
// registers slices as children of the global deadline; a mid-solve
// cancel() must stop the whole sharded solve promptly.
TEST(Shard, MidSolveCancelStopsSlicesPromptly) {
  // Big uniform instance + exact per-move oracle: ~1s of shard work on a
  // typical dev box, enough runway to cancel mid-flight.
  sim::Rng rng(61);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < 40000; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(0.5, 100.0),
                         static_cast<double>(rng.uniform_int(1, 4)));
  }
  for (std::size_t j = 0; j < 12; ++j) {
    b.add_antenna(rng.uniform(0.4, 1.5), rng.uniform(25.0, 90.0), 4000.0);
  }
  const model::Instance inst = b.build();
  shard::ShardConfig config;
  config.wedges = 4;
  config.annuli = 2;
  config.oracle = sectorpack::knapsack::Oracle::exact();

  // Calibrate: how long does the uncancelled solve take here? Skip on
  // machines where it is too fast to cancel mid-flight reliably.
  bench_util::Timer timer;
  (void)shard::solve(inst, config);
  const double full_ms = timer.elapsed_ms();
  if (full_ms < 200.0) {
    GTEST_SKIP() << "uncancelled solve too fast to probe (" << full_ms
                 << " ms)";
  }

  // A generous budget that would never lapse on its own; the cancel is the
  // only thing that can stop the solve early.
  const core::Deadline global = core::Deadline::after(3600.0);
  config.solve.deadline = global;
  std::thread canceller([&global, full_ms] {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(full_ms / 10.0)));
    global.cancel();
  });
  timer.reset();
  const model::Solution sol = shard::solve(inst, config);
  const double cancelled_ms = timer.elapsed_ms();
  canceller.join();

  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(model::validate(inst, sol).ok);
  // Prompt: well under the uncancelled runtime (10% trigger + one check
  // interval; 75% leaves slack for noisy CI).
  EXPECT_LT(cancelled_ms, 0.75 * full_ms)
      << "cancel did not reach in-flight shard slices";
}

TEST(Shard, StatsCountRepairedCustomers) {
  // Antennas with ranges spanning the disk and many wedges force seams;
  // just assert the counters are self-consistent and repair stays feasible.
  const model::Instance inst = random_instance(51, 2000, 8);
  shard::ShardConfig config;
  config.wedges = 16;
  shard::ShardStats stats;
  const model::Solution sol = shard::solve(inst, config, &stats);
  EXPECT_GE(stats.shards, 1u);
  EXPECT_LE(stats.shards, 16u);
  const auto report = model::validate(inst, sol);
  EXPECT_TRUE(report.ok);
}
