#include "src/knapsack/knapsack.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "src/sim/adversarial.hpp"
#include "src/sim/rng.hpp"

namespace ks = sectorpack::knapsack;
namespace sim = sectorpack::sim;

namespace {

std::vector<ks::Item> random_items(sim::Rng& rng, std::size_t n,
                                   bool integral, bool demand_packing) {
  std::vector<ks::Item> items(n);
  for (ks::Item& it : items) {
    if (integral) {
      it.weight = static_cast<double>(rng.uniform_int(1, 30));
    } else {
      it.weight = rng.uniform(0.1, 30.0);
    }
    it.value = demand_packing ? it.weight
                              : (integral
                                     ? static_cast<double>(
                                           rng.uniform_int(1, 50))
                                     : rng.uniform(0.1, 50.0));
  }
  return items;
}

double chosen_value(const std::vector<ks::Item>& items,
                    const ks::Result& res) {
  double v = 0.0;
  for (std::size_t i : res.chosen) v += items[i].value;
  return v;
}

double chosen_weight(const std::vector<ks::Item>& items,
                     const ks::Result& res) {
  double w = 0.0;
  for (std::size_t i : res.chosen) w += items[i].weight;
  return w;
}

void expect_consistent(const std::vector<ks::Item>& items,
                       const ks::Result& res, double capacity) {
  EXPECT_NEAR(chosen_value(items, res), res.value, 1e-9);
  EXPECT_NEAR(chosen_weight(items, res), res.weight, 1e-9);
  EXPECT_LE(res.weight, capacity + 1e-9);
  // No duplicate picks.
  for (std::size_t p = 1; p < res.chosen.size(); ++p) {
    EXPECT_LT(res.chosen[p - 1], res.chosen[p]);
  }
}

}  // namespace

TEST(BruteForce, TinyCases) {
  const std::vector<ks::Item> items = {{6.0, 5.0}, {5.0, 4.0}, {5.0, 4.0}};
  const ks::Result res = ks::solve_brute_force(items, 8.0);
  EXPECT_DOUBLE_EQ(res.value, 10.0);  // two 4-weight items
  expect_consistent(items, res, 8.0);
}

TEST(BruteForce, EmptyAndInfeasible) {
  EXPECT_DOUBLE_EQ(ks::solve_brute_force({}, 10.0).value, 0.0);
  const std::vector<ks::Item> items = {{5.0, 20.0}};
  EXPECT_DOUBLE_EQ(ks::solve_brute_force(items, 10.0).value, 0.0);
}

TEST(BruteForce, RejectsLargeN) {
  std::vector<ks::Item> items(26, ks::Item{1.0, 1.0});
  EXPECT_THROW((void)ks::solve_brute_force(items, 5.0),
               std::invalid_argument);
}

TEST(ExactDp, MatchesBruteForce) {
  sim::Rng rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(12);
    const auto items = random_items(rng, n, /*integral=*/true,
                                    /*demand_packing=*/trial % 2 == 0);
    const double cap = static_cast<double>(rng.uniform_int(1, 120));
    const ks::Result dp = ks::solve_exact_dp(items, cap);
    const ks::Result bf = ks::solve_brute_force(items, cap);
    EXPECT_NEAR(dp.value, bf.value, 1e-9) << "trial " << trial;
    expect_consistent(items, dp, cap);
  }
}

TEST(ExactDp, FractionalCapacityFloors) {
  const std::vector<ks::Item> items = {{3.0, 3.0}, {2.0, 2.0}};
  // Capacity 4.7 floors to 4: best is 3 + nothing? 3+2=5 > 4, so 3.
  const ks::Result res = ks::solve_exact_dp(items, 4.7);
  EXPECT_DOUBLE_EQ(res.value, 3.0);
}

TEST(ExactDp, RejectsNonIntegralWeights) {
  const std::vector<ks::Item> items = {{1.0, 1.5}};
  EXPECT_FALSE(ks::dp_applicable(items, 10.0));
  EXPECT_THROW((void)ks::solve_exact_dp(items, 10.0), std::invalid_argument);
}

TEST(ExactDp, RejectsHugeTables) {
  const std::vector<ks::Item> items = {{1.0, 1.0}};
  EXPECT_FALSE(ks::dp_applicable(items, 1e15));
}

TEST(ExactDp, NegativeCapacityEmpty) {
  const std::vector<ks::Item> items = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(ks::solve_exact_dp(items, -1.0).value, 0.0);
}

TEST(BranchBound, MatchesDpOnIntegral) {
  sim::Rng rng(2);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(16);
    const auto items = random_items(rng, n, true, trial % 2 == 0);
    const double cap = static_cast<double>(rng.uniform_int(1, 150));
    const ks::Result bb = ks::solve_bb(items, cap);
    const ks::Result dp = ks::solve_exact_dp(items, cap);
    EXPECT_NEAR(bb.value, dp.value, 1e-9) << "trial " << trial;
    expect_consistent(items, bb, cap);
  }
}

TEST(BranchBound, MatchesBruteForceOnDoubles) {
  sim::Rng rng(3);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(14);
    const auto items = random_items(rng, n, false, trial % 2 == 0);
    const double cap = rng.uniform(5.0, 120.0);
    const ks::Result bb = ks::solve_bb(items, cap);
    const ks::Result bf = ks::solve_brute_force(items, cap);
    EXPECT_NEAR(bb.value, bf.value, 1e-9) << "trial " << trial;
    expect_consistent(items, bb, cap);
  }
}

TEST(BranchBound, NodeLimitThrows) {
  // 40 equal-density items with incommensurate weights defeat pruning long
  // enough to trip a tiny node budget.
  sim::Rng rng(4);
  std::vector<ks::Item> items;
  for (int i = 0; i < 40; ++i) {
    const double w = rng.uniform(1.0, 2.0);
    items.push_back({w, w});
  }
  EXPECT_THROW((void)ks::solve_bb(items, 30.0, /*node_limit=*/50),
               std::runtime_error);
}

TEST(Mim, MatchesBruteForceOnDoubles) {
  sim::Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(16);
    const auto items = random_items(rng, n, false, trial % 2 == 0);
    const double cap = rng.uniform(5.0, 120.0);
    const ks::Result mim = ks::solve_mim(items, cap);
    const ks::Result bf = ks::solve_brute_force(items, cap);
    EXPECT_NEAR(mim.value, bf.value, 1e-9) << "trial " << trial;
    expect_consistent(items, mim, cap);
  }
}

TEST(Mim, HandlesEqualDensityItemsThatStallBranchAndBound) {
  // The construction from BranchBound.NodeLimitThrows: 40 equal-density
  // items. MIM solves it in bounded time where B&B trips a node limit.
  sim::Rng rng(32);
  std::vector<ks::Item> items;
  for (int i = 0; i < 40; ++i) {
    const double w = rng.uniform(1.0, 2.0);
    items.push_back({w, w});
  }
  const ks::Result res = ks::solve_mim(items, 30.0);
  expect_consistent(items, res, 30.0);
  EXPECT_GT(res.value, 29.0);  // plenty of combinations land near capacity
}

TEST(Mim, RejectsTooManyItems) {
  std::vector<ks::Item> items(41, ks::Item{1.0, 1.0});
  EXPECT_THROW((void)ks::solve_mim(items, 10.0), std::invalid_argument);
}

TEST(Mim, EdgeCases) {
  EXPECT_DOUBLE_EQ(ks::solve_mim({}, 5.0).value, 0.0);
  const std::vector<ks::Item> heavy = {{5.0, 100.0}};
  EXPECT_DOUBLE_EQ(ks::solve_mim(heavy, 10.0).value, 0.0);
  const std::vector<ks::Item> one = {{5.0, 3.0}};
  EXPECT_DOUBLE_EQ(ks::solve_mim(one, 10.0).value, 5.0);
  EXPECT_DOUBLE_EQ(ks::solve_mim(one, -1.0).value, 0.0);
}

TEST(Mim, ValueWeightDecoupled) {
  // High-value light item + filler; MIM must pick by value.
  const std::vector<ks::Item> items = {
      {100.0, 1.0}, {10.0, 9.0}, {10.0, 9.0}};
  const ks::Result res = ks::solve_mim(items, 10.0);
  EXPECT_DOUBLE_EQ(res.value, 110.0);  // the 100 + one 10
}

TEST(ExactAuto, DispatchesBothWays) {
  const std::vector<ks::Item> integral = {{3.0, 3.0}, {4.0, 4.0}};
  EXPECT_DOUBLE_EQ(ks::solve_exact_auto(integral, 7.0).value, 7.0);
  const std::vector<ks::Item> fractional = {{3.5, 3.5}, {4.25, 4.25}};
  EXPECT_DOUBLE_EQ(ks::solve_exact_auto(fractional, 7.75).value, 7.75);
}

TEST(Greedy, HalfGuarantee) {
  sim::Rng rng(5);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(16);
    const auto items = random_items(rng, n, trial % 2 == 0, trial % 3 == 0);
    const double cap = rng.uniform(5.0, 150.0);
    const ks::Result greedy = ks::solve_greedy(items, cap);
    const ks::Result exact = ks::solve_bb(items, cap);
    expect_consistent(items, greedy, cap);
    EXPECT_GE(greedy.value + 1e-9, 0.5 * exact.value) << "trial " << trial;
    EXPECT_LE(greedy.value, exact.value + 1e-9);
  }
}

TEST(Greedy, AdversarialGadgetApproachesHalf) {
  const sim::KnapsackGadget g = sim::greedy_half_gadget(1000.0);
  const ks::Result greedy = ks::solve_greedy(g.items, g.capacity);
  const ks::Result exact = ks::solve_bb(g.items, g.capacity);
  EXPECT_DOUBLE_EQ(exact.value, g.opt_value);
  const double ratio = greedy.value / exact.value;
  EXPECT_GE(ratio, 0.5);
  EXPECT_LE(ratio, 0.51);  // the gadget pins greedy near its floor
}

TEST(Fptas, GuaranteeAcrossEps) {
  sim::Rng rng(6);
  for (double eps : {0.5, 0.25, 0.1, 0.05}) {
    for (int trial = 0; trial < 25; ++trial) {
      const std::size_t n = 1 + rng.uniform_int(14);
      const auto items = random_items(rng, n, false, trial % 2 == 0);
      const double cap = rng.uniform(5.0, 120.0);
      const ks::Result approx = ks::solve_fptas(items, cap, eps);
      const ks::Result exact = ks::solve_bb(items, cap);
      expect_consistent(items, approx, cap);
      EXPECT_GE(approx.value + 1e-9, (1.0 - eps) * exact.value)
          << "eps=" << eps << " trial=" << trial;
      EXPECT_LE(approx.value, exact.value + 1e-9);
    }
  }
}

TEST(Fptas, RejectsBadEps) {
  const std::vector<ks::Item> items = {{1.0, 1.0}};
  EXPECT_THROW((void)ks::solve_fptas(items, 5.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ks::solve_fptas(items, 5.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)ks::solve_fptas(items, 5.0, -0.5),
               std::invalid_argument);
}

TEST(Fptas, EmptyAndAllTooHeavy) {
  EXPECT_DOUBLE_EQ(ks::solve_fptas({}, 5.0, 0.1).value, 0.0);
  const std::vector<ks::Item> items = {{10.0, 100.0}};
  EXPECT_DOUBLE_EQ(ks::solve_fptas(items, 5.0, 0.1).value, 0.0);
}

TEST(Fractional, UpperBoundsExact) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(14);
    const auto items = random_items(rng, n, false, trial % 2 == 0);
    const double cap = rng.uniform(5.0, 120.0);
    const double frac = ks::fractional_upper_bound(items, cap);
    const ks::Result exact = ks::solve_bb(items, cap);
    EXPECT_GE(frac + 1e-9, exact.value) << "trial " << trial;
  }
}

TEST(Fractional, SolveDetailConsistent) {
  sim::Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(12);
    const auto items = random_items(rng, n, false, false);
    const double cap = rng.uniform(5.0, 80.0);
    const ks::FractionalResult fr = ks::fractional_solve(items, cap);
    EXPECT_NEAR(fr.value, ks::fractional_upper_bound(items, cap), 1e-9);
    EXPECT_LE(fr.weight, cap + 1e-9);
    if (fr.split_item != ks::FractionalResult::kNoSplit) {
      EXPECT_GT(fr.split_fraction, 0.0);
      EXPECT_LT(fr.split_fraction, 1.0);
    }
    // Recompute value from parts.
    double v = 0.0;
    for (std::size_t i : fr.full) v += items[i].value;
    if (fr.split_item != ks::FractionalResult::kNoSplit) {
      v += items[fr.split_item].value * fr.split_fraction;
    }
    EXPECT_NEAR(v, fr.value, 1e-9);
  }
}

TEST(Oracle, GuaranteesAndNames) {
  EXPECT_DOUBLE_EQ(ks::Oracle::exact().guarantee(), 1.0);
  EXPECT_DOUBLE_EQ(ks::Oracle::greedy().guarantee(), 0.5);
  EXPECT_NEAR(ks::Oracle::fptas(0.2).guarantee(), 0.8, 1e-12);
  EXPECT_STREQ(ks::Oracle::exact().name(), "exact");
  EXPECT_STREQ(ks::Oracle::greedy().name(), "greedy");
  EXPECT_STREQ(ks::Oracle::fptas(0.1).name(), "fptas");
}

TEST(Oracle, SolveRespectsGuarantee) {
  sim::Rng rng(9);
  const std::vector<ks::Oracle> oracles = {
      ks::Oracle::exact(), ks::Oracle::greedy(), ks::Oracle::fptas(0.3)};
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(12);
    const auto items = random_items(rng, n, true, true);
    const double cap = static_cast<double>(rng.uniform_int(5, 100));
    const ks::Result exact = ks::solve_exact_dp(items, cap);
    for (const ks::Oracle& o : oracles) {
      const ks::Result res = o.solve(items, cap);
      EXPECT_GE(res.value + 1e-9, o.guarantee() * exact.value)
          << o.name() << " trial " << trial;
    }
  }
}

// Parameterized subset-sum density sweep: value == weight items where the
// capacity is a fraction of total weight, across fill ratios.
class SubsetSumProperty : public ::testing::TestWithParam<double> {};

TEST_P(SubsetSumProperty, DpOptimalAndGreedyHalf) {
  const double fill = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(fill * 1000) + 17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(14);
    auto items = random_items(rng, n, true, true);
    double total = 0.0;
    for (const auto& it : items) total += it.weight;
    const double cap = std::max(1.0, std::floor(total * fill));
    const ks::Result dp = ks::solve_exact_dp(items, cap);
    const ks::Result bf = ks::solve_brute_force(items, cap);
    const ks::Result gr = ks::solve_greedy(items, cap);
    EXPECT_NEAR(dp.value, bf.value, 1e-9);
    EXPECT_GE(gr.value + 1e-9, 0.5 * dp.value);
    EXPECT_LE(dp.value, cap + 1e-9);  // subset-sum value bounded by capacity
  }
}

INSTANTIATE_TEST_SUITE_P(FillRatios, SubsetSumProperty,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 1.0));
