#include "src/sectors/sectors.hpp"

#include <gtest/gtest.h>

#include "src/model/validate.hpp"
#include "src/sim/adversarial.hpp"
#include "src/sim/generators.hpp"

namespace sectors = sectorpack::sectors;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;

namespace {

model::Instance random_p3(std::uint64_t seed, std::size_t n, std::size_t k,
                          bool heterogeneous) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(1.0, 12.0),
                         static_cast<double>(rng.uniform_int(1, 7)));
  }
  if (heterogeneous) {
    for (std::size_t j = 0; j < k; ++j) {
      b.add_antenna(rng.uniform(0.6, 2.4), rng.uniform(6.0, 14.0),
                    static_cast<double>(rng.uniform_int(5, 18)));
    }
  } else {
    b.add_identical_antennas(k, 1.5, 14.0,
                             static_cast<double>(rng.uniform_int(6, 16)));
  }
  return b.build();
}

}  // namespace

TEST(SectorsGreedy, AlwaysFeasible) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const model::Instance inst = random_p3(seed, 20, 3, seed % 2 == 0);
    const model::Solution sol = sectors::solve_greedy(inst);
    const auto report = model::validate(inst, sol);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.errors.empty() ? "" : report.errors[0]);
  }
}

TEST(SectorsGreedy, AtMostExact) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const model::Instance inst = random_p3(seed + 40, 7, 2, seed % 2 == 0);
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    const double exact =
        model::served_demand(inst, sectors::solve_exact(inst));
    EXPECT_LE(greedy, exact + 1e-9) << "seed " << seed;
    // First-round property: greedy serves at least the best single antenna,
    // hence at least exact/k for identical antennas.
    EXPECT_GE(greedy + 1e-9, exact / 2.0 * 0.5)  // conservative floor
        << "seed " << seed;
  }
}

TEST(SectorsExact, FeasibleAndDominatesEverything) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_p3(seed + 80, 6, 2, true);
    const model::Solution exact = sectors::solve_exact(inst);
    EXPECT_TRUE(model::is_feasible(inst, exact));
    const double ve = model::served_demand(inst, exact);
    EXPECT_GE(ve + 1e-9,
              model::served_demand(inst, sectors::solve_greedy(inst)));
    EXPECT_GE(ve + 1e-9,
              model::served_demand(inst, sectors::solve_local_search(inst)));
    EXPECT_GE(ve + 1e-9, model::served_demand(
                             inst, sectors::solve_uniform_orientations(inst)));
  }
}

TEST(SectorsLocalSearch, NeverWorseThanGreedy) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const model::Instance inst = random_p3(seed + 120, 18, 3, seed % 2 == 0);
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    const model::Solution ls = sectors::solve_local_search(inst);
    EXPECT_TRUE(model::is_feasible(inst, ls));
    EXPECT_GE(model::served_demand(inst, ls) + 1e-9, greedy)
        << "seed " << seed;
  }
}

TEST(SectorsImprove, NeverDegrades) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const model::Instance inst = random_p3(seed + 160, 15, 3, true);
    const model::Solution start = sectors::solve_uniform_orientations(inst);
    const double before = model::served_demand(inst, start);
    const model::Solution better = sectors::improve(inst, start);
    EXPECT_TRUE(model::is_feasible(inst, better));
    EXPECT_GE(model::served_demand(inst, better) + 1e-9, before)
        << "seed " << seed;
  }
}

TEST(SectorsGreedy, RangeShadowTrapPinsGreedyNearHalf) {
  const model::Instance inst = sim::range_shadow_trap();
  const model::Solution greedy = sectors::solve_greedy(inst);
  const model::Solution exact = sectors::solve_exact(inst);
  EXPECT_TRUE(model::is_feasible(inst, greedy));
  EXPECT_TRUE(model::is_feasible(inst, exact));
  const double vg = model::served_demand(inst, greedy);
  const double ve = model::served_demand(inst, exact);
  EXPECT_DOUBLE_EQ(ve, 9.9);  // u -> long-range antenna, v -> short-range
  EXPECT_DOUBLE_EQ(vg, 5.0);  // greedy strands u
  EXPECT_GE(vg / ve, 0.5);    // still above the 1/2 floor
  EXPECT_LE(vg / ve, 0.51);
}

TEST(SectorsExact, TupleLimitThrows) {
  const model::Instance inst = random_p3(7, 30, 4, false);
  EXPECT_THROW((void)sectors::solve_exact(inst, /*tuple_limit=*/10),
               std::invalid_argument);
}

TEST(SectorsAll, ZeroAntennas) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 2.0);
  const model::Instance inst = b.build();
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sectors::solve_greedy(inst)),
                   0.0);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sectors::solve_exact(inst)),
                   0.0);
}

TEST(SectorsAll, MoreAntennasThanCustomers) {
  const model::Instance inst = random_p3(9, 3, 6, false);
  const model::Solution greedy = sectors::solve_greedy(inst);
  const model::Solution ls = sectors::solve_local_search(inst);
  EXPECT_TRUE(model::is_feasible(inst, greedy));
  EXPECT_TRUE(model::is_feasible(inst, ls));
}

TEST(SectorsGreedy, IdenticalFastPathMatchesGeneric) {
  // The identical-antenna shortcut must not change results: compare against
  // a clone instance with an infinitesimally different capacity on one
  // antenna (forcing the generic path) -- values should coincide because
  // the perturbation is too small to matter combinatorially.
  sim::Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    model::InstanceBuilder b1;
    model::InstanceBuilder b2;
    const std::size_t n = 10 + rng.uniform_int(10);
    for (std::size_t i = 0; i < n; ++i) {
      const double theta = rng.uniform(0.0, geom::kTwoPi);
      const double r = rng.uniform(1.0, 9.0);
      const double d = static_cast<double>(rng.uniform_int(1, 5));
      b1.add_customer_polar(theta, r, d);
      b2.add_customer_polar(theta, r, d);
    }
    const double cap = 12.0;
    b1.add_identical_antennas(3, 1.4, 10.0, cap);
    b2.add_antenna(1.4, 10.0, cap + 1e-7);  // generic path
    b2.add_antenna(1.4, 10.0, cap);
    b2.add_antenna(1.4, 10.0, cap);
    const double v1 =
        model::served_demand(b1.build(), sectors::solve_greedy(b1.build()));
    const double v2 =
        model::served_demand(b2.build(), sectors::solve_greedy(b2.build()));
    EXPECT_NEAR(v1, v2, 1e-6) << "trial " << trial;
  }
}

TEST(SectorsUniform, OrientationsEvenlySpaced) {
  const model::Instance inst = random_p3(3, 10, 4, false);
  const model::Solution sol = sectors::solve_uniform_orientations(inst);
  ASSERT_EQ(sol.alpha.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(sol.alpha[j], geom::kTwoPi * static_cast<double>(j) / 4.0,
                1e-12);
  }
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

// Parameterized feasibility fuzz across (n, k) shapes and oracles.
struct ShapeCase {
  std::size_t n;
  std::size_t k;
  bool heterogeneous;
};

class SectorsShapeProperty : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(SectorsShapeProperty, AllSolversFeasibleAndOrdered) {
  const ShapeCase sc = GetParam();
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const model::Instance inst =
        random_p3(seed * 31 + sc.n + sc.k, sc.n, sc.k, sc.heterogeneous);
    const model::Solution greedy = sectors::solve_greedy(inst);
    const model::Solution ls = sectors::solve_local_search(inst);
    const model::Solution uniform =
        sectors::solve_uniform_orientations(inst);
    EXPECT_TRUE(model::is_feasible(inst, greedy));
    EXPECT_TRUE(model::is_feasible(inst, ls));
    EXPECT_TRUE(model::is_feasible(inst, uniform));
    EXPECT_GE(model::served_demand(inst, ls) + 1e-9,
              model::served_demand(inst, greedy));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SectorsShapeProperty,
                         ::testing::Values(ShapeCase{1, 1, false},
                                           ShapeCase{5, 1, true},
                                           ShapeCase{12, 2, false},
                                           ShapeCase{12, 2, true},
                                           ShapeCase{25, 4, false},
                                           ShapeCase{25, 4, true},
                                           ShapeCase{40, 6, true}));
