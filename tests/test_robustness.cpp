// Robustness and failure injection: degenerate geometry, extreme scales,
// adversarially duplicated inputs, and malformed data must either work or
// fail loudly -- never produce an infeasible "solution" or crash.

#include <gtest/gtest.h>

#include "src/sectorpack.hpp"

using namespace sectorpack;

TEST(Robustness, ManyCustomersAtExactlyOneAngle) {
  model::InstanceBuilder b;
  for (int i = 0; i < 200; ++i) {
    b.add_customer_polar(1.234, 5.0, 1.0);
  }
  b.add_identical_antennas(2, 0.1, 10.0, 50.0);
  const model::Instance inst = b.build();
  const model::Solution sol = sectors::solve_local_search(inst);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  // Both antennas can stack on the same angle: 100 served.
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 100.0);
}

TEST(Robustness, AntipodalBoundaryCustomers) {
  // Customers exactly at the two ends of a pi-wide sector.
  model::InstanceBuilder b;
  b.add_customer_polar(0.0, 5.0, 1.0);
  b.add_customer_polar(geom::kPi, 5.0, 1.0);
  b.add_antenna(geom::kPi, 10.0, 10.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 2.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(Robustness, TinyAndHugeCoordinates) {
  model::InstanceBuilder b;
  b.add_customer(1e-12, 1e-12, 1.0);  // essentially at the base station
  b.add_customer(1e6, 1e6, 2.0);      // very far away
  b.add_antenna(geom::kTwoPi, 2e6, 10.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 3.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(Robustness, ExtremeDemandScales) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 1e-9);
  b.add_customer_polar(0.2, 5.0, 1e9);
  b.add_antenna(1.0, 10.0, 1e9 + 1.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  EXPECT_NEAR(model::served_demand(inst, sol), 1e9 + 1e-9, 1.0);
}

TEST(Robustness, NonFinitePositionsRejectedAtConstruction) {
  model::InstanceBuilder b;
  b.add_customer(std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0);
  b.add_antenna(1.0, 10.0, 5.0);
  // NaN position -> NaN demanded radius; solvers must never see it.
  // The Instance constructor validates demand, not position; to_polar on
  // NaN gives NaN theta. Verify the validator catches the situation
  // instead of silently serving.
  // (Design decision: positions are caller responsibility; demand/value
  // and spec fields are validated. This test documents the behaviour.)
  const model::Instance inst = b.build();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.assign[0] = 0;
  EXPECT_FALSE(model::is_feasible(inst, sol));  // NaN fails containment
}

TEST(Robustness, ZeroWidthEffectivelyPointSector) {
  // rho must be > 0, but an extremely narrow beam is legal.
  model::InstanceBuilder b;
  b.add_customer_polar(1.0, 5.0, 2.0);
  b.add_customer_polar(1.0 + 1e-3, 5.0, 3.0);
  b.add_antenna(1e-6, 10.0, 10.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  // Only one of the two (they are 1e-3 apart, beam is 1e-6).
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 3.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(Robustness, CapacityExactlyZero) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 1.0);
  b.add_identical_antennas(3, 1.0, 10.0, 0.0);
  const model::Instance inst = b.build();
  for (const model::Solution& sol :
       {sectors::solve_greedy(inst), sectors::solve_local_search(inst),
        sectors::solve_exact(inst)}) {
    EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 0.0);
    EXPECT_TRUE(model::is_feasible(inst, sol));
  }
}

TEST(Robustness, DemandExactlyAtCapacity) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 7.0);
  b.add_antenna(1.0, 10.0, 7.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 7.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(Robustness, ManyIdenticalAntennasOnTinyInstance) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 1.0);
  b.add_identical_antennas(50, 1.0, 10.0, 5.0);
  const model::Instance inst = b.build();
  const model::Solution sol = sectors::solve_greedy(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 1.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(Robustness, FullCircleWrapDoesNotDoubleServe) {
  // All customers visible to a full-circle antenna; the sweep's doubled
  // array must not present anyone twice to the knapsack.
  model::InstanceBuilder b;
  for (int i = 0; i < 20; ++i) {
    b.add_customer_polar(geom::kTwoPi * i / 20.0, 5.0, 1.0);
  }
  b.add_antenna(geom::kTwoPi, 10.0, 100.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 20.0);
  // Every customer assigned exactly once by construction of assign[].
  EXPECT_EQ(model::served_count(sol), 20u);
}

TEST(Robustness, ValidatorRejectsDoubleBookkeeping) {
  // A hand-built "solution" overloading via duplicate-heavy assignment.
  model::InstanceBuilder b;
  for (int i = 0; i < 10; ++i) b.add_customer_polar(0.1, 5.0, 2.0);
  b.add_antenna(1.0, 10.0, 10.0);
  const model::Instance inst = b.build();
  model::Solution sol = model::Solution::empty_for(inst);
  for (int i = 0; i < 10; ++i) sol.assign[static_cast<std::size_t>(i)] = 0;
  EXPECT_FALSE(model::is_feasible(inst, sol));  // 20 > 10
}

TEST(Robustness, SolversSurviveAllCustomersOutOfRange) {
  model::InstanceBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.add_customer_polar(0.1 * i, 100.0, 1.0);
  }
  b.add_identical_antennas(3, 1.0, 10.0, 5.0);
  const model::Instance inst = b.build();
  for (const model::Solution& sol :
       {sectors::solve_greedy(inst), sectors::solve_local_search(inst),
        sectors::solve_uniform_orientations(inst),
        sectors::solve_annealing(inst)}) {
    EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 0.0);
    EXPECT_TRUE(model::is_feasible(inst, sol));
  }
}

TEST(Robustness, IoRejectsGarbageGracefully) {
  for (const char* text :
       {"", "garbage", "sectorpack-instance v3\n",
        "sectorpack-instance v1\ncustomers x\n",
        "sectorpack-instance v1\ncustomers 1\n1 2 notanumber\n",
        "sectorpack-instance v1\ncustomers 1\n1 2 3\nantennas 1\n0.5\n"}) {
    EXPECT_THROW((void)model::instance_from_string(text),
                 std::runtime_error)
        << "text: " << text;
  }
}

TEST(Robustness, IoRejectsHostileCountsWithoutAllocating) {
  // Forged headers whose counts would previously reach vector::reserve()
  // and die as std::length_error / std::bad_alloc (or allocate gigabytes
  // before hitting EOF). All of them must be clean parse errors now.
  for (const char* text :
       {"sectorpack-instance v1\ncustomers 9223372036854775807\n",
        "sectorpack-instance v1\ncustomers 4611686018427387904\n",
        "sectorpack-instance v1\ncustomers 100000001\n",
        "sectorpack-instance v1\ncustomers 0\nantennas 9223372036854775807\n",
        "sectorpack-solution v1\nalphas 9223372036854775807\n",
        "sectorpack-solution v1\nalphas 0\nassign 9223372036854775807\n"}) {
    const bool is_solution =
        std::string(text).rfind("sectorpack-solution", 0) == 0;
    if (is_solution) {
      EXPECT_THROW((void)model::solution_from_string(text),
                   std::runtime_error)
          << "text: " << text;
    } else {
      EXPECT_THROW((void)model::instance_from_string(text),
                   std::runtime_error)
          << "text: " << text;
    }
  }
  // Counts past the long long range fail the extraction itself.
  EXPECT_THROW((void)model::instance_from_string(
                   "sectorpack-instance v1\ncustomers "
                   "99999999999999999999999999\n"),
               std::runtime_error);
  // Negative counts were never valid; make sure they still are not.
  EXPECT_THROW((void)model::instance_from_string(
                   "sectorpack-instance v1\ncustomers -1\n"),
               std::runtime_error);
  // The error message names the offending line, not just "bad count".
  try {
    (void)model::instance_from_string(
        "sectorpack-instance v1\ncustomers 9223372036854775807\n");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("9223372036854775807"),
              std::string::npos)
        << e.what();
  }
}

TEST(Robustness, IoRejectsTrailingTokens) {
  // `1 2 3 junk` is not a 3-column customer, and a stray numeric column
  // must not silently change meaning between the v1 and v2 formats.
  for (const char* text :
       {"sectorpack-instance v1\ncustomers 1\n1 2 3 junk\nantennas 0\n",
        "sectorpack-instance v1\ncustomers 1\n1 2 3 4\nantennas 0\n",
        "sectorpack-instance v1\ncustomers 1 extra\n1 2 3\nantennas 0\n",
        "sectorpack-instance v1\ncustomers 1\n1 2 3\nantennas 1\n"
        "0.5 10 5 oops\n",
        "sectorpack-instance v2\ncustomers 1\n1 2 3 4 5\nantennas 0\n"}) {
    EXPECT_THROW((void)model::instance_from_string(text),
                 std::runtime_error)
        << "text: " << text;
  }
  for (const char* text :
       {"sectorpack-solution v1\nalphas 1\n0.5 junk\nassign 0\n",
        "sectorpack-solution v1\nalphas 0\nassign 1\n0 1\n",
        "sectorpack-solution v1\nalphas 0 0\nassign 0\n",
        "sectorpack-solution v1\nstatus complete extra\nalphas 0\n"
        "assign 0\n"}) {
    EXPECT_THROW((void)model::solution_from_string(text),
                 std::runtime_error)
        << "text: " << text;
  }
  // Comments after the data are still fine -- only real tokens offend.
  const model::Instance ok = model::instance_from_string(
      "sectorpack-instance v1\ncustomers 1\n1 2 3  # a comment\n"
      "antennas 1\n0.5 10 5\n");
  EXPECT_EQ(ok.num_customers(), 1u);
}

TEST(Robustness, IoRejectsNonFiniteNumericColumns) {
  // num_get never accepts "nan"/"inf" spellings, and out-of-range literals
  // like 3e999999 set failbit; both must surface as parse errors rather
  // than NaN/inf smuggled into the model (or a crash).
  for (const char* text :
       {"sectorpack-instance v1\ncustomers 1\nnan 2 3\nantennas 0\n",
        "sectorpack-instance v1\ncustomers 1\n1 inf 3\nantennas 0\n",
        "sectorpack-instance v1\ncustomers 1\n1 2 3e999999\nantennas 0\n",
        "sectorpack-solution v1\nalphas 1\nnan\nassign 0\n"}) {
    const bool is_solution =
        std::string(text).rfind("sectorpack-solution", 0) == 0;
    if (is_solution) {
      EXPECT_THROW((void)model::solution_from_string(text),
                   std::runtime_error)
          << "text: " << text;
    } else {
      EXPECT_THROW((void)model::instance_from_string(text),
                   std::runtime_error)
          << "text: " << text;
    }
  }
}

TEST(Robustness, IoRejectsTruncatedV2Lines) {
  // v2 promises a value column per customer and a min_range per antenna;
  // a v2 file with v1-shaped lines is corrupt, not "implicitly defaulted".
  for (const char* text :
       {"sectorpack-instance v2\ncustomers 1\n1 2 3\nantennas 0\n",
        "sectorpack-instance v2\ncustomers 0\nantennas 1\n0.5 10 5\n",
        "sectorpack-instance v2\ncustomers 2\n1 2 3 4\n1 2 3\nantennas 0\n"}) {
    EXPECT_THROW((void)model::instance_from_string(text),
                 std::runtime_error)
        << "text: " << text;
  }
}

TEST(Robustness, LargeUnitInstanceEndToEnd) {
  // 5000 customers through the uniform fast path; must stay snappy and
  // feasible.
  const model::Instance inst =
      sim::uniform_disk_instance(5000, 1, 1.0, 700.0, 3);
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  EXPECT_LE(model::served_demand(inst, sol), 700.0 + 1e-9);
  EXPECT_GT(model::served_demand(inst, sol), 500.0);  // rho/2pi * 5000 ~ 795
}

TEST(Robustness, SweepNearDuplicateAnglesWithinEpsilon) {
  // Angles within kAngleEps of each other share candidate windows; the
  // solver must remain exact relative to the reference.
  model::InstanceBuilder b;
  b.add_customer_polar(1.0, 5.0, 2.0);
  b.add_customer_polar(1.0 + 1e-13, 5.0, 3.0);
  b.add_customer_polar(1.0 - 1e-13, 5.0, 4.0);
  b.add_antenna(0.5, 10.0, 6.0);
  const model::Instance inst = b.build();
  const model::Solution fast = single::solve_exact(inst);
  const model::Solution ref = single::solve_reference(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, fast),
                   model::served_demand(inst, ref));
}
