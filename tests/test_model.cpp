#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "src/model/instance.hpp"
#include "src/model/solution.hpp"
#include "src/model/validate.hpp"

namespace model = sectorpack::model;
namespace geom = sectorpack::geom;

namespace {

model::Instance tiny_instance() {
  return model::InstanceBuilder{}
      .add_customer_polar(0.1, 5.0, 3.0)
      .add_customer_polar(0.2, 8.0, 4.0)
      .add_customer_polar(geom::kPi, 5.0, 2.0)
      .add_antenna(geom::kPi / 2.0, 10.0, 6.0)
      .build();
}

}  // namespace

TEST(Instance, BasicAccessors) {
  const model::Instance inst = tiny_instance();
  EXPECT_EQ(inst.num_customers(), 3u);
  EXPECT_EQ(inst.num_antennas(), 1u);
  EXPECT_DOUBLE_EQ(inst.total_demand(), 9.0);
  EXPECT_DOUBLE_EQ(inst.total_capacity(), 6.0);
  EXPECT_NEAR(inst.theta(0), 0.1, 1e-12);
  EXPECT_NEAR(inst.radius(1), 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(inst.demand(2), 2.0);
}

TEST(Instance, InRange) {
  const model::Instance inst = tiny_instance();
  EXPECT_TRUE(inst.in_range(0, 0));
  EXPECT_TRUE(inst.in_range(1, 0));
  // Customer exactly at the range boundary counts as in range.
  const model::Instance edge = model::InstanceBuilder{}
                                   .add_customer_polar(0.0, 10.0, 1.0)
                                   .add_antenna(1.0, 10.0, 5.0)
                                   .build();
  EXPECT_TRUE(edge.in_range(0, 0));
}

TEST(Instance, RejectsBadCustomers) {
  EXPECT_THROW(model::InstanceBuilder{}
                   .add_customer(1.0, 0.0, 0.0)
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(model::InstanceBuilder{}
                   .add_customer(1.0, 0.0, -2.0)
                   .build(),
               std::invalid_argument);
}

TEST(Instance, RejectsBadAntennas) {
  EXPECT_THROW(
      model::InstanceBuilder{}.add_antenna(0.0, 10.0, 5.0).build(),
      std::invalid_argument);
  EXPECT_THROW(
      model::InstanceBuilder{}.add_antenna(7.0, 10.0, 5.0).build(),
      std::invalid_argument);
  EXPECT_THROW(
      model::InstanceBuilder{}.add_antenna(1.0, -1.0, 5.0).build(),
      std::invalid_argument);
  EXPECT_THROW(
      model::InstanceBuilder{}.add_antenna(1.0, 10.0, -5.0).build(),
      std::invalid_argument);
}

TEST(Instance, IdenticalAntennasDetection) {
  model::InstanceBuilder b;
  b.add_customer(1.0, 0.0, 1.0);
  b.add_identical_antennas(3, 1.0, 10.0, 5.0);
  EXPECT_TRUE(b.build().antennas_identical());

  b.add_antenna(1.0, 10.0, 6.0);
  EXPECT_FALSE(b.build().antennas_identical());
}

TEST(Instance, AnglesOnlyDetection) {
  const model::Instance in_range = model::InstanceBuilder{}
                                       .add_customer_polar(1.0, 5.0, 1.0)
                                       .add_customer_polar(2.0, 9.0, 1.0)
                                       .add_antenna(1.0, 10.0, 5.0)
                                       .build();
  EXPECT_TRUE(in_range.is_angles_only());

  const model::Instance out = model::InstanceBuilder{}
                                  .add_customer_polar(1.0, 15.0, 1.0)
                                  .add_antenna(1.0, 10.0, 5.0)
                                  .build();
  EXPECT_FALSE(out.is_angles_only());
}

TEST(Solution, EmptyForShape) {
  const model::Instance inst = tiny_instance();
  const model::Solution sol = model::Solution::empty_for(inst);
  EXPECT_EQ(sol.alpha.size(), 1u);
  EXPECT_EQ(sol.assign.size(), 3u);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 0.0);
  EXPECT_EQ(model::served_count(sol), 0u);
}

TEST(Solution, ServedDemandAndLoads) {
  const model::Instance inst = tiny_instance();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[0] = 0.0;
  sol.assign[0] = 0;
  sol.assign[1] = 0;
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 7.0);
  EXPECT_EQ(model::served_count(sol), 2u);
  const auto loads = model::antenna_loads(inst, sol);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_DOUBLE_EQ(loads[0], 7.0);
}

TEST(Validate, AcceptsFeasible) {
  const model::Instance inst = tiny_instance();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[0] = 0.0;  // sector [0, pi/2] radius 10 covers customers 0, 1
  sol.assign[0] = 0;
  sol.assign[1] = 0;  // load 7 > capacity 6? demand(0)=3, demand(1)=4 -> 7.
  // That overloads; assign only customer 1.
  sol.assign[0] = model::kUnserved;
  const auto report = model::validate(inst, sol);
  EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
}

TEST(Validate, CatchesOverload) {
  const model::Instance inst = tiny_instance();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[0] = 0.0;
  sol.assign[0] = 0;
  sol.assign[1] = 0;  // 3 + 4 = 7 > 6
  const auto report = model::validate(inst, sol);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.errors.empty());
  EXPECT_NE(report.errors[0].find("overloaded"), std::string::npos);
}

TEST(Validate, CatchesOutOfSector) {
  const model::Instance inst = tiny_instance();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[0] = 0.0;
  sol.assign[2] = 0;  // customer 2 is at angle pi, outside [0, pi/2]
  const auto report = model::validate(inst, sol);
  EXPECT_FALSE(report.ok);
}

TEST(Validate, CatchesOutOfRange) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 50.0, 1.0)
                                   .add_antenna(geom::kPi, 10.0, 5.0)
                                   .build();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.assign[0] = 0;  // angle fits, radius 50 > range 10
  EXPECT_FALSE(model::is_feasible(inst, sol));
}

TEST(Validate, CatchesShapeMismatch) {
  const model::Instance inst = tiny_instance();
  model::Solution sol;  // empty vectors
  EXPECT_FALSE(model::validate(inst, sol).ok);
}

TEST(Validate, CatchesBadAssignmentIndex) {
  const model::Instance inst = tiny_instance();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.assign[0] = 7;
  EXPECT_FALSE(model::validate(inst, sol).ok);
  sol.assign[0] = -3;
  EXPECT_FALSE(model::validate(inst, sol).ok);
}

TEST(Validate, CatchesNonFiniteAlpha) {
  const model::Instance inst = tiny_instance();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(model::validate(inst, sol).ok);
}

TEST(Validate, BoundaryCustomerAccepted) {
  // Customer exactly on the sector's trailing edge and exactly at range.
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.5, 10.0, 1.0)
                                   .add_antenna(0.5, 10.0, 5.0)
                                   .build();
  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha[0] = 0.0;  // sector [0, 0.5]; customer at theta = 0.5
  sol.assign[0] = 0;
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

// ------------------------------------------------------------- mutators

TEST(InstanceMutators, MatchFreshConstructionBitwise) {
  model::Instance inst = model::InstanceBuilder{}
                             .add_customer_polar(0.1, 5.0, 3.0)
                             .add_customer_polar(0.2, 8.0, 4.0)
                             .add_customer_polar(2.5, 6.0, 2.0)
                             .add_antenna(1.0, 10.0, 6.0)
                             .build();

  const std::size_t added = inst.add_customer({geom::from_polar(1.3, 7.0), 5.0});
  EXPECT_EQ(added, 3u);
  inst.set_demand(1, 2.5);
  inst.remove_customer(0);
  const std::size_t aj = inst.add_antenna({0.5, 8.0, 4.0, 1.0});
  EXPECT_EQ(aj, 1u);

  // Rebuild from the surviving records: every derived array and aggregate
  // must be bit-identical (the serve byte-identity contract rests on the
  // mutators replaying the constructor's summation order exactly).
  const model::Instance fresh(
      {inst.customers().begin(), inst.customers().end()},
      {inst.antennas().begin(), inst.antennas().end()});
  ASSERT_EQ(fresh.num_customers(), inst.num_customers());
  ASSERT_EQ(fresh.num_antennas(), inst.num_antennas());
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    EXPECT_EQ(fresh.theta(i), inst.theta(i));
    EXPECT_EQ(fresh.radius(i), inst.radius(i));
    EXPECT_EQ(fresh.demand(i), inst.demand(i));
    EXPECT_EQ(fresh.value(i), inst.value(i));
  }
  EXPECT_EQ(fresh.total_demand(), inst.total_demand());
  EXPECT_EQ(fresh.total_value(), inst.total_value());
  EXPECT_EQ(fresh.total_capacity(), inst.total_capacity());
  EXPECT_EQ(fresh.is_value_weighted(), inst.is_value_weighted());
  EXPECT_EQ(fresh.antennas_identical(), inst.antennas_identical());
}

TEST(InstanceMutators, StrongGuaranteeOnInvalidInput) {
  model::Instance inst = model::InstanceBuilder{}
                             .add_customer_polar(0.1, 5.0, 3.0)
                             .add_antenna(1.0, 10.0, 6.0)
                             .build();
  const double demand_before = inst.total_demand();

  EXPECT_THROW(inst.add_customer({{1.0, 0.0}, -1.0}), std::invalid_argument);
  EXPECT_THROW(inst.set_demand(0, 0.0), std::invalid_argument);
  EXPECT_THROW(inst.set_demand(5, 1.0), std::out_of_range);
  EXPECT_THROW(inst.remove_customer(5), std::out_of_range);
  EXPECT_THROW(inst.add_antenna({0.0, 10.0, 5.0}), std::invalid_argument);

  EXPECT_EQ(inst.num_customers(), 1u);
  EXPECT_EQ(inst.num_antennas(), 1u);
  EXPECT_EQ(inst.total_demand(), demand_before);
}

TEST(InstanceMutators, SetDemandFollowsValueResolution) {
  // A kValueIsDemand customer's value follows the new demand; an explicit
  // value stays, exactly as a fresh construction would resolve them.
  model::Instance inst = model::InstanceBuilder{}
                             .add_customer_polar(0.1, 5.0, 3.0)
                             .add_weighted_customer_polar(0.2, 6.0, 4.0, 9.0)
                             .add_antenna(1.0, 10.0, 6.0)
                             .build();
  EXPECT_TRUE(inst.is_value_weighted());
  inst.set_demand(0, 7.0);
  EXPECT_EQ(inst.value(0), 7.0);
  inst.set_demand(1, 9.0);  // demand now equals the explicit value...
  EXPECT_EQ(inst.value(1), 9.0);
  EXPECT_EQ(inst.demand(1), 9.0);
}

TEST(InstanceMutators, MutationAfterGridBuildStaysCoherent) {
  // Build the spatial index, then mutate: the grid must be dropped and the
  // in-band query must answer for the *current* customers, byte-identical
  // to a flat scan (the indexed and flat paths share one predicate).
  model::InstanceBuilder builder;
  for (int i = 0; i < 64; ++i) {
    builder.add_customer_polar(0.1 * i, 1.0 + 0.2 * (i % 40), 1.0);
  }
  builder.add_antenna(1.0, 5.0, 10.0);
  model::Instance inst = builder.build();

  (void)inst.polar_grid();  // force the O(n log n) build
  const std::size_t idx = inst.add_customer({geom::from_polar(0.5, 2.0), 1.0});
  inst.remove_customer(3);
  inst.set_demand(0, 2.0);
  EXPECT_EQ(idx, 64u);

  std::vector<std::size_t> in_band;
  inst.in_range_customers(0, in_band);
  std::vector<std::size_t> flat;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    if (inst.in_range(i, 0)) flat.push_back(i);
  }
  EXPECT_EQ(in_band, flat);

  // Rebuilding the grid after the mutation must cover the new layout too:
  // force a build and re-ask through the grid-backed path.
  const sectorpack::geom::PolarGrid& grid = inst.polar_grid();
  EXPECT_EQ(grid.num_points(), inst.num_customers());
  std::vector<std::size_t> again;
  inst.in_range_customers(0, again);
  EXPECT_EQ(again, flat);
}
