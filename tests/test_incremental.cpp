#include "src/knapsack/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/knapsack/knapsack.hpp"
#include "src/sim/rng.hpp"
#include "src/single/single.hpp"

namespace knapsack = sectorpack::knapsack;
namespace single = sectorpack::single;

namespace {

std::vector<knapsack::Item> random_universe(sectorpack::sim::Rng& rng,
                                            std::size_t n) {
  std::vector<knapsack::Item> items(n);
  for (auto& it : items) {
    it.value = 1.0 + static_cast<double>(rng.uniform_int(99));
    it.weight = 1.0 + static_cast<double>(rng.uniform_int(49));
  }
  return items;
}

// A random member subset reached through shuffled adds and interleaved
// remove/re-add churn, so the Fenwick state is exercised off the straight
// build-up path.
std::vector<std::size_t> churn_to_subset(sectorpack::sim::Rng& rng,
                                         knapsack::IncrementalOracle& inc,
                                         std::size_t n) {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform(0.0, 1.0) < 0.6) {
      inc.add(i);
      members.push_back(i);
    }
  }
  // Churn: remove then re-add a few members.
  for (std::size_t m : members) {
    if (rng.uniform(0.0, 1.0) < 0.3) {
      inc.remove(m);
      inc.add(m);
    }
  }
  return members;
}

}  // namespace

TEST(IncrementalOracle, UpperBoundMatchesFractionalUpperBound) {
  sectorpack::sim::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(40);
    const auto universe = random_universe(rng, n);
    const double capacity = 1.0 + static_cast<double>(rng.uniform_int(300));
    knapsack::IncrementalOracle inc(universe, capacity,
                                    knapsack::Oracle::exact());
    const auto members = churn_to_subset(rng, inc, n);

    std::vector<knapsack::Item> sub;
    for (std::size_t m : members) sub.push_back(universe[m]);
    const double want = knapsack::fractional_upper_bound(sub, capacity);
    EXPECT_NEAR(inc.upper_bound(), want, 1e-7 * (1.0 + want))
        << "trial " << trial << " n=" << n << " |S|=" << members.size();
  }
}

TEST(IncrementalOracle, SumsAndCountTrackMembership) {
  sectorpack::sim::Rng rng(43);
  const std::size_t n = 30;
  const auto universe = random_universe(rng, n);
  knapsack::IncrementalOracle inc(universe, 100.0,
                                  knapsack::Oracle::greedy());
  const auto members = churn_to_subset(rng, inc, n);

  double vsum = 0.0;
  double wsum = 0.0;
  for (std::size_t m : members) {
    vsum += universe[m].value;
    wsum += universe[m].weight;
  }
  EXPECT_EQ(inc.count(), members.size());
  EXPECT_NEAR(inc.value_sum(), vsum, 1e-9);
  EXPECT_NEAR(inc.weight_sum(), wsum, 1e-9);
}

TEST(IncrementalOracle, FingerprintIsOrderIndependentAndReversible) {
  sectorpack::sim::Rng rng(44);
  const std::size_t n = 20;
  const auto universe = random_universe(rng, n);
  const knapsack::Oracle oracle = knapsack::Oracle::exact();

  knapsack::IncrementalOracle a(universe, 50.0, oracle);
  knapsack::IncrementalOracle b(universe, 50.0, oracle);
  // Same set, different construction order, extra churn on one side.
  for (std::size_t i : {3u, 7u, 11u, 19u}) a.add(i);
  for (std::size_t i : {19u, 3u, 11u, 7u}) b.add(i);
  b.remove(11);
  b.add(11);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.count(), b.count());

  a.remove(7);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  a.add(7);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // Different sets of the same size should (overwhelmingly) differ.
  knapsack::IncrementalOracle c(universe, 50.0, oracle);
  for (std::size_t i : {3u, 7u, 11u, 18u}) c.add(i);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(IncrementalOracle, SolveMatchesBatchOracleExactly) {
  sectorpack::sim::Rng rng(45);
  for (const knapsack::Oracle& oracle :
       {knapsack::Oracle::exact(), knapsack::Oracle::greedy(),
        knapsack::Oracle::fptas(0.2)}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::size_t n = 1 + rng.uniform_int(20);
      const auto universe = random_universe(rng, n);
      const double capacity = 1.0 + static_cast<double>(rng.uniform_int(120));
      knapsack::IncrementalOracle inc(universe, capacity, oracle);
      auto members = churn_to_subset(rng, inc, n);
      std::sort(members.begin(), members.end());

      std::vector<knapsack::Item> sub;
      for (std::size_t m : members) sub.push_back(universe[m]);
      const knapsack::Result want = oracle.solve(sub, capacity);

      knapsack::IncrementalStats stats;
      const knapsack::Result got = inc.solve(members, &stats);
      EXPECT_EQ(got.value, want.value);
      EXPECT_EQ(got.weight, want.weight);
      ASSERT_EQ(got.chosen.size(), want.chosen.size());
      for (std::size_t i = 0; i < got.chosen.size(); ++i) {
        EXPECT_EQ(got.chosen[i], members[want.chosen[i]]);
      }
      EXPECT_EQ(stats.solves, 1u);
    }
  }
}

TEST(OracleCache, HitReplaysTheSolvedPacking) {
  sectorpack::sim::Rng rng(46);
  const std::size_t n = 15;
  const auto universe = random_universe(rng, n);
  const knapsack::Oracle oracle = knapsack::Oracle::exact();
  knapsack::OracleCache cache;

  knapsack::IncrementalOracle first(universe, 60.0, oracle, &cache);
  knapsack::IncrementalOracle second(universe, 60.0, oracle, &cache);
  std::vector<std::size_t> members = {1, 4, 6, 9, 12};
  for (std::size_t m : members) first.add(m);
  for (std::size_t m : {12u, 1u, 9u, 4u, 6u}) second.add(m);

  knapsack::IncrementalStats s1;
  const knapsack::Result a = first.solve(members, &s1);
  EXPECT_EQ(s1.cache_misses, 1u);
  EXPECT_EQ(s1.solves, 1u);
  EXPECT_EQ(cache.size(), 1u);

  knapsack::IncrementalStats s2;
  const knapsack::Result b = second.solve(members, &s2);
  EXPECT_EQ(s2.cache_hits, 1u);
  EXPECT_EQ(s2.solves, 0u);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.weight, b.weight);
  EXPECT_EQ(a.chosen, b.chosen);
}

TEST(OracleCache, StableIdsBridgeDifferentLocalNumberings) {
  // The same customer set reached through two differently-filtered local
  // lists (as in successive greedy rounds) must share cache entries, with
  // chosen picks remapped into each call's local indices.
  const std::vector<knapsack::Item> all = {
      {10.0, 4.0}, {8.0, 3.0}, {6.0, 2.0}, {4.0, 5.0}};
  const knapsack::Oracle oracle = knapsack::Oracle::exact();
  knapsack::OracleCache cache;

  // Round 1: customers {0,1,2,3} present locally as-is.
  const std::vector<std::size_t> ids_a = {100, 200, 300, 400};
  knapsack::IncrementalOracle a(all, 6.0, oracle, &cache, ids_a);
  a.add(1);
  a.add(2);
  knapsack::IncrementalStats sa;
  const std::vector<std::size_t> members_a = {1, 2};
  const knapsack::Result ra = a.solve(members_a, &sa);
  EXPECT_EQ(sa.cache_misses, 1u);

  // Round 2: customer 0 was served; the local list shifts down by one.
  const std::vector<knapsack::Item> rest = {all[1], all[2], all[3]};
  const std::vector<std::size_t> ids_b = {200, 300, 400};
  knapsack::IncrementalOracle b(rest, 6.0, oracle, &cache, ids_b);
  b.add(0);
  b.add(1);
  knapsack::IncrementalStats sb;
  const std::vector<std::size_t> members_b = {0, 1};
  const knapsack::Result rb = b.solve(members_b, &sb);
  EXPECT_EQ(sb.cache_hits, 1u);
  EXPECT_EQ(sb.solves, 0u);

  EXPECT_EQ(ra.value, rb.value);
  ASSERT_EQ(ra.chosen.size(), rb.chosen.size());
  // Same stable ids behind each pick.
  for (std::size_t i = 0; i < ra.chosen.size(); ++i) {
    EXPECT_EQ(ids_a[ra.chosen[i]], ids_b[rb.chosen[i]]);
  }
}

TEST(BestWindow, CachedAndUncachedScansAgreeBitForBit) {
  sectorpack::sim::Rng rng(47);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.uniform_int(30);
    std::vector<double> thetas(n);
    std::vector<double> values(n);
    std::vector<double> demands(n);
    std::vector<std::size_t> ids(n);
    for (std::size_t i = 0; i < n; ++i) {
      thetas[i] = rng.uniform(0.0, 6.28);
      values[i] = 1.0 + static_cast<double>(rng.uniform_int(50));
      demands[i] = 1.0 + static_cast<double>(rng.uniform_int(20));
      ids[i] = i;
    }
    const double rho = 1.0;
    const double capacity = 40.0;
    const knapsack::Oracle oracle = knapsack::Oracle::exact();

    const single::WindowChoice plain = single::best_window_weighted(
        thetas, values, demands, rho, capacity, oracle);
    knapsack::OracleCache cache;
    const single::WindowChoice cold = single::best_window_weighted(
        thetas, values, demands, rho, capacity, oracle, false, nullptr,
        &cache, ids);
    const single::WindowChoice warm = single::best_window_weighted(
        thetas, values, demands, rho, capacity, oracle, false, nullptr,
        &cache, ids);

    EXPECT_EQ(plain.value, cold.value);
    EXPECT_EQ(plain.alpha, cold.alpha);
    EXPECT_EQ(plain.chosen, cold.chosen);
    EXPECT_EQ(cold.value, warm.value);
    EXPECT_EQ(cold.alpha, warm.alpha);
    EXPECT_EQ(cold.chosen, warm.chosen);
  }
}
