#include "src/sim/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/adversarial.hpp"
#include "src/sim/rng.hpp"

namespace sim = sectorpack::sim;
namespace geom = sectorpack::geom;
namespace model = sectorpack::model;

TEST(Rng, DeterministicForSeed) {
  sim::Rng a(123);
  sim::Rng b(123);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  sim::Rng a(1);
  sim::Rng b(2);
  int same = 0;
  for (int t = 0; t < 64; ++t) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01Range) {
  sim::Rng rng(5);
  double lo = 1.0;
  double hi = 0.0;
  for (int t = 0; t < 10000; ++t) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);  // covers the low end
  EXPECT_GT(hi, 0.99);  // covers the high end
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  sim::Rng rng(6);
  std::vector<int> hits(10, 0);
  for (int t = 0; t < 10000; ++t) {
    const auto v = rng.uniform_int(std::uint64_t{10});
    ASSERT_LT(v, 10u);
    ++hits[v];
  }
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, UniformIntInclusiveRange) {
  sim::Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int t = 0; t < 5000; ++t) {
    const auto v = rng.uniform_int(std::int64_t{-3}, std::int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  sim::Rng rng(8);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int t = 0; t < n; ++t) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  sim::Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  for (int t = 0; t < n; ++t) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ParetoBounds) {
  sim::Rng rng(10);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, SplitStreamsIndependent) {
  sim::Rng parent(11);
  sim::Rng child = parent.split();
  int same = 0;
  for (int t = 0; t < 64; ++t) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Generators, CountAndPositiveDemands) {
  sim::Rng rng(20);
  sim::WorkloadConfig wc;
  wc.num_customers = 500;
  for (auto spatial : {sim::Spatial::kUniformDisk, sim::Spatial::kHotspots,
                       sim::Spatial::kRing, sim::Spatial::kArcBand}) {
    wc.spatial = spatial;
    const auto customers = sim::generate_customers(wc, rng);
    ASSERT_EQ(customers.size(), 500u);
    for (const auto& c : customers) {
      EXPECT_GT(c.demand, 0.0);
    }
  }
}

TEST(Generators, UniformDiskStaysInDisk) {
  sim::Rng rng(21);
  sim::WorkloadConfig wc;
  wc.num_customers = 2000;
  wc.disk_radius = 50.0;
  const auto customers = sim::generate_customers(wc, rng);
  for (const auto& c : customers) {
    EXPECT_LE(c.pos.norm(), 50.0 + 1e-9);
  }
}

TEST(Generators, ArcBandRespectsAngularBand) {
  sim::Rng rng(22);
  sim::WorkloadConfig wc;
  wc.num_customers = 1000;
  wc.spatial = sim::Spatial::kArcBand;
  wc.band_center = 1.0;
  wc.band_halfwidth = 0.5;
  const auto customers = sim::generate_customers(wc, rng);
  for (const auto& c : customers) {
    const double theta = geom::to_polar(c.pos).theta;
    EXPECT_LE(geom::angular_distance(theta, 1.0), 0.5 + 1e-6);
  }
}

TEST(Generators, UniformIntDemandInRange) {
  sim::Rng rng(23);
  sim::WorkloadConfig wc;
  wc.num_customers = 1000;
  wc.demand = sim::DemandDist::kUniformInt;
  wc.demand_min = 3;
  wc.demand_max = 9;
  for (const auto& c : sim::generate_customers(wc, rng)) {
    EXPECT_GE(c.demand, 3.0);
    EXPECT_LE(c.demand, 9.0);
    EXPECT_DOUBLE_EQ(c.demand, std::round(c.demand));
  }
}

TEST(Generators, ParetoIntCappedAndIntegral) {
  sim::Rng rng(24);
  sim::WorkloadConfig wc;
  wc.num_customers = 2000;
  wc.demand = sim::DemandDist::kParetoInt;
  wc.pareto_cap = 50;
  for (const auto& c : sim::generate_customers(wc, rng)) {
    EXPECT_GE(c.demand, 1.0);
    EXPECT_LE(c.demand, 50.0);
    EXPECT_DOUBLE_EQ(c.demand, std::round(c.demand));
  }
}

TEST(Generators, MakeInstanceCapacityFraction) {
  sim::Rng rng(25);
  sim::WorkloadConfig wc;
  wc.num_customers = 200;
  sim::AntennaConfig ac;
  ac.count = 4;
  ac.capacity_fraction = 0.5;
  const model::Instance inst = sim::make_instance(wc, ac, rng);
  EXPECT_EQ(inst.num_antennas(), 4u);
  EXPECT_LE(inst.total_capacity(), 0.5 * inst.total_demand() + 4.0);
  EXPECT_GE(inst.total_capacity(), 0.5 * inst.total_demand() - 4.0);
}

TEST(Generators, SameSeedSameInstance) {
  sim::WorkloadConfig wc;
  wc.num_customers = 50;
  sim::Rng r1(42);
  sim::Rng r2(42);
  const auto a = sim::generate_customers(wc, r1);
  const auto b = sim::generate_customers(wc, r2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos.x, b[i].pos.x);
    EXPECT_EQ(a[i].pos.y, b[i].pos.y);
    EXPECT_EQ(a[i].demand, b[i].demand);
  }
}

TEST(Generators, UniformDiskShortcut) {
  const model::Instance inst = sim::uniform_disk_instance(30, 2, 1.0, 7.0, 5);
  EXPECT_EQ(inst.num_customers(), 30u);
  EXPECT_EQ(inst.num_antennas(), 2u);
  EXPECT_TRUE(inst.is_angles_only());  // range is 2x the disk radius
  EXPECT_TRUE(inst.antennas_identical());
}

TEST(Adversarial, KnapsackGadgetShape) {
  const sim::KnapsackGadget g = sim::greedy_half_gadget(100.0);
  ASSERT_EQ(g.items.size(), 3u);
  EXPECT_DOUBLE_EQ(g.opt_value, 100.0);
  EXPECT_DOUBLE_EQ(g.items[0].weight, 51.0);
}

TEST(Adversarial, InstancesAreValid) {
  // Builders must produce structurally valid instances.
  const model::Instance a = sim::single_antenna_trap(50.0);
  EXPECT_EQ(a.num_antennas(), 1u);
  EXPECT_EQ(a.num_customers(), 4u);
  const model::Instance b = sim::range_shadow_trap();
  EXPECT_EQ(b.num_antennas(), 2u);
  EXPECT_EQ(b.num_customers(), 2u);
  EXPECT_DOUBLE_EQ(b.total_demand(), 9.9);
  const model::Instance c = sim::fragmentation_trap();
  EXPECT_EQ(c.num_antennas(), 2u);
  EXPECT_DOUBLE_EQ(c.total_demand(), 16.0);
}
