#include "src/bounds/upper.hpp"

#include <gtest/gtest.h>

#include "src/assign/assign.hpp"
#include "src/bounds/dinic.hpp"
#include "src/model/validate.hpp"
#include "src/sectors/sectors.hpp"
#include "src/sim/generators.hpp"

namespace bounds = sectorpack::bounds;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;
namespace sectors = sectorpack::sectors;

TEST(Dinic, TrivialPath) {
  bounds::Dinic d(3);
  d.add_edge(0, 1, 5.0);
  d.add_edge(1, 2, 3.0);
  EXPECT_NEAR(d.max_flow(0, 2), 3.0, 1e-9);
}

TEST(Dinic, ParallelPaths) {
  bounds::Dinic d(4);
  d.add_edge(0, 1, 4.0);
  d.add_edge(0, 2, 2.0);
  d.add_edge(1, 3, 3.0);
  d.add_edge(2, 3, 5.0);
  EXPECT_NEAR(d.max_flow(0, 3), 5.0, 1e-9);
}

TEST(Dinic, ClassicAugmentingCross) {
  // The textbook example where the cross edge must carry flow back.
  bounds::Dinic d(4);
  d.add_edge(0, 1, 1.0);
  d.add_edge(0, 2, 1.0);
  d.add_edge(1, 2, 1.0);
  d.add_edge(1, 3, 1.0);
  d.add_edge(2, 3, 1.0);
  EXPECT_NEAR(d.max_flow(0, 3), 2.0, 1e-9);
}

TEST(Dinic, DisconnectedIsZero) {
  bounds::Dinic d(4);
  d.add_edge(0, 1, 7.0);
  d.add_edge(2, 3, 7.0);
  EXPECT_NEAR(d.max_flow(0, 3), 0.0, 1e-12);
}

TEST(Dinic, EdgeFlowAccounting) {
  bounds::Dinic d(3);
  const std::size_t e01 = d.add_edge(0, 1, 5.0);
  const std::size_t e12 = d.add_edge(1, 2, 3.0);
  const double f = d.max_flow(0, 2);
  EXPECT_NEAR(d.edge_flow(e01), f, 1e-9);
  EXPECT_NEAR(d.edge_flow(e12), f, 1e-9);
}

TEST(Dinic, FractionalCapacities) {
  bounds::Dinic d(4);
  d.add_edge(0, 1, 1.5);
  d.add_edge(0, 2, 2.25);
  d.add_edge(1, 3, 2.0);
  d.add_edge(2, 3, 1.75);
  EXPECT_NEAR(d.max_flow(0, 3), 1.5 + 1.75, 1e-9);
}

namespace {

model::Instance random_inst(std::uint64_t seed, std::size_t n,
                            std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(1.0, 12.0),
                         static_cast<double>(rng.uniform_int(1, 8)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    b.add_antenna(rng.uniform(0.6, 2.5), rng.uniform(6.0, 14.0),
                  static_cast<double>(rng.uniform_int(4, 20)));
  }
  return b.build();
}

}  // namespace

TEST(FractionalBound, DominatesExactAssignment) {
  namespace assign = sectorpack::assign;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const model::Instance inst = random_inst(seed, 10, 3);
    sim::Rng rng(seed + 999);
    std::vector<double> alphas;
    for (std::size_t j = 0; j < 3; ++j) {
      alphas.push_back(rng.uniform(0.0, geom::kTwoPi));
    }
    const double exact = model::served_demand(
        inst, assign::solve_exact(inst, alphas));
    const double frac =
        bounds::fixed_orientation_fractional_bound(inst, alphas);
    EXPECT_GE(frac + 1e-6, exact) << "seed " << seed;
    EXPECT_LE(frac, bounds::trivial_bound(inst) + 1e-6);
  }
}

TEST(FractionalBound, TightOnSaturatedUnitDemands) {
  // Unit demands, one antenna seeing everyone, integer capacity: the LP has
  // an integral optimum, so bound == exact.
  model::InstanceBuilder b;
  for (int i = 0; i < 8; ++i) {
    b.add_customer_polar(0.1 + 0.01 * i, 5.0, 1.0);
  }
  b.add_antenna(geom::kPi, 10.0, 5.0);
  const model::Instance inst = b.build();
  const std::vector<double> alphas = {0.0};
  EXPECT_NEAR(bounds::fixed_orientation_fractional_bound(inst, alphas), 5.0,
              1e-9);
}

TEST(OrientationFreeBound, DominatesExactP3) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const model::Instance inst = random_inst(seed + 50, 7, 2);
    const double exact =
        model::served_demand(inst, sectors::solve_exact(inst));
    const double bound = bounds::orientation_free_bound(inst);
    EXPECT_GE(bound + 1e-6, exact) << "seed " << seed;
    EXPECT_LE(bound, bounds::trivial_bound(inst) + 1e-6);
  }
}

TEST(OrientationFreeBound, ExactForSingleWideAntennaUncapacitated) {
  // One full-circle antenna with capacity above total demand: the bound
  // must equal total demand, which is also OPT.
  model::InstanceBuilder b;
  b.add_customer_polar(1.0, 5.0, 3.0);
  b.add_customer_polar(4.0, 5.0, 2.0);
  b.add_antenna(geom::kTwoPi, 10.0, 100.0);
  const model::Instance inst = b.build();
  EXPECT_NEAR(bounds::orientation_free_bound(inst), 5.0, 1e-9);
}

TEST(TrivialBound, MinOfDemandAndCapacity) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.0, 1.0, 10.0)
                                   .add_antenna(1.0, 5.0, 4.0)
                                   .build();
  EXPECT_DOUBLE_EQ(bounds::trivial_bound(inst), 4.0);
}

TEST(FlowWindowBound, DominatesExactP3) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const model::Instance inst = random_inst(seed + 150, 7, 2);
    const double exact =
        model::served_demand(inst, sectors::solve_exact(inst));
    const double bound = bounds::flow_window_bound(inst);
    EXPECT_GE(bound + 1e-6, exact) << "seed " << seed;
  }
}

TEST(FlowWindowBound, AtMostOrientationFree) {
  // The flow formulation adds the serve-once constraint, so it can only
  // tighten the orientation-free bound.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const model::Instance inst = random_inst(seed + 200, 20, 3);
    EXPECT_LE(bounds::flow_window_bound(inst),
              bounds::orientation_free_bound(inst) + 1e-6)
        << "seed " << seed;
  }
}

TEST(FlowWindowBound, StrictlyTighterWhenAntennasShareOneCustomer) {
  // One customer, two antennas that can both see it: orientation-free sums
  // both antennas' windows (2 * demand), the flow bound caps at the
  // customer's demand.
  model::InstanceBuilder b;
  b.add_customer_polar(0.3, 5.0, 4.0);
  b.add_identical_antennas(2, geom::kPi, 10.0, 100.0);
  const model::Instance inst = b.build();
  EXPECT_NEAR(bounds::flow_window_bound(inst), 4.0, 1e-9);
  // (orientation_free_bound also gives 4 here because it is clamped by
  // total demand; remove the clamp effect with a second far customer.)
  model::InstanceBuilder b2;
  b2.add_customer_polar(0.3, 5.0, 4.0);
  b2.add_customer_polar(0.3 + geom::kPi, 50.0, 10.0);  // out of range
  b2.add_identical_antennas(2, geom::kPi, 10.0, 100.0);
  const model::Instance inst2 = b2.build();
  EXPECT_NEAR(bounds::flow_window_bound(inst2), 4.0, 1e-9);
  EXPECT_NEAR(bounds::orientation_free_bound(inst2), 8.0, 1e-9);
}

TEST(Bounds, OrderingChain) {
  // orientation_free <= trivial, and both dominate every feasible solution.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_inst(seed + 80, 15, 3);
    const double trivial = bounds::trivial_bound(inst);
    const double of = bounds::orientation_free_bound(inst);
    EXPECT_LE(of, trivial + 1e-9);
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    EXPECT_LE(greedy, of + 1e-6);
  }
}
