// End-to-end pipeline tests: generate -> solve (every solver family) ->
// validate -> serialize -> reload -> re-validate, plus cross-solver
// dominance orderings and whole-instance invariances.

#include <gtest/gtest.h>

#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

model::Instance rotated_copy(const model::Instance& inst, double offset) {
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    b.add_customer_polar(geom::normalize(inst.theta(i) + offset),
                         inst.radius(i), inst.demand(i));
  }
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    const model::AntennaSpec& a = inst.antenna(j);
    b.add_antenna(a.rho, a.range, a.capacity);
  }
  return b.build();
}

}  // namespace

TEST(Pipeline, GenerateSolveValidateSerializeReload) {
  sim::Rng rng(2024);
  sim::WorkloadConfig wc;
  wc.num_customers = 40;
  wc.spatial = sim::Spatial::kHotspots;
  wc.demand = sim::DemandDist::kUniformInt;
  sim::AntennaConfig ac;
  ac.count = 3;
  ac.capacity_fraction = 0.4;
  const model::Instance inst = sim::make_instance(wc, ac, rng);

  const model::Solution sol = sectors::solve_local_search(inst);
  ASSERT_TRUE(model::is_feasible(inst, sol));
  EXPECT_GT(model::served_demand(inst, sol), 0.0);

  // Roundtrip both instance and solution through text serialization.
  const model::Instance inst2 =
      model::instance_from_string(model::to_string(inst));
  const model::Solution sol2 =
      model::solution_from_string(model::to_string(sol));
  ASSERT_TRUE(model::is_feasible(inst2, sol2));
  EXPECT_DOUBLE_EQ(model::served_demand(inst2, sol2),
                   model::served_demand(inst, sol));
}

TEST(Pipeline, SolverDominanceOrderingSmall) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    sim::Rng rng(seed);
    model::InstanceBuilder b;
    for (int i = 0; i < 8; ++i) {
      b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                           rng.uniform(1.0, 9.0),
                           static_cast<double>(rng.uniform_int(1, 6)));
    }
    b.add_identical_antennas(2, 1.5, 10.0, 10.0);
    const model::Instance inst = b.build();

    const double exact = model::served_demand(inst, sectors::solve_exact(inst));
    const double ls =
        model::served_demand(inst, sectors::solve_local_search(inst));
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    const double uniform = model::served_demand(
        inst, sectors::solve_uniform_orientations(inst));
    const double bound = bounds::orientation_free_bound(inst);

    EXPECT_GE(exact + 1e-9, ls) << "seed " << seed;
    EXPECT_GE(ls + 1e-9, greedy) << "seed " << seed;
    EXPECT_GE(exact + 1e-9, uniform) << "seed " << seed;
    EXPECT_GE(bound + 1e-6, exact) << "seed " << seed;
  }
}

TEST(Pipeline, RotationInvarianceOfAllSolvers) {
  sim::Rng rng(99);
  model::InstanceBuilder b;
  for (int i = 0; i < 15; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(1.0, 9.0),
                         static_cast<double>(rng.uniform_int(1, 5)));
  }
  b.add_identical_antennas(2, 1.2, 10.0, 9.0);
  const model::Instance inst = b.build();
  const model::Instance rot = rotated_copy(inst, 2.345);

  EXPECT_NEAR(model::served_demand(inst, sectors::solve_greedy(inst)),
              model::served_demand(rot, sectors::solve_greedy(rot)), 1e-9);
  EXPECT_NEAR(model::served_demand(inst, sectors::solve_local_search(inst)),
              model::served_demand(rot, sectors::solve_local_search(rot)),
              1e-9);
  EXPECT_NEAR(bounds::orientation_free_bound(inst),
              bounds::orientation_free_bound(rot), 1e-9);
}

TEST(Pipeline, DemandScaleInvarianceOfRatios) {
  // Scaling all demands and capacities by the same factor scales every
  // solver's value by that factor.
  sim::Rng rng(123);
  model::InstanceBuilder b1;
  model::InstanceBuilder b2;
  const double scale = 7.0;
  for (int i = 0; i < 12; ++i) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double r = rng.uniform(1.0, 9.0);
    const double d = static_cast<double>(rng.uniform_int(1, 6));
    b1.add_customer_polar(theta, r, d);
    b2.add_customer_polar(theta, r, d * scale);
  }
  b1.add_identical_antennas(2, 1.3, 10.0, 8.0);
  b2.add_identical_antennas(2, 1.3, 10.0, 8.0 * scale);
  const model::Instance i1 = b1.build();
  const model::Instance i2 = b2.build();
  EXPECT_NEAR(model::served_demand(i2, sectors::solve_greedy(i2)),
              scale * model::served_demand(i1, sectors::solve_greedy(i1)),
              1e-6);
}

TEST(Pipeline, UncapacitatedMatchesCapacitatedWhenCapacityAmple) {
  // With capacity >= total demand, capacitated greedy over identical
  // antennas should cover at least as much as... exactly the uncapacitated
  // DP optimum is an upper bound; exact capacitated == uncap DP.
  sim::Rng rng(321);
  model::InstanceBuilder b;
  std::vector<double> thetas;
  std::vector<double> demands;
  for (int i = 0; i < 9; ++i) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double d = static_cast<double>(rng.uniform_int(1, 5));
    thetas.push_back(theta);
    demands.push_back(d);
    b.add_customer_polar(theta, 5.0, d);
  }
  b.add_identical_antennas(2, 1.0, 10.0, 1000.0);
  const model::Instance inst = b.build();

  const auto uncap = angles::solve_uncap_dp(thetas, demands, 1.0, 2);
  const model::Solution exact = sectors::solve_exact(inst);
  EXPECT_NEAR(model::served_demand(inst, exact), uncap.covered, 1e-9);
}

TEST(Pipeline, StressManySolversOnMediumInstance) {
  sim::Rng rng(5150);
  sim::WorkloadConfig wc;
  wc.num_customers = 120;
  wc.spatial = sim::Spatial::kRing;
  wc.demand = sim::DemandDist::kParetoInt;
  sim::AntennaConfig ac;
  ac.count = 5;
  ac.rho = geom::kPi / 4.0;
  ac.capacity_fraction = 0.35;
  const model::Instance inst = sim::make_instance(wc, ac, rng);

  for (const auto& sol :
       {sectors::solve_greedy(inst), sectors::solve_local_search(inst),
        sectors::solve_uniform_orientations(inst)}) {
    const auto report = model::validate(inst, sol);
    EXPECT_TRUE(report.ok) << (report.errors.empty() ? "" : report.errors[0]);
    EXPECT_LE(model::served_demand(inst, sol),
              bounds::trivial_bound(inst) + 1e-9);
  }
}

TEST(Pipeline, SingleAntennaAgreesWithSectorsExact) {
  // For k=1 the P1 solver and the P3 exact solver are the same problem.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Rng rng(seed + 31);
    model::InstanceBuilder b;
    for (int i = 0; i < 8; ++i) {
      b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                           rng.uniform(1.0, 12.0),
                           static_cast<double>(rng.uniform_int(1, 6)));
    }
    b.add_antenna(1.4, 9.0, 11.0);
    const model::Instance inst = b.build();
    EXPECT_NEAR(model::served_demand(inst, single::solve_exact(inst)),
                model::served_demand(inst, sectors::solve_exact(inst)), 1e-9)
        << "seed " << seed;
  }
}
