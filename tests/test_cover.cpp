#include "src/cover/cover.hpp"

#include <gtest/gtest.h>

#include "src/sim/generators.hpp"

namespace cover = sectorpack::cover;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;

namespace {

std::vector<model::Customer> random_customers(std::uint64_t seed,
                                              std::size_t n,
                                              double max_demand = 6.0) {
  sim::Rng rng(seed);
  std::vector<model::Customer> customers;
  customers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    customers.push_back(
        {geom::from_polar(rng.uniform(0.0, geom::kTwoPi),
                          rng.uniform(1.0, 9.0)),
         static_cast<double>(rng.uniform_int(
             1, static_cast<std::int64_t>(max_demand)))});
  }
  return customers;
}

const model::AntennaSpec kType{geom::kPi / 2.0, 10.0, 15.0};

}  // namespace

TEST(MinArcs, Basics) {
  EXPECT_EQ(cover::min_arcs_to_cover({}, 1.0), 0u);
  EXPECT_EQ(cover::min_arcs_to_cover(std::vector<double>{1.0}, 0.5), 1u);
  // Full-circle arc covers everything.
  const std::vector<double> spread = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(cover::min_arcs_to_cover(spread, geom::kTwoPi), 1u);
}

TEST(MinArcs, EvenlySpacedPoints) {
  // 6 points every 60 degrees; arcs of width just over 120 degrees cover 3
  // consecutive points each -> 2 arcs suffice.
  std::vector<double> thetas;
  for (int i = 0; i < 6; ++i) {
    thetas.push_back(geom::deg_to_rad(60.0 * i));
  }
  EXPECT_EQ(cover::min_arcs_to_cover(thetas, geom::deg_to_rad(121.0)), 2u);
  EXPECT_EQ(cover::min_arcs_to_cover(thetas, geom::deg_to_rad(61.0)), 3u);
  EXPECT_EQ(cover::min_arcs_to_cover(thetas, geom::deg_to_rad(1.0)), 6u);
}

TEST(MinArcs, MatchesBruteForceRandom) {
  // Brute force: try all subsets of candidate anchors up to size m.
  sim::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(6);
    const double rho = rng.uniform(0.3, 2.5);
    std::vector<double> thetas(n);
    for (double& t : thetas) t = rng.uniform(0.0, geom::kTwoPi);

    const std::size_t got = cover::min_arcs_to_cover(thetas, rho);

    // Brute force over anchor subsets (anchors = the points themselves).
    std::size_t best = n;
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
      std::vector<bool> covered(n, false);
      for (std::size_t a = 0; a < n; ++a) {
        if (!(mask & (1u << a))) continue;
        const geom::Arc arc(geom::normalize(thetas[a]), rho);
        for (std::size_t i = 0; i < n; ++i) {
          if (arc.contains(geom::normalize(thetas[i]))) covered[i] = true;
        }
      }
      bool all = true;
      for (bool c : covered) all &= c;
      if (all) {
        best = std::min(best,
                        static_cast<std::size_t>(__builtin_popcount(mask)));
      }
    }
    EXPECT_EQ(got, best) << "trial " << trial << " rho " << rho;
  }
}

TEST(CoverValidate, RejectsPartialAndOverload) {
  const auto customers = random_customers(1, 5);
  cover::CoverResult r;
  r.assign.assign(5, model::kUnserved);
  r.alphas.push_back(0.0);
  EXPECT_FALSE(cover::validate_cover(customers, kType, r));  // unserved
}

TEST(CoverGreedy, ProducesValidCover) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto customers = random_customers(seed, 15);
    const cover::CoverResult r = cover::solve_greedy(customers, kType);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(cover::validate_cover(customers, kType, r)) << seed;
    EXPECT_GE(r.num_antennas(), cover::lower_bound(customers, kType));
    EXPECT_LE(r.num_antennas(), customers.size());
  }
}

TEST(CoverNextFit, ProducesValidCover) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto customers = random_customers(seed + 100, 15);
    const cover::CoverResult r =
        cover::solve_sweep_nextfit(customers, kType);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(cover::validate_cover(customers, kType, r)) << seed;
    EXPECT_GE(r.num_antennas(), cover::lower_bound(customers, kType));
  }
}

TEST(CoverExact, MinimalAndDominatesLowerBound) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto customers = random_customers(seed + 200, 6);
    const cover::CoverResult exact =
        cover::solve_exact(customers, kType, /*max_k=*/6);
    ASSERT_TRUE(exact.feasible);
    EXPECT_TRUE(cover::validate_cover(customers, kType, exact)) << seed;
    const std::size_t lb = cover::lower_bound(customers, kType);
    EXPECT_GE(exact.num_antennas(), lb);
    // Heuristics cannot beat exact.
    EXPECT_LE(exact.num_antennas(),
              cover::solve_greedy(customers, kType).num_antennas());
    EXPECT_LE(exact.num_antennas(),
              cover::solve_sweep_nextfit(customers, kType).num_antennas());
  }
}

TEST(CoverExact, NextFitExactForUncapacitated) {
  // With non-binding capacity, next-fit anchored at every cut is optimal
  // for covering points by arcs; cross-check against min_arcs_to_cover.
  const model::AntennaSpec uncap{geom::kPi / 2.0, 10.0, 1e9};
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const auto customers = random_customers(seed + 300, 10);
    std::vector<double> thetas;
    for (const auto& c : customers) {
      thetas.push_back(sectorpack::geom::to_polar(c.pos).theta);
    }
    const std::size_t arcs = cover::min_arcs_to_cover(thetas, uncap.rho);
    const cover::CoverResult nf =
        cover::solve_sweep_nextfit(customers, uncap);
    EXPECT_EQ(nf.num_antennas(), arcs) << seed;
  }
}

TEST(CoverInfeasibility, DetectsBlockers) {
  std::vector<model::Customer> customers = {
      {geom::from_polar(0.0, 50.0), 1.0},   // out of range
      {geom::from_polar(1.0, 5.0), 100.0},  // demand above capacity
      {geom::from_polar(2.0, 5.0), 1.0},    // fine
  };
  for (const auto* solver :
       {"greedy", "nextfit"}) {
    const cover::CoverResult r =
        std::string(solver) == "greedy"
            ? cover::solve_greedy(customers, kType)
            : cover::solve_sweep_nextfit(customers, kType);
    EXPECT_FALSE(r.feasible);
    ASSERT_EQ(r.blockers.size(), 2u);
    EXPECT_EQ(r.blockers[0], 0u);
    EXPECT_EQ(r.blockers[1], 1u);
  }
}

TEST(CoverEdgeCases, EmptyCustomerSet) {
  const cover::CoverResult g = cover::solve_greedy({}, kType);
  EXPECT_TRUE(g.feasible);
  EXPECT_EQ(g.num_antennas(), 0u);
  EXPECT_EQ(cover::lower_bound({}, kType), 0u);
  const cover::CoverResult e = cover::solve_exact({}, kType);
  EXPECT_EQ(e.num_antennas(), 0u);
}

TEST(CoverEdgeCases, SingleCustomer) {
  const std::vector<model::Customer> one = {
      {geom::from_polar(1.5, 5.0), 3.0}};
  for (const cover::CoverResult& r :
       {cover::solve_greedy(one, kType), cover::solve_sweep_nextfit(one, kType),
        cover::solve_exact(one, kType)}) {
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.num_antennas(), 1u);
    EXPECT_TRUE(cover::validate_cover(one, kType, r));
  }
}

TEST(CoverCapacityBinding, SplitsOneCluster) {
  // 4 customers at the same angle, demand 10 each, capacity 15: geometry
  // needs 1 arc and the volume bound says ceil(40/15) = 3, but no two
  // demand-10 items share a capacity-15 antenna, so the true optimum is 4
  // -- the bin-packing gap between the volume lower bound and OPT.
  std::vector<model::Customer> cluster;
  for (int i = 0; i < 4; ++i) {
    cluster.push_back({geom::from_polar(0.5, 5.0), 10.0});
  }
  EXPECT_EQ(cover::lower_bound(cluster, kType), 3u);
  const cover::CoverResult exact = cover::solve_exact(cluster, kType, 5);
  EXPECT_EQ(exact.num_antennas(), 4u);
  EXPECT_TRUE(cover::validate_cover(cluster, kType, exact));
  // With capacity 20 two items pair up and the volume bound is tight.
  const model::AntennaSpec roomy{kType.rho, kType.range, 20.0};
  EXPECT_EQ(cover::lower_bound(cluster, roomy), 2u);
  EXPECT_EQ(cover::solve_exact(cluster, roomy, 5).num_antennas(), 2u);
}

// Parameterized: cover size is monotone nonincreasing in rho and in
// capacity.
class CoverMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverMonotone, WiderBeamNeverNeedsMore) {
  const auto customers = random_customers(GetParam(), 12);
  std::size_t prev = customers.size() + 1;
  for (double rho_deg : {30.0, 60.0, 120.0, 240.0, 360.0}) {
    const model::AntennaSpec type{geom::deg_to_rad(rho_deg), 10.0, 1e9};
    const std::size_t count =
        cover::solve_sweep_nextfit(customers, type).num_antennas();
    EXPECT_LE(count, prev) << "rho " << rho_deg;
    prev = count;
  }
}

TEST_P(CoverMonotone, MoreCapacityNeverNeedsMore) {
  const auto customers = random_customers(GetParam() + 50, 8, 4.0);
  std::size_t prev = customers.size() + 1;
  for (double cap : {8.0, 15.0, 30.0, 1e9}) {
    const model::AntennaSpec type{geom::kPi, 10.0, cap};
    const std::size_t count =
        cover::solve_exact(customers, type, 8).num_antennas();
    EXPECT_LE(count, prev) << "cap " << cap;
    prev = count;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverMonotone,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));
