// Tests for the annotated sync layer (src/core/sync.hpp) and the
// shutdown/teardown races of its two main consumers: BoundedQueue close()
// racing concurrent push/pop, and ThreadPool destruction with
// queued-but-unstarted work. The semantic tests pin down the wrapper
// contracts (LockGuard scope, UniqueLock manual cycles, CondVar's
// predicate-only untimed wait); the race tests are the ones that fail
// under `scripts/check.sh --tsan` if the locking regresses.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/sync.hpp"
#include "src/par/bounded_queue.hpp"
#include "src/par/thread_pool.hpp"

using namespace sectorpack;

TEST(SyncMutexTest, TryLockFailsWhileHeldElsewhere) {
  core::Mutex mu;
  mu.lock();
  // try_lock from the owning thread is UB on std::mutex, so probe from a
  // second thread, where "held elsewhere" must mean failure.
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncLockGuardTest, MutualExclusionUnderContention) {
  core::Mutex mu;
  long counter = 0;  // guarded by mu (block-local: annotations need members)
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        core::LockGuard lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SyncUniqueLockTest, ManualUnlockAdmitsOtherThreads) {
  core::Mutex mu;
  core::UniqueLock lock(mu);  // always constructed locked
  lock.unlock();
  bool acquired = false;
  std::thread probe([&] {
    core::LockGuard inner(mu);
    acquired = true;
  });
  probe.join();
  EXPECT_TRUE(acquired);
  lock.lock();  // manual re-acquire; destructor releases
}

TEST(SyncCondVarTest, PredicateWaitSeesNotify) {
  core::Mutex mu;
  core::CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread producer([&] {
    {
      core::LockGuard lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    core::UniqueLock lock(mu);
    cv.wait(lock, [&] {
      mu.assert_held();  // CondVar::wait re-acquires mu around us
      return ready;
    });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(SyncCondVarTest, TimedPredicateWaitReturnsPredicateOnTimeout) {
  core::Mutex mu;
  core::CondVar cv;
  const bool ready = false;
  core::UniqueLock lock(mu);
  EXPECT_FALSE(cv.wait_for(lock, std::chrono::milliseconds(5), [&] {
    mu.assert_held();  // CondVar::wait_for re-acquires mu around us
    return ready;
  }));
}

TEST(SyncCondVarTest, PlainTimedWaitDistinguishesTimeoutFromNotify) {
  core::Mutex mu;
  core::CondVar cv;
  core::UniqueLock lock(mu);
  // Nobody notifies: the polling overload must report timeout (false).
  EXPECT_FALSE(cv.wait_for(lock, std::chrono::milliseconds(5)));
}

TEST(SyncBoundedQueueTest, CloseRacesConcurrentPushAndPop) {
  // close() lands while producers are blocked on a full queue and
  // consumers are mid-pop. Everyone must unblock promptly, and every item
  // a push() accepted must come out of a pop(): accepted == drained, no
  // loss, no duplication. TSan checks the close/push/pop interleaving.
  par::BoundedQueue<int> queue(8);
  std::atomic<int> accepted{0};
  std::atomic<int> drained{0};
  std::vector<std::thread> producers;
  std::vector<std::thread> consumers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100000; ++i) {
        if (!queue.push(i)) break;  // closed under us: stop producing
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int value = 0;
      while (queue.pop(value)) {
        drained.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(drained.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
}

TEST(SyncBoundedQueueTest, TimedPushFailsFastAfterClose) {
  par::BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));  // queue now full
  queue.close();
  int value = 2;
  EXPECT_FALSE(queue.try_push_for(value, std::chrono::milliseconds(50)));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));  // the pre-close item still drains
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(queue.pop(out));  // closed and empty: end of stream
}

TEST(SyncThreadPoolTest, DestructionDrainsQueuedWork) {
  // The destructor's contract is drain-then-join: tasks still sitting in
  // the worker deques when ~ThreadPool starts must all run, not be
  // dropped. A sleeping head task on a 1-worker pool guarantees a real
  // queued-but-unstarted backlog at destruction time.
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(1);
    pool.submit(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(SyncThreadPoolTest, DestructionDrainsAcrossStealingWorkers) {
  // Same contract under work stealing: several workers tearing down while
  // tasks migrate between deques (TSan checks the per-queue locking).
  std::atomic<int> ran{0};
  {
    par::ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 1000);
}
