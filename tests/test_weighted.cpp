// Value-weighted packing: value (objective) decoupled from demand
// (capacity consumption). These tests pin the weighted semantics across
// the model, the solver stack, the bounds, and serialization.

#include <gtest/gtest.h>

#include "src/sectorpack.hpp"
#include "src/sectors/annealing.hpp"

using namespace sectorpack;

namespace {

model::Instance random_weighted(std::uint64_t seed, std::size_t n,
                                std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_weighted_customer_polar(
        rng.uniform(0.0, geom::kTwoPi), rng.uniform(1.0, 9.0),
        static_cast<double>(rng.uniform_int(1, 8)),
        static_cast<double>(rng.uniform_int(1, 20)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    b.add_antenna(rng.uniform(0.8, 2.2), 10.0,
                  static_cast<double>(rng.uniform_int(6, 16)));
  }
  return b.build();
}

}  // namespace

TEST(WeightedModel, DetectionAndAccessors) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 3.0);
  b.add_weighted_customer_polar(0.2, 5.0, 3.0, 10.0);
  b.add_antenna(1.0, 10.0, 5.0);
  const model::Instance inst = b.build();
  EXPECT_TRUE(inst.is_value_weighted());
  EXPECT_DOUBLE_EQ(inst.value(0), 3.0);  // defaulted to demand
  EXPECT_DOUBLE_EQ(inst.value(1), 10.0);
  EXPECT_DOUBLE_EQ(inst.total_value(), 13.0);
  EXPECT_DOUBLE_EQ(inst.total_demand(), 6.0);
}

TEST(WeightedModel, ValueEqualDemandIsUnweighted) {
  model::InstanceBuilder b;
  b.add_weighted_customer_polar(0.1, 5.0, 3.0, 3.0);
  b.add_antenna(1.0, 10.0, 5.0);
  EXPECT_FALSE(b.build().is_value_weighted());
}

TEST(WeightedModel, RejectsBadValues) {
  model::InstanceBuilder b;
  b.add_weighted_customer_polar(0.1, 5.0, 3.0,
                                std::numeric_limits<double>::infinity());
  b.add_antenna(1.0, 10.0, 5.0);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
  // Zero value is allowed (a customer you may serve but gain nothing for).
  model::InstanceBuilder b2;
  b2.add_weighted_customer_polar(0.1, 5.0, 3.0, 0.0);
  b2.add_antenna(1.0, 10.0, 5.0);
  EXPECT_NO_THROW((void)b2.build());
}

TEST(WeightedSingle, PrefersValueDensity) {
  // Capacity 4: one heavy high-value customer (d=4, v=10) vs two cheap
  // low-value ones (d=2, v=3 each). Value-optimal takes the heavy one (10
  // > 6) even though it serves less... equal demand. Served VALUE must be
  // the objective.
  model::InstanceBuilder b;
  b.add_weighted_customer_polar(0.1, 5.0, 4.0, 10.0);
  b.add_weighted_customer_polar(0.12, 5.0, 2.0, 3.0);
  b.add_weighted_customer_polar(0.14, 5.0, 2.0, 3.0);
  b.add_antenna(1.0, 10.0, 4.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_value(inst, sol), 10.0);
  EXPECT_EQ(sol.assign[0], 0);
  EXPECT_EQ(sol.assign[1], model::kUnserved);
}

TEST(WeightedSingle, ZeroValueCustomerNeverBlocks) {
  model::InstanceBuilder b;
  b.add_weighted_customer_polar(0.1, 5.0, 5.0, 0.0);  // worthless, heavy
  b.add_weighted_customer_polar(0.12, 5.0, 3.0, 7.0);
  b.add_antenna(1.0, 10.0, 5.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_value(inst, sol), 7.0);
}

TEST(WeightedSingle, ExactMatchesReference) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const model::Instance inst = random_weighted(seed, 3 + seed % 9, 1);
    const model::Solution fast = single::solve_exact(inst);
    const model::Solution ref = single::solve_reference(inst);
    EXPECT_TRUE(model::is_feasible(inst, fast)) << seed;
    EXPECT_NEAR(model::served_value(inst, fast),
                model::served_value(inst, ref), 1e-9)
        << "seed " << seed;
  }
}

TEST(WeightedSingle, OracleFloorsOnValue) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const model::Instance inst = random_weighted(seed + 50, 8, 1);
    const double exact =
        model::served_value(inst, single::solve_exact(inst));
    const double greedy =
        model::served_value(inst, single::solve_greedy(inst));
    const double fptas =
        model::served_value(inst, single::solve_fptas(inst, 0.1));
    EXPECT_GE(greedy + 1e-9, 0.5 * exact) << seed;
    EXPECT_GE(fptas + 1e-9, 0.9 * exact) << seed;
  }
}

TEST(WeightedSectors, SolversFeasibleAndOrdered) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_weighted(seed + 100, 8, 2);
    const model::Solution greedy = sectors::solve_greedy(inst);
    const model::Solution ls = sectors::solve_local_search(inst);
    const model::Solution exact = sectors::solve_exact(inst);
    EXPECT_TRUE(model::is_feasible(inst, greedy)) << seed;
    EXPECT_TRUE(model::is_feasible(inst, ls)) << seed;
    EXPECT_TRUE(model::is_feasible(inst, exact)) << seed;
    EXPECT_GE(model::served_value(inst, ls) + 1e-9,
              model::served_value(inst, greedy))
        << seed;
    EXPECT_GE(model::served_value(inst, exact) + 1e-9,
              model::served_value(inst, ls))
        << seed;
  }
}

TEST(WeightedSectors, ExactMaximizesValueNotDemand) {
  // Two clusters far apart; one antenna. Cluster A: demand 10, value 1.
  // Cluster B: demand 2, value 50. Demand-maximizing would pick A; the
  // objective is value, so the optimum picks B.
  model::InstanceBuilder b;
  b.add_weighted_customer_polar(0.0, 5.0, 10.0, 1.0);
  b.add_weighted_customer_polar(geom::kPi, 5.0, 2.0, 50.0);
  b.add_antenna(0.5, 10.0, 10.0);
  const model::Instance inst = b.build();
  const model::Solution sol = sectors::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_value(inst, sol), 50.0);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 2.0);
}

TEST(WeightedAnnealing, FeasibleAndNotWorseThanGreedy) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const model::Instance inst = random_weighted(seed + 200, 12, 3);
    sectors::AnnealConfig config;
    config.seed = seed;
    config.iterations = 200;
    const model::Solution sol = sectors::solve_annealing(inst, config);
    EXPECT_TRUE(model::is_feasible(inst, sol)) << seed;
    EXPECT_GE(model::served_value(inst, sol) + 1e-9,
              model::served_value(inst, sectors::solve_greedy(inst)))
        << seed;
  }
}

TEST(WeightedBounds, OrientationFreeDominatesExact) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const model::Instance inst = random_weighted(seed + 300, 7, 2);
    const double exact =
        model::served_value(inst, sectors::solve_exact(inst));
    EXPECT_GE(bounds::orientation_free_bound(inst) + 1e-6, exact) << seed;
  }
}

TEST(WeightedBounds, FlowBoundsRejectWeighted) {
  const model::Instance inst = random_weighted(1, 5, 2);
  EXPECT_THROW((void)bounds::flow_window_bound(inst), std::invalid_argument);
  const std::vector<double> alphas = {0.0, 1.0};
  EXPECT_THROW(
      (void)bounds::fixed_orientation_fractional_bound(inst, alphas),
      std::invalid_argument);
}

TEST(WeightedAssign, ExactBeatsSuccessive) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_weighted(seed + 400, 10, 3);
    sim::Rng rng(seed);
    std::vector<double> alphas;
    for (int j = 0; j < 3; ++j) {
      alphas.push_back(rng.uniform(0.0, geom::kTwoPi));
    }
    const double exact = model::served_value(
        inst, assign::solve_exact(inst, alphas));
    const double succ = model::served_value(
        inst, assign::solve_successive(inst, alphas));
    EXPECT_GE(exact + 1e-9, succ) << seed;
  }
}

TEST(WeightedIO, V2RoundtripPreservesValues) {
  const model::Instance inst = random_weighted(7, 15, 2);
  const std::string text = model::to_string(inst);
  EXPECT_NE(text.find("sectorpack-instance v2"), std::string::npos);
  const model::Instance back = model::instance_from_string(text);
  ASSERT_TRUE(back.is_value_weighted());
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    EXPECT_EQ(back.value(i), inst.value(i));
    EXPECT_EQ(back.demand(i), inst.demand(i));
  }
}

TEST(WeightedIO, UnweightedStaysV1) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 3.0);
  b.add_antenna(1.0, 10.0, 5.0);
  const std::string text = model::to_string(b.build());
  EXPECT_NE(text.find("sectorpack-instance v1"), std::string::npos);
}

TEST(WeightedIO, V2RejectsMissingColumn) {
  const std::string text =
      "sectorpack-instance v2\ncustomers 1\n1.0 2.0 3.0\nantennas 1\n"
      "0.5 10.0 4.0\n";
  EXPECT_THROW((void)model::instance_from_string(text), std::runtime_error);
}

TEST(WeightedObjective, ServedValueVsServedDemand) {
  const model::Instance inst = random_weighted(9, 10, 2);
  const model::Solution sol = sectors::solve_greedy(inst);
  double demand = 0.0;
  double value = 0.0;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    if (sol.assign[i] != model::kUnserved) {
      demand += inst.demand(i);
      value += inst.value(i);
    }
  }
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), demand);
  EXPECT_DOUBLE_EQ(model::served_value(inst, sol), value);
}
