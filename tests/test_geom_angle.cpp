#include "src/geom/angle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/rng.hpp"

namespace geom = sectorpack::geom;

TEST(Angle, NormalizeBasics) {
  EXPECT_DOUBLE_EQ(geom::normalize(0.0), 0.0);
  EXPECT_DOUBLE_EQ(geom::normalize(geom::kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(geom::normalize(-geom::kTwoPi), 0.0);
  EXPECT_NEAR(geom::normalize(geom::kPi), geom::kPi, 1e-15);
  EXPECT_NEAR(geom::normalize(-geom::kPi), geom::kPi, 1e-15);
  EXPECT_NEAR(geom::normalize(3.0 * geom::kPi), geom::kPi, 1e-12);
}

TEST(Angle, NormalizeRange) {
  for (double a = -100.0; a <= 100.0; a += 0.37) {
    const double n = geom::normalize(a);
    EXPECT_GE(n, 0.0) << "input " << a;
    EXPECT_LT(n, geom::kTwoPi) << "input " << a;
  }
}

TEST(Angle, NormalizeIdempotent) {
  for (double a = -50.0; a <= 50.0; a += 0.21) {
    const double once = geom::normalize(a);
    EXPECT_DOUBLE_EQ(geom::normalize(once), once) << "input " << a;
  }
}

TEST(Angle, NormalizeNearMultipleOfTwoPi) {
  // Values epsilon-below a multiple of 2*pi must stay in [0, 2*pi).
  const double just_under = std::nextafter(geom::kTwoPi, 0.0);
  EXPECT_LT(geom::normalize(just_under), geom::kTwoPi);
  EXPECT_LT(geom::normalize(4.0 * geom::kTwoPi - 1e-18), geom::kTwoPi);
}

TEST(Angle, NormalizeBoundaryRegressions) {
  // Tiny negative inputs: fmod leaves them unchanged and the += 2*pi
  // correction rounds to exactly 2*pi, which must fold back to 0, never
  // escape the half-open range.
  EXPECT_DOUBLE_EQ(geom::normalize(-1e-18), 0.0);
  EXPECT_LT(geom::normalize(-1e-18), geom::kTwoPi);
  EXPECT_DOUBLE_EQ(geom::normalize(1e-18), 1e-18);

  // Exact multiples of 2*pi from either side map to +0.0.
  EXPECT_DOUBLE_EQ(geom::normalize(geom::kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(geom::normalize(-geom::kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(geom::normalize(2.0 * geom::kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(geom::normalize(-2.0 * geom::kTwoPi), 0.0);

  // Signed zero: fmod(-0.0, 2*pi) is -0.0, which skips the negative-branch
  // correction; the result must still be +0.0 (serializers print "-0" and
  // signbit-based callers misbehave otherwise).
  EXPECT_FALSE(std::signbit(geom::normalize(-0.0)));
  EXPECT_FALSE(std::signbit(geom::normalize(0.0)));
  EXPECT_FALSE(std::signbit(geom::normalize(-geom::kTwoPi)));
  EXPECT_FALSE(std::signbit(geom::normalize(-2.0 * geom::kTwoPi)));

  // One ulp below 4*pi: fmod is exact, so the result sits just below 2*pi
  // and must stay strictly inside the range.
  const double four_pi = 2.0 * geom::kTwoPi;
  const double n = geom::normalize(std::nextafter(four_pi, 0.0));
  EXPECT_GE(n, 0.0);
  EXPECT_LT(n, geom::kTwoPi);

  // Denormal-scale negatives behave like -1e-18.
  EXPECT_GE(geom::normalize(-1e-300), 0.0);
  EXPECT_LT(geom::normalize(-1e-300), geom::kTwoPi);
}

TEST(Angle, CcwDeltaBasics) {
  EXPECT_DOUBLE_EQ(geom::ccw_delta(1.0, 1.0), 0.0);
  EXPECT_NEAR(geom::ccw_delta(0.0, geom::kPi), geom::kPi, 1e-15);
  EXPECT_NEAR(geom::ccw_delta(geom::kPi, 0.0), geom::kPi, 1e-15);
  EXPECT_NEAR(geom::ccw_delta(6.0, 0.5), 0.5 + geom::kTwoPi - 6.0, 1e-12);
}

TEST(Angle, CcwDeltaAntisymmetry) {
  // ccw_delta(a, b) + ccw_delta(b, a) == 2*pi for distinct directions.
  sectorpack::sim::Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    const double a = rng.uniform(0.0, geom::kTwoPi);
    const double b = rng.uniform(0.0, geom::kTwoPi);
    if (geom::angles_equal(a, b)) continue;
    EXPECT_NEAR(geom::ccw_delta(a, b) + geom::ccw_delta(b, a), geom::kTwoPi,
                1e-9);
  }
}

TEST(Angle, AngularDistanceSymmetricAndBounded) {
  sectorpack::sim::Rng rng(11);
  for (int t = 0; t < 200; ++t) {
    const double a = rng.uniform(-10.0, 10.0);
    const double b = rng.uniform(-10.0, 10.0);
    const double d1 = geom::angular_distance(a, b);
    const double d2 = geom::angular_distance(b, a);
    EXPECT_NEAR(d1, d2, 1e-12);
    EXPECT_GE(d1, 0.0);
    EXPECT_LE(d1, geom::kPi + 1e-12);
  }
}

TEST(Angle, AngularDistanceTriangleInequality) {
  sectorpack::sim::Rng rng(13);
  for (int t = 0; t < 200; ++t) {
    const double a = rng.uniform(0.0, geom::kTwoPi);
    const double b = rng.uniform(0.0, geom::kTwoPi);
    const double c = rng.uniform(0.0, geom::kTwoPi);
    EXPECT_LE(geom::angular_distance(a, c),
              geom::angular_distance(a, b) + geom::angular_distance(b, c) +
                  1e-9);
  }
}

TEST(Angle, AnglesEqualWrap) {
  EXPECT_TRUE(geom::angles_equal(0.0, geom::kTwoPi));
  EXPECT_TRUE(geom::angles_equal(geom::kTwoPi - 1e-12, 0.0));
  EXPECT_TRUE(geom::angles_equal(1e-12, geom::kTwoPi - 1e-12));
  EXPECT_FALSE(geom::angles_equal(0.0, 0.1));
  EXPECT_FALSE(geom::angles_equal(0.0, geom::kPi));
}

TEST(Angle, DegreesRoundtrip) {
  for (double deg = -720.0; deg <= 720.0; deg += 13.5) {
    EXPECT_NEAR(geom::rad_to_deg(geom::deg_to_rad(deg)), deg, 1e-10);
  }
  EXPECT_NEAR(geom::deg_to_rad(180.0), geom::kPi, 1e-15);
  EXPECT_NEAR(geom::deg_to_rad(90.0), geom::kPi / 2.0, 1e-15);
}

// Property sweep: rotation by a full turn is the identity on normalized
// angles, for a range of starting points and turn counts.
class AngleTurnProperty : public ::testing::TestWithParam<int> {};

TEST_P(AngleTurnProperty, FullTurnsAreIdentity) {
  const int turns = GetParam();
  sectorpack::sim::Rng rng(static_cast<std::uint64_t>(turns) * 97 + 1);
  for (int t = 0; t < 100; ++t) {
    const double a = rng.uniform(0.0, geom::kTwoPi);
    const double rotated = geom::normalize(a + turns * geom::kTwoPi);
    EXPECT_TRUE(geom::angles_equal(a, rotated))
        << "a=" << a << " turns=" << turns << " rotated=" << rotated;
  }
}

INSTANTIATE_TEST_SUITE_P(Turns, AngleTurnProperty,
                         ::testing::Values(-17, -5, -1, 1, 2, 3, 8, 33));
