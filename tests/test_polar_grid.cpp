#include "src/geom/polar_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/assign/assign.hpp"
#include "src/geom/sector.hpp"
#include "src/geom/sweep.hpp"
#include "src/model/instance.hpp"
#include "src/sectors/sectors.hpp"
#include "src/sim/adversarial.hpp"
#include "src/sim/generators.hpp"
#include "src/sim/rng.hpp"
#include "src/single/single.hpp"

namespace geom = sectorpack::geom;
namespace model = sectorpack::model;
namespace sim = sectorpack::sim;

namespace {

// Restore the process-wide crossover mode on scope exit so a failing test
// cannot leak kForceIndexed into unrelated tests in the same binary.
struct ModeGuard {
  geom::SpatialIndexMode saved = geom::spatial_index_mode();
  ~ModeGuard() { geom::set_spatial_index_mode(saved); }
};

struct Points {
  std::vector<double> thetas;
  std::vector<double> radii;
};

Points clustered_points(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  Points p;
  p.thetas.reserve(n);
  p.radii.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0:  // hotspot: tight angular cluster at mid radius
        p.thetas.push_back(geom::normalize(1.0 + rng.uniform(-0.05, 0.05)));
        p.radii.push_back(rng.uniform(40.0, 45.0));
        break;
      case 1:  // ring road: any angle, nearly fixed radius
        p.thetas.push_back(rng.uniform(0.0, geom::kTwoPi));
        p.radii.push_back(80.0 + rng.uniform(-0.5, 0.5));
        break;
      case 2:  // origin pile-up, including exact zeros
        p.thetas.push_back(rng.uniform(0.0, geom::kTwoPi));
        p.radii.push_back(rng.uniform_int(0, 4) == 0 ? 0.0
                                                     : rng.uniform(0.0, 2.0));
        break;
      default:  // uniform background
        p.thetas.push_back(rng.uniform(0.0, geom::kTwoPi));
        p.radii.push_back(rng.uniform(0.0, 100.0));
        break;
    }
  }
  return p;
}

// Flat reference for collect_annulus: the exact predicate the grid promises.
std::vector<std::size_t> flat_annulus(const Points& p, double r_lo,
                                      double r_hi) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p.radii.size(); ++i) {
    if (p.radii[i] <= r_hi && p.radii[i] >= r_lo) out.push_back(i);
  }
  return out;
}

// Flat reference for collect_sector.
std::vector<std::size_t> flat_sector(const Points& p,
                                     const geom::Sector& sector) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < p.thetas.size(); ++i) {
    if (sector.contains(geom::Polar{p.thetas[i], p.radii[i]})) {
      out.push_back(i);
    }
  }
  return out;
}

model::Instance random_instance(std::uint64_t seed, std::size_t n,
                                std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  const Points p = clustered_points(seed * 7919 + 13, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(p.thetas[i], p.radii[i],
                         static_cast<double>(rng.uniform_int(1, 5)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    const double min_range = j % 2 == 0 ? 0.0 : rng.uniform(1.0, 10.0);
    b.add_antenna(rng.uniform(0.3, 2.0), rng.uniform(20.0, 90.0),
                  static_cast<double>(rng.uniform_int(20, 80)), min_range);
  }
  return b.build();
}

}  // namespace

TEST(PolarGrid, AnnulusMatchesFlatOnRandomWindows) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Points p = clustered_points(seed, 5000);
    const geom::PolarGrid grid(p.thetas, p.radii);
    sim::Rng rng(seed + 100);
    std::vector<std::size_t> got;
    for (int q = 0; q < 400; ++q) {
      double a = rng.uniform(-5.0, 105.0);
      double b = rng.uniform(-5.0, 105.0);
      if (a > b) std::swap(a, b);
      grid.collect_annulus(a, b, got);
      EXPECT_EQ(got, flat_annulus(p, a, b)) << "seed " << seed << " q " << q;
    }
    // Degenerate and empty bands.
    grid.collect_annulus(80.0, 80.0, got);
    EXPECT_EQ(got, flat_annulus(p, 80.0, 80.0));
    grid.collect_annulus(50.0, 40.0, got);  // inverted: empty
    EXPECT_TRUE(got.empty());
    grid.collect_annulus(0.0, 1e300, got);  // everything
    EXPECT_EQ(got.size(), p.radii.size());
  }
}

TEST(PolarGrid, SectorMatchesFlatOnRandomWindows) {
  for (std::uint64_t seed : {11u, 12u}) {
    const Points p = clustered_points(seed, 4000);
    const geom::PolarGrid grid(p.thetas, p.radii);
    sim::Rng rng(seed + 200);
    std::vector<std::size_t> got;
    for (int q = 0; q < 500; ++q) {
      const double start = rng.uniform(0.0, geom::kTwoPi);
      const double width = rng.uniform(0.0, geom::kTwoPi);
      const double range = rng.uniform(0.0, 110.0);
      const double min_range =
          q % 3 == 0 ? 0.0 : rng.uniform(0.0, range * 0.5);
      const geom::Sector s{{start, width}, range, min_range};
      grid.collect_sector(s, got);
      EXPECT_EQ(got, flat_sector(p, s)) << "seed " << seed << " q " << q;
    }
    // Full-circle and hairline wedges anchored on actual point angles: the
    // FP-boundary cases the conservative wedge walk has to get right.
    for (int q = 0; q < 100; ++q) {
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(0, 3999));
      const geom::Sector s{{p.thetas[i], q % 2 == 0 ? 0.0 : geom::kTwoPi},
                           p.radii[i], 0.0};
      grid.collect_sector(s, got);
      EXPECT_EQ(got, flat_sector(p, s)) << "anchored q " << q;
    }
  }
}

TEST(PolarGrid, EdgeCaseGeometries) {
  std::vector<std::size_t> got;
  {  // empty
    const geom::PolarGrid grid(std::span<const double>{},
                               std::span<const double>{});
    grid.collect_annulus(0.0, 10.0, got);
    EXPECT_TRUE(got.empty());
    grid.collect_sector({{0.0, geom::kTwoPi}, 10.0, 0.0}, got);
    EXPECT_TRUE(got.empty());
  }
  {  // single point
    const Points p{{1.0}, {5.0}};
    const geom::PolarGrid grid(p.thetas, p.radii);
    grid.collect_annulus(5.0, 5.0, got);
    EXPECT_EQ(got, (std::vector<std::size_t>{0}));
    grid.collect_sector({{1.0, 0.0}, 5.0, 0.0}, got);
    EXPECT_EQ(got, (std::vector<std::size_t>{0}));
  }
  {  // all points share one angle and one radius (every quantile edge equal)
    const Points p{std::vector<double>(300, 2.5),
                   std::vector<double>(300, 7.0)};
    const geom::PolarGrid grid(p.thetas, p.radii);
    grid.collect_annulus(7.0, 7.0, got);
    EXPECT_EQ(got.size(), 300u);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    grid.collect_sector({{2.5, 0.0}, 7.0, 0.0}, got);
    EXPECT_EQ(got.size(), 300u);
    grid.collect_sector({{2.5 + 1.0, 0.5}, 7.0, 0.0}, got);
    EXPECT_TRUE(got.empty());
  }
  {  // origin points are covered by any sector that admits r == 0
    const Points p{{0.0, 3.0, 6.0}, {0.0, 0.0, 4.0}};
    const geom::PolarGrid grid(p.thetas, p.radii);
    grid.collect_sector({{1.0, 0.1}, 5.0, 0.0}, got);
    EXPECT_EQ(got, (std::vector<std::size_t>{0, 1}));
    grid.collect_sector({{1.0, 0.1}, 5.0, 1.0}, got);  // dead zone excludes
    EXPECT_EQ(flat_sector(p, {{1.0, 0.1}, 5.0, 1.0}), got);
  }
  {  // non-finite radii never match (same as the flat predicate)
    const Points p{{0.0, 1.0, 2.0},
                   {std::nan(""), std::numeric_limits<double>::infinity(),
                    3.0}};
    const geom::PolarGrid grid(p.thetas, p.radii);
    grid.collect_annulus(0.0, 1e308, got);
    EXPECT_EQ(got, (std::vector<std::size_t>{2}));
    grid.collect_sector({{0.0, geom::kTwoPi}, 1e308, 0.0}, got);
    EXPECT_EQ(got, flat_sector(p, {{0.0, geom::kTwoPi}, 1e308, 0.0}));
  }
}

TEST(PolarGrid, InstanceInRangeCustomersIsModeInvariant) {
  ModeGuard guard;
  const model::Instance inst = random_instance(42, 3000, 6);
  std::vector<std::size_t> flat, indexed;
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceFlat);
    inst.in_range_customers(j, flat);
    geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceIndexed);
    inst.in_range_customers(j, indexed);
    EXPECT_EQ(flat, indexed) << "antenna " << j;
  }
}

// The headline bit-identity contract: full solver outputs agree between the
// forced-flat and forced-indexed paths, byte for byte, across solver
// families that adopted the grid.
TEST(PolarGrid, SolversAreBitIdenticalAcrossModes) {
  ModeGuard guard;
  for (std::uint64_t seed : {7u, 8u}) {
    const model::Instance inst = random_instance(seed, 1500, 5);

    geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceFlat);
    const model::Solution g_flat = sectorpack::sectors::solve_greedy(inst);
    const model::Solution l_flat =
        sectorpack::sectors::solve_local_search(inst);
    const model::Solution s_flat = sectorpack::single::solve_greedy(inst);
    std::vector<double> alphas(inst.num_antennas(), 0.5);
    const auto e_flat = sectorpack::assign::compute_eligibility(inst, alphas);

    geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceIndexed);
    const model::Solution g_idx = sectorpack::sectors::solve_greedy(inst);
    const model::Solution l_idx =
        sectorpack::sectors::solve_local_search(inst);
    const model::Solution s_idx = sectorpack::single::solve_greedy(inst);
    const auto e_idx = sectorpack::assign::compute_eligibility(inst, alphas);

    EXPECT_EQ(g_flat.alpha, g_idx.alpha) << "seed " << seed;
    EXPECT_EQ(g_flat.assign, g_idx.assign);
    EXPECT_EQ(l_flat.alpha, l_idx.alpha);
    EXPECT_EQ(l_flat.assign, l_idx.assign);
    EXPECT_EQ(s_flat.alpha, s_idx.alpha);
    EXPECT_EQ(s_flat.assign, s_idx.assign);
    EXPECT_EQ(e_flat.per_antenna, e_idx.per_antenna);
    EXPECT_EQ(e_flat.per_customer, e_idx.per_customer);
  }
}

TEST(PolarGrid, InstanceGridIsCachedAndCopySafe) {
  const model::Instance inst = random_instance(3, 5000, 2);
  const geom::PolarGrid* first = &inst.polar_grid();
  EXPECT_EQ(first, &inst.polar_grid());  // same object on re-request
  EXPECT_EQ(first->num_points(), inst.num_customers());

  // A copy must not share (or dangle into) the original's cached grid.
  const model::Instance copy = inst;  // NOLINT(performance-unnecessary-copy)
  const geom::PolarGrid& copy_grid = copy.polar_grid();
  EXPECT_NE(&copy_grid, first);
  std::vector<std::size_t> a, b;
  first->collect_annulus(10.0, 60.0, a);
  copy_grid.collect_annulus(10.0, 60.0, b);
  EXPECT_EQ(a, b);
}

// WindowSweep's bucket-sorted fast path must produce exactly the sweep the
// flat sort produces: same windows, same member order, same deltas. Checked
// at a size above the crossover threshold so the fast path actually runs.
TEST(PolarGrid, WindowSweepDeltaMatchesRebuildAtScale) {
  ModeGuard guard;
  const std::size_t n = 100000;
  sim::Rng rng(99);
  std::vector<double> thetas(n);
  for (double& t : thetas) {
    // Mix of uniform angles and duplicated hotspot angles to exercise ties.
    t = rng.uniform_int(0, 9) == 0 ? 1.25 : rng.uniform(0.0, geom::kTwoPi);
  }
  const double rho = 0.8;

  geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceFlat);
  const geom::WindowSweep flat(thetas, rho);
  geom::set_spatial_index_mode(geom::SpatialIndexMode::kForceIndexed);
  const geom::WindowSweep fast(thetas, rho);

  ASSERT_EQ(flat.num_windows(), fast.num_windows());
  ASSERT_EQ(flat.num_directions(), fast.num_directions());
  for (std::size_t p = 0; p < 2 * flat.num_directions(); ++p) {
    ASSERT_EQ(flat.sorted_index(p), fast.sorted_index(p)) << "pos " << p;
  }

  // Delta-walk the fast sweep, maintaining membership incrementally, and
  // compare against members(w) rebuilt from scratch on sampled windows.
  std::vector<char> in(n, 0);
  for (std::size_t i : fast.members(0)) in[i] = 1;
  for (std::size_t w = 1; w < fast.num_windows(); ++w) {
    const geom::WindowDelta d = fast.delta(w);
    for (std::size_t i : d.leave) in[i] = 0;
    for (std::size_t i : d.enter) in[i] = 1;
    if (w % 997 != 0 && w + 1 != fast.num_windows()) continue;
    std::size_t count = 0;
    for (std::size_t i : fast.members(w)) {
      EXPECT_TRUE(in[i]) << "window " << w << " member " << i;
      ++count;
    }
    const std::size_t live =
        static_cast<std::size_t>(std::count(in.begin(), in.end(), 1));
    EXPECT_EQ(count, live) << "window " << w;
    EXPECT_EQ(count, flat.members(w).size()) << "window " << w;
  }
}
