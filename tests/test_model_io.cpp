#include "src/model/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/model/validate.hpp"
#include "src/sim/generators.hpp"

namespace model = sectorpack::model;
namespace sim = sectorpack::sim;

TEST(InstanceIO, RoundtripSmall) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer(3.0, 4.0, 2.5)
                                   .add_customer(-1.0, 0.5, 7.0)
                                   .add_antenna(1.25, 10.0, 9.0)
                                   .add_antenna(0.5, 20.0, 4.0)
                                   .build();
  const model::Instance back =
      model::instance_from_string(model::to_string(inst));

  ASSERT_EQ(back.num_customers(), inst.num_customers());
  ASSERT_EQ(back.num_antennas(), inst.num_antennas());
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    EXPECT_DOUBLE_EQ(back.customer(i).pos.x, inst.customer(i).pos.x);
    EXPECT_DOUBLE_EQ(back.customer(i).pos.y, inst.customer(i).pos.y);
    EXPECT_DOUBLE_EQ(back.demand(i), inst.demand(i));
  }
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    EXPECT_DOUBLE_EQ(back.antenna(j).rho, inst.antenna(j).rho);
    EXPECT_DOUBLE_EQ(back.antenna(j).range, inst.antenna(j).range);
    EXPECT_DOUBLE_EQ(back.antenna(j).capacity, inst.antenna(j).capacity);
  }
}

TEST(InstanceIO, RoundtripGeneratedExactBits) {
  sim::Rng rng(77);
  sim::WorkloadConfig wc;
  wc.num_customers = 60;
  wc.spatial = sim::Spatial::kHotspots;
  wc.demand = sim::DemandDist::kParetoInt;
  const model::Instance inst = sim::make_instance(wc, sim::AntennaConfig{}, rng);
  const model::Instance back =
      model::instance_from_string(model::to_string(inst));
  // precision 17 means doubles roundtrip bit-exactly.
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    EXPECT_EQ(back.customer(i).pos.x, inst.customer(i).pos.x);
    EXPECT_EQ(back.customer(i).pos.y, inst.customer(i).pos.y);
    EXPECT_EQ(back.demand(i), inst.demand(i));
    EXPECT_EQ(back.theta(i), inst.theta(i));
    EXPECT_EQ(back.radius(i), inst.radius(i));
  }
}

TEST(InstanceIO, CommentsAndBlankLinesIgnored) {
  const std::string text = R"(# a comment
sectorpack-instance v1

customers 1   # trailing comment
  1.0 2.0 3.0

antennas 1
0.5 10.0 4.0
)";
  const model::Instance inst = model::instance_from_string(text);
  EXPECT_EQ(inst.num_customers(), 1u);
  EXPECT_DOUBLE_EQ(inst.demand(0), 3.0);
  EXPECT_DOUBLE_EQ(inst.antenna(0).capacity, 4.0);
}

TEST(InstanceIO, RejectsBadHeader) {
  EXPECT_THROW(model::instance_from_string("not-a-header\n"),
               std::runtime_error);
}

TEST(InstanceIO, RejectsTruncated) {
  EXPECT_THROW(
      model::instance_from_string("sectorpack-instance v1\ncustomers 2\n"
                                  "1 2 3\n"),
      std::runtime_error);
}

TEST(InstanceIO, RejectsMalformedCounts) {
  EXPECT_THROW(
      model::instance_from_string("sectorpack-instance v1\ncustomers -1\n"),
      std::runtime_error);
  EXPECT_THROW(
      model::instance_from_string("sectorpack-instance v1\nantennas 0\n"),
      std::runtime_error);
}

TEST(SolutionIO, Roundtrip) {
  model::Solution sol;
  sol.alpha = {0.25, 3.75};
  sol.assign = {0, model::kUnserved, 1, 1, model::kUnserved};
  const model::Solution back =
      model::solution_from_string(model::to_string(sol));
  EXPECT_EQ(back.alpha, sol.alpha);
  EXPECT_EQ(back.assign, sol.assign);
}

TEST(SolutionIO, RejectsBadHeader) {
  EXPECT_THROW(model::solution_from_string("sectorpack-instance v1\n"),
               std::runtime_error);
}

TEST(SolutionIO, EmptySolutionRoundtrips) {
  model::Solution sol;
  const model::Solution back =
      model::solution_from_string(model::to_string(sol));
  EXPECT_TRUE(back.alpha.empty());
  EXPECT_TRUE(back.assign.empty());
}
