// Deadline-aware solving: the cooperative cancellation token itself, and
// the graceful-degradation contract of every solver family -- an expired
// budget returns the current feasible incumbent with status
// kBudgetExhausted instead of throwing or running to completion.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <thread>

#include "src/bench_util/timer.hpp"
#include "src/bounds/dinic.hpp"
#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

// A deadline that is already over: every solver must notice it at its first
// check point and degrade immediately.
core::SolveOptions expired_options() {
  core::SolveOptions opts;
  opts.deadline = core::Deadline::after(0.0);
  return opts;
}

model::Instance medium_instance(std::uint64_t seed, bool weighted = false) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (int i = 0; i < 60; ++i) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double demand = static_cast<double>(rng.uniform_int(1, 9));
    if (weighted) {
      b.add_weighted_customer_polar(
          theta, rng.uniform(1.0, 9.0), demand,
          static_cast<double>(rng.uniform_int(1, 30)));
    } else {
      b.add_customer_polar(theta, rng.uniform(1.0, 9.0), demand);
    }
  }
  b.add_identical_antennas(4, 1.2, 10.0, 40.0);
  return b.build();
}

// Every customer in range of every antenna: legal input for the
// angles-only solvers.
model::Instance angles_only_instance(std::uint64_t seed) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (int i = 0; i < 6; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi), 5.0,
                         static_cast<double>(rng.uniform_int(1, 5)));
  }
  b.add_identical_antennas(2, 1.0, 10.0, 8.0);
  return b.build();
}

void expect_exhausted_and_feasible(const model::Instance& inst,
                                   const model::Solution& sol,
                                   const char* which) {
  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted) << which;
  EXPECT_TRUE(model::is_feasible(inst, sol)) << which;
}

}  // namespace

// ---------------------------------------------------------------------------
// The token itself.

TEST(Deadline, DefaultIsUnlimited) {
  const core::Deadline d;
  EXPECT_FALSE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_seconds(),
            std::numeric_limits<double>::infinity());
  d.cancel();  // no-op on unlimited
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(core::Deadline::never().limited());
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(core::Deadline::after(0.0).expired());
  EXPECT_TRUE(core::Deadline::after(-5.0).expired());
  EXPECT_EQ(core::Deadline::after(0.0).remaining_seconds(), 0.0);
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
  const core::Deadline d = core::Deadline::after(3600.0);
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 0.0);
  EXPECT_LE(d.remaining_seconds(), 3600.0);
}

TEST(Deadline, InfiniteBudgetNeverLapsesButCancels) {
  const core::Deadline d =
      core::Deadline::after(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(d.limited());
  EXPECT_FALSE(d.expired());
  d.cancel();
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, NanBudgetThrows) {
  EXPECT_THROW(
      (void)core::Deadline::after(std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

TEST(Deadline, CopiesShareTheCancelFlag) {
  const core::Deadline a = core::Deadline::cancellable();
  const core::Deadline b = a;  // NOLINT(performance-unnecessary-copy-*)
  EXPECT_FALSE(b.expired());
  a.cancel();
  EXPECT_TRUE(b.expired());
  EXPECT_EQ(b.remaining_seconds(), 0.0);
}

TEST(Deadline, ShortBudgetActuallyLapses) {
  const core::Deadline d = core::Deadline::after(0.01);
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(200);
  while (!d.expired() && std::chrono::steady_clock::now() < until) {
  }
  EXPECT_TRUE(d.expired());  // latches
  EXPECT_TRUE(d.expired());
}

TEST(Deadline, SolveStatusHelpers) {
  EXPECT_STREQ(model::to_string(model::SolveStatus::kComplete), "complete");
  EXPECT_STREQ(model::to_string(model::SolveStatus::kBudgetExhausted),
               "budget_exhausted");
  EXPECT_EQ(model::worst_of(model::SolveStatus::kComplete,
                            model::SolveStatus::kComplete),
            model::SolveStatus::kComplete);
  EXPECT_EQ(model::worst_of(model::SolveStatus::kComplete,
                            model::SolveStatus::kBudgetExhausted),
            model::SolveStatus::kBudgetExhausted);
  EXPECT_EQ(model::worst_of(model::SolveStatus::kBudgetExhausted,
                            model::SolveStatus::kComplete),
            model::SolveStatus::kBudgetExhausted);
  EXPECT_EQ(model::worst_of(model::SolveStatus::kBudgetExhausted,
                            model::SolveStatus::kBudgetExhausted),
            model::SolveStatus::kBudgetExhausted);
  // worst_of is a max over the explicit severity order, not a special-case
  // on kBudgetExhausted: a corrupt out-of-range byte ranks above every
  // defined status and stays sticky instead of laundering into kComplete.
  EXPECT_LT(model::severity(model::SolveStatus::kComplete),
            model::severity(model::SolveStatus::kBudgetExhausted));
  const auto corrupt = static_cast<model::SolveStatus>(200);
  EXPECT_EQ(model::severity(corrupt), 255u);
  EXPECT_EQ(model::worst_of(corrupt, model::SolveStatus::kBudgetExhausted),
            corrupt);
}

TEST(Deadline, AfterAtMostClampsUnderTheCap) {
  // No own budget + unlimited cap: cancellable but never lapses.
  const core::Deadline free =
      core::Deadline::after_at_most(-1.0, core::Deadline::never());
  EXPECT_TRUE(free.limited());
  EXPECT_FALSE(free.expired());
  EXPECT_TRUE(std::isinf(free.remaining_seconds()));
  free.cancel();
  EXPECT_TRUE(free.expired());

  // NaN means "no own budget" here (requests omit the field), unlike
  // Deadline::after which rejects NaN as a caller bug.
  const core::Deadline nan_budget = core::Deadline::after_at_most(
      std::numeric_limits<double>::quiet_NaN(), core::Deadline::never());
  EXPECT_FALSE(nan_budget.expired());

  // Zero own budget: already expired regardless of the cap.
  EXPECT_TRUE(
      core::Deadline::after_at_most(0.0, core::Deadline::never()).expired());

  // A generous own budget is clamped to the cap's remaining time.
  const core::Deadline cap = core::Deadline::after(0.0);
  EXPECT_TRUE(core::Deadline::after_at_most(3600.0, cap).expired());

  // The clamp registers the child with the cap: a later cancel() of the
  // cap reaches the child immediately (this used to only snapshot the
  // remaining time, leaving e.g. shard slices running through a drain).
  const core::Deadline wide = core::Deadline::after(3600.0);
  const core::Deadline sub = core::Deadline::after_at_most(1800.0, wide);
  EXPECT_FALSE(sub.expired());
  wide.cancel();
  EXPECT_TRUE(sub.expired());
  EXPECT_EQ(sub.remaining_seconds(), 0.0);

  // A small own budget under a large cap keeps the small budget.
  EXPECT_LE(
      core::Deadline::after_at_most(1.0, core::Deadline::after(3600.0))
          .remaining_seconds(),
      1.0);
}

TEST(Deadline, CancelPropagatesThroughAfterAtMostChains) {
  // Grandchildren too: cap -> race hub -> per-lane slice is exactly the
  // portfolio race's deadline tree.
  const core::Deadline cap = core::Deadline::after(3600.0);
  const core::Deadline hub = core::Deadline::after_at_most(-1.0, cap);
  const core::Deadline lane = core::Deadline::after_at_most(1800.0, hub);
  EXPECT_FALSE(lane.expired());
  cap.cancel();
  EXPECT_TRUE(hub.expired());
  EXPECT_TRUE(lane.expired());
}

TEST(Deadline, PropagationIsOneWayParentUnharmed) {
  const core::Deadline cap = core::Deadline::after(3600.0);
  const core::Deadline child = core::Deadline::after_at_most(-1.0, cap);
  const core::Deadline sibling = core::Deadline::after_at_most(-1.0, cap);
  child.cancel();
  EXPECT_TRUE(child.expired());
  EXPECT_FALSE(cap.expired());
  EXPECT_FALSE(sibling.expired());
}

TEST(Deadline, ChildArmedAfterCancelIsBornExpired) {
  const core::Deadline cap = core::Deadline::cancellable();
  cap.cancel();
  EXPECT_TRUE(core::Deadline::after_at_most(-1.0, cap).expired());
  EXPECT_TRUE(core::Deadline::after_at_most(3600.0, cap).expired());
}

TEST(Deadline, CrossThreadCancelReachesChildren) {
  // The drain scenario: one thread holds lane deadlines, another cancels
  // the cap. The child must observe expiry promptly (propagation happens
  // inside cancel(), so after join it is guaranteed, not just prompt).
  const core::Deadline cap = core::Deadline::after(3600.0);
  const core::Deadline lane = core::Deadline::after_at_most(600.0, cap);
  std::thread canceller([&cap] { cap.cancel(); });
  canceller.join();
  EXPECT_TRUE(lane.expired());
}

TEST(Deadline, DeadChildrenArePruned) {
  // A long-lived cap must not accumulate registry entries for completed
  // sub-solves: arm and drop many children, then one more -- cancel still
  // works and nothing leaks (ASan/LSan in check.sh watch allocation).
  const core::Deadline cap = core::Deadline::after(3600.0);
  for (int i = 0; i < 1000; ++i) {
    (void)core::Deadline::after_at_most(60.0, cap);
  }
  const core::Deadline last = core::Deadline::after_at_most(60.0, cap);
  cap.cancel();
  EXPECT_TRUE(last.expired());
}

TEST(Deadline, HugeFiniteBudgetIsClampedNotOverflowed) {
  // 1e308 seconds of budget used to overflow the nanosecond duration cast
  // and come back already-expired; it must behave as (clamped) unlimited.
  const core::Deadline huge = core::Deadline::after(1e308);
  EXPECT_TRUE(huge.limited());
  EXPECT_FALSE(huge.expired());
  EXPECT_GT(huge.remaining_seconds(), 0.0);
  EXPECT_LE(huge.remaining_seconds(), core::Deadline::kMaxBudgetSeconds);
  huge.cancel();
  EXPECT_TRUE(huge.expired());

  // Just over the clamp threshold: same story, no wraparound.
  const core::Deadline over =
      core::Deadline::after(core::Deadline::kMaxBudgetSeconds * 2.0);
  EXPECT_FALSE(over.expired());

  // Infinity still means "cancellable, no wall clock" (no expiry at all).
  const core::Deadline inf =
      core::Deadline::after(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf.expired());
  EXPECT_TRUE(std::isinf(inf.remaining_seconds()));
}

TEST(Deadline, AfterAtMostSessionRearming) {
  // The serve loop arms one after_at_most per delta under a session-lifetime
  // cap. Degenerate combinations a long-lived session actually produces:

  // Both unlimited: every per-op deadline is cancellable but never lapses,
  // and arming many of them is independent (no shared flag).
  const core::Deadline no_cap = core::Deadline::never();
  const core::Deadline op1 = core::Deadline::after_at_most(-1.0, no_cap);
  const core::Deadline op2 = core::Deadline::after_at_most(-1.0, no_cap);
  op1.cancel();
  EXPECT_TRUE(op1.expired());
  EXPECT_FALSE(op2.expired());

  // Zero-second op budget under a healthy cap: that op is born expired,
  // the next op armed under the same cap is not (the cap is unharmed).
  const core::Deadline cap = core::Deadline::after(3600.0);
  EXPECT_TRUE(core::Deadline::after_at_most(0.0, cap).expired());
  EXPECT_FALSE(core::Deadline::after_at_most(-1.0, cap).expired());

  // Re-arming under a shrinking cap: each op's budget is clamped to the
  // cap's *remaining* time at arm time, so successive ops never outlive it.
  const core::Deadline short_cap = core::Deadline::after(0.05);
  const core::Deadline early = core::Deadline::after_at_most(3600.0, short_cap);
  EXPECT_LE(early.remaining_seconds(), 0.05 + 1e-3);
  while (!short_cap.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Cap lapsed: a newly armed op with any own budget is already expired.
  EXPECT_TRUE(core::Deadline::after_at_most(3600.0, short_cap).expired());
  EXPECT_TRUE(core::Deadline::after_at_most(-1.0, short_cap).expired());
  // And the earlier op (snapshotted from the same cap) has lapsed with it.
  EXPECT_TRUE(early.expired());

  // A cancelled cap rejects new arms immediately even with wall time left.
  const core::Deadline cancelled_cap = core::Deadline::after(3600.0);
  cancelled_cap.cancel();
  EXPECT_TRUE(
      core::Deadline::after_at_most(-1.0, cancelled_cap).expired());
}

// ---------------------------------------------------------------------------
// Graceful degradation: a pre-expired deadline stops every solver at its
// first check point, and the result is always feasible.

TEST(DeadlineSolvers, SectorsGreedy) {
  const model::Instance inst = medium_instance(1);
  sectors::GreedyConfig config;
  config.solve = expired_options();
  expect_exhausted_and_feasible(inst, sectors::solve_greedy(inst, config),
                                "sectors::solve_greedy");
}

TEST(DeadlineSolvers, SectorsLocalSearch) {
  const model::Instance inst = medium_instance(2);
  sectors::LocalSearchConfig config;
  config.solve = expired_options();
  expect_exhausted_and_feasible(inst,
                                sectors::solve_local_search(inst, config),
                                "sectors::solve_local_search");
}

TEST(DeadlineSolvers, SectorsUniformOrientations) {
  const model::Instance inst = medium_instance(3);
  expect_exhausted_and_feasible(
      inst,
      sectors::solve_uniform_orientations(inst, knapsack::Oracle::exact(),
                                          expired_options()),
      "sectors::solve_uniform_orientations");
}

TEST(DeadlineSolvers, SectorsAnnealing) {
  const model::Instance inst = medium_instance(4);
  sectors::AnnealConfig config;
  config.iterations = 500;
  config.solve = expired_options();
  expect_exhausted_and_feasible(inst, sectors::solve_annealing(inst, config),
                                "sectors::solve_annealing");
}

TEST(DeadlineSolvers, SectorsExact) {
  const model::Instance inst = angles_only_instance(5);
  expect_exhausted_and_feasible(
      inst,
      sectors::solve_exact(inst, /*tuple_limit=*/1u << 20,
                           /*node_limit=*/1u << 26, expired_options()),
      "sectors::solve_exact");
}

TEST(DeadlineSolvers, AnglesCapacitated) {
  const model::Instance inst = angles_only_instance(6);
  expect_exhausted_and_feasible(
      inst,
      angles::solve_capacitated(inst, knapsack::Oracle::exact(),
                                expired_options()),
      "angles::solve_capacitated");
  expect_exhausted_and_feasible(
      inst,
      angles::solve_capacitated_exact(inst, /*node_limit=*/1u << 26,
                                      expired_options()),
      "angles::solve_capacitated_exact");
}

TEST(DeadlineSolvers, AssignFamily) {
  const model::Instance inst = medium_instance(7);
  const std::vector<double> alphas(inst.num_antennas(), 0.5);
  expect_exhausted_and_feasible(
      inst, assign::solve_greedy(inst, alphas, expired_options()),
      "assign::solve_greedy");
  expect_exhausted_and_feasible(
      inst,
      assign::solve_successive(inst, alphas, knapsack::Oracle::exact(),
                               expired_options()),
      "assign::solve_successive");
  expect_exhausted_and_feasible(
      inst,
      assign::solve_exact(inst, alphas, /*node_limit=*/1u << 26,
                          expired_options()),
      "assign::solve_exact");
  expect_exhausted_and_feasible(
      inst, assign::solve_lp_rounding(inst, alphas, expired_options()),
      "assign::solve_lp_rounding");
}

TEST(DeadlineSolvers, SingleWeightedSweep) {
  // Weighted values force the general window sweep (the uniform-demand fast
  // path always completes and is exempt from the deadline).
  const model::Instance inst = medium_instance(8, /*weighted=*/true);
  single::Config config;
  config.solve = expired_options();
  expect_exhausted_and_feasible(inst, single::solve(inst, config),
                                "single::solve");
}

TEST(DeadlineSolvers, KnapsackBranchBoundKeepsIncumbent) {
  std::vector<knapsack::Item> items(20);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {1.0 + static_cast<double>(i % 7),
                1.0 + static_cast<double>((3 * i) % 11)};
  }
  const knapsack::Result r =
      knapsack::solve_bb(items, 30.0, /*node_limit=*/1u << 26,
                         core::Deadline::after(0.0));
  // Stopped at node 0: empty but valid incumbent, and no throw.
  EXPECT_LE(r.weight, 30.0);
  // Without a deadline the same call is optimal and must agree with the
  // reference.
  EXPECT_NEAR(knapsack::solve_bb(items, 30.0).value,
              knapsack::solve_brute_force(items, 30.0).value, 1e-9);
}

TEST(DeadlineSolvers, DinicReportsTruncation) {
  bounds::Dinic flow(4);
  flow.add_edge(0, 1, 5.0);
  flow.add_edge(1, 2, 5.0);
  flow.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(flow.max_flow(0, 3, core::Deadline::after(0.0)), 0.0);
  EXPECT_TRUE(flow.truncated());
  // A fresh run without a deadline clears the flag and finds the max flow.
  bounds::Dinic flow2(4);
  flow2.add_edge(0, 1, 5.0);
  flow2.add_edge(1, 2, 5.0);
  flow2.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(flow2.max_flow(0, 3), 5.0);
  EXPECT_FALSE(flow2.truncated());
}

TEST(DeadlineSolvers, FlowWindowBoundDegradesToTrivial) {
  const model::Instance inst = medium_instance(9);
  const double degraded = bounds::flow_window_bound(inst, expired_options());
  EXPECT_DOUBLE_EQ(degraded, bounds::trivial_bound(inst));
  // Still a valid upper bound on anything a solver serves.
  EXPECT_GE(degraded + 1e-9,
            model::served_value(inst, sectors::solve_local_search(inst)));
  // And never looser than what the full computation certifies... loose is
  // fine, invalid is not.
  EXPECT_GE(degraded + 1e-9, bounds::flow_window_bound(inst));
}

// ---------------------------------------------------------------------------
// Timing and invariance properties.

TEST(DeadlineSolvers, TinyBudgetReturnsPromptly) {
  // 2000 customers is seconds of annealing work; a 50 ms budget must come
  // back in well under a second (budget + one check interval, with a huge
  // safety margin for slow CI).
  const model::Instance inst =
      sim::uniform_disk_instance(2000, 4, 1.0, 300.0, 11);
  sectors::AnnealConfig config;
  config.iterations = 200000;
  config.solve.deadline = core::Deadline::after(0.05);
  const bench_util::Timer timer;
  const model::Solution sol = sectors::solve_annealing(inst, config);
  EXPECT_LT(timer.elapsed_ms(), 10000.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted);
}

TEST(DeadlineSolvers, GenerousBudgetCompletes) {
  const model::Instance inst = medium_instance(12);
  sectors::LocalSearchConfig config;
  config.solve.deadline = core::Deadline::after(3600.0);
  const model::Solution sol = sectors::solve_local_search(inst, config);
  EXPECT_EQ(sol.status, model::SolveStatus::kComplete);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(DeadlineSolvers, UnlimitedDeadlineMatchesDefaultBitForBit) {
  const model::Instance inst = medium_instance(13, /*weighted=*/true);
  sectors::LocalSearchConfig with_options;  // default-constructed options
  const model::Solution a = sectors::solve_local_search(inst);
  const model::Solution b = sectors::solve_local_search(inst, with_options);
  EXPECT_EQ(a.assign, b.assign);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(model::to_string(a), model::to_string(b));
}

TEST(DeadlineSolvers, ExpiryBumpsObsCounterAndStatsSnapshot) {
  obs::set_enabled(true);
  obs::reset();
  const model::Instance inst = medium_instance(14);
  sectors::GreedyConfig config;
  config.solve = expired_options();
  (void)sectors::solve_greedy(inst, config);
  const obs::Snapshot snap = obs::snapshot();
  obs::set_enabled(false);
  EXPECT_GE(snap.counter("deadline.expired.sectors_greedy"), 1u);
  EXPECT_NE(snap.to_json().find("deadline.expired.sectors_greedy"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Status serialization.

TEST(DeadlineIo, StatusRoundtripsThroughSolutionFiles) {
  const model::Instance inst = medium_instance(15);
  sectors::GreedyConfig config;
  config.solve = expired_options();
  const model::Solution truncated = sectors::solve_greedy(inst, config);
  ASSERT_EQ(truncated.status, model::SolveStatus::kBudgetExhausted);
  const std::string text = model::to_string(truncated);
  EXPECT_NE(text.find("status budget_exhausted"), std::string::npos);
  const model::Solution back = model::solution_from_string(text);
  EXPECT_EQ(back.status, model::SolveStatus::kBudgetExhausted);
  EXPECT_EQ(back.assign, truncated.assign);
}

TEST(DeadlineIo, CompleteSolutionsKeepTheHistoricalFormat) {
  const model::Instance inst = medium_instance(16);
  const model::Solution sol = sectors::solve_greedy(inst);
  ASSERT_EQ(sol.status, model::SolveStatus::kComplete);
  const std::string text = model::to_string(sol);
  EXPECT_EQ(text.find("status"), std::string::npos);
  EXPECT_EQ(model::solution_from_string(text).status,
            model::SolveStatus::kComplete);
}

TEST(DeadlineIo, ExplicitCompleteStatusLineIsAccepted) {
  const model::Solution sol = model::solution_from_string(
      "sectorpack-solution v1\nstatus complete\nalphas 1\n0\nassign 1\n-1\n");
  EXPECT_EQ(sol.status, model::SolveStatus::kComplete);
}

TEST(DeadlineIo, UnknownStatusRejected) {
  EXPECT_THROW((void)model::solution_from_string(
                   "sectorpack-solution v1\nstatus halfway\nalphas 1\n0\n"
                   "assign 1\n-1\n"),
               std::runtime_error);
}
