#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/bench_util/stats.hpp"
#include "src/bench_util/table.hpp"
#include "src/bench_util/timer.hpp"

namespace bu = sectorpack::bench_util;

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const bu::Summary s = bu::summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  // Sample stddev of {1,2,3,4} = sqrt(5/3).
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingleton) {
  const bu::Summary empty = bu::summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);

  const std::vector<double> one = {7.5};
  const bu::Summary s = bu::summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
}

TEST(Stats, SummarizeNegativeValues) {
  const std::vector<double> v = {-3.0, 0.0, 3.0};
  const bu::Summary s = bu::summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.125), 15.0);  // interpolated
}

TEST(Stats, PercentileUnsortedInputAndClamping) {
  const std::vector<double> v = {50.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, -1.0), 10.0);  // clamped to 0
  EXPECT_DOUBLE_EQ(bu::percentile(v, 2.0), 50.0);   // clamped to 1
  EXPECT_DOUBLE_EQ(bu::percentile({}, 0.5), 0.0);
}

TEST(Cell, Formatting) {
  EXPECT_EQ(bu::cell(1.23456, 2), "1.23");
  EXPECT_EQ(bu::cell(1.0, 0), "1");
  EXPECT_EQ(bu::cell(std::size_t{42}), "42");
  EXPECT_EQ(bu::cell(-7), "-7");
  EXPECT_EQ(bu::cell("abc"), "abc");
  EXPECT_EQ(bu::cell(std::string("xyz")), "xyz");
}

TEST(Table, RendersAlignedColumns) {
  bu::Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  // Header present, separator present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Every line has the same length (fixed-width rendering).
  std::istringstream lines(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(lines, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << "line: '" << line << "'";
  }
}

TEST(Table, ShortRowsPadded) {
  bu::Table table({"a", "b", "c"});
  table.add_row({"only"});  // missing cells become empty
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, ExperimentHeaderFormat) {
  std::ostringstream os;
  bu::print_experiment_header(os, "T9", "demo");
  EXPECT_EQ(os.str(), "\n=== T9: demo ===\n");
}

TEST(Timer, MeasuresElapsedMonotonically) {
  bu::Timer timer;
  const double t1 = timer.elapsed_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double t2 = timer.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), t2 + 1.0);
  (void)sink;
}

TEST(Timer, UnitsConsistent) {
  bu::Timer timer;
  const double s = timer.elapsed_seconds();
  const double ms = timer.elapsed_ms();
  const double us = timer.elapsed_us();
  // Allow for time passing between calls; the units must be ordered.
  EXPECT_LE(s, ms);
  EXPECT_LE(ms, us);
}
