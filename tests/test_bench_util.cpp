#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/bench_util/stats.hpp"
#include "src/bench_util/table.hpp"
#include "src/bench_util/timer.hpp"

namespace bu = sectorpack::bench_util;

TEST(Stats, SummarizeBasics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const bu::Summary s = bu::summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  // Sample stddev of {1,2,3,4} = sqrt(5/3).
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingleton) {
  const bu::Summary empty = bu::summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);

  const std::vector<double> one = {7.5};
  const bu::Summary s = bu::summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
}

TEST(Stats, SummarizeNegativeValues) {
  const std::vector<double> v = {-3.0, 0.0, 3.0};
  const bu::Summary s = bu::summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.5), 30.0);   // rank ceil(2.5) = 3
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.25), 20.0);  // rank ceil(1.25) = 2
  // Nearest-rank, not interpolation: rank ceil(0.625) = 1 selects the
  // smallest sample (the old linear interpolation fabricated 15.0 here).
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.125), 10.0);
  // Even-count median is the lower middle sample (rank ceil(2.0) = 2).
  const std::vector<double> even = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(bu::percentile(even, 0.5), 2.0);
}

TEST(Stats, PercentileUnsortedInputAndClamping) {
  const std::vector<double> v = {50.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(bu::percentile(v, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(bu::percentile(v, -1.0), 10.0);  // clamped to 0
  EXPECT_DOUBLE_EQ(bu::percentile(v, 2.0), 50.0);   // clamped to 1
  EXPECT_DOUBLE_EQ(bu::percentile({}, 0.5), 0.0);
}

// Small rep counts, the regime the bench suite actually runs in (reps is
// usually 5..20): the p95 rank must never index past the last sample, and
// its value is pinned by nearest-rank semantics, not by truncation luck.
TEST(Stats, PercentileSmallRepCounts) {
  const auto ramp = [](std::size_t n) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i + 1);
    return v;
  };

  // reps = 1: every percentile is the single sample.
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(1), 0.95), 1.0);
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(1), 0.5), 1.0);
  // reps = 2: p95 rank ceil(1.9) = 2 -> max; median rank ceil(1.0) = 1.
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(2), 0.95), 2.0);
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(2), 0.5), 1.0);
  // reps = 3: p95 rank ceil(2.85) = 3 -> max.
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(3), 0.95), 3.0);
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(3), 0.5), 2.0);
  // reps = 19: p95 rank ceil(18.05) = 19 -> still the max, by definition.
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(19), 0.95), 19.0);
  // reps = 20 is the first count where p95 is NOT the max: rank 19. The
  // binary value of 0.95 makes 0.95 * 20 = 19.000000000000004, so a naive
  // ceil would still (wrongly) select rank 20; the guard pins rank 19.
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(20), 0.95), 19.0);
  EXPECT_DOUBLE_EQ(bu::percentile(ramp(20), 1.0), 20.0);
}

TEST(Cell, Formatting) {
  EXPECT_EQ(bu::cell(1.23456, 2), "1.23");
  EXPECT_EQ(bu::cell(1.0, 0), "1");
  EXPECT_EQ(bu::cell(std::size_t{42}), "42");
  EXPECT_EQ(bu::cell(-7), "-7");
  EXPECT_EQ(bu::cell("abc"), "abc");
  EXPECT_EQ(bu::cell(std::string("xyz")), "xyz");
}

TEST(Table, RendersAlignedColumns) {
  bu::Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "12345"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  // Header present, separator present, both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Every line has the same length (fixed-width rendering).
  std::istringstream lines(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(lines, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << "line: '" << line << "'";
  }
}

TEST(Table, ShortRowsPadded) {
  bu::Table table({"a", "b", "c"});
  table.add_row({"only"});  // missing cells become empty
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, ExperimentHeaderFormat) {
  std::ostringstream os;
  bu::print_experiment_header(os, "T9", "demo");
  EXPECT_EQ(os.str(), "\n=== T9: demo ===\n");
}

TEST(Timer, MeasuresElapsedMonotonically) {
  bu::Timer timer;
  const double t1 = timer.elapsed_seconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double t2 = timer.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), t2 + 1.0);
  (void)sink;
}

TEST(Timer, UnitsConsistent) {
  bu::Timer timer;
  const double s = timer.elapsed_seconds();
  const double ms = timer.elapsed_ms();
  const double us = timer.elapsed_us();
  // Allow for time passing between calls; the units must be ordered.
  EXPECT_LE(s, ms);
  EXPECT_LE(ms, us);
}
