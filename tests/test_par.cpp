#include "src/par/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

namespace par = sectorpack::par;

TEST(ThreadPool, RunsSubmittedTasks) {
  par::ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int t = 0; t < 50; ++t) {
    pool.submit([&] {
      counter.fetch_add(1, std::memory_order_relaxed);
      // Notify under the lock: the waiting test frame owns cv and may
      // destroy it as soon as the predicate holds.
      std::lock_guard lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return done == 50; });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SizeMatchesRequest) {
  par::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> counter{0};
  {
    par::ThreadPool pool(1);
    for (int t = 0; t < 20; ++t) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 20);
}

TEST(ChunkPlan, SingleChunkWhenSmallOrSerial) {
  const par::ChunkPlan serial = par::plan_chunks(1000, 1, /*workers=*/1);
  EXPECT_EQ(serial.num_chunks, 1u);
  const par::ChunkPlan tiny = par::plan_chunks(5, 100, 8);
  EXPECT_EQ(tiny.num_chunks, 1u);
  const par::ChunkPlan empty = par::plan_chunks(0, 1, 8);
  EXPECT_EQ(empty.num_chunks, 0u);
}

TEST(ChunkPlan, CoversRangeExactly) {
  for (std::size_t n : {1u, 7u, 100u, 1001u, 4096u}) {
    for (unsigned workers : {1u, 2u, 4u, 16u}) {
      const par::ChunkPlan plan = par::plan_chunks(n, 4, workers);
      if (plan.num_chunks == 0) {
        EXPECT_EQ(n, 0u);
        continue;
      }
      EXPECT_EQ((n + plan.chunk_size - 1) / plan.chunk_size,
                plan.num_chunks);
      EXPECT_GE(plan.chunk_size * plan.num_chunks, n);
      EXPECT_LT(plan.chunk_size * (plan.num_chunks - 1), n);
    }
  }
}

TEST(ParallelFor, TouchesEveryIndexOnce) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  par::parallel_for(
      1000, 1,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) touched[i].fetch_add(1);
      },
      &pool);
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  par::ThreadPool pool(2);
  bool called = false;
  par::parallel_for(
      0, 1, [&](std::size_t, std::size_t) { called = true; }, &pool);
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesException) {
  par::ThreadPool pool(2);
  EXPECT_THROW(
      par::parallel_for(
          100, 1,
          [&](std::size_t b, std::size_t) {
            if (b == 0) throw std::runtime_error("boom");
          },
          &pool),
      std::runtime_error);
}

TEST(ParallelReduce, SumMatchesSerial) {
  par::ThreadPool pool(4);
  std::vector<double> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.001 * static_cast<double>(i * 7 % 1000);
  }
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);
  const double parallel = par::parallel_reduce<double>(
      data.size(), 16, 0.0,
      [&](std::size_t b, std::size_t e) {
        double s = 0.0;
        for (std::size_t i = b; i < e; ++i) s += data[i];
        return s;
      },
      [](double a, double b) { return a + b; }, &pool);
  // Deterministic chunk-ordered combination: repeated runs must agree
  // bit-for-bit with each other (not necessarily with the serial order).
  const double parallel2 = par::parallel_reduce<double>(
      data.size(), 16, 0.0,
      [&](std::size_t b, std::size_t e) {
        double s = 0.0;
        for (std::size_t i = b; i < e; ++i) s += data[i];
        return s;
      },
      [](double a, double b) { return a + b; }, &pool);
  EXPECT_EQ(parallel, parallel2);
  EXPECT_NEAR(parallel, serial, 1e-9);
}

TEST(ParallelReduce, MaxReduction) {
  par::ThreadPool pool(3);
  const std::size_t n = 10000;
  const double got = par::parallel_reduce<double>(
      n, 8, -1.0,
      [&](std::size_t b, std::size_t e) {
        double m = -1.0;
        for (std::size_t i = b; i < e; ++i) {
          const double v =
              static_cast<double>((i * 2654435761u) % 100000);
          m = std::max(m, v);
        }
        return m;
      },
      [](double a, double b) { return std::max(a, b); }, &pool);
  double want = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    want = std::max(want, static_cast<double>((i * 2654435761u) % 100000));
  }
  EXPECT_EQ(got, want);
}

TEST(ParallelReduce, EmptyReturnsInit) {
  par::ThreadPool pool(2);
  const double got = par::parallel_reduce<double>(
      0, 1, 42.0, [](std::size_t, std::size_t) { return 0.0; },
      [](double a, double b) { return a + b; }, &pool);
  EXPECT_DOUBLE_EQ(got, 42.0);
}

TEST(ThreadPool, StealsFromLoadedQueues) {
  // Round-robin submission spreads 4*odd tasks over 4 queues; workers that
  // finish their share early must steal the stragglers or the barrier never
  // opens. A long sleep in one task per round forces the imbalance.
  par::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int total = 64;
  for (int t = 0; t < total; ++t) {
    pool.submit([&, t] {
      if (t % 16 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      counter.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return done == total; });
  EXPECT_EQ(counter.load(), total);
}

TEST(ThreadPool, ManySubmittersOneConsumerSet) {
  // External submissions from several threads at once exercise the
  // round-robin cursor and the sleep/wake protocol under contention.
  par::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int per_thread = 200;
  const int submitters = 4;
  std::vector<std::thread> feeders;
  for (int s = 0; s < submitters; ++s) {
    feeders.emplace_back([&] {
      for (int t = 0; t < per_thread; ++t) {
        pool.submit([&] {
          counter.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard lock(mu);
          ++done;
          cv.notify_one();
        });
      }
    });
  }
  for (std::thread& f : feeders) f.join();
  std::unique_lock lock(mu);
  cv.wait(lock, [&] { return done == submitters * per_thread; });
  EXPECT_EQ(counter.load(), submitters * per_thread);
}

TEST(GlobalPool, Available) {
  par::ThreadPool& pool = par::ThreadPool::global();
  EXPECT_GE(pool.size(), 1u);
#ifdef NDEBUG
  // Configuring after first use is rejected (and asserts in debug builds,
  // so only exercise the release-mode return path here).
  EXPECT_FALSE(par::ThreadPool::set_global_threads(7));
#endif
}
