// The committed sample instances in data/ must stay loadable and solvable:
// they are the fixtures the README and CLI docs point users at.

#include <fstream>
#include <gtest/gtest.h>

#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

model::Instance load(const std::string& name) {
  const std::string path = std::string(SECTORPACK_DATA_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing data file " << path;
  return model::read_instance(in);
}

}  // namespace

TEST(DataFiles, SmallCityLoadsAndSolves) {
  const model::Instance inst = load("small_city.inst");
  EXPECT_EQ(inst.num_customers(), 40u);
  EXPECT_EQ(inst.num_antennas(), 3u);
  EXPECT_FALSE(inst.is_value_weighted());
  const model::Solution sol = sectors::solve_local_search(inst);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  EXPECT_GT(model::served_demand(inst, sol), 0.0);
}

TEST(DataFiles, RingRoadLoadsAndSolves) {
  const model::Instance inst = load("ring_road.inst");
  EXPECT_EQ(inst.num_customers(), 25u);
  const model::Solution sol = sectors::solve_greedy(inst);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  EXPECT_LE(model::served_demand(inst, sol),
            bounds::flow_window_bound(inst) + 1e-6);
}

TEST(DataFiles, MixedFleetExercisesExtendedFormat) {
  const model::Instance inst = load("mixed_fleet.inst");
  EXPECT_EQ(inst.num_customers(), 8u);
  EXPECT_EQ(inst.num_antennas(), 3u);
  EXPECT_TRUE(inst.is_value_weighted());
  EXPECT_TRUE(inst.has_annular_antennas());
  EXPECT_DOUBLE_EQ(inst.antenna(1).min_range, 8.0);

  const model::Solution sol = sectors::solve_local_search(inst);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  const double exact = model::served_value(inst, sectors::solve_exact(inst));
  EXPECT_LE(model::served_value(inst, sol), exact + 1e-9);
  EXPECT_GE(bounds::orientation_free_bound(inst) + 1e-6, exact);
}

TEST(DataFiles, RoundtripStability) {
  for (const char* name :
       {"small_city.inst", "ring_road.inst", "mixed_fleet.inst"}) {
    const model::Instance inst = load(name);
    const model::Instance back =
        model::instance_from_string(model::to_string(inst));
    ASSERT_EQ(back.num_customers(), inst.num_customers()) << name;
    for (std::size_t i = 0; i < inst.num_customers(); ++i) {
      EXPECT_EQ(back.theta(i), inst.theta(i)) << name;
      EXPECT_EQ(back.value(i), inst.value(i)) << name;
    }
  }
}
