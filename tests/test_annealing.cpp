#include "src/sectors/annealing.hpp"

#include <gtest/gtest.h>

#include "src/model/validate.hpp"
#include "src/sectors/sectors.hpp"
#include "src/sim/adversarial.hpp"
#include "src/sim/generators.hpp"

namespace sectors = sectorpack::sectors;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;

namespace {

model::Instance random_inst(std::uint64_t seed, std::size_t n,
                            std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(1.0, 12.0),
                         static_cast<double>(rng.uniform_int(1, 7)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    b.add_antenna(rng.uniform(0.8, 2.2), rng.uniform(6.0, 14.0),
                  static_cast<double>(rng.uniform_int(6, 16)));
  }
  return b.build();
}

}  // namespace

TEST(Annealing, AlwaysFeasible) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_inst(seed, 18, 3);
    sectors::AnnealConfig config;
    config.seed = seed;
    config.iterations = 300;
    const model::Solution sol = sectors::solve_annealing(inst, config);
    const auto report = model::validate(inst, sol);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.errors.empty() ? "" : report.errors[0]);
  }
}

TEST(Annealing, NeverWorseThanGreedy) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_inst(seed + 20, 16, 3);
    const double greedy =
        model::served_demand(inst, sectors::solve_greedy(inst));
    sectors::AnnealConfig config;
    config.seed = seed;
    config.iterations = 400;
    const double annealed =
        model::served_demand(inst, sectors::solve_annealing(inst, config));
    EXPECT_GE(annealed + 1e-9, greedy) << "seed " << seed;
  }
}

TEST(Annealing, AtMostExactOnSmall) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const model::Instance inst = random_inst(seed + 40, 7, 2);
    const double exact =
        model::served_demand(inst, sectors::solve_exact(inst));
    sectors::AnnealConfig config;
    config.seed = seed;
    config.iterations = 500;
    const double annealed =
        model::served_demand(inst, sectors::solve_annealing(inst, config));
    EXPECT_LE(annealed, exact + 1e-9) << "seed " << seed;
  }
}

TEST(Annealing, EscapesRangeShadowTrap) {
  // The random restart structure lets annealing fix greedy's stranding:
  // any proposal that re-points the long-range antenna while the
  // reassignment gives v to the short-range one serves 9.9.
  const model::Instance inst = sim::range_shadow_trap();
  sectors::AnnealConfig config;
  config.seed = 3;
  config.iterations = 500;
  const double annealed =
      model::served_demand(inst, sectors::solve_annealing(inst, config));
  const double greedy =
      model::served_demand(inst, sectors::solve_greedy(inst));
  EXPECT_GE(annealed, greedy);  // never worse by construction
}

TEST(Annealing, DeterministicForSeed) {
  const model::Instance inst = random_inst(99, 15, 3);
  sectors::AnnealConfig config;
  config.seed = 7;
  config.iterations = 250;
  const model::Solution a = sectors::solve_annealing(inst, config);
  const model::Solution b = sectors::solve_annealing(inst, config);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.assign, b.assign);
}

TEST(Annealing, DegenerateInstances) {
  // No customers.
  const model::Instance empty{{}, {model::AntennaSpec{1.0, 10.0, 5.0}}};
  EXPECT_DOUBLE_EQ(
      model::served_demand(empty, sectors::solve_annealing(empty)), 0.0);
  // No antennas.
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 2.0);
  const model::Instance no_ant = b.build();
  EXPECT_DOUBLE_EQ(
      model::served_demand(no_ant, sectors::solve_annealing(no_ant)), 0.0);
}

TEST(Annealing, ZeroIterationsIsGreedy) {
  const model::Instance inst = random_inst(5, 12, 2);
  sectors::AnnealConfig config;
  config.iterations = 0;
  config.final_exact_assign = false;
  const double annealed =
      model::served_demand(inst, sectors::solve_annealing(inst, config));
  const double greedy =
      model::served_demand(inst, sectors::solve_greedy(inst));
  EXPECT_DOUBLE_EQ(annealed, greedy);
}
