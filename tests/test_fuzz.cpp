// Differential fuzzing: independent implementations must agree (exact vs
// exact) or be consistently ordered (heuristic <= exact <= bound) across
// hundreds of randomized instances. These tests are the broad safety net
// under the targeted unit suites; each TEST_P instantiation sweeps a
// different instance shape.

#include <gtest/gtest.h>

#include "src/sectorpack.hpp"

using namespace sectorpack;
namespace ks = knapsack;

namespace {

struct FuzzShape {
  std::size_t n;
  std::size_t k;
  double rho;
  double capacity_fraction;
  bool integral_demands;
  bool weighted;
  bool annular;
};

model::Instance make_fuzz_instance(const FuzzShape& shape,
                                   std::uint64_t seed) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  double total_demand = 0.0;
  for (std::size_t i = 0; i < shape.n; ++i) {
    const double theta = rng.uniform(0.0, geom::kTwoPi);
    const double r = rng.uniform(0.5, 10.0);
    const double demand =
        shape.integral_demands
            ? static_cast<double>(rng.uniform_int(1, 9))
            : rng.uniform(0.5, 9.0);
    total_demand += demand;
    if (shape.weighted) {
      b.add_weighted_customer_polar(
          theta, r, demand, static_cast<double>(rng.uniform_int(0, 25)));
    } else {
      b.add_customer_polar(theta, r, demand);
    }
  }
  for (std::size_t j = 0; j < shape.k; ++j) {
    const double range = rng.uniform(6.0, 11.0);
    const double min_range =
        shape.annular && rng.uniform01() < 0.5 ? rng.uniform(0.5, 3.0) : 0.0;
    const double cap = std::max(
        1.0, total_demand * shape.capacity_fraction /
                 static_cast<double>(shape.k) * rng.uniform(0.6, 1.4));
    const double rho =
        std::min(shape.rho * rng.uniform(0.7, 1.3), geom::kTwoPi);
    b.add_antenna(rho, range, cap, min_range);
  }
  return b.build();
}

}  // namespace

// ---------------------------------------------------------------------------
// Knapsack: four independent exact algorithms must agree exactly.

TEST(FuzzKnapsack, FourExactImplementationsAgree) {
  sim::Rng rng(9001);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(15);
    std::vector<ks::Item> items(n);
    const bool integral = trial % 2 == 0;
    for (auto& it : items) {
      it.weight = integral ? static_cast<double>(rng.uniform_int(1, 25))
                           : rng.uniform(0.2, 25.0);
      it.value = trial % 3 == 0 ? it.weight
                                : static_cast<double>(rng.uniform_int(1, 40));
    }
    double total = 0.0;
    for (const auto& it : items) total += it.weight;
    const double cap = total * rng.uniform(0.2, 0.9);

    const double bf = ks::solve_brute_force(items, cap).value;
    const double bb = ks::solve_bb(items, cap).value;
    const double mim = ks::solve_mim(items, cap).value;
    EXPECT_NEAR(bb, bf, 1e-9) << trial;
    EXPECT_NEAR(mim, bf, 1e-9) << trial;
    if (integral) {
      const double dp =
          ks::solve_exact_dp(items, std::floor(cap)).value;
      const double bf2 = ks::solve_brute_force(items, std::floor(cap)).value;
      EXPECT_NEAR(dp, bf2, 1e-9) << trial;
    }
  }
}

TEST(FuzzKnapsack, ApproximationChainOrdered) {
  sim::Rng rng(9002);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(18);
    std::vector<ks::Item> items(n);
    for (auto& it : items) {
      it.weight = rng.uniform(0.2, 25.0);
      it.value = rng.uniform(0.2, 40.0);
    }
    const double cap = rng.uniform(5.0, 120.0);
    const double exact = ks::solve_mim(items, cap).value;
    const double f05 = ks::solve_fptas(items, cap, 0.05).value;
    const double f20 = ks::solve_fptas(items, cap, 0.20).value;
    const double greedy = ks::solve_greedy(items, cap).value;
    const double frac = ks::fractional_upper_bound(items, cap);
    EXPECT_LE(greedy, exact + 1e-9) << trial;
    EXPECT_LE(f05, exact + 1e-9) << trial;
    EXPECT_LE(f20, exact + 1e-9) << trial;
    EXPECT_LE(exact, frac + 1e-9) << trial;
    EXPECT_GE(greedy + 1e-9, 0.5 * exact) << trial;
    EXPECT_GE(f05 + 1e-9, 0.95 * exact) << trial;
    EXPECT_GE(f20 + 1e-9, 0.80 * exact) << trial;
  }
}

// ---------------------------------------------------------------------------
// Whole-pipeline fuzz across instance shapes.

class PipelineFuzz : public ::testing::TestWithParam<FuzzShape> {};

TEST_P(PipelineFuzz, FeasibilityOrderingAndBounds) {
  const FuzzShape shape = GetParam();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const model::Instance inst = make_fuzz_instance(shape, 31 * seed + 7);

    const model::Solution greedy = sectors::solve_greedy(inst);
    const model::Solution ls = sectors::solve_local_search(inst);
    const model::Solution uniform =
        sectors::solve_uniform_orientations(inst);

    for (const auto* entry : {&greedy, &ls, &uniform}) {
      const auto report = model::validate(inst, *entry);
      ASSERT_TRUE(report.ok)
          << "seed " << seed << ": "
          << (report.errors.empty() ? "" : report.errors[0]);
    }

    const double v_greedy = model::served_value(inst, greedy);
    const double v_ls = model::served_value(inst, ls);
    EXPECT_GE(v_ls + 1e-9, v_greedy) << seed;

    const double bound = bounds::orientation_free_bound(inst);
    EXPECT_LE(v_ls, bound + 1e-6) << seed;
    EXPECT_LE(model::served_value(inst, uniform), bound + 1e-6) << seed;

    if (!inst.is_value_weighted()) {
      const double fw = bounds::flow_window_bound(inst);
      EXPECT_LE(v_ls, fw + 1e-6) << seed;
      EXPECT_LE(fw, bound + 1e-6) << seed;  // flow bound only tightens
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineFuzz,
    ::testing::Values(
        FuzzShape{1, 1, 1.0, 0.5, true, false, false},
        FuzzShape{10, 1, 0.8, 0.4, true, false, false},
        FuzzShape{10, 1, 0.8, 0.4, false, true, false},
        FuzzShape{25, 3, 1.5, 0.3, true, false, false},
        FuzzShape{25, 3, 1.5, 0.3, false, false, true},
        FuzzShape{25, 3, 1.5, 1.5, true, true, true},
        FuzzShape{60, 5, 0.6, 0.5, true, false, false},
        FuzzShape{60, 5, 2.8, 0.2, false, true, true},
        FuzzShape{120, 2, geom::kTwoPi, 0.5, true, false, false}));

// Exact-vs-exact on tiny instances across all the same shapes.
class ExactFuzz : public ::testing::TestWithParam<FuzzShape> {};

TEST_P(ExactFuzz, SectorsExactDominatesAndIsFeasible) {
  FuzzShape shape = GetParam();
  shape.n = std::min<std::size_t>(shape.n, 7);
  shape.k = std::min<std::size_t>(shape.k, 2);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const model::Instance inst = make_fuzz_instance(shape, 91 * seed + 3);
    const model::Solution exact = sectors::solve_exact(inst);
    ASSERT_TRUE(model::is_feasible(inst, exact)) << seed;
    const double ve = model::served_value(inst, exact);
    EXPECT_GE(ve + 1e-9,
              model::served_value(inst, sectors::solve_greedy(inst)))
        << seed;
    EXPECT_GE(ve + 1e-9,
              model::served_value(inst, sectors::solve_local_search(inst)))
        << seed;
    EXPECT_LE(ve, bounds::orientation_free_bound(inst) + 1e-6) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExactFuzz,
    ::testing::Values(FuzzShape{7, 2, 1.0, 0.5, true, false, false},
                      FuzzShape{7, 2, 1.0, 0.5, false, true, false},
                      FuzzShape{7, 2, 2.0, 0.3, true, false, true},
                      FuzzShape{7, 2, 0.5, 1.2, false, true, true}));

// Serialization fuzz: random instances roundtrip bit-exactly.
TEST(FuzzIO, RandomInstancesRoundtrip) {
  sim::Rng rng(9003);
  for (int trial = 0; trial < 40; ++trial) {
    const FuzzShape shape{5 + rng.uniform_int(40),
                          1 + rng.uniform_int(4),
                          rng.uniform(0.3, geom::kTwoPi),
                          rng.uniform(0.2, 1.5),
                          trial % 2 == 0,
                          trial % 3 == 0,
                          trial % 5 == 0};
    const model::Instance inst =
        make_fuzz_instance(shape, 1000 + static_cast<std::uint64_t>(trial));
    const model::Instance back =
        model::instance_from_string(model::to_string(inst));
    ASSERT_EQ(back.num_customers(), inst.num_customers());
    ASSERT_EQ(back.num_antennas(), inst.num_antennas());
    for (std::size_t i = 0; i < inst.num_customers(); ++i) {
      EXPECT_EQ(back.theta(i), inst.theta(i));
      EXPECT_EQ(back.radius(i), inst.radius(i));
      EXPECT_EQ(back.demand(i), inst.demand(i));
      EXPECT_EQ(back.value(i), inst.value(i));
    }
    for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
      EXPECT_EQ(back.antenna(j).rho, inst.antenna(j).rho);
      EXPECT_EQ(back.antenna(j).min_range, inst.antenna(j).min_range);
    }
  }
}

// Mutation fuzz over the text formats: random byte flips, truncations and
// splices of valid files must either parse or throw a *clean* exception --
// std::runtime_error from the parser, or std::invalid_argument from model
// validation. Anything else (std::length_error or std::bad_alloc from a
// forged count reaching vector::reserve, a crash, a hang on gigabytes of
// allocation) escapes the catch clauses and fails the test.
namespace {

template <typename Parse>
void check_clean_failure(const std::string& text, Parse parse,
                         const char* context) {
  try {
    parse(text);
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
  // Reaching here (parsed fine or threw one of the clean types) is a pass;
  // the ADD_FAILURE path is any other exception propagating out.
  (void)context;
}

std::string mutate(const std::string& text, sim::Rng& rng) {
  std::string out = text;
  if (out.empty()) return out;
  switch (rng.uniform_int(std::uint64_t{4})) {
    case 0: {  // flip one byte to a random printable character
      const auto pos = static_cast<std::size_t>(rng.uniform_int(out.size()));
      out[pos] = static_cast<char>(
          '!' + static_cast<char>(rng.uniform_int(std::uint64_t{94})));
      break;
    }
    case 1: {  // truncate
      out.resize(static_cast<std::size_t>(rng.uniform_int(out.size() + 1)));
      break;
    }
    case 2: {  // duplicate a random chunk in place
      const auto a = static_cast<std::size_t>(rng.uniform_int(out.size()));
      const auto len = std::min<std::size_t>(
          1 + static_cast<std::size_t>(rng.uniform_int(std::uint64_t{20})),
          out.size() - a);
      out.insert(a, out.substr(a, len));
      break;
    }
    default: {  // splice extra digits into the file (inflates counts)
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(out.size() + 1));
      out.insert(pos, std::to_string(rng.uniform_int(std::int64_t{1},
                                                     std::int64_t{999999999})));
      break;
    }
  }
  return out;
}

}  // namespace

TEST(FuzzIO, MutatedInstancesFailCleanlyOrParse) {
  sim::Rng rng(9005);
  const FuzzShape shape{15, 2, 1.2, 0.4, true, false, false};
  for (int trial = 0; trial < 400; ++trial) {
    const model::Instance inst = make_fuzz_instance(
        shape, 3000 + static_cast<std::uint64_t>(trial % 5));
    const std::string mutated = mutate(model::to_string(inst), rng);
    check_clean_failure(
        mutated,
        [](const std::string& t) { (void)model::instance_from_string(t); },
        "instance");
  }
}

TEST(FuzzIO, MutatedSolutionsFailCleanlyOrParse) {
  sim::Rng rng(9006);
  const FuzzShape shape{15, 2, 1.2, 0.4, true, false, false};
  const model::Instance inst = make_fuzz_instance(shape, 4000);
  const std::string base = model::to_string(sectors::solve_greedy(inst));
  for (int trial = 0; trial < 400; ++trial) {
    const std::string mutated = mutate(base, rng);
    check_clean_failure(
        mutated,
        [](const std::string& t) { (void)model::solution_from_string(t); },
        "solution");
  }
}

// Solutions survive serialization with objective intact.
TEST(FuzzIO, SolutionsRoundtripWithObjective) {
  sim::Rng rng(9004);
  for (int trial = 0; trial < 20; ++trial) {
    const FuzzShape shape{20, 3, 1.2, 0.4, true, trial % 2 == 0, false};
    const model::Instance inst =
        make_fuzz_instance(shape, 2000 + static_cast<std::uint64_t>(trial));
    const model::Solution sol = sectors::solve_greedy(inst);
    const model::Solution back =
        model::solution_from_string(model::to_string(sol));
    EXPECT_EQ(back.assign, sol.assign);
    EXPECT_DOUBLE_EQ(model::served_value(inst, back),
                     model::served_value(inst, sol));
    EXPECT_TRUE(model::is_feasible(inst, back));
  }
}
