#include "src/assign/assign.hpp"

#include <gtest/gtest.h>

#include "src/bounds/upper.hpp"
#include "src/model/validate.hpp"
#include "src/sim/adversarial.hpp"
#include "src/sim/generators.hpp"

namespace assign = sectorpack::assign;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;
namespace bounds = sectorpack::bounds;

namespace {

// Random angles-only instance with k antennas at fixed orientations.
struct Fixture {
  model::Instance inst;
  std::vector<double> alphas;
};

Fixture random_fixture(std::uint64_t seed, std::size_t n, std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(1.0, 9.0),
                         static_cast<double>(rng.uniform_int(1, 12)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    b.add_antenna(rng.uniform(0.5, geom::kTwoPi), 10.0,
                  static_cast<double>(rng.uniform_int(5, 40)));
  }
  Fixture f{b.build(), {}};
  for (std::size_t j = 0; j < k; ++j) {
    f.alphas.push_back(rng.uniform(0.0, geom::kTwoPi));
  }
  return f;
}

}  // namespace

TEST(Eligibility, MatchesSectorContainment) {
  const Fixture f = random_fixture(21, 30, 3);
  const assign::Eligibility e =
      assign::compute_eligibility(f.inst, f.alphas);
  ASSERT_EQ(e.per_antenna.size(), 3u);
  ASSERT_EQ(e.per_customer.size(), 30u);
  for (std::size_t j = 0; j < 3; ++j) {
    const geom::Sector sec = f.inst.sector(j, f.alphas[j]);
    for (std::size_t i = 0; i < 30; ++i) {
      const bool eligible =
          std::find(e.per_antenna[j].begin(), e.per_antenna[j].end(), i) !=
          e.per_antenna[j].end();
      EXPECT_EQ(eligible, sec.contains(geom::Polar{f.inst.theta(i),
                                                   f.inst.radius(i)}));
      const bool from_customer =
          std::find(e.per_customer[i].begin(), e.per_customer[i].end(),
                    static_cast<std::int32_t>(j)) != e.per_customer[i].end();
      EXPECT_EQ(eligible, from_customer);
    }
  }
}

TEST(Eligibility, SizeMismatchThrows) {
  const Fixture f = random_fixture(22, 5, 2);
  const std::vector<double> wrong = {0.0};
  EXPECT_THROW((void)assign::compute_eligibility(f.inst, wrong),
               std::invalid_argument);
}

TEST(AssignGreedy, AlwaysFeasible) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Fixture f = random_fixture(seed, 25, 3);
    const model::Solution sol = assign::solve_greedy(f.inst, f.alphas);
    const auto report = model::validate(f.inst, sol);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.errors.empty() ? "" : report.errors[0]);
  }
}

TEST(AssignSuccessive, AlwaysFeasibleAllOracles) {
  using sectorpack::knapsack::Oracle;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Fixture f = random_fixture(seed + 100, 20, 3);
    for (const Oracle& o :
         {Oracle::exact(), Oracle::greedy(), Oracle::fptas(0.2)}) {
      const model::Solution sol = assign::solve_successive(f.inst, f.alphas, o);
      EXPECT_TRUE(model::is_feasible(f.inst, sol))
          << "seed " << seed << " oracle " << o.name();
    }
  }
}

TEST(AssignExact, OptimalVsEnumerationTiny) {
  // n <= 8: verify exact B&B against a direct exhaustive assignment search.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Fixture f = random_fixture(seed + 200, 7, 2);
    const model::Solution sol = assign::solve_exact(f.inst, f.alphas);
    EXPECT_TRUE(model::is_feasible(f.inst, sol));
    const double got = model::served_demand(f.inst, sol);

    // Exhaustive: each customer -> one of (k+1) choices.
    const assign::Eligibility e =
        assign::compute_eligibility(f.inst, f.alphas);
    const std::size_t n = f.inst.num_customers();
    const std::size_t k = f.inst.num_antennas();
    double best = 0.0;
    std::vector<std::size_t> choice(n, 0);
    for (;;) {
      std::vector<double> load(k, 0.0);
      double value = 0.0;
      bool ok = true;
      for (std::size_t i = 0; i < n && ok; ++i) {
        if (choice[i] == 0) continue;
        const auto j = static_cast<std::int32_t>(choice[i] - 1);
        const bool eligible =
            std::find(e.per_customer[i].begin(), e.per_customer[i].end(),
                      j) != e.per_customer[i].end();
        if (!eligible) {
          ok = false;
          break;
        }
        load[choice[i] - 1] += f.inst.demand(i);
        value += f.inst.demand(i);
      }
      if (ok) {
        for (std::size_t j = 0; j < k; ++j) {
          if (load[j] > f.inst.antenna(j).capacity + 1e-9) ok = false;
        }
      }
      if (ok) best = std::max(best, value);
      std::size_t pos = n;
      bool done = true;
      while (pos > 0) {
        --pos;
        if (++choice[pos] <= k) {
          done = false;
          break;
        }
        choice[pos] = 0;
      }
      if (done) break;
    }
    EXPECT_NEAR(got, best, 1e-9) << "seed " << seed;
  }
}

TEST(AssignExact, DominatesHeuristics) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Fixture f = random_fixture(seed + 300, 12, 3);
    const double exact =
        model::served_demand(f.inst, assign::solve_exact(f.inst, f.alphas));
    const double greedy =
        model::served_demand(f.inst, assign::solve_greedy(f.inst, f.alphas));
    const double successive = model::served_demand(
        f.inst, assign::solve_successive(f.inst, f.alphas));
    EXPECT_GE(exact + 1e-9, greedy);
    EXPECT_GE(exact + 1e-9, successive);
  }
}

TEST(AssignSuccessive, HalfOfExactWithExactOracle) {
  // Successive knapsack with an exact oracle is a 1/2-approximation for
  // Multiple Knapsack; verify the floor empirically.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Fixture f = random_fixture(seed + 400, 14, 3);
    const double exact =
        model::served_demand(f.inst, assign::solve_exact(f.inst, f.alphas));
    const double successive = model::served_demand(
        f.inst, assign::solve_successive(f.inst, f.alphas));
    EXPECT_GE(successive + 1e-9, 0.5 * exact) << "seed " << seed;
  }
}

TEST(AssignExact, FractionalBoundDominates) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Fixture f = random_fixture(seed + 500, 12, 3);
    const double exact =
        model::served_demand(f.inst, assign::solve_exact(f.inst, f.alphas));
    const double frac =
        bounds::fixed_orientation_fractional_bound(f.inst, f.alphas);
    EXPECT_GE(frac + 1e-6, exact) << "seed " << seed;
  }
}

TEST(AssignLpRounding, AlwaysFeasible) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Fixture f = random_fixture(seed + 600, 25, 3);
    const model::Solution sol = assign::solve_lp_rounding(f.inst, f.alphas);
    const auto report = model::validate(f.inst, sol);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": "
                           << (report.errors.empty() ? "" : report.errors[0]);
  }
}

TEST(AssignLpRounding, AtMostExactAndUsuallyStrong) {
  double ratio_sum = 0.0;
  int trials = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Fixture f = random_fixture(seed + 700, 14, 3);
    const double exact =
        model::served_demand(f.inst, assign::solve_exact(f.inst, f.alphas));
    if (exact <= 0.0) continue;
    const double rounded = model::served_demand(
        f.inst, assign::solve_lp_rounding(f.inst, f.alphas));
    EXPECT_LE(rounded, exact + 1e-9) << "seed " << seed;
    ratio_sum += rounded / exact;
    ++trials;
  }
  ASSERT_GT(trials, 0);
  // The flow LP has few fractional customers here; the mean ratio should
  // be high even though no worst-case floor is claimed.
  EXPECT_GE(ratio_sum / trials, 0.85);
}

TEST(AssignLpRounding, IntegralLpIsKeptVerbatim) {
  // Unit demands + integer capacity: the flow LP has an integral optimum
  // and the rounding must realize the full LP value.
  model::InstanceBuilder b;
  for (int i = 0; i < 9; ++i) {
    b.add_customer_polar(0.1 + 0.02 * i, 5.0, 1.0);
  }
  b.add_antenna(geom::kPi, 10.0, 4.0);
  b.add_antenna(geom::kPi, 10.0, 3.0);
  const model::Instance inst = b.build();
  const std::vector<double> alphas = {0.0, 0.0};
  const model::Solution sol = assign::solve_lp_rounding(inst, alphas);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 7.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(AssignLpRounding, WeightedFallsBackToSuccessive) {
  model::InstanceBuilder b;
  b.add_weighted_customer_polar(0.1, 5.0, 2.0, 9.0);
  b.add_weighted_customer_polar(0.15, 5.0, 2.0, 1.0);
  b.add_antenna(geom::kPi, 10.0, 2.0);
  const model::Instance inst = b.build();
  const std::vector<double> alphas = {0.0};
  const model::Solution sol = assign::solve_lp_rounding(inst, alphas);
  EXPECT_TRUE(model::is_feasible(inst, sol));
  // Successive with an exact oracle picks the value-9 customer.
  EXPECT_DOUBLE_EQ(model::served_value(inst, sol), 9.0);
}

TEST(AssignGreedy, FragmentationTrapShowsGap) {
  const model::Instance inst = sim::fragmentation_trap();
  const std::vector<double> alphas(inst.num_antennas(), 0.0);
  const model::Solution greedy = assign::solve_greedy(inst, alphas);
  const model::Solution exact = assign::solve_exact(inst, alphas);
  EXPECT_TRUE(model::is_feasible(inst, greedy));
  EXPECT_TRUE(model::is_feasible(inst, exact));
  EXPECT_DOUBLE_EQ(model::served_demand(inst, exact), 16.0);
  EXPECT_LT(model::served_demand(inst, greedy),
            model::served_demand(inst, exact));
}

TEST(AssignAll, EmptyInstanceHandled) {
  const model::Instance inst{{}, {model::AntennaSpec{1.0, 10.0, 5.0}}};
  const std::vector<double> alphas = {0.0};
  EXPECT_DOUBLE_EQ(
      model::served_demand(inst, assign::solve_greedy(inst, alphas)), 0.0);
  EXPECT_DOUBLE_EQ(
      model::served_demand(inst, assign::solve_successive(inst, alphas)),
      0.0);
  EXPECT_DOUBLE_EQ(
      model::served_demand(inst, assign::solve_exact(inst, alphas)), 0.0);
}

TEST(AssignAll, ZeroCapacityServesNothing) {
  const model::Instance inst = model::InstanceBuilder{}
                                   .add_customer_polar(0.1, 5.0, 3.0)
                                   .add_antenna(geom::kPi, 10.0, 0.0)
                                   .build();
  const std::vector<double> alphas = {0.0};
  EXPECT_DOUBLE_EQ(
      model::served_demand(inst, assign::solve_exact(inst, alphas)), 0.0);
  EXPECT_DOUBLE_EQ(
      model::served_demand(inst, assign::solve_greedy(inst, alphas)), 0.0);
}
