// The session serving layer (src/srv/session.*, src/srv/serve.*): the
// soundness-critical contract that an incremental re-solve after any delta
// is byte-identical to srv::run_solver on a fresh Instance built from the
// same post-delta records, plus the session store, the serve protocol loop
// (one response per line, failure isolation, session limit), and
// cooperative drain (in-flight op answered, later lines rejected, sessions
// closed).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

// ------------------------------------------------------------- fixtures

/// k identical antennas over a uniform disk (greedy's shared-cache path).
model::Instance identical_instance(std::size_t n, std::uint64_t seed) {
  return sim::uniform_disk_instance(n, 3, geom::kPi / 3, 25.0, seed);
}

/// Non-identical annular ring antennas: radial bands partition the disk,
/// so a customer delta dirties few bands and the window memo earns hits.
model::Instance annular_instance(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::WorkloadConfig wl;
  wl.num_customers = n;
  wl.disk_radius = 90.0;
  std::vector<model::Customer> customers = sim::generate_customers(wl, rng);
  std::vector<model::AntennaSpec> antennas;
  for (std::size_t b = 0; b < 3; ++b) {
    model::AntennaSpec spec;
    spec.rho = geom::kPi / 2 + 0.1 * static_cast<double>(b);
    spec.min_range = 30.0 * static_cast<double>(b);
    spec.range = spec.min_range + 30.0;
    spec.capacity = 40.0 + 5.0 * static_cast<double>(b);
    antennas.push_back(spec);
  }
  return model::Instance(std::move(customers), std::move(antennas));
}

/// Fresh instance from the session's current records: what a client
/// re-sending the post-delta problem from scratch would register.
model::Instance rebuilt(const srv::Session& session) {
  const model::Instance& inst = session.instance();
  return model::Instance(
      std::vector<model::Customer>(inst.customers().begin(),
                                   inst.customers().end()),
      std::vector<model::AntennaSpec>(inst.antennas().begin(),
                                      inst.antennas().end()));
}

/// The byte-identity check: session solution vs run_solver on a rebuilt
/// instance, compared through the canonical text encoding.
void expect_identical(const srv::Session& session, const std::string& what) {
  const model::Solution fresh =
      srv::run_solver(rebuilt(session), session.solver(), {});
  EXPECT_EQ(model::to_string(session.solution()), model::to_string(fresh))
      << "incremental re-solve diverged from from-scratch solve after "
      << what;
}

model::Customer random_customer(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> coord(-85.0, 85.0);
  std::uniform_int_distribution<int> demand(1, 9);
  model::Customer c;
  c.pos = {coord(gen), coord(gen)};
  c.demand = static_cast<double>(demand(gen));
  return c;
}

// ------------------------------------------------- session byte-identity

class SessionIdentity : public ::testing::TestWithParam<bool> {};

/// Randomized cross-check: a stream of mixed deltas, each followed by a
/// bitwise diff against the from-scratch path. Runs for both the
/// identical-antennas branch of greedy and the annular (per-antenna cache)
/// branch.
TEST_P(SessionIdentity, RandomizedDeltaStreamMatchesFromScratch) {
  const bool annular = GetParam();
  model::Instance inst =
      annular ? annular_instance(60, 7) : identical_instance(60, 7);
  srv::Session session(std::move(inst), srv::SolverKey{"greedy", 1, 0, ""});
  const srv::ResolveStats init = session.solve_initial({});
  EXPECT_TRUE(init.incremental);
  expect_identical(session, "solve_initial");

  std::mt19937_64 gen(annular ? 11u : 12u);
  std::uniform_int_distribution<int> pick_op(0, 3);
  for (int step = 0; step < 24; ++step) {
    const int op = pick_op(gen);
    const std::size_t n = session.instance().num_customers();
    if (op == 0 || n < 8) {
      session.customer_add(random_customer(gen), {});
      expect_identical(session, "customer_add");
    } else if (op == 1) {
      std::uniform_int_distribution<std::size_t> idx(0, n - 1);
      session.customer_remove(idx(gen), {});
      expect_identical(session, "customer_remove");
    } else if (op == 2) {
      std::uniform_int_distribution<std::size_t> idx(0, n - 1);
      std::uniform_int_distribution<int> demand(1, 9);
      session.demand_set(idx(gen), static_cast<double>(demand(gen)), {});
      expect_identical(session, "demand_set");
    } else {
      model::AntennaSpec spec;
      spec.rho = geom::kPi / 3;
      std::uniform_real_distribution<double> range(40.0, 90.0);
      spec.range = range(gen);
      spec.capacity = 30.0;
      session.antenna_add(spec, {});
      expect_identical(session, "antenna_add");
    }
  }
  EXPECT_EQ(session.deltas(), 24u);
}

INSTANTIATE_TEST_SUITE_P(GreedyBranches, SessionIdentity,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& branch) {
                           return branch.param ? "AnnularAntennas"
                                               : "IdenticalAntennas";
                         });

/// A non-greedy session takes the full-resolve fallback every delta --
/// trivially identical, and the stats say so.
TEST(Session, NonGreedyFamilyFallsBackToFullResolve) {
  srv::Session session(identical_instance(30, 3),
                       srv::SolverKey{"local-search", 1, 200, ""});
  const srv::ResolveStats init = session.solve_initial({});
  EXPECT_FALSE(init.incremental);
  expect_identical(session, "solve_initial (local-search)");

  std::mt19937_64 gen(5);
  const srv::ResolveStats stats = session.customer_add(random_customer(gen), {});
  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(stats.memo_hits, 0u);
  expect_identical(session, "customer_add (local-search)");
}

/// Reverting a delta returns the unserved-band fingerprints to previously
/// memoized keys: the replay must then be served from the memo.
TEST(Session, RevertedDeltaHitsTheWindowMemo) {
  srv::Session session(annular_instance(50, 9), srv::SolverKey{"greedy", 1, 0, ""});
  session.solve_initial({});

  std::mt19937_64 gen(21);
  const model::Customer c = random_customer(gen);
  session.customer_add(c, {});
  // Remove the customer just added (it is the last index).
  const srv::ResolveStats stats =
      session.customer_remove(session.instance().num_customers() - 1, {});
  expect_identical(session, "add-then-remove");
  EXPECT_GT(stats.memo_hits, 0u)
      << "replaying the original instance should find its own memo entries";
  EXPECT_EQ(stats.fresh_evals, 0u)
      << "every (antenna, round) key was seen during solve_initial";
  EXPECT_EQ(stats.dirty_ratio, 0.0);
}

/// Validation failures must leave instance and solution untouched.
TEST(Session, InvalidDeltaLeavesSessionOnPreviousState) {
  srv::Session session(identical_instance(20, 4), srv::SolverKey{"greedy", 1, 0, ""});
  session.solve_initial({});
  const std::string before_inst = model::to_string(session.instance());
  const std::string before_sol = model::to_string(session.solution());

  EXPECT_THROW(session.demand_set(0, -1.0, {}), std::invalid_argument);
  EXPECT_THROW(session.customer_remove(10'000, {}), std::out_of_range);
  EXPECT_THROW(session.demand_set(10'000, 2.0, {}), std::out_of_range);
  model::AntennaSpec bad;
  bad.rho = -1.0;
  EXPECT_THROW(session.antenna_add(bad, {}), std::invalid_argument);

  EXPECT_EQ(model::to_string(session.instance()), before_inst);
  EXPECT_EQ(model::to_string(session.solution()), before_sol);
  EXPECT_EQ(session.deltas(), 0u);
}

// --------------------------------------------------------- session store

TEST(SessionStore, CreateFindCloseAndNumericIdOrder) {
  srv::SessionStore store;
  std::vector<std::string> created;
  for (int i = 0; i < 11; ++i) {
    created.push_back(
        store.create(identical_instance(10, 1), srv::SolverKey{"greedy", 1, 0, ""}));
  }
  EXPECT_EQ(created.front(), "s0");
  EXPECT_EQ(created.back(), "s10");
  EXPECT_EQ(store.size(), 11u);
  // ids() is creation order even when lexicographic order differs ("s10"
  // sorts before "s2" lexicographically).
  EXPECT_EQ(store.ids(), created);

  ASSERT_NE(store.find("s3"), nullptr);
  EXPECT_EQ(store.find("nope"), nullptr);
  EXPECT_TRUE(store.close("s3"));
  EXPECT_FALSE(store.close("s3"));
  EXPECT_EQ(store.find("s3"), nullptr);
  EXPECT_EQ(store.size(), 10u);

  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.ids().empty());
}

// ------------------------------------------------------- serve protocol

std::string escaped(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string register_line(const model::Instance& inst,
                          const std::string& extra = "") {
  return "{\"op\":\"register\",\"instance\":\"" + escaped(model::to_string(inst)) +
         "\",\"solver\":\"greedy\"" + extra + "}";
}

srv::ServeReport run(const std::string& input, std::string* output,
                     const srv::ServeConfig& config = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  const srv::ServeReport report = srv::run_serve(in, out, config);
  *output = out.str();
  return report;
}

std::vector<srv::JsonObject> parse_responses(const std::string& output) {
  std::vector<srv::JsonObject> responses;
  std::istringstream is(output);
  std::string line;
  while (std::getline(is, line)) {
    responses.push_back(srv::parse_flat_object(line));
  }
  return responses;
}

std::string field(const srv::JsonObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it == o.end() ? std::string() : it->second.string;
}

TEST(Serve, EveryLineGetsOneResponseInInputOrder) {
  const model::Instance inst = identical_instance(20, 2);
  const std::string input =
      register_line(inst, ",\"id\":\"r0\"") + "\n" +
      "\n" +  // blank: skipped, no response
      "{\"op\":\"customer_add\",\"session\":\"s0\",\"x\":1.0,\"y\":2.0,"
      "\"demand\":3}\n" +
      "{\"op\":\"demand_set\",\"session\":\"s0\",\"customer\":0,"
      "\"demand\":5}\n" +
      "not json at all\n" +
      "{\"op\":\"customer_remove\",\"session\":\"nope\",\"customer\":0}\n" +
      "{\"op\":\"close\",\"session\":\"s0\"}\n";
  std::string output;
  const srv::ServeReport report = run(input, &output);
  const std::vector<srv::JsonObject> rs = parse_responses(output);
  ASSERT_EQ(rs.size(), 6u);

  EXPECT_EQ(field(rs[0], "status"), "ok");
  EXPECT_EQ(field(rs[0], "op"), "register");
  EXPECT_EQ(field(rs[0], "id"), "r0");
  EXPECT_EQ(field(rs[0], "session"), "s0");
  EXPECT_EQ(rs[0].at("index").number, 0.0);
  EXPECT_FALSE(field(rs[0], "solution").empty());

  EXPECT_EQ(field(rs[1], "status"), "ok");
  EXPECT_EQ(field(rs[1], "op"), "customer_add");
  EXPECT_TRUE(rs[1].at("incremental").boolean);
  EXPECT_EQ(rs[1].at("index").number, 1.0);  // blank line took no ordinal

  EXPECT_EQ(field(rs[2], "status"), "ok");
  EXPECT_EQ(field(rs[2], "op"), "demand_set");

  EXPECT_EQ(field(rs[3], "status"), "invalid");
  EXPECT_FALSE(field(rs[3], "error").empty());

  EXPECT_EQ(field(rs[4], "status"), "invalid");
  EXPECT_NE(field(rs[4], "error").find("unknown session"), std::string::npos);

  EXPECT_EQ(field(rs[5], "status"), "ok");
  EXPECT_EQ(field(rs[5], "op"), "close");

  EXPECT_EQ(report.requests, 6u);
  EXPECT_EQ(report.registers, 1u);
  EXPECT_EQ(report.deltas, 2u);
  EXPECT_EQ(report.ok, 4u);
  EXPECT_EQ(report.invalid, 2u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_FALSE(report.interrupted);
}

/// A failed delta leaves the session serving its previous solution: the
/// next good delta still matches the from-scratch path.
TEST(Serve, FailedDeltaIsIsolatedFromTheSession) {
  const model::Instance inst = identical_instance(20, 6);
  const std::string input =
      register_line(inst) + "\n" +
      "{\"op\":\"demand_set\",\"session\":\"s0\",\"customer\":999,"
      "\"demand\":5}\n" +
      "{\"op\":\"demand_set\",\"session\":\"s0\",\"customer\":0,"
      "\"demand\":5}\n";
  std::string output;
  run(input, &output);
  const std::vector<srv::JsonObject> rs = parse_responses(output);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(field(rs[1], "status"), "invalid");
  EXPECT_EQ(field(rs[2], "status"), "ok");

  // The surviving response's solution must equal the from-scratch solve of
  // the instance with only the *valid* delta applied.
  model::Instance fresh = identical_instance(20, 6);
  fresh.set_demand(0, 5.0);
  const model::Solution sol = srv::run_solver(fresh, srv::SolverKey{"greedy", 1, 0, ""}, {});
  std::string expect = model::to_string(sol);
  EXPECT_EQ(field(rs[2], "solution"), expect);
}

TEST(Serve, SessionLimitRejectsExtraRegisters) {
  const model::Instance inst = identical_instance(10, 2);
  const std::string input = register_line(inst) + "\n" + register_line(inst) +
                            "\n" + register_line(inst) + "\n";
  srv::ServeConfig config;
  config.max_sessions = 2;
  std::string output;
  const srv::ServeReport report = run(input, &output, config);
  const std::vector<srv::JsonObject> rs = parse_responses(output);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(field(rs[0], "status"), "ok");
  EXPECT_EQ(field(rs[1], "status"), "ok");
  EXPECT_EQ(field(rs[2], "status"), "invalid");
  EXPECT_NE(field(rs[2], "error").find("session limit"), std::string::npos);
  EXPECT_EQ(report.registers, 2u);
}

/// A zero-second per-op budget still answers with a feasible incumbent
/// (status budget_exhausted), and the session remains usable afterwards.
TEST(Serve, ZeroBudgetDeltaAnswersWithFeasibleIncumbent) {
  const model::Instance inst = identical_instance(40, 8);
  const std::string input =
      register_line(inst) + "\n" +
      "{\"op\":\"customer_add\",\"session\":\"s0\",\"x\":1.0,\"y\":2.0,"
      "\"demand\":3,\"time_limit\":0}\n" +
      "{\"op\":\"demand_set\",\"session\":\"s0\",\"customer\":0,"
      "\"demand\":5}\n";
  std::string output;
  const srv::ServeReport report = run(input, &output);
  const std::vector<srv::JsonObject> rs = parse_responses(output);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(field(rs[1], "status"), "budget_exhausted");
  EXPECT_FALSE(field(rs[1], "solution").empty());
  EXPECT_EQ(field(rs[2], "status"), "ok");
  EXPECT_EQ(report.budget_exhausted, 1u);
  EXPECT_EQ(report.ok, 2u);
  EXPECT_FALSE(report.interrupted);
}

// ----------------------------------------------------------------- drain

/// A streambuf that flips an interrupt flag after N lines have been
/// consumed, so the drain path triggers at a deterministic point in the
/// input stream.
class InterruptAfterLines : public std::streambuf {
 public:
  InterruptAfterLines(std::string text, std::size_t lines,
                      std::atomic<bool>* flag)
      : text_(std::move(text)), remaining_(lines), flag_(flag) {}

 protected:
  // No get area: every character funnels through uflow(), so the line
  // counter sees each newline the moment std::getline consumes it.
  int_type underflow() override {
    return pos_ < text_.size() ? traits_type::to_int_type(text_[pos_])
                               : traits_type::eof();
  }

  int_type uflow() override {
    if (pos_ >= text_.size()) return traits_type::eof();
    const char c = text_[pos_++];
    if (c == '\n' && remaining_ > 0 && --remaining_ == 0) {
      flag_->store(true);
    }
    return traits_type::to_int_type(c);
  }

 private:
  std::string text_;
  std::size_t pos_ = 0;
  std::size_t remaining_;
  std::atomic<bool>* flag_;
};

TEST(Serve, DrainAnswersEarlierLinesAndRejectsLaterOnes) {
  const model::Instance inst = identical_instance(20, 5);
  std::string input = register_line(inst) + "\n";
  input +=
      "{\"op\":\"customer_add\",\"session\":\"s0\",\"x\":1.0,\"y\":2.0,"
      "\"demand\":3}\n";
  for (int i = 0; i < 3; ++i) {
    input +=
        "{\"op\":\"demand_set\",\"session\":\"s0\",\"customer\":0,"
        "\"demand\":4}\n";
  }

  // Interrupt fires the moment line 1's trailing newline is consumed --
  // after line 0 was handled, before line 1 is. Line 0 must be answered
  // ok; lines 1-4 land in the drain window, where each must be answered
  // (ok / budget_exhausted if it slipped in before the flag was noticed,
  // rejected after), and once one line is rejected every later line is
  // too.
  std::atomic<bool> interrupt{false};
  InterruptAfterLines buf(input, 2, &interrupt);
  std::istream in(&buf);
  std::ostringstream out;
  srv::ServeConfig config;
  config.interrupt = &interrupt;
  const srv::ServeReport report = srv::run_serve(in, out, config);

  const std::vector<srv::JsonObject> rs = parse_responses(out.str());
  ASSERT_EQ(rs.size(), 5u);  // every line answered, even under drain
  EXPECT_EQ(field(rs[0], "status"), "ok");
  bool rejected_seen = false;
  for (std::size_t i = 1; i < rs.size(); ++i) {
    const std::string status = field(rs[i], "status");
    if (rejected_seen) {
      EXPECT_EQ(status, "rejected") << "line " << i;
    } else {
      EXPECT_TRUE(status == "ok" || status == "budget_exhausted" ||
                  status == "rejected")
          << "line " << i << " status " << status;
      rejected_seen = status == "rejected";
    }
  }
  EXPECT_TRUE(rejected_seen) << "drain should reject at least the last line";
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.requests, 5u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_FALSE(report.slo_summary.empty());
}

TEST(Serve, GlobalBudgetZeroRejectsEverythingButAnswersEveryLine) {
  const model::Instance inst = identical_instance(10, 3);
  const std::string input = register_line(inst) + "\n" +
                            "{\"op\":\"close\",\"session\":\"s0\"}\n";
  srv::ServeConfig config;
  config.time_limit = 0.0;
  std::string output;
  const srv::ServeReport report = run(input, &output, config);
  const std::vector<srv::JsonObject> rs = parse_responses(output);
  ASSERT_EQ(rs.size(), 2u);
  for (const srv::JsonObject& r : rs) {
    EXPECT_EQ(field(r, "status"), "rejected");
  }
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.rejected, 2u);
}

// ------------------------------------------------------- op-line parsing

TEST(ServeOpParse, StrictFieldChecks) {
  // Unknown op.
  EXPECT_THROW(srv::parse_serve_op("{\"op\":\"frobnicate\"}", 0),
               std::runtime_error);
  // register requires exactly one instance source.
  EXPECT_THROW(srv::parse_serve_op("{\"op\":\"register\"}", 0),
               std::runtime_error);
  EXPECT_THROW(
      srv::parse_serve_op(
          "{\"op\":\"register\",\"instance\":\"x\",\"instance_file\":\"y\"}",
          0),
      std::runtime_error);
  // Delta ops require a session.
  EXPECT_THROW(
      srv::parse_serve_op(
          "{\"op\":\"customer_remove\",\"customer\":0}", 0),
      std::runtime_error);
  // Unknown fields are rejected per-op (x/y belong to customer_add only).
  EXPECT_THROW(
      srv::parse_serve_op(
          "{\"op\":\"demand_set\",\"session\":\"s0\",\"customer\":0,"
          "\"demand\":1,\"x\":2}",
          0),
      std::runtime_error);
  // customer index must be an exact non-negative integer.
  EXPECT_THROW(
      srv::parse_serve_op(
          "{\"op\":\"customer_remove\",\"session\":\"s0\",\"customer\":1.5}",
          0),
      std::runtime_error);
  EXPECT_THROW(
      srv::parse_serve_op(
          "{\"op\":\"customer_remove\",\"session\":\"s0\",\"customer\":-1}",
          0),
      std::runtime_error);

  const srv::ServeOp op = srv::parse_serve_op(
      "{\"op\":\"customer_add\",\"session\":\"s7\",\"x\":1.5,\"y\":-2.0,"
      "\"demand\":3,\"value\":9,\"id\":\"tag\",\"time_limit\":2.5}",
      4);
  EXPECT_EQ(op.index, 4u);
  EXPECT_EQ(op.op, "customer_add");
  EXPECT_EQ(op.session, "s7");
  EXPECT_EQ(op.id, "tag");
  EXPECT_DOUBLE_EQ(op.time_limit, 2.5);
  EXPECT_DOUBLE_EQ(op.customer_rec.pos.x, 1.5);
  EXPECT_DOUBLE_EQ(op.customer_rec.pos.y, -2.0);
  EXPECT_DOUBLE_EQ(op.customer_rec.demand, 3.0);
  EXPECT_DOUBLE_EQ(op.customer_rec.value, 9.0);

  // value defaults to kValueIsDemand when omitted.
  const srv::ServeOp add = srv::parse_serve_op(
      "{\"op\":\"customer_add\",\"session\":\"s0\",\"x\":0,\"y\":0,"
      "\"demand\":1}",
      0);
  EXPECT_DOUBLE_EQ(add.customer_rec.value, model::Customer::kValueIsDemand);
}

}  // namespace
