#include "src/geom/arc.hpp"

#include <gtest/gtest.h>

#include "src/sim/rng.hpp"

namespace geom = sectorpack::geom;
using geom::Arc;

TEST(Arc, DefaultIsFullCircle) {
  const Arc full;
  EXPECT_TRUE(full.is_full());
  EXPECT_FALSE(full.is_empty());
  for (double a = 0.0; a < geom::kTwoPi; a += 0.1) {
    EXPECT_TRUE(full.contains(a));
  }
}

TEST(Arc, WidthClamped) {
  EXPECT_DOUBLE_EQ(Arc(0.0, -1.0).width(), 0.0);
  EXPECT_DOUBLE_EQ(Arc(0.0, 100.0).width(), geom::kTwoPi);
}

TEST(Arc, ContainsBasics) {
  const Arc arc(1.0, 0.5);
  EXPECT_TRUE(arc.contains(1.0));
  EXPECT_TRUE(arc.contains(1.25));
  EXPECT_TRUE(arc.contains(1.5));
  EXPECT_FALSE(arc.contains(0.99));
  EXPECT_FALSE(arc.contains(1.51));
  EXPECT_FALSE(arc.contains(4.0));
}

TEST(Arc, ContainsWrapAround) {
  const Arc arc(geom::kTwoPi - 0.2, 0.5);  // spans the 0 crossing
  EXPECT_TRUE(arc.contains(geom::kTwoPi - 0.1));
  EXPECT_TRUE(arc.contains(0.0));
  EXPECT_TRUE(arc.contains(0.29));
  EXPECT_FALSE(arc.contains(0.31));
  EXPECT_FALSE(arc.contains(geom::kPi));
  EXPECT_NEAR(arc.end(), 0.3, 1e-12);
}

TEST(Arc, ContainsClosedEndpointsWithTolerance) {
  const Arc arc(2.0, 1.0);
  EXPECT_TRUE(arc.contains(2.0 - 0.5 * geom::kAngleEps));
  EXPECT_TRUE(arc.contains(3.0 + 0.5 * geom::kAngleEps));
}

TEST(Arc, EmptyArcContainsOnlyItsPoint) {
  const Arc point(1.5, 0.0);
  EXPECT_TRUE(point.is_empty());
  EXPECT_TRUE(point.contains(1.5));
  EXPECT_FALSE(point.contains(1.6));
}

TEST(Arc, ArcContainment) {
  const Arc outer(1.0, 2.0);
  EXPECT_TRUE(outer.contains(Arc(1.2, 1.0)));
  EXPECT_TRUE(outer.contains(Arc(1.0, 2.0)));
  EXPECT_FALSE(outer.contains(Arc(0.8, 1.0)));
  EXPECT_FALSE(outer.contains(Arc(2.5, 1.0)));
  EXPECT_TRUE(Arc().contains(outer));
  EXPECT_FALSE(outer.contains(Arc()));
}

TEST(Arc, IntersectsBasics) {
  EXPECT_TRUE(Arc(0.0, 1.0).intersects(Arc(0.5, 1.0)));
  EXPECT_TRUE(Arc(0.0, 1.0).intersects(Arc(1.0, 1.0)));  // touching
  EXPECT_FALSE(Arc(0.0, 1.0).intersects(Arc(2.0, 1.0)));
  // Wrap: [5.5, 0.5] and [0.2, 1.0] share [0.2, 0.5].
  EXPECT_TRUE(Arc(5.5, geom::kTwoPi - 5.0).intersects(Arc(0.2, 0.8)));
}

TEST(Arc, IntersectionLengthDisjoint) {
  EXPECT_DOUBLE_EQ(Arc(0.0, 1.0).intersection_length(Arc(2.0, 1.0)), 0.0);
}

TEST(Arc, IntersectionLengthNested) {
  EXPECT_NEAR(Arc(0.0, 2.0).intersection_length(Arc(0.5, 1.0)), 1.0, 1e-12);
  EXPECT_NEAR(Arc(0.5, 1.0).intersection_length(Arc(0.0, 2.0)), 1.0, 1e-12);
}

TEST(Arc, IntersectionLengthPartialOverlap) {
  EXPECT_NEAR(Arc(0.0, 1.0).intersection_length(Arc(0.6, 1.0)), 0.4, 1e-12);
  EXPECT_NEAR(Arc(0.6, 1.0).intersection_length(Arc(0.0, 1.0)), 0.4, 1e-12);
}

TEST(Arc, IntersectionLengthTwoPieces) {
  // Two wide arcs can overlap in two disjoint pieces.
  const Arc a(0.0, 4.0);
  const Arc b(3.0, 4.0);  // covers [3, 7] i.e. wraps to [3, 0.717]
  // Overlap: [3, 4] (length 1) and [0, 0.717] (length ~0.717).
  const double expect = 1.0 + (7.0 - geom::kTwoPi);
  EXPECT_NEAR(a.intersection_length(b), expect, 1e-9);
  EXPECT_NEAR(b.intersection_length(a), expect, 1e-9);
}

TEST(Arc, IntersectionSymmetricProperty) {
  sectorpack::sim::Rng rng(42);
  for (int t = 0; t < 500; ++t) {
    const Arc a(rng.uniform(0.0, geom::kTwoPi), rng.uniform(0.0, geom::kTwoPi));
    const Arc b(rng.uniform(0.0, geom::kTwoPi), rng.uniform(0.0, geom::kTwoPi));
    EXPECT_NEAR(a.intersection_length(b), b.intersection_length(a), 1e-9)
        << "a=[" << a.start() << "," << a.width() << "] b=[" << b.start()
        << "," << b.width() << "]";
  }
}

TEST(Arc, IntersectionBoundedByWidths) {
  sectorpack::sim::Rng rng(43);
  for (int t = 0; t < 500; ++t) {
    const Arc a(rng.uniform(0.0, geom::kTwoPi), rng.uniform(0.0, geom::kTwoPi));
    const Arc b(rng.uniform(0.0, geom::kTwoPi), rng.uniform(0.0, geom::kTwoPi));
    const double inter = a.intersection_length(b);
    EXPECT_LE(inter, std::min(a.width(), b.width()) + 1e-9);
    EXPECT_GE(inter, -1e-12);
  }
}

TEST(Arc, RotationPreservesWidthAndMembership) {
  sectorpack::sim::Rng rng(44);
  for (int t = 0; t < 200; ++t) {
    const Arc a(rng.uniform(0.0, geom::kTwoPi), rng.uniform(0.1, 3.0));
    const double delta = rng.uniform(-20.0, 20.0);
    const Arc r = a.rotated(delta);
    EXPECT_NEAR(r.width(), a.width(), 1e-12);
    for (int s = 0; s < 20; ++s) {
      const double angle = rng.uniform(0.0, geom::kTwoPi);
      // Stay away from the boundary where the epsilon tolerance could
      // legitimately flip the predicate after rotation round-off.
      const double d_start = geom::angular_distance(angle, a.start());
      const double d_end = geom::angular_distance(angle, a.end());
      if (d_start < 1e-6 || d_end < 1e-6) continue;
      EXPECT_EQ(a.contains(angle), r.contains(geom::normalize(angle + delta)))
          << "angle=" << angle << " delta=" << delta;
    }
  }
}

TEST(Arc, UnionLengthDisjointSumsWidths) {
  const std::vector<Arc> arcs = {Arc(0.0, 0.5), Arc(1.0, 0.5), Arc(3.0, 1.0)};
  EXPECT_NEAR(geom::union_length(arcs), 2.0, 1e-12);
  EXPECT_TRUE(geom::pairwise_disjoint(arcs));
}

TEST(Arc, UnionLengthOverlapping) {
  const std::vector<Arc> arcs = {Arc(0.0, 1.0), Arc(0.5, 1.0)};
  EXPECT_NEAR(geom::union_length(arcs), 1.5, 1e-12);
  EXPECT_FALSE(geom::pairwise_disjoint(arcs));
}

TEST(Arc, UnionLengthWrapAround) {
  const std::vector<Arc> arcs = {Arc(geom::kTwoPi - 0.5, 1.0)};
  EXPECT_NEAR(geom::union_length(arcs), 1.0, 1e-12);
}

TEST(Arc, UnionLengthFullCoverage) {
  const std::vector<Arc> arcs = {Arc(0.0, 3.0), Arc(2.5, 3.0),
                                 Arc(5.0, 2.0)};
  EXPECT_NEAR(geom::union_length(arcs), geom::kTwoPi, 1e-12);
}

TEST(Arc, UnionLengthEmptyInput) {
  EXPECT_DOUBLE_EQ(geom::union_length({}), 0.0);
  EXPECT_TRUE(geom::pairwise_disjoint({}));
}

TEST(Arc, UnionNeverExceedsSumOrCircle) {
  sectorpack::sim::Rng rng(45);
  for (int t = 0; t < 200; ++t) {
    std::vector<Arc> arcs;
    double sum = 0.0;
    const int m = 1 + static_cast<int>(rng.uniform_int(6));
    for (int a = 0; a < m; ++a) {
      arcs.emplace_back(rng.uniform(0.0, geom::kTwoPi),
                        rng.uniform(0.0, 2.0));
      sum += arcs.back().width();
    }
    const double u = geom::union_length(arcs);
    EXPECT_LE(u, std::min(sum, geom::kTwoPi) + 1e-9);
    EXPECT_GE(u + 1e-9, arcs.empty() ? 0.0 : arcs[0].width() * 0.0);
    // Union at least as large as the widest arc.
    double widest = 0.0;
    for (const Arc& a : arcs) widest = std::max(widest, a.width());
    EXPECT_GE(u + 1e-9, widest);
  }
}

// Parameterized width sweep: membership count along a dense sampling of the
// circle should match the arc width to within sampling resolution.
class ArcWidthProperty : public ::testing::TestWithParam<double> {};

TEST_P(ArcWidthProperty, MembershipMeasureMatchesWidth) {
  const double width = GetParam();
  const Arc arc(1.234, width);
  const int samples = 100000;
  int inside = 0;
  for (int s = 0; s < samples; ++s) {
    const double angle = geom::kTwoPi * s / samples;
    if (arc.contains(angle)) ++inside;
  }
  const double measured = geom::kTwoPi * inside / samples;
  EXPECT_NEAR(measured, width, geom::kTwoPi * 3.0 / samples);
}

INSTANTIATE_TEST_SUITE_P(Widths, ArcWidthProperty,
                         ::testing::Values(0.01, 0.5, 1.0, geom::kPi, 4.0,
                                           6.0, geom::kTwoPi));
