#include "src/single/single.hpp"

#include <gtest/gtest.h>

#include "src/model/validate.hpp"
#include "src/sim/adversarial.hpp"
#include "src/sim/generators.hpp"

namespace single = sectorpack::single;
namespace model = sectorpack::model;
namespace geom = sectorpack::geom;
namespace sim = sectorpack::sim;
namespace ks = sectorpack::knapsack;

namespace {

model::Instance random_p1(std::uint64_t seed, std::size_t n, double rho,
                          double capacity, bool some_out_of_range = false) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    const double r =
        some_out_of_range ? rng.uniform(1.0, 15.0) : rng.uniform(1.0, 9.0);
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi), r,
                         static_cast<double>(rng.uniform_int(1, 10)));
  }
  b.add_antenna(rho, 10.0, capacity);
  return b.build();
}

}  // namespace

TEST(SingleExact, MatchesReferenceRandom) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const double rho = 0.3 + 0.15 * static_cast<double>(seed % 10);
    const model::Instance inst =
        random_p1(seed, 3 + seed % 10, rho, 12.0 + static_cast<double>(seed % 20),
                  seed % 3 == 0);
    const model::Solution fast = single::solve_exact(inst);
    const model::Solution ref = single::solve_reference(inst);
    EXPECT_TRUE(model::is_feasible(inst, fast)) << "seed " << seed;
    EXPECT_NEAR(model::served_demand(inst, fast),
                model::served_demand(inst, ref), 1e-9)
        << "seed " << seed;
  }
}

TEST(SingleExact, FullCircleAntennaIsPureKnapsack) {
  const model::Instance inst = random_p1(7, 12, geom::kTwoPi, 25.0);
  const model::Solution sol = single::solve_exact(inst);
  // Compare against a direct knapsack over all customers.
  std::vector<ks::Item> items;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    items.push_back({inst.demand(i), inst.demand(i)});
  }
  const ks::Result direct = ks::solve_exact_auto(items, 25.0);
  EXPECT_NEAR(model::served_demand(inst, sol), direct.value, 1e-9);
}

TEST(SingleExact, IgnoresOutOfRangeCustomers) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 4.0);    // in range
  b.add_customer_polar(0.12, 50.0, 9.0);  // out of range
  b.add_antenna(1.0, 10.0, 20.0);
  const model::Instance inst = b.build();
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 4.0);
  EXPECT_EQ(sol.assign[1], model::kUnserved);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(SingleGreedy, HalfOfExact) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const model::Instance inst =
        random_p1(seed + 50, 4 + seed % 12, 1.2, 15.0);
    const double exact = model::served_demand(inst, single::solve_exact(inst));
    const model::Solution greedy_sol = single::solve_greedy(inst);
    EXPECT_TRUE(model::is_feasible(inst, greedy_sol));
    const double greedy = model::served_demand(inst, greedy_sol);
    EXPECT_GE(greedy + 1e-9, 0.5 * exact) << "seed " << seed;
    EXPECT_LE(greedy, exact + 1e-9);
  }
}

TEST(SingleFptas, GuaranteeAcrossEps) {
  for (double eps : {0.3, 0.1, 0.05}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const model::Instance inst =
          random_p1(seed + 90, 4 + seed % 10, 1.5, 18.0);
      const double exact =
          model::served_demand(inst, single::solve_exact(inst));
      const model::Solution sol = single::solve_fptas(inst, eps);
      EXPECT_TRUE(model::is_feasible(inst, sol));
      EXPECT_GE(model::served_demand(inst, sol) + 1e-9, (1.0 - eps) * exact)
          << "seed " << seed << " eps " << eps;
    }
  }
}

TEST(SingleSolve, ParallelEqualsSerial) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const model::Instance inst = random_p1(seed + 130, 40, 1.0, 30.0);
    single::Config serial;
    single::Config parallel;
    parallel.parallel = true;
    const model::Solution a = single::solve(inst, serial);
    const model::Solution b = single::solve(inst, parallel);
    EXPECT_DOUBLE_EQ(model::served_demand(inst, a),
                     model::served_demand(inst, b));
    EXPECT_EQ(a.alpha, b.alpha);
    EXPECT_EQ(a.assign, b.assign);
  }
}

TEST(SingleSolve, BadAntennaIndexThrows) {
  const model::Instance inst = random_p1(1, 3, 1.0, 5.0);
  single::Config c;
  c.antenna = 5;
  EXPECT_THROW((void)single::solve(inst, c), std::invalid_argument);
}

TEST(SingleSolve, EmptyCustomerSet) {
  const model::Instance inst{{}, {model::AntennaSpec{1.0, 10.0, 5.0}}};
  const model::Solution sol = single::solve_exact(inst);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 0.0);
  EXPECT_TRUE(model::is_feasible(inst, sol));
}

TEST(SingleSolve, SecondAntennaSelectable) {
  model::InstanceBuilder b;
  b.add_customer_polar(0.1, 5.0, 4.0);
  b.add_antenna(1.0, 2.0, 20.0);   // too short ranged to serve anyone
  b.add_antenna(1.0, 10.0, 20.0);  // can serve
  const model::Instance inst = b.build();
  single::Config c;
  c.antenna = 1;
  const model::Solution sol = single::solve(inst, c);
  EXPECT_DOUBLE_EQ(model::served_demand(inst, sol), 4.0);
  EXPECT_EQ(sol.assign[0], 1);
}

TEST(SingleGreedy, TrapApproachesHalf) {
  const model::Instance inst = sim::single_antenna_trap(1000.0);
  const double exact = model::served_demand(inst, single::solve_exact(inst));
  const double greedy =
      model::served_demand(inst, single::solve_greedy(inst));
  const double ratio = greedy / exact;
  EXPECT_GE(ratio, 0.5 - 1e-9);
  EXPECT_LE(ratio, 0.52);
}

TEST(SingleUniform, FastPathMatchesGeneralSweep) {
  // Unit-demand instances: the O(n log n) uniform fast path must agree
  // with the general sweep + knapsack on the served value.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sim::Rng rng(seed + 4000);
    const std::size_t n = 3 + rng.uniform_int(40);
    std::vector<double> thetas(n);
    for (double& t : thetas) t = rng.uniform(0.0, geom::kTwoPi);
    const std::vector<double> demands(n, 1.0);
    const double rho = rng.uniform(0.2, geom::kTwoPi);
    const double cap = static_cast<double>(1 + rng.uniform_int(20));

    const single::WindowChoice fast =
        single::best_window_uniform(thetas, 1.0, rho, cap);
    const single::WindowChoice general = single::best_window(
        thetas, demands, rho, cap, ks::Oracle::exact());
    EXPECT_DOUBLE_EQ(fast.value, general.value)
        << "seed " << seed << " rho " << rho << " cap " << cap;
    EXPECT_EQ(fast.chosen.size(), general.chosen.size());
  }
}

TEST(SingleUniform, NonUnitUniformDemand) {
  // Demand 3 everywhere, capacity 10 -> at most 3 customers per window.
  const std::vector<double> thetas = {0.0, 0.1, 0.2, 0.3, 3.0};
  const single::WindowChoice choice =
      single::best_window_uniform(thetas, 3.0, 1.0, 10.0);
  EXPECT_DOUBLE_EQ(choice.value, 9.0);
  EXPECT_EQ(choice.chosen.size(), 3u);
}

TEST(SingleUniform, DetectorRejectsMixed) {
  const std::vector<double> unit = {1.0, 1.0};
  const std::vector<double> mixed = {1.0, 2.0};
  EXPECT_TRUE(single::uniform_demands(unit, unit));
  EXPECT_FALSE(single::uniform_demands(unit, mixed));
  EXPECT_FALSE(single::uniform_demands(mixed, unit));  // value != demand
}

TEST(SingleUniform, DispatchedThroughSolve) {
  // Unit-demand instance through the public P1 entry point stays exact.
  const model::Instance inst =
      sim::uniform_disk_instance(40, 1, 1.2, 11.0, 9);
  const model::Solution sol = single::solve_exact(inst);
  const model::Solution ref = single::solve_reference(
      sim::uniform_disk_instance(15, 1, 1.2, 11.0, 9));
  EXPECT_TRUE(model::is_feasible(inst, sol));
  // Capacity 11, unit demands: serve at most 11.
  EXPECT_LE(model::served_demand(inst, sol), 11.0 + 1e-9);
  (void)ref;
}

TEST(SingleUniform, EdgeCases) {
  EXPECT_DOUBLE_EQ(single::best_window_uniform({}, 1.0, 1.0, 5.0).value,
                   0.0);
  const std::vector<double> one = {1.0};
  // Capacity below the demand: nothing fits.
  EXPECT_DOUBLE_EQ(single::best_window_uniform(one, 2.0, 1.0, 1.0).value,
                   0.0);
  EXPECT_DOUBLE_EQ(single::best_window_uniform(one, 1.0, 1.0, 1.0).value,
                   1.0);
}

TEST(SingleExact, RotationInvariance) {
  // Rotating the whole instance must not change the optimal value.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    sim::Rng rng(seed + 777);
    model::InstanceBuilder b1;
    model::InstanceBuilder b2;
    const double offset = rng.uniform(0.0, geom::kTwoPi);
    for (int i = 0; i < 10; ++i) {
      const double theta = rng.uniform(0.0, geom::kTwoPi);
      const double r = rng.uniform(1.0, 9.0);
      const double d = static_cast<double>(rng.uniform_int(1, 8));
      b1.add_customer_polar(theta, r, d);
      b2.add_customer_polar(geom::normalize(theta + offset), r, d);
    }
    b1.add_antenna(1.1, 10.0, 14.0);
    b2.add_antenna(1.1, 10.0, 14.0);
    const double v1 =
        model::served_demand(b1.build(), single::solve_exact(b1.build()));
    const double v2 =
        model::served_demand(b2.build(), single::solve_exact(b2.build()));
    EXPECT_NEAR(v1, v2, 1e-9) << "seed " << seed;
  }
}

// Parameterized oracle sweep: every oracle keeps the composed guarantee on
// the full P1 pipeline.
struct OracleCase {
  ks::OracleKind kind;
  double eps;
  double floor;
};

class SingleOracleProperty : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SingleOracleProperty, ComposedGuaranteeHolds) {
  const OracleCase oc = GetParam();
  const ks::Oracle oracle(oc.kind, oc.eps);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const model::Instance inst =
        random_p1(seed + 1000, 4 + seed % 8, 1.4, 16.0);
    const double exact = model::served_demand(inst, single::solve_exact(inst));
    single::Config c;
    c.oracle = oracle;
    const model::Solution sol = single::solve(inst, c);
    EXPECT_TRUE(model::is_feasible(inst, sol));
    EXPECT_GE(model::served_demand(inst, sol) + 1e-9, oc.floor * exact)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Oracles, SingleOracleProperty,
    ::testing::Values(OracleCase{ks::OracleKind::kExactAuto, 0.0, 1.0},
                      OracleCase{ks::OracleKind::kExactBB, 0.0, 1.0},
                      OracleCase{ks::OracleKind::kGreedy, 0.0, 0.5},
                      OracleCase{ks::OracleKind::kFptas, 0.2, 0.8},
                      OracleCase{ks::OracleKind::kFptas, 0.05, 0.95}));
