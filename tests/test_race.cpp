// Portfolio racing: determinism, warm-start exchange, cancel-on-winner,
// honest status composition, and degradation -- the contracts documented
// in src/race/race.hpp and docs/performance.md "Portfolio racing".

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/bench_util/timer.hpp"
#include "src/sectorpack.hpp"

using namespace sectorpack;

namespace {

model::Instance random_instance(std::uint64_t seed, std::size_t n,
                                std::size_t k) {
  sim::Rng rng(seed);
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    b.add_customer_polar(rng.uniform(0.0, geom::kTwoPi),
                         rng.uniform(0.5, 90.0),
                         static_cast<double>(rng.uniform_int(1, 6)));
  }
  for (std::size_t j = 0; j < k; ++j) {
    b.add_antenna(rng.uniform(0.5, 1.4), rng.uniform(30.0, 95.0),
                  static_cast<double>(rng.uniform_int(20, 80)));
  }
  return b.build();
}

/// Every customer inside one narrow arc, one wide-beam antenna with
/// capacity for all of them: local search provably reaches
/// bounds::trivial_bound (serve everyone), which makes the proved-optimal
/// early exit deterministic for the cancel-on-winner tests.
model::Instance easy_saturating_instance(std::size_t n) {
  model::InstanceBuilder b;
  for (std::size_t i = 0; i < n; ++i) {
    const double theta = 0.05 + 0.2 * static_cast<double>(i) /
                                    static_cast<double>(n);
    b.add_customer_polar(theta, 5.0 + static_cast<double>(i % 40), 1.0);
  }
  b.add_identical_antennas(1, /*rho=*/1.0, /*range=*/60.0,
                           /*capacity=*/static_cast<double>(n));
  return b.build();
}

}  // namespace

// ---------------------------------------------------------------------------
// Portfolio parsing and validation.

TEST(RaceConfig, ParsePortfolioAcceptsUnderscores) {
  const std::vector<std::string> p =
      race::parse_portfolio("greedy,local_search,annealing");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[1], "local-search");
}

TEST(RaceConfig, ParsePortfolioRejectsBadSpecs) {
  EXPECT_THROW((void)race::parse_portfolio(""), std::invalid_argument);
  EXPECT_THROW((void)race::parse_portfolio("greedy,"), std::invalid_argument);
  EXPECT_THROW((void)race::parse_portfolio("qaoa"), std::invalid_argument);
  EXPECT_THROW((void)race::parse_portfolio("greedy,greedy"),
               std::invalid_argument);
  EXPECT_THROW((void)race::parse_portfolio("greedy,race"),
               std::invalid_argument);
}

TEST(RaceConfig, SolveRejectsBadPortfolios) {
  const model::Instance inst = random_instance(1, 30, 2);
  race::RaceConfig config;
  config.portfolio = {};
  EXPECT_THROW((void)race::solve(inst, config), std::invalid_argument);
  config.portfolio = {"greedy", "nope"};
  EXPECT_THROW((void)race::solve(inst, config), std::invalid_argument);
  config.portfolio = {"greedy", "greedy"};
  EXPECT_THROW((void)race::solve(inst, config), std::invalid_argument);
  config.portfolio = {"race"};
  EXPECT_THROW((void)race::solve(inst, config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Degradation.

TEST(Race, PreExpiredDeadlineDegradesLikeEveryFamily) {
  const model::Instance inst = random_instance(2, 80, 3);
  race::RaceConfig config;
  config.solve.deadline = core::Deadline::after(0.0);
  race::RaceStats stats;
  const model::Solution sol = race::solve(inst, config, &stats);
  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(model::validate(inst, sol).ok);
  EXPECT_TRUE(stats.winner.empty());
}

// ---------------------------------------------------------------------------
// Quality and determinism.

TEST(Race, NeverWorseThanAnySingleFamilyUnlimitedBudget) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    const model::Instance inst = random_instance(seed, 60 + 20 * seed, 3);
    race::RaceConfig config;  // default greedy,local-search,annealing
    config.iterations = 300;
    race::RaceStats stats;
    const model::Solution raced = race::solve(inst, config, &stats);
    EXPECT_EQ(raced.status, model::SolveStatus::kComplete) << "seed " << seed;
    EXPECT_TRUE(verify::verify_solution(inst, raced).ok) << "seed " << seed;
    const double race_value = model::served_value(inst, raced);

    sectors::GreedyConfig gc;
    EXPECT_GE(race_value + 1e-9,
              model::served_value(inst, sectors::solve_greedy(inst, gc)))
        << "seed " << seed;
    EXPECT_GE(race_value + 1e-9,
              model::served_value(inst, sectors::solve_local_search(inst)))
        << "seed " << seed;
    sectors::AnnealConfig ac;
    ac.seed = config.seed;
    ac.iterations = static_cast<std::size_t>(config.iterations);
    EXPECT_GE(race_value + 1e-9,
              model::served_value(inst, sectors::solve_annealing(inst, ac)))
        << "seed " << seed;
  }
}

TEST(Race, ByteIdenticalAcrossRepeatsUnlimitedBudget) {
  const model::Instance inst = random_instance(20, 120, 4);
  race::RaceConfig config;
  config.iterations = 200;
  race::RaceStats first_stats;
  const model::Solution first = race::solve(inst, config, &first_stats);
  for (int rep = 0; rep < 3; ++rep) {
    race::RaceStats stats;
    const model::Solution again = race::solve(inst, config, &stats);
    EXPECT_EQ(model::to_string(first), model::to_string(again))
        << "rep " << rep;
    EXPECT_EQ(first_stats.winner, stats.winner) << "rep " << rep;
  }
}

TEST(Race, WarmStartExchangeSeedsFromGreedy) {
  const model::Instance inst = random_instance(30, 150, 4);
  race::RaceConfig config;  // greedy + two seedable families
  config.iterations = 100;
  race::RaceStats stats;
  const model::Solution sol = race::solve(inst, config, &stats);
  EXPECT_TRUE(model::validate(inst, sol).ok);
  // Greedy published, and both local-search and annealing adopted the seed
  // (they both expose run_seeded in the registry).
  EXPECT_GE(stats.incumbent_publishes, 1u);
  EXPECT_EQ(stats.exchange_adoptions, 2u);
  // Warm-starting from the shared greedy seed is byte-identical to each
  // family's own cold start, so the race's answer equals the deterministic
  // best-of over standalone runs -- that is what
  // NeverWorseThanAnySingleFamily pins; here pin the lane values directly.
  for (const race::LaneOutcome& lane : stats.lanes) {
    EXPECT_TRUE(lane.ran) << lane.family;
    EXPECT_TRUE(lane.error.empty()) << lane.family << ": " << lane.error;
  }
}

TEST(Race, SingleFamilyPortfolioMatchesStandalone) {
  const model::Instance inst = random_instance(40, 100, 3);
  race::RaceConfig config;
  config.portfolio = {"local-search"};
  const model::Solution raced = race::solve(inst, config);
  const model::Solution direct = sectors::solve_local_search(inst);
  EXPECT_EQ(model::to_string(raced), model::to_string(direct));
}

// ---------------------------------------------------------------------------
// Cancel-on-winner.

TEST(Race, CancelOnWinnerStopsLosersPromptly) {
  // No greedy lane: phase B races local-search (fast, provably optimal on
  // this instance) against annealing armed with a huge iteration budget.
  // Without cancel-on-winner the race would take annealing's full runtime.
  const model::Instance inst = easy_saturating_instance(600);
  race::RaceConfig config;
  config.portfolio = {"local-search", "annealing"};
  config.iterations = 5000000;  // hours of annealing if never cancelled

  // The solution/winner are deterministic, but whether the losing lane was
  // *in flight* at declare time depends on thread startup: on a loaded
  // machine local-search can finish before the annealing worker picks up
  // its task, leaving cancelled == 0. Retry until a run actually catches
  // the loser mid-flight (virtually always the first attempt).
  race::RaceStats stats;
  model::Solution sol;
  double race_ms = 0.0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const bench_util::Timer timer;
    sol = race::solve(inst, config, &stats);
    race_ms = timer.elapsed_ms();
    if (stats.cancelled >= 1) break;
  }

  EXPECT_EQ(stats.winner, "local-search");
  EXPECT_TRUE(stats.proved_optimal);
  EXPECT_GE(stats.cancelled, 1u);
  EXPECT_EQ(sol.status, model::SolveStatus::kComplete);
  EXPECT_TRUE(verify::verify_solution(inst, sol).ok);
  EXPECT_NEAR(model::served_value(inst, sol), bounds::trivial_bound(inst),
              1e-9);
  // The annealing loser was truncated, not run to completion.
  for (const race::LaneOutcome& lane : stats.lanes) {
    if (lane.family == "annealing") {
      EXPECT_EQ(lane.status, model::SolveStatus::kBudgetExhausted);
    }
  }
  // Promptness backstop: minutes of annealing must collapse to seconds.
  // (One annealing iteration re-assigns the whole instance, so even a few
  // thousand iterations would blow far past this.)
  EXPECT_LT(race_ms, 60000.0);
}

TEST(Race, GreedyProvingOptimalityShortCircuitsPhaseB) {
  // Greedy alone serves everything here, so phase A proves optimality and
  // the other lanes are never launched (skipped, not cancelled).
  const model::Instance inst = easy_saturating_instance(50);
  race::RaceConfig config;
  config.iterations = 5000000;
  race::RaceStats stats;
  const bench_util::Timer timer;
  const model::Solution sol = race::solve(inst, config, &stats);
  EXPECT_EQ(stats.winner, "greedy");
  EXPECT_TRUE(stats.proved_optimal);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(sol.status, model::SolveStatus::kComplete);
  EXPECT_LT(timer.elapsed_ms(), 60000.0);
  for (const race::LaneOutcome& lane : stats.lanes) {
    if (lane.family != "greedy") {
      EXPECT_FALSE(lane.ran) << lane.family;
    }
  }
}

TEST(Race, ExternalCancelStopsTheWholeField) {
  // The drain scenario: the caller's cap is cancelled before the race
  // starts consuming it -- every lane must come back budget-exhausted
  // almost immediately, through the cap -> hub -> lane deadline chain.
  const model::Instance inst = random_instance(50, 400, 4);
  race::RaceConfig config;
  config.iterations = 5000000;
  const core::Deadline cap = core::Deadline::cancellable();
  config.solve.deadline = cap;
  cap.cancel();
  const bench_util::Timer timer;
  const model::Solution sol = race::solve(inst, config);
  EXPECT_EQ(sol.status, model::SolveStatus::kBudgetExhausted);
  EXPECT_TRUE(model::validate(inst, sol).ok);
  EXPECT_LT(timer.elapsed_ms(), 60000.0);
}

// ---------------------------------------------------------------------------
// Engine integration.

TEST(Race, RunSolverDispatchesRaceWithPortfolioKey) {
  const model::Instance inst = random_instance(60, 80, 3);
  srv::SolverKey key;
  key.family = "race";
  key.portfolio = "greedy,local_search";
  key.iterations = 100;
  const model::Solution sol = srv::run_solver(inst, key, {});
  EXPECT_TRUE(verify::verify_solution(inst, sol).ok);
  EXPECT_EQ(sol.status, model::SolveStatus::kComplete);

  srv::SolverKey bad = key;
  bad.portfolio = "greedy,qaoa";
  EXPECT_THROW((void)srv::run_solver(inst, bad, {}), std::invalid_argument);
}

TEST(Race, MetricsCountWinnerAndExchange) {
  obs::set_enabled(true);
  obs::reset();
  const model::Instance inst = easy_saturating_instance(600);
  race::RaceConfig config;
  config.portfolio = {"local-search", "annealing"};
  config.iterations = 5000000;
  // Counters accumulate across repeats; retry until one run catches the
  // losing lane in flight (see CancelOnWinnerStopsLosersPromptly).
  race::RaceStats stats;
  for (int attempt = 0; attempt < 10; ++attempt) {
    (void)race::solve(inst, config, &stats);
    if (stats.cancelled >= 1) break;
  }
  const obs::Snapshot snap = obs::snapshot();
  obs::set_enabled(false);
  EXPECT_GE(snap.counter("race.winner.local-search"), 1u);
  EXPECT_GE(snap.counter("race.cancelled"), 1u);
  EXPECT_GE(snap.counter("race.incumbent_publishes"), 1u);
}

// ---------------------------------------------------------------------------
// Concurrency stress (the TSan gate runs this binary; see check.sh --tsan).

TEST(Race, RepeatedConcurrentRacesAreClean) {
  const model::Instance inst = random_instance(70, 200, 4);
  race::RaceConfig config;
  config.iterations = 50;
  std::string first;
  for (int rep = 0; rep < 4; ++rep) {
    race::RaceStats stats;
    const model::Solution sol = race::solve(inst, config, &stats);
    EXPECT_TRUE(model::validate(inst, sol).ok);
    const std::string text = model::to_string(sol);
    if (rep == 0) {
      first = text;
    } else {
      EXPECT_EQ(first, text) << "rep " << rep;
    }
  }
}
