// The batch request engine (src/srv/): the strict flat-JSON parser, the
// canonical instance fingerprint and its permutation projections, the LRU
// result cache, the bounded admission queue, and run_batch end to end --
// including the soundness-critical properties: a cache miss is
// byte-identical to a single-shot solve, a cache hit served to a permuted
// instance still satisfies every verify:: invariant, and every request gets
// exactly one response no matter how malformed its line is.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/sectorpack.hpp"
#include "src/srv/cache.hpp"

using namespace sectorpack;

namespace {

model::Instance small_instance() {
  return model::InstanceBuilder{}
      .add_customer_polar(0.3, 5.0, 10.0)
      .add_customer_polar(2.1, 7.0, 4.0)
      .add_customer_polar(4.0, 3.0, 6.0)
      .add_customer_polar(5.5, 8.0, 2.0)
      .add_antenna(geom::kPi / 3, 10.0, 12.0)
      .add_antenna(geom::kPi / 2, 10.0, 8.0)
      .build();
}

/// The same instance with customers and antennas listed in a different
/// order (same multiset of entities).
model::Instance small_instance_permuted() {
  return model::InstanceBuilder{}
      .add_customer_polar(5.5, 8.0, 2.0)
      .add_customer_polar(0.3, 5.0, 10.0)
      .add_customer_polar(4.0, 3.0, 6.0)
      .add_customer_polar(2.1, 7.0, 4.0)
      .add_antenna(geom::kPi / 2, 10.0, 8.0)
      .add_antenna(geom::kPi / 3, 10.0, 12.0)
      .build();
}

std::string json_line(const std::string& instance_text,
                      const std::string& extra = "") {
  std::string line = "{\"instance\":\"";
  for (const char c : instance_text) {
    if (c == '\n') {
      line += "\\n";
    } else if (c == '"') {
      line += "\\\"";
    } else {
      line += c;
    }
  }
  line += "\"";
  line += extra;
  line += "}";
  return line;
}

srv::BatchReport run(const std::string& input, std::string* output,
                     const srv::BatchConfig& config = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  const srv::BatchReport report = srv::run_batch(in, out, config);
  *output = out.str();
  return report;
}

std::vector<srv::JsonObject> parse_responses(const std::string& output) {
  std::vector<srv::JsonObject> responses;
  std::istringstream is(output);
  std::string line;
  while (std::getline(is, line)) {
    responses.push_back(srv::parse_flat_object(line));
  }
  return responses;
}

std::string field(const srv::JsonObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it == o.end() ? std::string() : it->second.string;
}

// ---------------------------------------------------------------- jsonl

TEST(SrvJsonl, ParsesEveryScalarKind) {
  const srv::JsonObject o = srv::parse_flat_object(
      " { \"s\" : \"a\\tb\\u00e9\\ud83d\\ude00\" , \"n\" : -1.5e2 , "
      "\"t\" : true , \"f\" : false , \"z\" : null } ");
  ASSERT_EQ(o.size(), 5u);
  EXPECT_EQ(o.at("s").kind, srv::JsonValue::Kind::kString);
  EXPECT_EQ(o.at("s").string, "a\tb\xC3\xA9\xF0\x9F\x98\x80");
  EXPECT_EQ(o.at("n").kind, srv::JsonValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(o.at("n").number, -150.0);
  EXPECT_TRUE(o.at("t").boolean);
  EXPECT_FALSE(o.at("f").boolean);
  EXPECT_EQ(o.at("z").kind, srv::JsonValue::Kind::kNull);
}

TEST(SrvJsonl, RejectsMalformedInput) {
  EXPECT_THROW(srv::parse_flat_object(""), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("[1]"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":{}}"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":[1]}"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":1,\"a\":2}"),
               std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":1} junk"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":1"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":01}"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":nul}"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":\"\x01\"}"),
               std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":\"\\ud83d\"}"),
               std::runtime_error);  // lone high surrogate
}

TEST(SrvJsonl, RejectsEveryUnpairedSurrogateShape) {
  const auto error_of = [](std::string_view line) {
    try {
      (void)srv::parse_flat_object(line);
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
    return std::string();
  };

  // Stray low surrogate with no preceding high half.
  EXPECT_NE(error_of("{\"a\":\"\\udc00\"}").find("stray low surrogate"),
            std::string::npos);
  // High surrogate at end of string, before a literal character, and
  // before a non-\u escape: all unpaired, all named as such (not a generic
  // "expected ..." from the cursor).
  EXPECT_NE(error_of("{\"a\":\"\\ud83d\"}").find("unpaired high surrogate"),
            std::string::npos);
  EXPECT_NE(error_of("{\"a\":\"\\ud83dx\"}").find("unpaired high surrogate"),
            std::string::npos);
  EXPECT_NE(
      error_of("{\"a\":\"\\ud83d\\n\"}").find("unpaired high surrogate"),
      std::string::npos);
  // High surrogate followed by a \u escape outside DC00-DFFF.
  EXPECT_NE(error_of("{\"a\":\"\\ud83d\\u0041\"}")
                .find("not followed by a low surrogate"),
            std::string::npos);
  // Double high surrogate is the same rejection.
  EXPECT_NE(error_of("{\"a\":\"\\ud83d\\ud83d\"}")
                .find("not followed by a low surrogate"),
            std::string::npos);
  // A well-formed pair still decodes.
  const srv::JsonObject ok =
      srv::parse_flat_object("{\"a\":\"\\ud83d\\ude00\"}");
  EXPECT_EQ(ok.at("a").string, "\xF0\x9F\x98\x80");
}

TEST(SrvJsonl, RejectsOutOfRangeNumbers) {
  // Syntactically valid JSON numbers whose value overflows a double must
  // be a clean parse error, not inf.
  EXPECT_THROW(srv::parse_flat_object("{\"a\":1e999}"), std::runtime_error);
  EXPECT_THROW(srv::parse_flat_object("{\"a\":-1e999}"), std::runtime_error);
  // Large-but-representable survives.
  const srv::JsonObject ok = srv::parse_flat_object("{\"a\":1e308}");
  EXPECT_DOUBLE_EQ(ok.at("a").number, 1e308);
}

// ---------------------------------------------------------------- requests

TEST(SrvRequest, DefaultsAndFields) {
  const srv::Request req = srv::parse_request(
      "{\"id\":\"x\",\"instance_file\":\"f.inst\",\"solver\":\"annealing\","
      "\"seed\":9,\"iterations\":50,\"time_limit\":1.5}",
      7);
  EXPECT_EQ(req.index, 7u);
  EXPECT_EQ(req.id, "x");
  EXPECT_EQ(req.instance_file, "f.inst");
  EXPECT_EQ(req.solver.family, "annealing");
  EXPECT_EQ(req.solver.seed, 9u);
  EXPECT_EQ(req.solver.iterations, 50u);
  EXPECT_DOUBLE_EQ(req.time_limit, 1.5);

  const srv::Request defaults =
      srv::parse_request("{\"instance\":\"text\"}", 0);
  EXPECT_EQ(defaults.solver.family, "local-search");
  EXPECT_EQ(defaults.solver.seed, 1u);
  EXPECT_EQ(defaults.solver.iterations, 2000u);
  EXPECT_LT(defaults.time_limit, 0.0);  // no per-request budget
}

TEST(SrvRequest, RejectsBadRequests) {
  // Unknown field, missing/duplicated instance source, unknown solver,
  // non-integer seed, negative time limit.
  EXPECT_THROW(srv::parse_request("{\"instance\":\"x\",\"nope\":1}", 0),
               std::runtime_error);
  EXPECT_THROW(srv::parse_request("{\"solver\":\"greedy\"}", 0),
               std::runtime_error);
  EXPECT_THROW(
      srv::parse_request("{\"instance\":\"x\",\"instance_file\":\"y\"}", 0),
      std::runtime_error);
  EXPECT_THROW(
      srv::parse_request("{\"instance\":\"x\",\"solver\":\"qaoa\"}", 0),
      std::runtime_error);
  EXPECT_THROW(srv::parse_request("{\"instance\":\"x\",\"seed\":1.5}", 0),
               std::runtime_error);
  EXPECT_THROW(srv::parse_request("{\"instance\":\"x\",\"seed\":-1}", 0),
               std::runtime_error);
  EXPECT_THROW(
      srv::parse_request("{\"instance\":\"x\",\"time_limit\":-2}", 0),
      std::runtime_error);
  // Absurd budgets are a protocol error, not a deadline-overflow hazard:
  // anything above 1e8 seconds (~3 years) is rejected at parse time.
  EXPECT_THROW(
      srv::parse_request("{\"instance\":\"x\",\"time_limit\":1e9}", 0),
      std::runtime_error);
  EXPECT_THROW(
      srv::parse_request("{\"instance\":\"x\",\"time_limit\":1e308}", 0),
      std::runtime_error);
  // The boundary itself is accepted.
  EXPECT_DOUBLE_EQ(
      srv::parse_request("{\"instance\":\"x\",\"time_limit\":1e8}", 0)
          .time_limit,
      1e8);
}

// ------------------------------------------------------------- fingerprint

TEST(SrvFingerprint, PermutationInvariant) {
  const srv::SolverKey key;
  const auto a = srv::canonicalize(small_instance(), key);
  const auto b = srv::canonicalize(small_instance_permuted(), key);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(SrvFingerprint, TextFormattingInvariant) {
  // The same instance spelled three ways: generated text, extra blank-free
  // v1 text with different float spellings, and v2 with the default value
  // and min_range columns written out explicitly. All hash identically
  // because the fingerprint is over parsed, resolved numbers, never bytes.
  const std::string v1 =
      "sectorpack-instance v1\n"
      "customers 2\n"
      "1.0 2.0 3\n"
      "4 5 6\n"
      "antennas 1\n"
      "1.5 10 20\n";
  const std::string v1_respelled =
      "sectorpack-instance v1\n"
      "customers 2\n"
      "1 2 3.0\n"
      "4.0 5.0 6\n"
      "antennas 1\n"
      "1.5e0 10.0 2e1\n";
  const std::string v2 =
      "sectorpack-instance v2\n"
      "customers 2\n"
      "1 2 3 3\n"
      "4 5 6 6\n"
      "antennas 1\n"
      "1.5 10 20 0\n";
  const srv::SolverKey key;
  const auto fp1 =
      srv::canonicalize(model::instance_from_string(v1), key).fingerprint;
  const auto fp1b = srv::canonicalize(
      model::instance_from_string(v1_respelled), key).fingerprint;
  const auto fp2 =
      srv::canonicalize(model::instance_from_string(v2), key).fingerprint;
  EXPECT_EQ(fp1, fp1b);
  EXPECT_EQ(fp1, fp2);
}

TEST(SrvFingerprint, DistinguishesProblemAndSolverChanges) {
  const model::Instance base = small_instance();
  const srv::SolverKey key;
  const srv::Fingerprint fp = srv::canonicalize(base, key).fingerprint;

  model::Instance demand_changed = model::InstanceBuilder{}
      .add_customer_polar(0.3, 5.0, 11.0)  // demand 10 -> 11
      .add_customer_polar(2.1, 7.0, 4.0)
      .add_customer_polar(4.0, 3.0, 6.0)
      .add_customer_polar(5.5, 8.0, 2.0)
      .add_antenna(geom::kPi / 3, 10.0, 12.0)
      .add_antenna(geom::kPi / 2, 10.0, 8.0)
      .build();
  EXPECT_NE(srv::canonicalize(demand_changed, key).fingerprint, fp);

  model::Instance moved = model::InstanceBuilder{}
      .add_customer_polar(0.31, 5.0, 10.0)  // theta 0.3 -> 0.31
      .add_customer_polar(2.1, 7.0, 4.0)
      .add_customer_polar(4.0, 3.0, 6.0)
      .add_customer_polar(5.5, 8.0, 2.0)
      .add_antenna(geom::kPi / 3, 10.0, 12.0)
      .add_antenna(geom::kPi / 2, 10.0, 8.0)
      .build();
  EXPECT_NE(srv::canonicalize(moved, key).fingerprint, fp);

  srv::SolverKey other = key;
  other.seed = 2;
  EXPECT_NE(srv::canonicalize(base, other).fingerprint, fp);
  other = key;
  other.iterations = 1999;
  EXPECT_NE(srv::canonicalize(base, other).fingerprint, fp);
  other = key;
  other.family = "greedy";
  EXPECT_NE(srv::canonicalize(base, other).fingerprint, fp);
  other = key;
  other.portfolio = "greedy,local-search";
  EXPECT_NE(srv::canonicalize(base, other).fingerprint, fp);
}

TEST(SrvFingerprint, CollisionSmokeOverGenerators) {
  // Not a proof, just a tripwire: many generated instances, all distinct
  // fingerprints (128 bits of splitmix64 mixing should never collide here).
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  const srv::SolverKey key;
  int total = 0;
  for (const sim::Spatial spatial :
       {sim::Spatial::kUniformDisk, sim::Spatial::kHotspots,
        sim::Spatial::kRing, sim::Spatial::kArcBand}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      sim::WorkloadConfig wc;
      wc.num_customers = 30;
      wc.spatial = spatial;
      sim::AntennaConfig ac;
      ac.count = 3;
      sim::Rng rng(seed);
      const model::Instance inst = sim::make_instance(wc, ac, rng);
      seen.insert({srv::canonicalize(inst, key).fingerprint.hi,
                   srv::canonicalize(inst, key).fingerprint.lo});
      ++total;
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), total);
}

TEST(SrvFingerprint, CanonicalRoundTrip) {
  const model::Instance inst = small_instance_permuted();
  const auto canon = srv::canonicalize(inst, srv::SolverKey{});
  model::Solution sol = sectors::solve_greedy(inst);
  sol.assign[0] = model::kUnserved;  // exercise the unserved mapping too
  const model::Solution back =
      srv::from_canonical(canon, srv::to_canonical(canon, sol));
  EXPECT_EQ(back.status, sol.status);
  EXPECT_EQ(back.alpha, sol.alpha);
  EXPECT_EQ(back.assign, sol.assign);
}

// ------------------------------------------------------------------ cache

TEST(SrvCache, LruEvictionAndCounters) {
  srv::ResultCache cache(2);
  model::Solution sol;
  sol.status = model::SolveStatus::kComplete;
  const srv::Fingerprint a{1, 1}, b{2, 2}, c{3, 3};
  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.insert(a, sol);
  cache.insert(b, sol);
  EXPECT_TRUE(cache.lookup(a).has_value());  // bumps a over b
  cache.insert(c, sol);                      // evicts b (LRU)
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(SrvCache, ZeroCapacityDisablesStorage) {
  srv::ResultCache cache(0);
  model::Solution sol;
  cache.insert({1, 1}, sol);
  EXPECT_FALSE(cache.lookup({1, 1}).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

// ----------------------------------------------------------- bounded queue

TEST(SrvBoundedQueue, BoundsAndDrainsAcrossThreads) {
  par::BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  // Fill to capacity; the next push would block, so use the timed variant.
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(q.try_push_for(v, std::chrono::milliseconds(10)));
  }
  int overflow = 99;
  EXPECT_FALSE(q.try_push_for(overflow, std::chrono::milliseconds(5)));

  std::thread producer([&q] {
    for (int i = 4; i < 200; ++i) q.push(int{i});
    q.close();
  });
  std::vector<int> got;
  int v = 0;
  while (q.pop(v)) got.push_back(v);
  producer.join();
  ASSERT_EQ(got.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_FALSE(q.pop(v));  // closed and drained
}

TEST(SrvBoundedQueue, PushAfterCloseFails) {
  par::BoundedQueue<int> q(2);
  q.close();
  int v = 1;
  EXPECT_FALSE(q.push(std::move(v)));
  EXPECT_FALSE(q.try_push_for(v, std::chrono::milliseconds(1)));
}

// ----------------------------------------------------------------- engine

TEST(SrvEngine, MixedBatchOneResponsePerRequest) {
  const std::string inst_text = model::to_string(small_instance());
  std::string input;
  input += json_line(inst_text, ",\"id\":\"good\",\"solver\":\"greedy\"");
  input += "\n";
  input += "this is not json\n";
  input += "\n";  // blank: skipped, no response
  input += json_line("garbage instance", ",\"id\":\"badinst\"");
  input += "\n";
  input += json_line(inst_text, ",\"id\":\"t0\",\"time_limit\":0");
  input += "\n";

  std::string output;
  srv::BatchConfig config;
  config.jobs = 2;
  const srv::BatchReport report = run(input, &output, config);

  EXPECT_EQ(report.requests, 4u);
  EXPECT_EQ(report.ok, 1u);
  EXPECT_EQ(report.invalid, 2u);
  EXPECT_EQ(report.budget_exhausted, 1u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_FALSE(report.interrupted);

  const auto responses = parse_responses(output);
  ASSERT_EQ(responses.size(), 4u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_DOUBLE_EQ(responses[i].at("index").number,
                     static_cast<double>(i));  // input order preserved
  }
  EXPECT_EQ(field(responses[0], "status"), "ok");
  EXPECT_EQ(field(responses[0], "id"), "good");
  EXPECT_EQ(field(responses[1], "status"), "invalid");
  EXPECT_EQ(field(responses[2], "status"), "invalid");
  EXPECT_EQ(field(responses[2], "id"), "badinst");
  EXPECT_EQ(field(responses[3], "status"), "budget_exhausted");
}

TEST(SrvEngine, CacheMissMatchesSingleShotByteForByte) {
  const model::Instance inst = small_instance();
  const std::string inst_text = model::to_string(inst);
  std::string output;
  const std::string req =
      json_line(inst_text, ",\"solver\":\"greedy\"") + "\n";
  srv::BatchConfig config;
  config.jobs = 1;
  run(req, &output, config);
  const auto responses = parse_responses(output);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(field(responses[0], "cache"), "miss");
  EXPECT_EQ(field(responses[0], "solution"),
            model::to_string(sectors::solve_greedy(inst)));
}

TEST(SrvEngine, PermutedInstanceHitsCacheAndStaysFeasible) {
  const model::Instance permuted = small_instance_permuted();
  std::string input;
  input += json_line(model::to_string(small_instance()),
                     ",\"id\":\"a\",\"solver\":\"greedy\"");
  input += "\n";
  input += json_line(model::to_string(permuted),
                     ",\"id\":\"b\",\"solver\":\"greedy\"");
  input += "\n";

  std::string output;
  srv::BatchConfig config;
  config.jobs = 1;  // deterministic order: "a" populates, "b" hits
  const srv::BatchReport report = run(input, &output, config);
  EXPECT_EQ(report.cache_hits, 1u);
  EXPECT_EQ(report.cache_misses, 1u);

  const auto responses = parse_responses(output);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(field(responses[0], "fingerprint"),
            field(responses[1], "fingerprint"));
  EXPECT_EQ(field(responses[1], "cache"), "hit");
  // The projected hit must be a valid solution *of the permuted instance*.
  const model::Solution sol =
      model::solution_from_string(field(responses[1], "solution"));
  EXPECT_TRUE(verify::verify_solution(permuted, sol).ok);
  EXPECT_DOUBLE_EQ(responses[0].at("served_value").number,
                   responses[1].at("served_value").number);
}

TEST(SrvEngine, BudgetExhaustedIncumbentsAreNotCached) {
  const std::string inst_text = model::to_string(small_instance());
  std::string input;
  input += json_line(inst_text, ",\"id\":\"a\",\"time_limit\":0");
  input += "\n";
  input += json_line(inst_text, ",\"id\":\"b\"");
  input += "\n";
  std::string output;
  srv::BatchConfig config;
  config.jobs = 1;
  const srv::BatchReport report = run(input, &output, config);
  // Request "a" degrades and must not poison the cache for "b".
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(report.cache_misses, 2u);
  const auto responses = parse_responses(output);
  EXPECT_EQ(field(responses[0], "status"), "budget_exhausted");
  EXPECT_EQ(field(responses[1], "status"), "ok");
}

TEST(SrvEngine, GlobalBudgetZeroRejectsEverything) {
  const std::string inst_text = model::to_string(small_instance());
  std::string input;
  for (int i = 0; i < 5; ++i) input += json_line(inst_text) + "\n";
  std::string output;
  srv::BatchConfig config;
  config.jobs = 2;
  config.time_limit = 0.0;
  const srv::BatchReport report = run(input, &output, config);
  EXPECT_EQ(report.requests, 5u);
  EXPECT_EQ(report.rejected, 5u);
  const auto responses = parse_responses(output);
  ASSERT_EQ(responses.size(), 5u);
  for (const auto& r : responses) {
    EXPECT_EQ(field(r, "status"), "rejected");
  }
}

TEST(SrvEngine, InterruptFlagDrainsWithRejections) {
  const std::string inst_text = model::to_string(small_instance());
  std::string input;
  for (int i = 0; i < 5; ++i) input += json_line(inst_text) + "\n";
  std::string output;
  std::atomic<bool> interrupt{true};  // pre-set: drain before any admission
  srv::BatchConfig config;
  config.jobs = 2;
  config.interrupt = &interrupt;
  const srv::BatchReport report = run(input, &output, config);
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.rejected, 5u);
  EXPECT_EQ(parse_responses(output).size(), 5u);
}

TEST(SrvEngine, ParallelBatchIsCompleteAndSound) {
  // 60 requests over 8 workers with a tiny admission queue: every request
  // gets its response, in input order, and each response obeys the cache
  // contract -- a miss is byte-identical to the single-shot solve of that
  // request's instance, a hit passes the verify:: invariants against it.
  // (Full byte-determinism across runs is a jobs=1 property: under
  // parallelism, whether a repeated instance hits or misses is a race.)
  const model::Instance inst_a = small_instance();
  const model::Instance inst_b = small_instance_permuted();
  const std::string a = model::to_string(inst_a);
  const std::string b = model::to_string(inst_b);
  std::string input;
  for (int i = 0; i < 60; ++i) {
    const char* solver = (i % 3 == 0) ? "greedy"
                         : (i % 3 == 1) ? "local-search"
                                        : "uniform";
    input += json_line(i % 2 == 0 ? a : b,
                       std::string(",\"solver\":\"") + solver + "\"");
    input += "\n";
  }
  std::string output;
  srv::BatchConfig config;
  config.jobs = 8;
  config.queue_capacity = 4;  // force backpressure on the admission path
  const srv::BatchReport report = run(input, &output, config);
  EXPECT_EQ(report.requests, 60u);
  EXPECT_EQ(report.ok, 60u);
  EXPECT_EQ(report.cache_hits + report.cache_misses, 60u);
  EXPECT_GT(report.cache_hits, 0u);

  const auto responses = parse_responses(output);
  ASSERT_EQ(responses.size(), 60u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const model::Instance& inst = i % 2 == 0 ? inst_a : inst_b;
    EXPECT_DOUBLE_EQ(responses[i].at("index").number, static_cast<double>(i));
    EXPECT_EQ(field(responses[i], "status"), "ok");
    const model::Solution sol =
        model::solution_from_string(field(responses[i], "solution"));
    EXPECT_TRUE(verify::verify_solution(inst, sol).ok) << "response " << i;
    if (field(responses[i], "cache") == "miss") {
      srv::SolverKey key;
      key.family = field(responses[i], "solver");
      EXPECT_EQ(field(responses[i], "solution"),
                model::to_string(srv::run_solver(inst, key, {})))
          << "response " << i;
    }
  }
}

TEST(SrvEngine, AccessLogOneLinePerRequestInResponseOrder) {
  const std::string inst_text = model::to_string(small_instance());
  std::string input;
  for (int i = 0; i < 20; ++i) {
    input += json_line(inst_text, ",\"id\":\"req" + std::to_string(i) +
                                      "\",\"solver\":\"greedy\""
                                      ",\"time_limit\":5");
    input += "\n";
  }
  input += "not json at all\n";  // still gets an access-log line

  std::ostringstream access;
  std::string output;
  srv::BatchConfig config;
  config.jobs = 4;
  config.access_log = &access;
  const srv::BatchReport report = run(input, &output, config);
  EXPECT_EQ(report.requests, 21u);

  // One line per request, in response (= input) order, with the per-request
  // telemetry fields; lines parse as flat JSON objects.
  std::vector<srv::JsonObject> lines;
  std::istringstream is(access.str());
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(srv::parse_flat_object(line));
  }
  ASSERT_EQ(lines.size(), 21u);
  const auto responses = parse_responses(output);
  ASSERT_EQ(responses.size(), 21u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_DOUBLE_EQ(lines[i].at("index").number, static_cast<double>(i));
    EXPECT_EQ(field(lines[i], "status"), field(responses[i], "status"));
    EXPECT_GE(lines[i].at("queue_us").number, 0.0);
  }
  // Solved lines carry solver/cache/fingerprint/latency/deadline fields.
  const srv::JsonObject& solved = lines[0];
  EXPECT_EQ(field(solved, "solver"), "greedy");
  const std::string cache = field(solved, "cache");
  EXPECT_TRUE(cache == "hit" || cache == "miss");
  EXPECT_EQ(field(solved, "fingerprint").size(), 32u);
  EXPECT_GT(solved.at("solve_us").number, 0.0);
  EXPECT_DOUBLE_EQ(solved.at("deadline_budget_ms").number, 5000.0);
  EXPECT_GT(solved.at("deadline_used_ms").number, 0.0);
  // The malformed request's line reports the parse error, not solver data.
  EXPECT_EQ(field(lines[20], "status"), "invalid");
  EXPECT_FALSE(field(lines[20], "error").empty());
  EXPECT_EQ(lines[20].count("solver"), 0u);
}

TEST(SrvEngine, BatchReportCarriesSloSummary) {
  const std::string inst_text = model::to_string(small_instance());
  std::string input;
  for (int i = 0; i < 8; ++i) {
    input += json_line(inst_text, ",\"solver\":\"greedy\"");
    input += "\n";
  }
  std::string output;
  srv::BatchConfig config;
  config.jobs = 2;
  config.slo_window = 4;
  const srv::BatchReport report = run(input, &output, config);
  EXPECT_EQ(report.ok, 8u);
  EXPECT_NE(report.slo_summary.find("window=4/4"), std::string::npos);
  EXPECT_NE(report.slo_summary.find("total=8"), std::string::npos);
  EXPECT_NE(report.slo_summary.find("p99_ms="), std::string::npos);
  EXPECT_NE(report.slo_summary.find("deadline_hit_rate=1"),
            std::string::npos);
  EXPECT_NE(report.to_string().find("slo["), std::string::npos);
}

TEST(SrvEngine, RunSolverMatchesDirectCalls) {
  const model::Instance inst = small_instance();
  const core::SolveOptions opts;
  EXPECT_EQ(model::to_string(srv::run_solver(inst, {"greedy", 1, 2000, ""}, opts)),
            model::to_string(sectors::solve_greedy(inst)));
  EXPECT_EQ(model::to_string(
                srv::run_solver(inst, {"local-search", 1, 2000, ""}, opts)),
            model::to_string(sectors::solve_local_search(inst)));
  sectors::AnnealConfig anneal;
  anneal.seed = 5;
  anneal.iterations = 100;
  EXPECT_EQ(
      model::to_string(srv::run_solver(inst, {"annealing", 5, 100, ""}, opts)),
      model::to_string(sectors::solve_annealing(inst, anneal)));
  EXPECT_FALSE(srv::is_known_solver("qaoa"));
  EXPECT_THROW(static_cast<void>(srv::run_solver(inst, {"qaoa", 1, 1, ""}, opts)),
               std::invalid_argument);
}

// The registry is the single source of truth for family names: the engine
// validation, the dispatch, the CLI help, and the race portfolio parser
// all read it, so this test is the drift tripwire -- adding a family to
// one consumer but not the table cannot pass.
TEST(SrvSolverRegistry, SingleSourceOfTruth) {
  const std::span<const srv::SolverFamily> families = srv::solver_families();
  ASSERT_FALSE(families.empty());

  std::set<std::string> names;
  std::set<int> priorities;
  for (const srv::SolverFamily& family : families) {
    // Engine validation agrees with the table row by row.
    EXPECT_TRUE(srv::is_known_solver(family.name)) << family.name;
    EXPECT_EQ(srv::find_solver_family(family.name), &family) << family.name;
    EXPECT_NE(family.run, nullptr) << family.name;
    // Names unique, priorities unique (the race tie-break requires a
    // total order over families).
    EXPECT_TRUE(names.insert(family.name).second) << family.name;
    EXPECT_TRUE(priorities.insert(family.priority).second) << family.name;
    // Generated help text carries every family.
    EXPECT_NE(srv::solver_family_names("|").find(family.name),
              std::string::npos)
        << family.name;
  }
  // The forcing function for this PR: `race` is a registered family, and
  // every historical family is still present.
  for (const char* expected :
       {"greedy", "local-search", "uniform", "annealing", "exact", "shard",
        "race"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  EXPECT_EQ(srv::find_solver_family("qaoa"), nullptr);

  // Seedable families expose warm starts; a family that does not cannot
  // be handed one by the race (the exchange checks for nullptr).
  EXPECT_NE(srv::find_solver_family("local-search")->run_seeded, nullptr);
  EXPECT_NE(srv::find_solver_family("annealing")->run_seeded, nullptr);
  EXPECT_EQ(srv::find_solver_family("greedy")->run_seeded, nullptr);
}

}  // namespace
