#include "src/core/deadline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/sync.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace sectorpack::core {

namespace detail {

/// Shared between all copies of one Deadline. `cancelled` is the one-way
/// latch expired()/cancel() always used; `children` is the after_at_most
/// registry that makes a cap's cancel() reach its sub-budgets. Links point
/// strictly parent -> child and a child is always a node created *after*
/// its parent, so the graph is a forest: the recursive cancel sweep
/// terminates and the per-node mutexes are always acquired parent-first
/// (no ordering cycle).
struct DeadlineCancelState {
  std::atomic<bool> cancelled{false};
  Mutex mu;
  /// Weak so a finished sub-solve's deadline can be destroyed while its
  /// long-lived cap survives; dead entries are pruned at registration.
  std::vector<std::weak_ptr<DeadlineCancelState>> children SP_GUARDED_BY(mu);
};

}  // namespace detail

namespace {

using detail::DeadlineCancelState;

void cancel_tree(DeadlineCancelState& node) noexcept {
  // sp-sync: relaxed one-way latch (see Deadline::expired()); the store
  // happens before the sweep below takes mu, which pairs with the
  // registration-side load under the same mutex.
  node.cancelled.store(true, std::memory_order_relaxed);
  const LockGuard lock(node.mu);
  for (const std::weak_ptr<DeadlineCancelState>& weak : node.children) {
    if (const std::shared_ptr<DeadlineCancelState> child = weak.lock()) {
      cancel_tree(*child);
    }
  }
  node.children.clear();
}

/// Register `child` so a later cancel of `parent` propagates. If the
/// parent is already cancelled, the child is cancelled on the spot: both
/// sides work under parent->mu, so a concurrent cancel_tree either sees
/// the child in the registry or this load sees `cancelled` -- the child
/// can never slip through the sweep.
void link_child(DeadlineCancelState& parent,
                const std::shared_ptr<DeadlineCancelState>& child) {
  bool cancel_now = false;
  {
    const LockGuard lock(parent.mu);
    // sp-sync: relaxed load is ordered against cancel_tree's store by
    // parent.mu (the sweep holds it too); see link_child's contract above.
    if (parent.cancelled.load(std::memory_order_relaxed)) {
      cancel_now = true;
    } else {
      // Prune: a batch engine keeps one global cap alive across thousands
      // of requests, so the registry must shrink as children die.
      std::erase_if(parent.children,
                    [](const std::weak_ptr<DeadlineCancelState>& w) {
                      return w.expired();
                    });
      parent.children.push_back(child);
    }
  }
  if (cancel_now) {
    // sp-sync: relaxed one-way latch (see Deadline::expired()).
    child->cancelled.store(true, std::memory_order_relaxed);
  }
}

}  // namespace

Deadline Deadline::after(double seconds) {
  if (std::isnan(seconds)) {
    throw std::invalid_argument("Deadline::after: budget is NaN");
  }
  Deadline d;
  d.state_ = std::make_shared<DeadlineCancelState>();
  if (seconds <= 0.0) {
    // sp-sync: relaxed one-way latch (see expired()); no reader yet.
    d.state_->cancelled.store(true, std::memory_order_relaxed);
  }
  if (std::isfinite(seconds)) {
    // Clamp: steady_clock durations are (at most) signed 64-bit
    // nanoseconds, so casting a huge finite budget (say 1e300 s, which a
    // JSON time_limit can legally spell) overflows the duration_cast into
    // an undefined expiry. kMaxBudgetSeconds (~31.7 years) is indistinguishable
    // from unlimited for any real request and still fits with room to spare.
    d.has_expiry_ = true;
    d.expiry_ = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        std::clamp(seconds, 0.0, kMaxBudgetSeconds)));
  }
  return d;
}

Deadline Deadline::cancellable() {
  Deadline d;
  d.state_ = std::make_shared<DeadlineCancelState>();
  return d;
}

Deadline Deadline::after_at_most(double seconds, const Deadline& cap) {
  const double cap_left = cap.limited()
                              ? cap.remaining_seconds()
                              : std::numeric_limits<double>::infinity();
  const bool own_budget = seconds >= 0.0;  // NaN and negatives: no budget
  const double budget = own_budget ? std::min(seconds, cap_left) : cap_left;
  Deadline child =
      std::isfinite(budget) ? after(budget) : cancellable();
  // Share cap's cancellation: the budget already encodes cap's wall-clock
  // expiry (clamped above), but an explicit cancel() of cap -- drain,
  // SIGINT, a race declaring its winner -- must reach the child too.
  if (cap.limited()) link_child(*cap.state_, child.state_);
  return child;
}

bool Deadline::expired() const noexcept {
  if (!state_) return false;
  // sp-sync: relaxed one-way latch; the flag only ever flips false->true,
  // no data is published through it, and a check that lags a cancel by a
  // few loads just extends a solve by one loop iteration.
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  if (has_expiry_ && Clock::now() >= expiry_) {
    // Latch so subsequent checks (on any copy) skip the clock read. No
    // child sweep: every child's budget is clamped under ours, so their
    // own clocks lapse no later.
    // sp-sync: relaxed one-way latch (see above).
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Deadline::cancel() const noexcept {
  if (state_) cancel_tree(*state_);
}

double Deadline::remaining_seconds() const noexcept {
  if (!state_) return std::numeric_limits<double>::infinity();
  // sp-sync: relaxed one-way latch (see expired()).
  if (state_->cancelled.load(std::memory_order_relaxed)) return 0.0;
  if (!has_expiry_) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(expiry_ - Clock::now()).count();
  return left > 0.0 ? left : 0.0;
}

void note_expired(const char* family) {
  // Rare path (at most once per solve): registering by composed name here
  // is fine, no static handle needed.
  obs::counter(std::string("deadline.expired.") + family).inc();
  obs::trace_instant("deadline.expired");
}

}  // namespace sectorpack::core
