#include "src/core/deadline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace sectorpack::core {

Deadline Deadline::after(double seconds) {
  if (std::isnan(seconds)) {
    throw std::invalid_argument("Deadline::after: budget is NaN");
  }
  Deadline d;
  d.flag_ = std::make_shared<std::atomic<bool>>(seconds <= 0.0);
  if (std::isfinite(seconds)) {
    // Clamp: steady_clock durations are (at most) signed 64-bit
    // nanoseconds, so casting a huge finite budget (say 1e300 s, which a
    // JSON time_limit can legally spell) overflows the duration_cast into
    // an undefined expiry. kMaxBudgetSeconds (~31.7 years) is indistinguishable
    // from unlimited for any real request and still fits with room to spare.
    d.has_expiry_ = true;
    d.expiry_ = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        std::clamp(seconds, 0.0, kMaxBudgetSeconds)));
  }
  return d;
}

Deadline Deadline::cancellable() {
  Deadline d;
  d.flag_ = std::make_shared<std::atomic<bool>>(false);
  return d;
}

Deadline Deadline::after_at_most(double seconds, const Deadline& cap) {
  const double cap_left = cap.limited()
                              ? cap.remaining_seconds()
                              : std::numeric_limits<double>::infinity();
  const bool own_budget = seconds >= 0.0;  // NaN and negatives: no budget
  const double budget = own_budget ? std::min(seconds, cap_left) : cap_left;
  if (!std::isfinite(budget)) return cancellable();
  return after(budget);
}

bool Deadline::expired() const noexcept {
  if (!flag_) return false;
  // sp-sync: relaxed one-way latch; the flag only ever flips false->true,
  // no data is published through it, and a check that lags a cancel by a
  // few loads just extends a solve by one loop iteration.
  if (flag_->load(std::memory_order_relaxed)) return true;
  if (has_expiry_ && Clock::now() >= expiry_) {
    // Latch so subsequent checks (on any copy) skip the clock read.
    // sp-sync: relaxed one-way latch (see above).
    flag_->store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Deadline::cancel() const noexcept {
  // sp-sync: relaxed one-way latch (see expired()).
  if (flag_) flag_->store(true, std::memory_order_relaxed);
}

double Deadline::remaining_seconds() const noexcept {
  if (!flag_) return std::numeric_limits<double>::infinity();
  // sp-sync: relaxed one-way latch (see expired()).
  if (flag_->load(std::memory_order_relaxed)) return 0.0;
  if (!has_expiry_) return std::numeric_limits<double>::infinity();
  const double left =
      std::chrono::duration<double>(expiry_ - Clock::now()).count();
  return left > 0.0 ? left : 0.0;
}

void note_expired(const char* family) {
  // Rare path (at most once per solve): registering by composed name here
  // is fine, no static handle needed.
  obs::counter(std::string("deadline.expired.") + family).inc();
  obs::trace_instant("deadline.expired");
}

}  // namespace sectorpack::core
