#pragma once
// Executable contracts: SP_REQUIRE (preconditions), SP_ENSURE
// (postconditions) and SP_ASSERT (internal invariants).
//
// The three macros share one implementation and differ only in the label a
// failure report carries; the split keeps call sites self-documenting and
// lets tooling (tools/lint/sp_lint.py) forbid raw assert( in src/ without
// losing the precondition/postcondition distinction.
//
// Compiled under -DSECTORPACK_CONTRACTS (CMake option SECTORPACK_CONTRACTS,
// applied to the whole tree) each macro evaluates its condition and, on
// violation, prints the contract kind, the stringified expression, the
// source location and the optional message, then aborts -- a contract
// violation is a bug in this library, never a recoverable input error
// (input errors throw, see model/io). Without the define the macros expand
// to ((void)0) and the condition is NOT evaluated, so checks may be
// arbitrarily expensive (e.g. full solution verification in
// src/verify/) without taxing release builds.
//
// Usage:
//   SP_REQUIRE(i < universe_.size());
//   SP_ENSURE(is_feasible(inst, sol), "solver postcondition");
//   SP_ASSERT(members.size() == count_);

namespace sectorpack::core {

/// Print "<kind> violated: <expr> at <file>:<line>[: <msg>]" to stderr and
/// abort. `msg` may be nullptr. Out-of-line so the macro expansion stays
/// small and the cold path never inlines into solver loops.
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line,
                                const char* msg) noexcept;

namespace detail {
constexpr const char* contract_msg() noexcept { return nullptr; }
constexpr const char* contract_msg(const char* msg) noexcept { return msg; }
}  // namespace detail

}  // namespace sectorpack::core

#if defined(SECTORPACK_CONTRACTS)
#define SP_CONTRACT_IMPL_(kind, cond, ...)                               \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::sectorpack::core::contract_fail(                              \
             kind, #cond, __FILE__, __LINE__,                            \
             ::sectorpack::core::detail::contract_msg(__VA_ARGS__)))
#else
#define SP_CONTRACT_IMPL_(kind, cond, ...) static_cast<void>(0)
#endif

/// Precondition: the caller broke the function's contract.
#define SP_REQUIRE(cond, ...) SP_CONTRACT_IMPL_("precondition", cond, __VA_ARGS__)
/// Postcondition: the function broke its own promise.
#define SP_ENSURE(cond, ...) SP_CONTRACT_IMPL_("postcondition", cond, __VA_ARGS__)
/// Internal invariant: state corruption inside a component.
#define SP_ASSERT(cond, ...) SP_CONTRACT_IMPL_("invariant", cond, __VA_ARGS__)
