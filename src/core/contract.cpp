#include "src/core/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace sectorpack::core {

void contract_fail(const char* kind, const char* expr, const char* file,
                   int line, const char* msg) noexcept {
  std::fprintf(stderr, "sectorpack: %s violated: %s at %s:%d", kind, expr,
               file, line);
  if (msg != nullptr) std::fprintf(stderr, ": %s", msg);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace sectorpack::core
