#pragma once
// Cooperative cancellation for every solver entry point.
//
// A Deadline is a soft wall-clock budget plus an atomic cancel flag. Solvers
// poll it at coarse, bounded-cost granularity -- per greedy round, per
// annealing iteration, per local-search move, per Dinic phase, per
// branch-and-bound node block, per window-sweep chunk -- so a solver returns
// within (budget + one check interval), never mid-update. On expiry a solver
// does not throw: it stops, finalizes its current incumbent (always a
// feasible solution) and reports model::SolveStatus::kBudgetExhausted.
// See docs/robustness.md for the full degradation contract.
//
// Copies of a Deadline share one flag, so a deadline handed to a solver can
// be cancelled from another thread (admission control, client disconnect).
// The flag also latches the first observed wall-clock expiry: once any
// copy has seen the budget lapse, every later expired() call is a single
// relaxed atomic load, no clock read. Sub-budgets carved out with
// after_at_most stay linked to their cap: cancelling the cap cancels the
// whole subtree, so a drain interrupts shard slices and portfolio-race
// lanes mid-flight instead of letting them run out their slices.
//
// A default-constructed Deadline is unlimited and checks in one branch on a
// null pointer; passing no options keeps solvers bit-identical to their
// pre-deadline behavior.

#include <atomic>
#include <chrono>
#include <memory>

namespace sectorpack::core {

namespace detail {
/// Cancel flag plus the registry of after_at_most children the flag must
/// propagate into. Defined in deadline.cpp; copies of a Deadline share one
/// state node.
struct DeadlineCancelState;
}  // namespace detail

class Deadline {
 public:
  /// Unlimited: never expires, cancel() is a no-op.
  Deadline() noexcept = default;

  [[nodiscard]] static Deadline never() noexcept { return {}; }

  /// Upper bound on a finite wall-clock budget: larger values are clamped
  /// (a steady_clock duration is 64-bit nanoseconds, so an unclamped cast
  /// of e.g. 1e300 s would overflow). ~31.7 years -- behaviorally
  /// unlimited, representationally safe.
  static constexpr double kMaxBudgetSeconds = 1e9;

  /// Expires `seconds` of wall-clock time from now (steady clock). A
  /// non-positive budget is already expired; a finite budget above
  /// kMaxBudgetSeconds is clamped to it. Throws std::invalid_argument
  /// on NaN.
  [[nodiscard]] static Deadline after(double seconds);

  /// No wall-clock budget, but cancellable via cancel().
  [[nodiscard]] static Deadline cancellable();

  /// Deadline for a sub-task running under an enclosing budget `cap`:
  /// expires after `seconds` or when cap's *remaining* budget lapses,
  /// whichever is sooner. A negative or NaN `seconds` means "no own
  /// budget". The result is always cancellable and is *registered as a
  /// child of cap*: a later cancel() of cap (or of any ancestor in a
  /// deeper after_at_most chain) propagates to it immediately, so callers
  /// no longer have to forward cancellation by hand. Propagation is one
  /// way -- a child expiring or being cancelled never touches cap -- and
  /// cap's wall-clock expiry needs no link at all, because the child's
  /// budget is clamped under cap's remaining time at creation. A long-
  /// lived cap does not accumulate dead children: the registry holds weak
  /// references, pruned on each registration.
  [[nodiscard]] static Deadline after_at_most(double seconds,
                                              const Deadline& cap);

  /// True when constructed via after() or cancellable().
  [[nodiscard]] bool limited() const noexcept { return state_ != nullptr; }

  /// True once the budget has lapsed or cancel() was called (on any copy).
  [[nodiscard]] bool expired() const noexcept;

  /// Cooperatively cancel: all copies report expired() from now on, and so
  /// does every (transitive) after_at_most child created under this
  /// deadline as its cap.
  void cancel() const noexcept;

  /// Seconds until expiry: +inf when unlimited, 0 once expired.
  [[nodiscard]] double remaining_seconds() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  std::shared_ptr<detail::DeadlineCancelState> state_;  // null = unlimited
  Clock::time_point expiry_{};
  bool has_expiry_ = false;
};

/// Options threaded through every solver entry point. Separate from the
/// per-solver algorithm configs so cross-cutting concerns (budgets, future
/// priorities/affinities) extend in one place.
struct SolveOptions {
  Deadline deadline;
};

/// Record one solver-family expiry: bumps the `deadline.expired.<family>`
/// obs counter and emits a `deadline.expired` trace instant. Called once
/// per solve on the rare expiry path, never in a hot loop.
void note_expired(const char* family);

}  // namespace sectorpack::core
