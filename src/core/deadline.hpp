#pragma once
// Cooperative cancellation for every solver entry point.
//
// A Deadline is a soft wall-clock budget plus an atomic cancel flag. Solvers
// poll it at coarse, bounded-cost granularity -- per greedy round, per
// annealing iteration, per local-search move, per Dinic phase, per
// branch-and-bound node block, per window-sweep chunk -- so a solver returns
// within (budget + one check interval), never mid-update. On expiry a solver
// does not throw: it stops, finalizes its current incumbent (always a
// feasible solution) and reports model::SolveStatus::kBudgetExhausted.
// See docs/robustness.md for the full degradation contract.
//
// Copies of a Deadline share one flag, so a deadline handed to a solver can
// be cancelled from another thread (admission control, client disconnect).
// The flag also latches the first observed wall-clock expiry: once any
// copy has seen the budget lapse, every later expired() call is a single
// relaxed atomic load, no clock read.
//
// A default-constructed Deadline is unlimited and checks in one branch on a
// null pointer; passing no options keeps solvers bit-identical to their
// pre-deadline behavior.

#include <atomic>
#include <chrono>
#include <memory>

namespace sectorpack::core {

class Deadline {
 public:
  /// Unlimited: never expires, cancel() is a no-op.
  Deadline() noexcept = default;

  [[nodiscard]] static Deadline never() noexcept { return {}; }

  /// Upper bound on a finite wall-clock budget: larger values are clamped
  /// (a steady_clock duration is 64-bit nanoseconds, so an unclamped cast
  /// of e.g. 1e300 s would overflow). ~31.7 years -- behaviorally
  /// unlimited, representationally safe.
  static constexpr double kMaxBudgetSeconds = 1e9;

  /// Expires `seconds` of wall-clock time from now (steady clock). A
  /// non-positive budget is already expired; a finite budget above
  /// kMaxBudgetSeconds is clamped to it. Throws std::invalid_argument
  /// on NaN.
  [[nodiscard]] static Deadline after(double seconds);

  /// No wall-clock budget, but cancellable via cancel().
  [[nodiscard]] static Deadline cancellable();

  /// Deadline for a sub-task running under an enclosing budget `cap`:
  /// expires after `seconds` or when cap's *remaining* budget lapses,
  /// whichever is sooner. A negative or NaN `seconds` means "no own
  /// budget". The result is always cancellable and does NOT share cap's
  /// cancel flag -- it snapshots cap's remaining time at call time, so a
  /// later cancel() of cap must be propagated by the caller (the batch
  /// engine keeps its in-flight per-request deadlines registered and
  /// cancels them explicitly on drain).
  [[nodiscard]] static Deadline after_at_most(double seconds,
                                              const Deadline& cap);

  /// True when constructed via after() or cancellable().
  [[nodiscard]] bool limited() const noexcept { return flag_ != nullptr; }

  /// True once the budget has lapsed or cancel() was called (on any copy).
  [[nodiscard]] bool expired() const noexcept;

  /// Cooperatively cancel: all copies report expired() from now on.
  void cancel() const noexcept;

  /// Seconds until expiry: +inf when unlimited, 0 once expired.
  [[nodiscard]] double remaining_seconds() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  std::shared_ptr<std::atomic<bool>> flag_;  // null = unlimited
  Clock::time_point expiry_{};
  bool has_expiry_ = false;
};

/// Options threaded through every solver entry point. Separate from the
/// per-solver algorithm configs so cross-cutting concerns (budgets, future
/// priorities/affinities) extend in one place.
struct SolveOptions {
  Deadline deadline;
};

/// Record one solver-family expiry: bumps the `deadline.expired.<family>`
/// obs counter and emits a `deadline.expired` trace instant. Called once
/// per solve on the rare expiry path, never in a hot loop.
void note_expired(const char* family);

}  // namespace sectorpack::core
