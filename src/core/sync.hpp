#pragma once
// Annotated synchronization capabilities for the concurrent stack.
//
// This header is the ONLY place in src/ allowed to name std::mutex,
// std::condition_variable, std::lock_guard, or std::unique_lock (enforced
// by the sp-lint `raw-mutex` rule). Everything else locks through the
// wrappers below, which carry Clang Thread Safety Analysis attributes --
// the GUARDED_BY / REQUIRES capability system deployed at scale in
// production C++ codebases (Abseil's absl::Mutex is the canonical
// instance). With clang available, `scripts/check.sh --lint` compiles
// every TU with -Wthread-safety -Wthread-safety-beta -Werror, so a
// guarded member touched without its mutex, a helper called without its
// declared lock precondition, or a lock released on the wrong path is a
// COMPILE ERROR -- not a TSan report that depends on the test schedule.
// Under GCC (which has no thread-safety analysis) every macro expands to
// nothing and the wrappers compile to the raw primitives.
//
// How to annotate (full walkthrough in docs/static-analysis.md):
//
//   class Queue {
//    public:
//     void push(int v) SP_EXCLUDES(mu_) {
//       core::LockGuard lock(mu_);
//       items_.push_back(v);            // OK: mu_ held
//     }
//    private:
//     bool can_pop() const SP_REQUIRES(mu_) { return !items_.empty(); }
//     core::Mutex mu_;
//     std::vector<int> items_ SP_GUARDED_BY(mu_);
//   };
//
// Condition-variable predicates: clang analyzes a lambda body as its own
// function, so a predicate reading guarded members inside CondVar::wait
// would warn even though the wait implementation holds the lock. The
// supported pattern (Abseil's AssertHeld) is to open the predicate with
// `mu_.assert_held();` -- a no-op at runtime that tells the analysis the
// capability is held there by contract:
//
//     cv_.wait(lock, [this] {
//       mu_.assert_held();  // CondVar::wait re-acquires mu_ around us
//       return !items_.empty() || closed_;
//     });
//
// Escape hatch: SP_NO_THREAD_SAFETY_ANALYSIS disables the analysis for
// one function. Same discipline as clang-tidy suppressions and sp-lint
// waivers: every use carries a written rationale on the line above.

#include <chrono>
#include <condition_variable>  // sp-lint: allow(raw-mutex) this header IS the wrapper: the one place the raw primitives may appear
#include <mutex>  // sp-lint: allow(raw-mutex) this header IS the wrapper: the one place the raw primitives may appear
#include <utility>

// ---------------------------------------------------------------------------
// Attribute macros. Clang-only: GCC has no thread-safety analysis pass, and
// unknown __attribute__ names would warn under -Werror, so everything
// expands to nothing there.

#if defined(__clang__) && (!defined(SWIG))
#define SP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lockable resource). The string names the
/// capability kind in diagnostics ("mutex" here).
#define SP_CAPABILITY(x) SP_THREAD_ANNOTATION(capability(x))

/// Marks a class whose constructor acquires and destructor releases a
/// capability (RAII guards).
#define SP_SCOPED_CAPABILITY SP_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while holding `x`.
#define SP_GUARDED_BY(x) SP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define SP_PT_GUARDED_BY(x) SP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: the listed capabilities must be held on entry
/// (and are still held on exit).
#define SP_REQUIRES(...) \
  SP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define SP_ACQUIRE(...) \
  SP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (no longer held on return).
#define SP_RELEASE(...) \
  SP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define SP_TRY_ACQUIRE(b, ...) \
  SP_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function may not be called while holding the listed capabilities
/// (deadlock guard for self-locking public entry points).
#define SP_EXCLUDES(...) SP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares to the analysis that the capability is held at this point by
/// contract the checker cannot see (e.g. inside a CondVar predicate).
#define SP_ASSERT_CAPABILITY(...) \
  SP_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Function returns a reference to the named capability (lets callers lock
/// through an accessor).
#define SP_RETURN_CAPABILITY(x) SP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use MUST
/// carry a rationale comment on the line above, same rule as clang-tidy
/// suppressions (docs/static-analysis.md "Waiver policy").
#define SP_NO_THREAD_SAFETY_ANALYSIS \
  SP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sectorpack::core {

/// A std::mutex carrying the "mutex" capability. Members it protects are
/// declared `T member_ SP_GUARDED_BY(mu_);`; internal helpers that assume
/// the lock are declared `SP_REQUIRES(mu_)`.
class SP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SP_ACQUIRE() { mu_.lock(); }
  void unlock() SP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// Runtime no-op telling the analysis this thread holds the mutex by a
  /// contract it cannot see -- the CondVar predicate pattern above. Never
  /// use it to silence a genuine missing lock.
  void assert_held() const SP_ASSERT_CAPABILITY(this) {}

  /// The wrapped primitive, for CondVar only (std::condition_variable
  /// requires std::unique_lock<std::mutex>). Do not lock through this --
  /// the analysis cannot see such locks, and sp-lint's raw-mutex rule
  /// keeps std::unique_lock out of reach everywhere else anyway.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for the common whole-scope case; equivalent to
/// std::lock_guard but visible to the analysis.
class SP_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) SP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() SP_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that supports manual unlock()/lock() cycles and CondVar
/// waits; equivalent to std::unique_lock but visible to the analysis.
/// Always constructed locked (no deferred mode: the analysis -- and the
/// reader -- should never have to wonder whether a UniqueLock holds).
class SP_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) SP_ACQUIRE(mu)
      : mu_(mu), lock_(mu.native()) {}
  ~UniqueLock() SP_RELEASE() = default;

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() SP_ACQUIRE() { lock_.lock(); }
  void unlock() SP_RELEASE() { lock_.unlock(); }

  /// The wrapped lock, for CondVar only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  Mutex& mu_;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over core::Mutex. Deliberately predicate-only for
/// untimed waits: `cv.wait(lock)` without a predicate is the classic lost-
/// wakeup / spurious-wakeup bug, so the API does not offer it (and the
/// sp-lint `cv-wait-no-predicate` rule rejects it textually anywhere it
/// might sneak back in). The timed no-predicate overload exists for
/// bounded polling loops whose re-check is the loop condition itself.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until `pred()` holds; `lock` is released while blocked and
  /// re-acquired around every predicate evaluation (open the predicate
  /// with `mu.assert_held()` so the analysis knows -- see the header
  /// comment).
  template <typename Pred>
  void wait(UniqueLock& lock, Pred pred) {
    cv_.wait(lock.native(), std::move(pred));
  }

  /// As wait(), but gives up after `timeout`; returns pred().
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Pred pred) {
    return cv_.wait_for(lock.native(), timeout, std::move(pred));
  }

  /// Timed wait WITHOUT a predicate, for polling loops that re-check their
  /// condition as the enclosing loop condition (e.g. the batch engine's
  /// reorder-window backpressure). Returns true on notify, false on
  /// timeout -- callers must treat both as "re-check", never as "ready".
  template <typename Rep, typename Period>
  bool wait_for(UniqueLock& lock,
                const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.native(), timeout) ==
           std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sectorpack::core
