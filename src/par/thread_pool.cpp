#include "src/par/thread_pool.hpp"

#include <cstdio>
#include <utility>

#include "src/core/contract.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::par {

namespace {
std::atomic<unsigned> g_global_threads{0};
std::atomic<bool> g_global_created{false};
}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : steals_(obs::counter("par.steals")) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Last-write-wins across pools (the batch engine creates dedicated
  // pools), so the gauge reports the size of the most recently created
  // pool; handle resolved eagerly here like steals_, off the hot paths.
  obs::gauge("par.pool.size").set(static_cast<double>(threads));
  queues_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    core::LockGuard lock(sleep_mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // sp-sync: relaxed round-robin cursor; any interleaving of increments is
  // an acceptable queue choice, and the queue mutex orders the task itself.
  const unsigned q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                     static_cast<unsigned>(queues_.size());
  {
    core::LockGuard lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  {
    // Publishing the count under sleep_mu_ closes the race with a worker
    // that found every queue empty and is about to wait: the wait predicate
    // re-reads pending_ under this same mutex.
    // sp-sync: relaxed suffices because sleep_mu_ provides the ordering.
    core::LockGuard lock(sleep_mu_);
    pending_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

bool ThreadPool::try_take(unsigned self, std::function<void()>& task) {
  const std::size_t nq = queues_.size();
  // Own queue first, front end (FIFO for the owner)...
  {
    WorkerQueue& q = *queues_[self];
    core::LockGuard lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
      // sp-sync: relaxed decrement; q.mu ordered the task hand-off, and a
      // momentarily stale pending_ only costs a sleeping worker one
      // spurious wake (the predicate re-checks under sleep_mu_).
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal from the back of the others, scanning from the next
  // neighbour so thieves spread out instead of all hitting queue 0.
  for (std::size_t step = 1; step < nq; ++step) {
    WorkerQueue& q = *queues_[(self + step) % nq];
    core::LockGuard lock(q.mu);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      // sp-sync: relaxed decrement; same reasoning as the own-queue pop.
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.inc();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(unsigned self) {
  std::function<void()> task;
  for (;;) {
    if (try_take(self, task)) {
      task();
      task = nullptr;  // release captures before sleeping
      continue;
    }
    core::UniqueLock lock(sleep_mu_);
    if (stopping_) {
      // Drain before exiting: pending_ > 0 means some queue still holds a
      // task (possibly submitted after stopping_ was set).
      // sp-sync: relaxed read is exact here -- increments happen under
      // sleep_mu_, which this thread holds.
      if (pending_.load(std::memory_order_relaxed) == 0) return;
      continue;
    }
    cv_.wait(lock, [this] {
      sleep_mu_.assert_held();  // CondVar::wait re-acquires sleep_mu_
      // sp-sync: relaxed read under sleep_mu_ (see submit()).
      return stopping_ || pending_.load(std::memory_order_relaxed) > 0;
    });
  }
}

ThreadPool& ThreadPool::global() {
  // sp-sync: relaxed flag/config pair; the static-local initialization of
  // `pool` is the real synchronization point (C++ guarantees it), and the
  // flag only feeds the best-effort late-call warning below.
  g_global_created.store(true, std::memory_order_relaxed);
  static ThreadPool pool(g_global_threads.load(std::memory_order_relaxed));
  return pool;
}

bool ThreadPool::set_global_threads(unsigned threads) {
  // sp-sync: relaxed is fine for a best-effort misuse detector; a missed
  // late call only suppresses the warning, never corrupts state.
  if (g_global_created.load(std::memory_order_relaxed)) {
    static const obs::Counter c_late = obs::counter("par.set_threads.late");
    c_late.inc();
    static std::atomic<bool> warned{false};
    // sp-sync: relaxed exchange; only dedupes the stderr warning.
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "sectorpack: ThreadPool::set_global_threads(%u) called "
                   "after the global pool was created; call it before any "
                   "parallel work (ignored)\n",
                   threads);
    }
    SP_ASSERT(false,
              "ThreadPool::set_global_threads called after global pool "
              "creation");
    return false;
  }
  // sp-sync: relaxed store; read once inside global()'s static-local
  // initializer, which already synchronizes.
  g_global_threads.store(threads, std::memory_order_relaxed);
  return true;
}

}  // namespace sectorpack::par
