#include "src/par/thread_pool.hpp"

#include <atomic>
#include <utility>

namespace sectorpack::par {

namespace {
std::atomic<unsigned> g_global_threads{0};
std::atomic<bool> g_global_created{false};
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  g_global_created.store(true, std::memory_order_relaxed);
  static ThreadPool pool(g_global_threads.load(std::memory_order_relaxed));
  return pool;
}

bool ThreadPool::set_global_threads(unsigned threads) {
  if (g_global_created.load(std::memory_order_relaxed)) return false;
  g_global_threads.store(threads, std::memory_order_relaxed);
  return true;
}

}  // namespace sectorpack::par
