#pragma once
// A bounded, closeable multi-producer/multi-consumer queue.
//
// This is the admission-control primitive of the batch request engine
// (src/srv/): producers block once `capacity` items are queued, so reading
// a million-line request file cannot balloon memory -- backpressure
// propagates to the reader. Consumers block while the queue is empty and
// drain remaining items after close(); once the queue is both closed and
// empty, pop() returns false and consumers exit.
//
// Contrast with ThreadPool's internal deques: those are unbounded and carry
// opaque tasks for latency, while this queue carries values, enforces a
// bound, and has explicit end-of-stream semantics. The two compose: the
// srv engine pushes requests here and runs one pump task per ThreadPool
// worker that pops until the stream ends.

#include <chrono>
#include <cstddef>
#include <deque>
#include <utility>

#include "src/core/sync.hpp"

namespace sectorpack::par {

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity is promoted to 1: a queue nothing can ever enter would
  /// deadlock the first producer against the closed-check in pop().
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Block until there is room (or the queue is closed), then enqueue.
  /// Returns false -- and drops `value` -- when the queue was closed.
  bool push(T value) SP_EXCLUDES(mu_) {
    core::UniqueLock lock(mu_);
    not_full_.wait(lock, [&] {
      mu_.assert_held();  // CondVar::wait re-acquires mu_ around us
      return items_.size() < capacity_ || closed_;
    });
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// As push(), but gives up after `timeout` so the producer can poll an
  /// interrupt flag between attempts. Returns false on timeout or close
  /// (check closed() to distinguish; `value` is untouched on failure).
  template <typename Rep, typename Period>
  bool try_push_for(T& value, std::chrono::duration<Rep, Period> timeout)
      SP_EXCLUDES(mu_) {
    core::UniqueLock lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          mu_.assert_held();  // CondVar::wait re-acquires mu_ around us
          return items_.size() < capacity_ || closed_;
        })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available and pop it into `out`. Returns false
  /// when the queue is closed and fully drained (end of stream).
  bool pop(T& out) SP_EXCLUDES(mu_) {
    core::UniqueLock lock(mu_);
    not_empty_.wait(lock, [&] {
      mu_.assert_held();  // CondVar::wait re-acquires mu_ around us
      return !items_.empty() || closed_;
    });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// End of stream: producers fail fast, consumers drain what is queued and
  /// then see pop() == false. Idempotent.
  void close() SP_EXCLUDES(mu_) {
    {
      core::LockGuard lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const SP_EXCLUDES(mu_) {
    core::LockGuard lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (for gauges; racy by nature, exact under the lock).
  [[nodiscard]] std::size_t size() const SP_EXCLUDES(mu_) {
    core::LockGuard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable core::Mutex mu_;
  core::CondVar not_full_;
  core::CondVar not_empty_;
  std::deque<T> items_ SP_GUARDED_BY(mu_);
  const std::size_t capacity_;
  bool closed_ SP_GUARDED_BY(mu_) = false;
};

}  // namespace sectorpack::par
