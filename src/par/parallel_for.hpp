#pragma once
// Blocking data-parallel loops over index ranges, built on ThreadPool.
//
// parallel_for(n, grain, body): invokes body(begin, end) over a partition of
// [0, n) into chunks of at least `grain` indices. Falls back to one inline
// call when the pool has a single worker or the range is below the grain.
// Exceptions thrown by bodies are captured and the first one is rethrown on
// the calling thread after all chunks finish.
//
// parallel_reduce: maps chunks to partial values and combines them in
// ascending chunk order, so floating-point reductions are deterministic and
// independent of thread scheduling.

#include <exception>
#include <functional>
#include <vector>

#include "src/core/sync.hpp"
#include "src/par/thread_pool.hpp"

namespace sectorpack::par {

using RangeBody = std::function<void(std::size_t begin, std::size_t end)>;

/// Partition [0, n) into chunks of >= grain and run `body` on each, blocking
/// until all complete. `pool` defaults to ThreadPool::global().
void parallel_for(std::size_t n, std::size_t grain, const RangeBody& body,
                  ThreadPool* pool = nullptr);

/// Chunk layout used by parallel_for / parallel_reduce: chunk c covers
/// [c * size, min((c+1) * size, n)).
struct ChunkPlan {
  std::size_t chunk_size = 0;
  std::size_t num_chunks = 0;
};
[[nodiscard]] ChunkPlan plan_chunks(std::size_t n, std::size_t grain,
                                    unsigned workers);

template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T parallel_reduce(std::size_t n, std::size_t grain, T init,
                                MapFn map_chunk, CombineFn combine,
                                ThreadPool* pool = nullptr) {
  if (pool == nullptr) pool = &ThreadPool::global();
  const ChunkPlan plan = plan_chunks(n, grain, pool->size());
  if (plan.num_chunks <= 1) {
    if (n == 0) return init;
    return combine(std::move(init), map_chunk(std::size_t{0}, n));
  }

  std::vector<T> partial(plan.num_chunks);
  // sp-lint: allow(unannotated-guard) block-local mutex: attributes cannot attach to locals; the per-field comments below name it
  core::Mutex mu;
  core::CondVar cv;
  std::size_t done = 0;           // guarded by mu
  std::exception_ptr first_error;  // guarded by mu

  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    pool->submit([&, c] {
      const std::size_t begin = c * plan.chunk_size;
      const std::size_t end = std::min(begin + plan.chunk_size, n);
      try {
        partial[c] = map_chunk(begin, end);
      } catch (...) {
        core::LockGuard lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      {
        // Notify while holding the lock: the waiter destroys cv the moment
        // its predicate holds and it reacquires mu, so signalling after the
        // unlock races that destruction (TSan: pthread_cond_destroy vs
        // pthread_cond_signal).
        core::LockGuard lock(mu);
        ++done;
        cv.notify_one();
      }
    });
  }

  core::UniqueLock lock(mu);
  cv.wait(lock, [&] {
    mu.assert_held();  // CondVar::wait re-acquires mu around us
    return done == plan.num_chunks;
  });
  if (first_error) std::rethrow_exception(first_error);

  T acc = std::move(init);
  for (T& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace sectorpack::par
