#pragma once
// A small fixed-size worker pool with per-worker deques and work stealing.
// Parallelism in this library is optional and structural: every parallel
// entry point has an identical-result serial path (used when the pool has
// <= 1 worker), and reductions combine partial results in deterministic
// chunk order, so solver output never depends on thread count or
// scheduling.
//
// Queue design. Each worker owns a deque guarded by its own mutex; external
// submitters distribute tasks round-robin, a worker pops from the front of
// its own deque and steals from the back of others when it runs dry. This
// keeps submitters off a single shared lock (the old pool serialized every
// push and pop through one mutex) while preserving rough FIFO order within
// a queue. A lock-free Chase-Lev deque was considered and rejected: its
// correctness depends on one dedicated owner performing all bottom-end
// pushes, but every task here is pushed by whatever caller thread invoked
// parallel_for, so the single-owner precondition does not hold. The
// per-queue mutex is uncontended in the common case (owner and at most one
// thief), which is cheap enough at this library's chunk granularity.

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/sync.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::par {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);

  /// Drains: blocks until all submitted tasks have run, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (wrap and capture exceptions at
  /// the call site; parallel_for does this for its bodies).
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Process-wide pool, created on first use with hardware_concurrency
  /// workers (overridable once via set_global_threads before first use).
  static ThreadPool& global();

  /// Configure the global pool's worker count. Must be called before the
  /// first global() call. A late call is a configuration bug: it returns
  /// false, warns once on stderr, bumps the "par.set_threads.late" counter,
  /// and asserts in debug builds.
  static bool set_global_threads(unsigned threads);

 private:
  // One worker's deque. Heap-allocated so the vector of queues never moves
  // a mutex, and padded out to its own cache line(s) by allocation.
  struct WorkerQueue {
    core::Mutex mu;
    std::deque<std::function<void()>> tasks SP_GUARDED_BY(mu);
  };

  void worker_loop(unsigned self);
  bool try_take(unsigned self, std::function<void()>& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  // Queued-but-not-yet-popped tasks. Incremented under sleep_mu_ so a
  // worker re-checking its sleep predicate cannot miss a submission;
  // decremented (relaxed) at pop time -- the queue mutex orders the task
  // data itself.
  std::atomic<std::size_t> pending_{0};
  std::atomic<unsigned> next_queue_{0};  // round-robin submit cursor
  core::Mutex sleep_mu_;
  core::CondVar cv_;
  bool stopping_ SP_GUARDED_BY(sleep_mu_) = false;
  // Resolved eagerly in the constructor: workers must never do a lazy
  // registry lookup -- on first wake they may run arbitrarily late (even
  // during process exit, after the registry's static is gone), while the
  // handle itself shares ownership of the counter state and stays valid.
  obs::Counter steals_;
  std::vector<std::thread> workers_;
};

}  // namespace sectorpack::par
