#pragma once
// A small fixed-size worker pool. Parallelism in this library is optional
// and structural: every parallel entry point has an identical-result serial
// path (used when the pool has <= 1 worker), and reductions combine partial
// results in deterministic chunk order, so solver output never depends on
// thread count or scheduling.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sectorpack::par {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw (wrap and capture exceptions at
  /// the call site; parallel_for does this for its bodies).
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Process-wide pool, created on first use with hardware_concurrency
  /// workers (overridable once via set_global_threads before first use).
  static ThreadPool& global();

  /// Configure the global pool's worker count. Must be called before the
  /// first global() call; later calls are ignored (returns false).
  static bool set_global_threads(unsigned threads);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sectorpack::par
