#include "src/par/parallel_for.hpp"

#include <algorithm>

#include "src/obs/metrics.hpp"

namespace sectorpack::par {

ChunkPlan plan_chunks(std::size_t n, std::size_t grain, unsigned workers) {
  ChunkPlan plan;
  if (n == 0) return plan;
  grain = std::max<std::size_t>(grain, 1);
  if (workers <= 1 || n <= grain) {
    plan.chunk_size = n;
    plan.num_chunks = 1;
    return plan;
  }
  // Aim for ~4 chunks per worker for load balance, floor at the grain.
  const std::size_t target = std::size_t{workers} * 4;
  plan.chunk_size = std::max(grain, (n + target - 1) / target);
  plan.num_chunks = (n + plan.chunk_size - 1) / plan.chunk_size;
  return plan;
}

void parallel_for(std::size_t n, std::size_t grain, const RangeBody& body,
                  ThreadPool* pool) {
  static const obs::Counter c_calls = obs::counter("par.parallel_for_calls");
  static const obs::Counter c_chunks = obs::counter("par.chunks_dispatched");
  static const obs::Counter c_inline = obs::counter("par.inline_fallbacks");
  if (pool == nullptr) pool = &ThreadPool::global();
  const ChunkPlan plan = plan_chunks(n, grain, pool->size());
  c_calls.inc();
  if (plan.num_chunks <= 1) {
    c_inline.inc();
    if (n > 0) body(0, n);
    return;
  }
  c_chunks.add(plan.num_chunks);

  // sp-lint: allow(unannotated-guard) block-local mutex: attributes cannot attach to locals; the per-field comments below name it
  core::Mutex mu;
  core::CondVar cv;
  std::size_t done = 0;           // guarded by mu
  std::exception_ptr first_error;  // guarded by mu

  for (std::size_t c = 0; c < plan.num_chunks; ++c) {
    pool->submit([&, c] {
      const std::size_t begin = c * plan.chunk_size;
      const std::size_t end = std::min(begin + plan.chunk_size, n);
      try {
        body(begin, end);
      } catch (...) {
        core::LockGuard lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      {
        // Notify under the lock; see the matching comment in
        // parallel_reduce (parallel_for.hpp) -- the waiter's stack frame
        // owns cv, so a post-unlock signal races its destruction.
        core::LockGuard lock(mu);
        ++done;
        cv.notify_one();
      }
    });
  }

  core::UniqueLock lock(mu);
  cv.wait(lock, [&] {
    mu.assert_held();  // CondVar::wait re-acquires mu around us
    return done == plan.num_chunks;
  });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sectorpack::par
