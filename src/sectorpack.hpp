#pragma once
// Umbrella header: the complete public API of sectorpack.
//
// Typical use:
//   #include "src/sectorpack.hpp"
//   using namespace sectorpack;
//   model::Instance inst = model::InstanceBuilder{}
//       .add_customer_polar(0.3, 50.0, 10.0)
//       .add_antenna(geom::kPi / 3, 100.0, 25.0)
//       .build();
//   model::Solution sol = sectors::solve_local_search(inst);
//   double served = model::served_demand(inst, sol);

#include "src/angles/angles.hpp"
#include "src/assign/assign.hpp"
#include "src/bounds/upper.hpp"
#include "src/core/contract.hpp"
#include "src/core/deadline.hpp"
#include "src/cover/cover.hpp"
#include "src/geom/angle.hpp"
#include "src/geom/arc.hpp"
#include "src/geom/polar_grid.hpp"
#include "src/geom/sector.hpp"
#include "src/geom/sweep.hpp"
#include "src/geom/vec2.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/instance.hpp"
#include "src/model/io.hpp"
#include "src/model/solution.hpp"
#include "src/model/validate.hpp"
#include "src/obs/exporter.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/slo.hpp"
#include "src/obs/trace.hpp"
#include "src/par/bounded_queue.hpp"
#include "src/par/parallel_for.hpp"
#include "src/par/thread_pool.hpp"
#include "src/race/race.hpp"
#include "src/sectors/annealing.hpp"
#include "src/sectors/sectors.hpp"
#include "src/shard/shard.hpp"
#include "src/sim/adversarial.hpp"
#include "src/sim/generators.hpp"
#include "src/sim/rng.hpp"
#include "src/single/single.hpp"
#include "src/srv/engine.hpp"
#include "src/srv/jsonl.hpp"
#include "src/srv/serve.hpp"
#include "src/srv/session.hpp"
#include "src/srv/solvers.hpp"
#include "src/verify/verify.hpp"
#include "src/viz/svg.hpp"
