#pragma once
// The dual problem: MINIMUM ANTENNAS TO SERVE ALL DEMAND.
//
// Packing asks "how much demand can k antennas serve"; deployment planning
// usually asks the dual: "how many antennas of this type do I need to serve
// everyone?" Given the customer set and a single antenna *type*
// (rho, range, capacity), find the fewest antennas of that type, with
// orientations and an assignment, serving every customer.
//
// Hardness: with capacities this contains bin packing (all customers in one
// window); uncapacitated it is the classic covering-points-by-arcs problem,
// which is polynomial. Solvers:
//   solve_greedy        set-cover greedy: repeatedly place the antenna
//                       serving the most unserved demand (P1 oracle call
//                       per step). The classical analysis of greedy set
//                       cover applies to the coverage structure.
//   solve_sweep_nextfit circular next-fit: walk the circle packing
//                       consecutive customers until width or capacity
//                       binds; tried from every cut, keeping the best.
//                       For the uncapacitated case, anchoring at every
//                       start makes this exact.
//   solve_exact         increasing k, exact P3 solve per k; reference for
//                       small instances.
//   lower_bound         max(ceil(demand/capacity), min arcs to cover all
//                       angles ignoring capacity) -- certified LB.

#include <span>

#include "src/model/instance.hpp"
#include "src/model/solution.hpp"

namespace sectorpack::cover {

struct CoverResult {
  /// False when some customer can never be served by this antenna type
  /// (out of range, or demand exceeding the capacity); `blockers` lists
  /// those customers and the other fields are empty.
  bool feasible = true;
  std::vector<std::size_t> blockers;

  std::vector<double> alphas;        // orientation per placed antenna
  std::vector<std::int32_t> assign;  // customer -> placed antenna index

  [[nodiscard]] std::size_t num_antennas() const { return alphas.size(); }
};

/// True when `result` serves every customer, respects the type's sector
/// geometry for each placed antenna, and no antenna exceeds the capacity.
[[nodiscard]] bool validate_cover(std::span<const model::Customer> customers,
                                  const model::AntennaSpec& type,
                                  const CoverResult& result);

/// Certified lower bound on the number of antennas needed.
[[nodiscard]] std::size_t lower_bound(
    std::span<const model::Customer> customers,
    const model::AntennaSpec& type);

/// Minimum arcs of width rho covering all the given directions, exact,
/// O(n^2) (greedy jump anchored at every point). Used by lower_bound; also
/// the exact solver for the uncapacitated special case.
[[nodiscard]] std::size_t min_arcs_to_cover(std::span<const double> thetas,
                                            double rho);

[[nodiscard]] CoverResult solve_greedy(
    std::span<const model::Customer> customers,
    const model::AntennaSpec& type);

[[nodiscard]] CoverResult solve_sweep_nextfit(
    std::span<const model::Customer> customers,
    const model::AntennaSpec& type);

/// Exact by escalating k (bounded by `max_k`, throws std::runtime_error if
/// exceeded; preconditions as sectors::solve_exact for each k).
[[nodiscard]] CoverResult solve_exact(
    std::span<const model::Customer> customers,
    const model::AntennaSpec& type, std::size_t max_k = 8);

}  // namespace sectorpack::cover
