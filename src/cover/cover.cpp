#include "src/cover/cover.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/geom/arc.hpp"
#include "src/geom/sweep.hpp"
#include "src/model/validate.hpp"
#include "src/sectors/sectors.hpp"
#include "src/single/single.hpp"

namespace sectorpack::cover {

namespace {

// Customers that this antenna type can never serve.
std::vector<std::size_t> find_blockers(
    std::span<const model::Customer> customers,
    const model::AntennaSpec& type) {
  std::vector<std::size_t> blockers;
  for (std::size_t i = 0; i < customers.size(); ++i) {
    const geom::Polar p = geom::to_polar(customers[i].pos);
    if (p.r > type.range * (1.0 + geom::kRadiusEps) ||
        p.r < type.min_range * (1.0 - geom::kRadiusEps) ||
        customers[i].demand > type.capacity * (1.0 + 1e-12)) {
      blockers.push_back(i);
    }
  }
  return blockers;
}

struct PolarView {
  std::vector<double> thetas;
  std::vector<double> demands;
};

PolarView polar_view(std::span<const model::Customer> customers) {
  PolarView v;
  v.thetas.reserve(customers.size());
  v.demands.reserve(customers.size());
  for (const model::Customer& c : customers) {
    v.thetas.push_back(geom::to_polar(c.pos).theta);
    v.demands.push_back(c.demand);
  }
  return v;
}

}  // namespace

bool validate_cover(std::span<const model::Customer> customers,
                    const model::AntennaSpec& type,
                    const CoverResult& result) {
  if (!result.feasible) return false;
  if (result.assign.size() != customers.size()) return false;
  std::vector<double> loads(result.alphas.size(), 0.0);
  for (std::size_t i = 0; i < customers.size(); ++i) {
    const std::int32_t a = result.assign[i];
    if (a < 0 || static_cast<std::size_t>(a) >= result.alphas.size()) {
      return false;  // a cover must serve EVERY customer
    }
    const auto j = static_cast<std::size_t>(a);
    const geom::Sector sec{result.alphas[j], type.rho, type.range};
    if (!sec.contains(customers[i].pos)) return false;
    loads[j] += customers[i].demand;
  }
  for (double load : loads) {
    if (load > type.capacity * (1.0 + 1e-9) + 1e-9) return false;
  }
  return true;
}

std::size_t min_arcs_to_cover(std::span<const double> thetas, double rho) {
  const std::size_t n = thetas.size();
  if (n == 0) return 0;
  if (rho >= geom::kTwoPi - geom::kAngleEps) return 1;

  std::vector<double> sorted(n);
  for (std::size_t i = 0; i < n; ++i) sorted[i] = geom::normalize(thetas[i]);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end(),
                           [](double a, double b) {
                             return geom::angles_equal(a, b);
                           }),
               sorted.end());
  const std::size_t m = sorted.size();
  if (m == 1) return 1;

  // Doubled array for circular jumps: next[p] = first position strictly
  // beyond the arc anchored at p.
  std::vector<double> a2(2 * m);
  for (std::size_t p = 0; p < m; ++p) {
    a2[p] = sorted[p];
    a2[p + m] = sorted[p] + geom::kTwoPi;
  }
  std::vector<std::size_t> next(2 * m);
  std::size_t q = 0;
  for (std::size_t p = 0; p < 2 * m; ++p) {
    if (q < p) q = p;
    const double limit = a2[p] + rho + geom::kAngleEps;
    while (q < 2 * m && a2[q] <= limit) ++q;
    next[p] = q;
  }

  // Greedy jump from every anchor; the minimum over anchors is optimal
  // (some optimal solution has an arc whose leading edge is at a point).
  std::size_t best = m;
  for (std::size_t s = 0; s < m; ++s) {
    std::size_t count = 0;
    std::size_t p = s;
    while (p < s + m) {
      p = next[p];
      ++count;
      if (count >= best) break;  // prune
    }
    best = std::min(best, count);
  }
  return best;
}

std::size_t lower_bound(std::span<const model::Customer> customers,
                        const model::AntennaSpec& type) {
  if (customers.empty()) return 0;
  double total = 0.0;
  for (const model::Customer& c : customers) total += c.demand;
  const std::size_t by_capacity =
      type.capacity > 0.0
          ? static_cast<std::size_t>(
                std::ceil(total / type.capacity - 1e-9))
          : customers.size();
  const PolarView v = polar_view(customers);
  const std::size_t by_geometry = min_arcs_to_cover(v.thetas, type.rho);
  return std::max(by_capacity, by_geometry);
}

CoverResult solve_greedy(std::span<const model::Customer> customers,
                         const model::AntennaSpec& type) {
  CoverResult result;
  result.blockers = find_blockers(customers, type);
  if (!result.blockers.empty()) {
    result.feasible = false;
    return result;
  }
  result.assign.assign(customers.size(), model::kUnserved);
  if (customers.empty()) return result;

  const PolarView v = polar_view(customers);
  std::vector<bool> served(customers.size(), false);
  std::size_t remaining = customers.size();

  std::vector<double> thetas;
  std::vector<double> demands;
  std::vector<std::size_t> index;
  while (remaining > 0) {
    thetas.clear();
    demands.clear();
    index.clear();
    for (std::size_t i = 0; i < customers.size(); ++i) {
      if (!served[i]) {
        thetas.push_back(v.thetas[i]);
        demands.push_back(v.demands[i]);
        index.push_back(i);
      }
    }
    const single::WindowChoice choice = single::best_window(
        thetas, demands, type.rho, type.capacity,
        knapsack::Oracle::exact());
    if (choice.chosen.empty()) {
      // Cannot happen: every remaining customer fits alone (no blockers).
      throw std::logic_error("cover::solve_greedy: stalled");
    }
    const auto antenna = static_cast<std::int32_t>(result.alphas.size());
    result.alphas.push_back(choice.alpha);
    for (std::size_t local : choice.chosen) {
      const std::size_t i = index[local];
      served[i] = true;
      result.assign[i] = antenna;
      --remaining;
    }
  }
  return result;
}

CoverResult solve_sweep_nextfit(std::span<const model::Customer> customers,
                                const model::AntennaSpec& type) {
  CoverResult result;
  result.blockers = find_blockers(customers, type);
  if (!result.blockers.empty()) {
    result.feasible = false;
    return result;
  }
  result.assign.assign(customers.size(), model::kUnserved);
  const std::size_t n = customers.size();
  if (n == 0) return result;

  const PolarView v = polar_view(customers);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return geom::normalize(v.thetas[a]) < geom::normalize(v.thetas[b]);
  });

  CoverResult best;
  best.assign.assign(n, model::kUnserved);
  std::size_t best_count = n + 1;

  // Next-fit walk from every cut position.
  for (std::size_t cut = 0; cut < n; ++cut) {
    std::vector<double> alphas;
    std::vector<std::int32_t> assign(n, model::kUnserved);
    double window_start = 0.0;
    double load = 0.0;
    bool open = false;
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = order[(cut + step) % n];
      const double theta = geom::normalize(v.thetas[i]);
      const double d = v.demands[i];
      const bool fits_window =
          open && geom::ccw_delta(window_start, theta) <=
                      type.rho + geom::kAngleEps;
      const bool fits_capacity = open && load + d <= type.capacity + 1e-9;
      if (!open || !fits_window || !fits_capacity) {
        alphas.push_back(theta);
        window_start = theta;
        load = 0.0;
        open = true;
      }
      assign[i] = static_cast<std::int32_t>(alphas.size() - 1);
      load += d;
      if (alphas.size() >= best_count) break;  // prune
    }
    if (alphas.size() < best_count &&
        std::none_of(assign.begin(), assign.end(), [](std::int32_t a) {
          return a == model::kUnserved;
        })) {
      best_count = alphas.size();
      best.alphas = std::move(alphas);
      best.assign = std::move(assign);
    }
  }
  best.feasible = true;
  return best;
}

CoverResult solve_exact(std::span<const model::Customer> customers,
                        const model::AntennaSpec& type, std::size_t max_k) {
  CoverResult result;
  result.blockers = find_blockers(customers, type);
  if (!result.blockers.empty()) {
    result.feasible = false;
    return result;
  }
  result.assign.assign(customers.size(), model::kUnserved);
  if (customers.empty()) return result;

  double total = 0.0;
  for (const model::Customer& c : customers) total += c.demand;

  const std::size_t start = std::max<std::size_t>(
      lower_bound(customers, type), 1);
  for (std::size_t k = start; k <= max_k; ++k) {
    std::vector<model::AntennaSpec> specs(k, type);
    const model::Instance inst{{customers.begin(), customers.end()}, specs};
    const model::Solution sol = sectors::solve_exact(inst);
    if (model::served_demand(inst, sol) >= total - 1e-9) {
      result.alphas = sol.alpha;
      result.assign = sol.assign;
      // Drop trailing antennas that serve nothing.
      std::vector<bool> used(k, false);
      for (std::int32_t a : result.assign) {
        if (a != model::kUnserved) used[static_cast<std::size_t>(a)] = true;
      }
      std::vector<std::int32_t> remap(k, -1);
      std::vector<double> alphas;
      for (std::size_t j = 0; j < k; ++j) {
        if (used[j]) {
          remap[j] = static_cast<std::int32_t>(alphas.size());
          alphas.push_back(result.alphas[j]);
        }
      }
      for (std::int32_t& a : result.assign) {
        // Defensive: a vanishing demand could pass the served-total check
        // while unserved; keep the sentinel rather than indexing with it
        // (validate_cover will then reject the result loudly).
        if (a != model::kUnserved) a = remap[static_cast<std::size_t>(a)];
      }
      result.alphas = std::move(alphas);
      return result;
    }
  }
  throw std::runtime_error("cover::solve_exact: max_k exceeded");
}

}  // namespace sectorpack::cover
