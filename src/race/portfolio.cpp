#include "src/race/race.hpp"

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "src/bench_util/timer.hpp"
#include "src/bounds/upper.hpp"
#include "src/core/sync.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/par/parallel_for.hpp"
#include "src/par/thread_pool.hpp"
#include "src/srv/solvers.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::race {

namespace {

/// Tolerance for the proved-optimal check against trivial_bound. The bound
/// and served_value sum the same demands in different orders, so they can
/// differ by accumulated rounding even at true optimality.
constexpr double kBoundEps = 1e-9;

/// Shared best-so-far cell. Lanes publish under the mutex; the warm-start
/// exchange reads the seed from here (deterministically greedy's result:
/// the only publish that can precede a lane start is phase A's). Adoption
/// order is value-then-priority, the same rule as the final selection, so
/// the cell's content never depends on publish interleaving.
class Incumbent {
 public:
  /// Adopt `sol` if it beats the current best; returns whether adopted.
  bool publish(const model::Solution& sol, double value, int priority) {
    const core::LockGuard lock(mu_);
    if (has_ && (value < value_ || (value == value_ && priority >= priority_))) {
      return false;
    }
    best_ = sol;
    value_ = value;
    priority_ = priority;
    has_ = true;
    return true;
  }

  /// Snapshot for a lane about to warm-start; false when nothing published.
  bool snapshot(model::Solution& out) const {
    const core::LockGuard lock(mu_);
    if (!has_) return false;
    out = best_;
    return true;
  }

 private:
  mutable core::Mutex mu_;
  model::Solution best_ SP_GUARDED_BY(mu_);
  double value_ SP_GUARDED_BY(mu_) = 0.0;
  int priority_ SP_GUARDED_BY(mu_) = 0;
  bool has_ SP_GUARDED_BY(mu_) = false;
};

/// True when `outcome` ends the race: a completed solution whose value
/// meets the cheap upper bound is provably optimal, so the still-running
/// lanes cannot do better.
bool proves_optimal(const LaneOutcome& outcome, double bound) {
  return outcome.ran && outcome.error.empty() &&
         outcome.status == model::SolveStatus::kComplete &&
         outcome.value + kBoundEps >= bound;
}

}  // namespace

std::vector<std::string> parse_portfolio(const std::string& spec) {
  std::vector<std::string> portfolio;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    std::string name = spec.substr(begin, end - begin);
    for (char& c : name) {
      if (c == '_') c = '-';  // local_search works unquoted in shells
    }
    if (name.empty()) {
      throw std::invalid_argument("portfolio: empty family name in '" + spec +
                                  "'");
    }
    if (name == "race") {
      throw std::invalid_argument("portfolio: 'race' cannot race itself");
    }
    if (srv::find_solver_family(name) == nullptr) {
      throw std::invalid_argument("portfolio: unknown solver family '" + name +
                                  "' (known: " + srv::solver_family_names(", ") +
                                  ")");
    }
    for (const std::string& existing : portfolio) {
      if (existing == name) {
        throw std::invalid_argument("portfolio: duplicate family '" + name +
                                    "'");
      }
    }
    portfolio.push_back(std::move(name));
    begin = end + 1;
  }
  return portfolio;
}

model::Solution solve(const model::Instance& inst, const RaceConfig& config,
                      RaceStats* stats) {
  static const obs::Counter c_publishes =
      obs::counter("race.incumbent_publishes");
  static const obs::Counter c_adoptions =
      obs::counter("race.exchange_adoptions");
  static const obs::Counter c_cancelled = obs::counter("race.cancelled");
  static obs::HdrHistogram h_win_ms = obs::hdr_histogram("race.win_ms");
  const obs::ScopedSpan span("race.solve");
  const bench_util::Timer timer;

  if (config.portfolio.empty()) {
    throw std::invalid_argument("race: empty portfolio");
  }
  std::vector<const srv::SolverFamily*> lanes;
  lanes.reserve(config.portfolio.size());
  for (const std::string& name : config.portfolio) {
    if (name == "race") {
      throw std::invalid_argument("race: 'race' cannot race itself");
    }
    const srv::SolverFamily* family = srv::find_solver_family(name);
    if (family == nullptr) {
      throw std::invalid_argument("race: unknown solver family '" + name +
                                  "'");
    }
    for (const srv::SolverFamily* seen : lanes) {
      if (seen == family) {
        throw std::invalid_argument("race: duplicate family '" + name + "'");
      }
    }
    lanes.push_back(family);
  }

  RaceStats local_stats;
  RaceStats& st = stats != nullptr ? *stats : local_stats;
  st = RaceStats{};
  st.lanes.resize(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    st.lanes[i].family = lanes[i]->name;
  }

  const core::Deadline& cap = config.solve.deadline;
  if (cap.expired()) {
    // Degrade like every family: feasible empty incumbent, honest status.
    model::Solution sol = model::Solution::empty_for(inst);
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("race");
    verify::debug_postcondition(inst, sol, "race::solve(pre-expired)");
    return sol;
  }

  const double bound = bounds::trivial_bound(inst);
  srv::SolverKey key;
  key.seed = config.seed;
  key.iterations = config.iterations;

  // The race hub: every lane's deadline hangs under it, so one cancel()
  // here -- cancel-on-winner, or an external cancel of `cap` propagating
  // through the deadline tree -- stops the whole field.
  const core::Deadline race_dl = core::Deadline::after_at_most(-1.0, cap);
  const auto lane_options = [&]() {
    return core::SolveOptions{
        core::Deadline::after_at_most(config.slice_seconds, race_dl)};
  };

  Incumbent incumbent;
  // Each lane writes only its own slot; the phase-B pool join is the
  // barrier before the selection pass reads them all.
  std::vector<model::Solution> lane_solutions(lanes.size());
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::uint64_t> adoptions{0};
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
  std::atomic<bool> winner_declared{false};
  std::atomic<std::uint64_t> cancelled_lanes{0};

  // Runs lane `i` to completion and scores its outcome; used inline for
  // phase A and from pool threads for phase B (must not throw).
  const auto run_lane = [&](std::size_t i, const model::Solution* seed) {
    // sp-sync: started/adoptions are pure event counters; nothing reads
    // them for control flow until after the pool join below, which is the
    // happens-before edge, so relaxed increments suffice.
    started.fetch_add(1, std::memory_order_relaxed);
    LaneOutcome& outcome = st.lanes[i];
    srv::SolverKey lane_key = key;
    lane_key.family = lanes[i]->name;
    try {
      model::Solution sol;
      if (seed != nullptr && lanes[i]->run_seeded != nullptr) {
        adoptions.fetch_add(1, std::memory_order_relaxed);
        sol = lanes[i]->run_seeded(inst, lane_key, lane_options(), *seed);
      } else {
        sol = lanes[i]->run(inst, lane_key, lane_options());
      }
      outcome.ran = true;
      outcome.status = sol.status;
      outcome.value = model::served_value(inst, sol);
      // sp-sync: publishes is an event counter read only after the pool
      // join (the happens-before edge); relaxed suffices.
      if (incumbent.publish(sol, outcome.value, lanes[i]->priority)) {
        publishes.fetch_add(1, std::memory_order_relaxed);
      }
      lane_solutions[i] = std::move(sol);
    } catch (const std::exception& e) {
      // A structurally inapplicable lane (e.g. exact's tuple-space
      // overflow) scores nothing; the race goes on without it.
      outcome.ran = true;
      outcome.error = e.what();
    }
    // sp-sync: finished is an event counter; the winner's declare below
    // reads started/finished only for the (approximate by design)
    // cancelled metric, and the acq_rel exchange on winner_declared
    // orders the one cancelled_lanes.store against the post-join load.
    finished.fetch_add(1, std::memory_order_relaxed);
    if (proves_optimal(outcome, bound) &&
        !winner_declared.exchange(true, std::memory_order_acq_rel)) {
      // Cancel-on-winner: lanes still running cannot beat a proved
      // optimum; stop them through the deadline tree. Only started-but-
      // unfinished lanes count as cancelled -- a phase-A win launches no
      // losers at all (skipped, not cancelled).
      // sp-sync: the cancelled metric is approximate by design (a lane
      // may start or finish while we compute it), so relaxed loads are
      // exactly as good as stronger ones here.
      const std::uint64_t still_running =
          started.load(std::memory_order_relaxed) -
          finished.load(std::memory_order_relaxed);
      cancelled_lanes.store(still_running, std::memory_order_relaxed);
      race_dl.cancel();
      obs::trace_instant("race.winner_declared");
    }
  };

  // Phase A: the greedy lane (when present) runs first, inline. Its result
  // is the warm-start seed for every seedable lane, which keeps the
  // exchange *structural* -- later lanes never read a timing-dependent
  // snapshot -- and gives the earliest possible proved-optimal exit.
  std::size_t greedy_lane = lanes.size();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (std::string_view(lanes[i]->name) == "greedy") greedy_lane = i;
  }
  if (greedy_lane != lanes.size()) run_lane(greedy_lane, nullptr);

  model::Solution seed_solution;
  const bool have_seed = incumbent.snapshot(seed_solution);

  // Phase B: the remaining lanes race on a dedicated pool. This host may
  // be a single core -- the pool still makes every lane *start* promptly
  // (OS preemption interleaves them), which cancel-on-winner then turns
  // into real wall-time savings.
  if (!winner_declared.load(std::memory_order_acquire)) {
    std::vector<std::size_t> remaining;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (i != greedy_lane) remaining.push_back(i);
    }
    if (!remaining.empty()) {
      par::ThreadPool pool(static_cast<unsigned>(remaining.size()));
      par::parallel_for(
          remaining.size(), /*grain=*/1,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t r = begin; r < end; ++r) {
              run_lane(remaining[r], have_seed ? &seed_solution : nullptr);
            }
          },
          &pool);
    }
  } else {
    // Phase A already proved optimality: the other lanes are never
    // launched (cheaper than launch-then-cancel; they count as skipped,
    // not cancelled).
  }

  // Deterministic selection over settled outcomes: value, then fixed
  // family priority. Independent of publish interleaving by construction.
  std::size_t best = lanes.size();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const LaneOutcome& outcome = st.lanes[i];
    if (!outcome.ran || !outcome.error.empty()) continue;
    if (best == lanes.size() || outcome.value > st.lanes[best].value ||
        (outcome.value == st.lanes[best].value &&
         lanes[i]->priority < lanes[best]->priority)) {
      best = i;
    }
  }
  if (best == lanes.size()) {
    // Every lane errored or was skipped: degrade to the feasible empty
    // solution rather than propagate a lane-specific exception.
    model::Solution sol = model::Solution::empty_for(inst);
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("race");
    verify::debug_postcondition(inst, sol, "race::solve(no-lane)");
    return sol;
  }

  st.winner = lanes[best]->name;
  st.proved_optimal = proves_optimal(st.lanes[best], bound);
  // sp-sync: every lane finished before the pool join above, so these
  // relaxed loads see the final counter values; no concurrent writers.
  st.cancelled = cancelled_lanes.load(std::memory_order_relaxed);
  st.incumbent_publishes = publishes.load(std::memory_order_relaxed);
  st.exchange_adoptions = adoptions.load(std::memory_order_relaxed);
  st.win_ms = timer.elapsed_ms();

  c_publishes.add(st.incumbent_publishes);
  c_adoptions.add(st.exchange_adoptions);
  c_cancelled.add(st.cancelled);
  // Rare path (once per race): composed-name registration is fine here,
  // same as core::note_expired.
  obs::counter(std::string("race.winner.") + st.winner).inc();
  h_win_ms.observe(st.win_ms);

  model::Solution result = std::move(lane_solutions[best]);
  if (st.proved_optimal) {
    // The winner ran to completion at the upper bound; cancelled losers
    // provably could not have beaten it, so their truncation does not
    // taint the race's status.
    result.status = st.lanes[best].status;
  } else {
    // Honest composition: the race is complete only if every lane that
    // could have contributed ran to completion. Lanes that never ran or
    // errored count as exhausted budget -- the race did not extract their
    // answer.
    model::SolveStatus status = model::SolveStatus::kComplete;
    for (const LaneOutcome& outcome : st.lanes) {
      status = model::worst_of(
          status, outcome.ran && outcome.error.empty()
                      ? outcome.status
                      : model::SolveStatus::kBudgetExhausted);
    }
    result.status = status;
  }
  if (result.status == model::SolveStatus::kBudgetExhausted) {
    core::note_expired("race");
  }
  verify::debug_postcondition(inst, result, "race::solve");
  return result;
}

}  // namespace sectorpack::race
