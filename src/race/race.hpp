#pragma once
// Portfolio racing: run several solver families concurrently under one
// deadline and return the best solution any of them found.
//
// The paper's families have sharply different quality/latency profiles by
// instance shape -- greedy is near-instant, local search and annealing
// trade time for quality, exact is optimal but blows up combinatorially --
// and no single family dominates (cf. PAPERS.md on competing CLP
// formulations). race::solve turns that spread into a feature: each
// portfolio member runs in its own lane with its own sub-deadline, every
// completed result is published to a shared incumbent cell, and the first
// lane that provably hits bounds::trivial_bound cancels the rest through
// the deadline tree (core::Deadline::after_at_most links each lane's
// deadline under the race's cancellable hub).
//
// Determinism contract: the greedy lane always runs first, inline, and is
// the warm-start seed handed to every seedable lane -- lanes never seed
// from a timing-dependent snapshot -- and the winner is selected *after*
// all lanes settle by (value, then fixed family priority from the solver
// registry). With an unlimited budget the output is therefore byte-
// identical run to run; scheduling only moves wall time, never the answer.
// See docs/performance.md "Portfolio racing".

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/deadline.hpp"
#include "src/model/solution.hpp"

namespace sectorpack::race {

struct RaceConfig {
  /// Families to race, by registry name. Must be non-empty, duplicate-free
  /// and must not contain "race" itself (solve throws std::invalid_argument
  /// otherwise). Order does not affect the result -- only values and the
  /// registry priorities do.
  std::vector<std::string> portfolio = {"greedy", "local-search", "annealing"};
  /// Forwarded to families that consume them (annealing today).
  std::uint64_t seed = 1;
  std::uint64_t iterations = 2000;
  /// Per-lane wall-clock budget, each clamped under solve.deadline. A
  /// negative value means lanes share the full remaining cap.
  double slice_seconds = -1.0;
  /// The race-wide cap. Its cancel() (drain, SIGINT) reaches every lane
  /// through the deadline tree.
  core::SolveOptions solve;
};

/// Per-lane outcome, for stats/debugging; `ran` is false when the lane was
/// skipped (pre-expired budget) and `error` carries e.g. the exact
/// solver's tuple-space overflow message (an errored lane simply scores no
/// result; the race goes on).
struct LaneOutcome {
  std::string family;
  double value = 0.0;
  model::SolveStatus status = model::SolveStatus::kBudgetExhausted;
  bool ran = false;
  std::string error;
};

/// What happened, mirrored into the race.* obs metrics.
struct RaceStats {
  std::string winner;
  bool proved_optimal = false;     ///< winner matched bounds::trivial_bound
  std::uint64_t cancelled = 0;     ///< lanes cancelled by cancel-on-winner
  std::uint64_t incumbent_publishes = 0;
  std::uint64_t exchange_adoptions = 0;  ///< lanes that adopted the seed
  double win_ms = 0.0;             ///< start to winning lane's finish
  std::vector<LaneOutcome> lanes;
};

/// Parse a CLI/request portfolio spec: comma-separated family names,
/// '_' accepted for '-' (so `local_search` works unquoted in shells).
/// Throws std::invalid_argument on empty parts, unknown families,
/// duplicates, or "race" itself.
[[nodiscard]] std::vector<std::string> parse_portfolio(
    const std::string& spec);

/// Race the configured portfolio. The returned solution is feasible
/// (verify::debug_postcondition checked), its status composed honestly:
/// kComplete only when the winner proved optimality or every lane ran to
/// completion. A pre-expired deadline degrades to the empty solution with
/// kBudgetExhausted, like every other solver family.
[[nodiscard]] model::Solution solve(const model::Instance& inst,
                                    const RaceConfig& config = {},
                                    RaceStats* stats = nullptr);

}  // namespace sectorpack::race
