#pragma once
// SVG rendering of instances and solutions: the base station at the center,
// customers as demand-scaled dots colored by their serving antenna, and
// each antenna's oriented sector as a translucent wedge. Pure string
// generation -- no external dependencies -- intended for reports, debugging
// and the examples.

#include <string>

#include "src/model/solution.hpp"

namespace sectorpack::viz {

struct SvgOptions {
  double size_px = 800.0;       // square canvas edge
  bool draw_sectors = true;     // antenna wedges (needs a solution)
  bool draw_range_rings = true; // dashed circle per distinct antenna range
  bool label_antennas = true;
};

/// Render the instance (and optionally a solution's sectors/assignment)
/// as a standalone SVG document.
[[nodiscard]] std::string render_svg(const model::Instance& inst,
                                     const model::Solution* sol = nullptr,
                                     const SvgOptions& options = {});

/// Convenience: render_svg + write to `path`. Throws std::runtime_error on
/// I/O failure.
void write_svg(const std::string& path, const model::Instance& inst,
               const model::Solution* sol = nullptr,
               const SvgOptions& options = {});

}  // namespace sectorpack::viz
