#include "src/viz/svg.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/geom/sector.hpp"

namespace sectorpack::viz {

namespace {

// Categorical palette for antennas (cycled); unserved customers are gray.
constexpr const char* kPalette[] = {
    "#4363d8", "#e6194b", "#3cb44b", "#f58231", "#911eb4",
    "#46f0f0", "#f032e6", "#bcf60c", "#008080", "#9a6324",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

const char* antenna_color(std::size_t j) {
  return kPalette[j % kPaletteSize];
}

struct Mapper {
  double scale;
  double center;
  // World (x, y) -> SVG pixel; SVG's y axis points down.
  [[nodiscard]] double px(double x) const { return center + x * scale; }
  [[nodiscard]] double py(double y) const { return center - y * scale; }
};

void append_wedge(std::ostringstream& os, const Mapper& map, double alpha,
                  double rho, double radius, const char* color) {
  if (rho >= geom::kTwoPi - geom::kAngleEps) {
    os << "  <circle cx='" << map.px(0) << "' cy='" << map.py(0) << "' r='"
       << radius * map.scale << "' fill='" << color
       << "' fill-opacity='0.12' stroke='" << color << "'/>\n";
    return;
  }
  const geom::Vec2 p1 = geom::from_polar(alpha, radius);
  const geom::Vec2 p2 = geom::from_polar(alpha + rho, radius);
  const int large_arc = rho > geom::kPi ? 1 : 0;
  // CCW in world coordinates is CW in SVG pixel coordinates (flipped y),
  // hence sweep flag 0.
  os << "  <path d='M " << map.px(0) << " " << map.py(0) << " L "
     << map.px(p1.x) << " " << map.py(p1.y) << " A " << radius * map.scale
     << " " << radius * map.scale << " 0 " << large_arc << " 0 "
     << map.px(p2.x) << " " << map.py(p2.y) << " Z' fill='" << color
     << "' fill-opacity='0.12' stroke='" << color << "'/>\n";
}

}  // namespace

std::string render_svg(const model::Instance& inst,
                       const model::Solution* sol,
                       const SvgOptions& options) {
  // World extent: the larger of the farthest customer and the longest range.
  double extent = 1.0;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    extent = std::max(extent, inst.radius(i));
  }
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    extent = std::max(extent, inst.antenna(j).range);
  }
  extent *= 1.08;  // margin

  const double size = options.size_px;
  const Mapper map{size / (2.0 * extent), size / 2.0};

  double max_demand = 1e-12;
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    max_demand = std::max(max_demand, inst.demand(i));
  }

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << size
     << "' height='" << size << "' viewBox='0 0 " << size << " " << size
     << "'>\n";
  os << "  <rect width='100%' height='100%' fill='white'/>\n";

  if (options.draw_range_rings) {
    std::vector<double> ranges;
    for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
      ranges.push_back(inst.antenna(j).range);
    }
    std::sort(ranges.begin(), ranges.end());
    ranges.erase(std::unique(ranges.begin(), ranges.end()), ranges.end());
    for (double r : ranges) {
      os << "  <circle cx='" << map.px(0) << "' cy='" << map.py(0)
         << "' r='" << r * map.scale
         << "' fill='none' stroke='#cccccc' stroke-dasharray='6 4'/>\n";
    }
  }

  if (sol != nullptr && options.draw_sectors) {
    for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
      append_wedge(os, map, sol->alpha[j], inst.antenna(j).rho,
                   inst.antenna(j).range, antenna_color(j));
      if (options.label_antennas) {
        const geom::Vec2 label_at = geom::from_polar(
            sol->alpha[j] + inst.antenna(j).rho / 2.0,
            inst.antenna(j).range * 0.85);
        os << "  <text x='" << map.px(label_at.x) << "' y='"
           << map.py(label_at.y) << "' font-size='" << size / 40.0
           << "' fill='" << antenna_color(j) << "'>A" << j << "</text>\n";
      }
    }
  }

  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    const geom::Vec2 p = inst.customer(i).pos;
    const double r_px =
        3.0 + 7.0 * std::sqrt(inst.demand(i) / max_demand);
    const char* color = "#888888";
    double opacity = 0.55;
    if (sol != nullptr && sol->assign[i] != model::kUnserved) {
      color = antenna_color(static_cast<std::size_t>(sol->assign[i]));
      opacity = 0.9;
    }
    os << "  <circle cx='" << map.px(p.x) << "' cy='" << map.py(p.y)
       << "' r='" << r_px << "' fill='" << color << "' fill-opacity='"
       << opacity << "'/>\n";
  }

  // Base station.
  os << "  <rect x='" << map.px(0) - 5 << "' y='" << map.py(0) - 5
     << "' width='10' height='10' fill='black'/>\n";
  os << "</svg>\n";
  return os.str();
}

void write_svg(const std::string& path, const model::Instance& inst,
               const model::Solution* sol, const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_svg: cannot open " + path);
  }
  out << render_svg(inst, sol, options);
  if (!out) {
    throw std::runtime_error("write_svg: write failed for " + path);
  }
}

}  // namespace sectorpack::viz
