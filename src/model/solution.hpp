#pragma once
// Solution representation and objective evaluation.

#include <cstdint>
#include <vector>

#include "src/model/instance.hpp"

namespace sectorpack::model {

/// Sentinel assignment for an unserved customer.
inline constexpr std::int32_t kUnserved = -1;

/// How a solver finished. kBudgetExhausted marks an anytime result: the
/// solver's deadline expired and it returned its current incumbent -- still
/// feasible (model::validate accepts both statuses identically), but with
/// no claim to the solver's usual guarantee. Sticky across composition: a
/// solution built on a truncated sub-solve stays kBudgetExhausted.
enum class SolveStatus : std::uint8_t {
  kComplete = 0,
  kBudgetExhausted = 1,
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

/// Severity rank of a status: worst_of keeps the maximum. The switch is
/// deliberately exhaustive with no default -- adding a SolveStatus
/// enumerator (say, a race loser's kCancelled) without ranking it here is
/// a -Wswitch error under -Werror, so a new status can never silently
/// launder into kComplete the way the old "anything non-exhausted is
/// complete" rule would have let it.
[[nodiscard]] constexpr unsigned severity(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::kComplete: return 0;
    case SolveStatus::kBudgetExhausted: return 1;
  }
  // Out-of-range byte (reachable only through memory corruption; io and
  // verify reject it earlier): rank above every defined status so it
  // stays sticky through composition too.
  return 255;
}

/// Combine: the most severe status wins (the sticky rule above). Maximum
/// over severity(), not an enumerator comparison, so the rule stays
/// correct however future enumerators are numbered.
[[nodiscard]] constexpr SolveStatus worst_of(SolveStatus a,
                                             SolveStatus b) noexcept {
  return severity(a) >= severity(b) ? a : b;
}

static_assert(severity(SolveStatus::kComplete) <
                  severity(SolveStatus::kBudgetExhausted),
              "kComplete must rank strictly below kBudgetExhausted");
static_assert(worst_of(SolveStatus::kComplete,
                       SolveStatus::kBudgetExhausted) ==
              SolveStatus::kBudgetExhausted);
static_assert(worst_of(SolveStatus::kBudgetExhausted,
                       SolveStatus::kComplete) ==
              SolveStatus::kBudgetExhausted);
static_assert(worst_of(SolveStatus::kComplete, SolveStatus::kComplete) ==
              SolveStatus::kComplete);

struct Solution {
  /// Orientation alpha_j (leading edge) per antenna, normalized [0, 2*pi).
  std::vector<double> alpha;
  /// assign[i] = index of the antenna serving customer i, or kUnserved.
  std::vector<std::int32_t> assign;
  /// Whether the producing solver ran to completion; see SolveStatus.
  SolveStatus status = SolveStatus::kComplete;

  /// All-unserved solution shaped for `inst` (alphas default to 0).
  [[nodiscard]] static Solution empty_for(const Instance& inst);
};

/// Total demand of customers with a non-kUnserved assignment. Does not check
/// feasibility; pair with model::validate for that.
[[nodiscard]] double served_demand(const Instance& inst, const Solution& sol);

/// Total objective value of served customers. Equal to served_demand on
/// unweighted instances; this is what the solvers maximize.
[[nodiscard]] double served_value(const Instance& inst, const Solution& sol);

/// Number of customers served.
[[nodiscard]] std::size_t served_count(const Solution& sol);

/// Demand loaded onto each antenna by `sol` (size = num_antennas).
[[nodiscard]] std::vector<double> antenna_loads(const Instance& inst,
                                                const Solution& sol);

}  // namespace sectorpack::model
