#pragma once
// Solution representation and objective evaluation.

#include <cstdint>
#include <vector>

#include "src/model/instance.hpp"

namespace sectorpack::model {

/// Sentinel assignment for an unserved customer.
inline constexpr std::int32_t kUnserved = -1;

struct Solution {
  /// Orientation alpha_j (leading edge) per antenna, normalized [0, 2*pi).
  std::vector<double> alpha;
  /// assign[i] = index of the antenna serving customer i, or kUnserved.
  std::vector<std::int32_t> assign;

  /// All-unserved solution shaped for `inst` (alphas default to 0).
  [[nodiscard]] static Solution empty_for(const Instance& inst);
};

/// Total demand of customers with a non-kUnserved assignment. Does not check
/// feasibility; pair with model::validate for that.
[[nodiscard]] double served_demand(const Instance& inst, const Solution& sol);

/// Total objective value of served customers. Equal to served_demand on
/// unweighted instances; this is what the solvers maximize.
[[nodiscard]] double served_value(const Instance& inst, const Solution& sol);

/// Number of customers served.
[[nodiscard]] std::size_t served_count(const Solution& sol);

/// Demand loaded onto each antenna by `sol` (size = num_antennas).
[[nodiscard]] std::vector<double> antenna_loads(const Instance& inst,
                                                const Solution& sol);

}  // namespace sectorpack::model
