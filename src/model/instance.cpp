#include "src/model/instance.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace sectorpack::model {

Instance::Instance(std::vector<Customer> customers,
                   std::vector<AntennaSpec> antennas)
    : customers_(std::move(customers)), antennas_(std::move(antennas)) {
  thetas_.reserve(customers_.size());
  radii_.reserve(customers_.size());
  values_.reserve(customers_.size());
  for (const Customer& c : customers_) {
    if (!(c.demand > 0.0) || !std::isfinite(c.demand)) {
      throw std::invalid_argument("customer demand must be finite and > 0");
    }
    double v = c.value;
    if (v == Customer::kValueIsDemand) {
      v = c.demand;
    } else {
      if (!(v >= 0.0) || !std::isfinite(v)) {
        throw std::invalid_argument(
            "customer value must be finite and >= 0 (or kValueIsDemand)");
      }
      if (v != c.demand) value_weighted_ = true;
    }
    const geom::Polar p = geom::to_polar(c.pos);
    thetas_.push_back(p.theta);
    radii_.push_back(p.r);
    values_.push_back(v);
    total_demand_ += c.demand;
    total_value_ += v;
  }
  for (const AntennaSpec& a : antennas_) {
    if (!(a.rho > 0.0) || a.rho > geom::kTwoPi + geom::kAngleEps) {
      throw std::invalid_argument("antenna rho must be in (0, 2*pi]");
    }
    if (!(a.range > 0.0) || !std::isfinite(a.range)) {
      throw std::invalid_argument("antenna range must be finite and > 0");
    }
    if (a.capacity < 0.0 || !std::isfinite(a.capacity)) {
      throw std::invalid_argument("antenna capacity must be finite and >= 0");
    }
    if (a.min_range < 0.0 || a.min_range >= a.range ||
        !std::isfinite(a.min_range)) {
      throw std::invalid_argument(
          "antenna min_range must be in [0, range)");
    }
    total_capacity_ += a.capacity;
  }
}

bool Instance::antennas_identical() const noexcept {
  for (std::size_t j = 1; j < antennas_.size(); ++j) {
    if (antennas_[j].rho != antennas_[0].rho ||
        antennas_[j].range != antennas_[0].range ||
        antennas_[j].capacity != antennas_[0].capacity ||
        antennas_[j].min_range != antennas_[0].min_range) {
      return false;
    }
  }
  return true;
}

bool Instance::has_annular_antennas() const noexcept {
  for (const AntennaSpec& a : antennas_) {
    if (a.min_range > 0.0) return true;
  }
  return false;
}

bool Instance::is_angles_only() const noexcept {
  for (std::size_t j = 0; j < antennas_.size(); ++j) {
    for (std::size_t i = 0; i < customers_.size(); ++i) {
      if (!in_range(i, j)) return false;
    }
  }
  return true;
}

}  // namespace sectorpack::model
