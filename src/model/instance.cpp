#include "src/model/instance.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace sectorpack::model {

namespace {

void validate_customer(const Customer& c) {
  if (!(c.demand > 0.0) || !std::isfinite(c.demand)) {
    throw std::invalid_argument("customer demand must be finite and > 0");
  }
  if (c.value != Customer::kValueIsDemand &&
      (!(c.value >= 0.0) || !std::isfinite(c.value))) {
    throw std::invalid_argument(
        "customer value must be finite and >= 0 (or kValueIsDemand)");
  }
}

void validate_antenna(const AntennaSpec& a) {
  if (!(a.rho > 0.0) || a.rho > geom::kTwoPi + geom::kAngleEps) {
    throw std::invalid_argument("antenna rho must be in (0, 2*pi]");
  }
  if (!(a.range > 0.0) || !std::isfinite(a.range)) {
    throw std::invalid_argument("antenna range must be finite and > 0");
  }
  if (a.capacity < 0.0 || !std::isfinite(a.capacity)) {
    throw std::invalid_argument("antenna capacity must be finite and >= 0");
  }
  if (a.min_range < 0.0 || a.min_range >= a.range ||
      !std::isfinite(a.min_range)) {
    throw std::invalid_argument("antenna min_range must be in [0, range)");
  }
}

}  // namespace

Instance::Instance(std::vector<Customer> customers,
                   std::vector<AntennaSpec> antennas)
    : customers_(std::move(customers)), antennas_(std::move(antennas)) {
  for (const Customer& c : customers_) validate_customer(c);
  for (const AntennaSpec& a : antennas_) validate_antenna(a);
  recompute_aggregates();
}

void Instance::recompute_aggregates() {
  thetas_.clear();
  radii_.clear();
  thetas_.reserve(customers_.size());
  radii_.reserve(customers_.size());
  for (const Customer& c : customers_) {
    const geom::Polar p = geom::to_polar(c.pos);
    thetas_.push_back(p.theta);
    radii_.push_back(p.r);
  }
  refold_scalars();
}

void Instance::refold_scalars() {
  demands_.clear();
  values_.clear();
  demands_.reserve(customers_.size());
  values_.reserve(customers_.size());
  total_demand_ = 0.0;
  total_value_ = 0.0;
  total_capacity_ = 0.0;
  value_weighted_ = false;
  // Left-fold in index order, matching what a fresh construction does, so
  // totals are bitwise reproducible (floating-point addition is not
  // associative; an incremental += after a removal would drift).
  for (const Customer& c : customers_) {
    double v = c.value;
    if (v == Customer::kValueIsDemand) {
      v = c.demand;
    } else if (v != c.demand) {
      value_weighted_ = true;
    }
    demands_.push_back(c.demand);
    values_.push_back(v);
    total_demand_ += c.demand;
    total_value_ += v;
  }
  for (const AntennaSpec& a : antennas_) total_capacity_ += a.capacity;
}

void Instance::invalidate_spatial() noexcept {
  grid_.reset();
  // sp-sync: relaxed restart of the ski-rental counter; an off-by-a-few
  // build point is fine (see spatial_index()).
  grid_.flat_queries.store(0, std::memory_order_relaxed);
}

std::size_t Instance::add_customer(const Customer& c) {
  validate_customer(c);
  customers_.push_back(c);
  // Each polar coordinate is a pure function of its own customer: append
  // the one conversion instead of redoing the O(n) trig pass. Matches
  // what recompute_aggregates would produce element-for-element.
  const geom::Polar p = geom::to_polar(c.pos);
  thetas_.push_back(p.theta);
  radii_.push_back(p.r);
  refold_scalars();
  invalidate_spatial();
  return customers_.size() - 1;
}

void Instance::remove_customer(std::size_t i) {
  if (i >= customers_.size()) {
    throw std::out_of_range("Instance::remove_customer: index out of range");
  }
  customers_.erase(customers_.begin() + static_cast<std::ptrdiff_t>(i));
  thetas_.erase(thetas_.begin() + static_cast<std::ptrdiff_t>(i));
  radii_.erase(radii_.begin() + static_cast<std::ptrdiff_t>(i));
  refold_scalars();
  invalidate_spatial();
}

void Instance::set_demand(std::size_t i, double demand) {
  if (i >= customers_.size()) {
    throw std::out_of_range("Instance::set_demand: index out of range");
  }
  Customer c = customers_[i];
  c.demand = demand;
  validate_customer(c);
  customers_[i] = c;  // position unchanged: thetas_/radii_ stay
  refold_scalars();
  invalidate_spatial();
}

std::size_t Instance::add_antenna(const AntennaSpec& a) {
  validate_antenna(a);
  antennas_.push_back(a);
  refold_scalars();
  // Antenna edits leave the customer geometry alone, but the ski-rental
  // counter amortizes queries for *this* workload shape; restarting it is
  // the conservative reading and costs a handful of flat scans at most.
  invalidate_spatial();
  return antennas_.size() - 1;
}

const geom::PolarGrid& Instance::polar_grid() const {
  const geom::PolarGrid* grid = grid_.ptr.load(std::memory_order_acquire);
  if (grid != nullptr) return *grid;
  auto* fresh = new geom::PolarGrid(thetas_, radii_);
  const geom::PolarGrid* expected = nullptr;
  if (grid_.ptr.compare_exchange_strong(expected, fresh,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;  // another thread won the race; use its grid
  return *expected;
}

const geom::PolarGrid* Instance::spatial_index() const {
  switch (geom::spatial_index_mode()) {
    case geom::SpatialIndexMode::kForceFlat:
      return nullptr;
    case geom::SpatialIndexMode::kForceIndexed:
      return &polar_grid();
    case geom::SpatialIndexMode::kAuto:
      break;
  }
  if (customers_.size() < geom::kSpatialIndexMinCustomers) return nullptr;
  const geom::PolarGrid* grid = grid_.ptr.load(std::memory_order_acquire);
  if (grid != nullptr) return grid;
  // Deferral: answer flat until enough queries accumulated to amortize the
  // build.
  // sp-sync: relaxed counter -- an off-by-a-few build point is fine.
  if (grid_.flat_queries.fetch_add(1, std::memory_order_relaxed) <
      geom::kGridBuildAfterQueries) {
    return nullptr;
  }
  return &polar_grid();
}

void Instance::in_range_customers(std::size_t j,
                                  std::vector<std::size_t>& out) const {
  const AntennaSpec& a = antennas_[j];
  if (const geom::PolarGrid* grid = spatial_index()) {
    // Same multiplications as in_range, hoisted out of the per-customer
    // comparisons (identical values every iteration either way).
    grid->collect_annulus(a.min_range * (1.0 - geom::kRadiusEps),
                          a.range * (1.0 + geom::kRadiusEps), out);
    return;
  }
  out.clear();
  for (std::size_t i = 0; i < customers_.size(); ++i) {
    if (in_range(i, j)) out.push_back(i);
  }
}

bool Instance::antennas_identical() const noexcept {
  for (std::size_t j = 1; j < antennas_.size(); ++j) {
    if (antennas_[j].rho != antennas_[0].rho ||
        antennas_[j].range != antennas_[0].range ||
        antennas_[j].capacity != antennas_[0].capacity ||
        antennas_[j].min_range != antennas_[0].min_range) {
      return false;
    }
  }
  return true;
}

bool Instance::has_annular_antennas() const noexcept {
  for (const AntennaSpec& a : antennas_) {
    if (a.min_range > 0.0) return true;
  }
  return false;
}

bool Instance::is_angles_only() const noexcept {
  for (std::size_t j = 0; j < antennas_.size(); ++j) {
    for (std::size_t i = 0; i < customers_.size(); ++i) {
      if (!in_range(i, j)) return false;
    }
  }
  return true;
}

}  // namespace sectorpack::model
