#include "src/model/io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace sectorpack::model {

namespace {

// Counts above this are rejected outright: no real instance comes close,
// and anything larger is a forged header trying to drive reserve() into
// std::length_error / std::bad_alloc instead of a clean parse error.
constexpr long long kMaxIoCount = 100'000'000;

// reserve() is further capped by stream plausibility: a count that is
// legal but larger than the remaining stream could possibly hold (every
// entity costs at least ~2 bytes of line) must not allocate gigabytes
// before the EOF check catches it; growth past the cap falls back to
// amortized push_back.
constexpr std::size_t kReserveCap = 1 << 16;

// Read the next non-comment, non-blank line; throw on EOF.
std::string next_line(std::istream& is, const char* what) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find('#');
    if (pos != std::string::npos) line.erase(pos);
    const auto first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r\n");
    return line.substr(first, last - first + 1);
  }
  throw std::runtime_error(std::string("unexpected EOF while reading ") +
                           what);
}

// After all expected fields were extracted, the rest of the line must be
// whitespace. Trailing tokens are rejected: `1 2 3 junk` is not a valid
// 3-column customer, and an extra numeric column silently changes meaning
// between the v1 and v2 formats.
void require_line_end(std::istringstream& ls, const char* what,
                      const std::string& line) {
  std::string extra;
  if (ls >> extra) {
    throw std::runtime_error(std::string("trailing garbage on ") + what +
                             " line: '" + line + "'");
  }
}

std::size_t parse_count(const std::string& line, const std::string& keyword) {
  std::istringstream ls(line);
  std::string kw;
  long long count = -1;
  if (!(ls >> kw >> count) || kw != keyword || count < 0) {
    throw std::runtime_error("expected '" + keyword + " <count>' line, got '" +
                             line + "'");
  }
  if (count > kMaxIoCount) {
    throw std::runtime_error("implausible " + keyword + " count in '" + line +
                             "' (max " + std::to_string(kMaxIoCount) + ")");
  }
  require_line_end(ls, keyword.c_str(), line);
  return static_cast<std::size_t>(count);
}

std::size_t expect_count(std::istream& is, const std::string& keyword) {
  return parse_count(next_line(is, keyword.c_str()), keyword);
}

}  // namespace

void write_instance(std::ostream& os, const Instance& inst) {
  // v1: 3-column customers and antennas. v2 (any extended feature present):
  // customers gain a <value> column, antennas a <min_range> column.
  const bool extended =
      inst.is_value_weighted() || inst.has_annular_antennas();
  os << (extended ? "sectorpack-instance v2\n" : "sectorpack-instance v1\n");
  os << std::setprecision(17);
  os << "customers " << inst.num_customers() << "\n";
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    const Customer& c = inst.customer(i);
    os << c.pos.x << " " << c.pos.y << " " << c.demand;
    if (extended) os << " " << inst.value(i);
    os << "\n";
  }
  os << "antennas " << inst.num_antennas() << "\n";
  for (const AntennaSpec& a : inst.antennas()) {
    os << a.rho << " " << a.range << " " << a.capacity;
    if (extended) os << " " << a.min_range;
    os << "\n";
  }
}

Instance read_instance(std::istream& is) {
  const std::string header = next_line(is, "header");
  bool extended = false;
  if (header == "sectorpack-instance v2") {
    extended = true;
  } else if (header != "sectorpack-instance v1") {
    throw std::runtime_error("bad instance header");
  }
  const std::size_t n = expect_count(is, "customers");
  std::vector<Customer> customers;
  customers.reserve(std::min(n, kReserveCap));
  for (std::size_t i = 0; i < n; ++i) {
    const std::string line = next_line(is, "customer");
    std::istringstream ls(line);
    Customer c;
    if (!(ls >> c.pos.x >> c.pos.y >> c.demand)) {
      throw std::runtime_error("bad customer line: '" + line + "'");
    }
    if (extended && !(ls >> c.value)) {
      throw std::runtime_error("bad customer line (missing value column): '" +
                               line + "'");
    }
    require_line_end(ls, "customer", line);
    customers.push_back(c);
  }
  const std::size_t k = expect_count(is, "antennas");
  std::vector<AntennaSpec> antennas;
  antennas.reserve(std::min(k, kReserveCap));
  for (std::size_t j = 0; j < k; ++j) {
    const std::string line = next_line(is, "antenna");
    std::istringstream ls(line);
    AntennaSpec a;
    if (!(ls >> a.rho >> a.range >> a.capacity)) {
      throw std::runtime_error("bad antenna line: '" + line + "'");
    }
    if (extended && !(ls >> a.min_range)) {
      throw std::runtime_error("bad antenna line (missing min_range): '" +
                               line + "'");
    }
    require_line_end(ls, "antenna", line);
    antennas.push_back(a);
  }
  return Instance{std::move(customers), std::move(antennas)};
}

Instance read_instance_file(const std::string& path) {
  if (path == "-") return read_instance(std::cin);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  try {
    return read_instance(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_solution(std::ostream& os, const Solution& sol) {
  os << "sectorpack-solution v1\n";
  // Complete solutions keep the historical format byte-for-byte; the status
  // line only appears for anytime (deadline-truncated) results.
  if (sol.status != SolveStatus::kComplete) {
    os << "status " << to_string(sol.status) << "\n";
  }
  os << std::setprecision(17);
  os << "alphas " << sol.alpha.size() << "\n";
  for (double a : sol.alpha) os << a << "\n";
  os << "assign " << sol.assign.size() << "\n";
  for (std::int32_t a : sol.assign) os << a << "\n";
}

Solution read_solution(std::istream& is) {
  if (next_line(is, "header") != "sectorpack-solution v1") {
    throw std::runtime_error("bad solution header");
  }
  Solution sol;
  // Optional "status <complete|budget_exhausted>" line before the alphas.
  std::string line = next_line(is, "alphas");
  if (line.rfind("status", 0) == 0) {
    std::istringstream ls(line);
    std::string kw;
    std::string value;
    if (!(ls >> kw >> value) || kw != "status") {
      throw std::runtime_error("bad status line: '" + line + "'");
    }
    if (value == "complete") {
      sol.status = SolveStatus::kComplete;
    } else if (value == "budget_exhausted") {
      sol.status = SolveStatus::kBudgetExhausted;
    } else {
      throw std::runtime_error("unknown solution status: '" + line + "'");
    }
    require_line_end(ls, "status", line);
    line = next_line(is, "alphas");
  }
  const std::size_t k = parse_count(line, "alphas");
  sol.alpha.reserve(std::min(k, kReserveCap));
  for (std::size_t j = 0; j < k; ++j) {
    const std::string aline = next_line(is, "alpha");
    std::istringstream ls(aline);
    double a = 0.0;
    if (!(ls >> a)) {
      throw std::runtime_error("bad alpha line: '" + aline + "'");
    }
    require_line_end(ls, "alpha", aline);
    sol.alpha.push_back(a);
  }
  const std::size_t n = expect_count(is, "assign");
  sol.assign.reserve(std::min(n, kReserveCap));
  for (std::size_t i = 0; i < n; ++i) {
    const std::string aline = next_line(is, "assign");
    std::istringstream ls(aline);
    std::int32_t a = 0;
    if (!(ls >> a)) {
      throw std::runtime_error("bad assign line: '" + aline + "'");
    }
    require_line_end(ls, "assign", aline);
    sol.assign.push_back(a);
  }
  return sol;
}

std::string to_string(const Instance& inst) {
  std::ostringstream os;
  write_instance(os, inst);
  return os.str();
}

Instance instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

std::string to_string(const Solution& sol) {
  std::ostringstream os;
  write_solution(os, sol);
  return os.str();
}

Solution solution_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_solution(is);
}

}  // namespace sectorpack::model
