#include "src/model/io.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sectorpack::model {

namespace {

// Read the next non-comment, non-blank line; throw on EOF.
std::string next_line(std::istream& is, const char* what) {
  std::string line;
  while (std::getline(is, line)) {
    const auto pos = line.find('#');
    if (pos != std::string::npos) line.erase(pos);
    const auto first = line.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r\n");
    return line.substr(first, last - first + 1);
  }
  throw std::runtime_error(std::string("unexpected EOF while reading ") +
                           what);
}

std::size_t expect_count(std::istream& is, const std::string& keyword) {
  std::istringstream ls(next_line(is, keyword.c_str()));
  std::string kw;
  long long count = -1;
  if (!(ls >> kw >> count) || kw != keyword || count < 0) {
    throw std::runtime_error("expected '" + keyword + " <count>' line");
  }
  return static_cast<std::size_t>(count);
}

}  // namespace

void write_instance(std::ostream& os, const Instance& inst) {
  // v1: 3-column customers and antennas. v2 (any extended feature present):
  // customers gain a <value> column, antennas a <min_range> column.
  const bool extended =
      inst.is_value_weighted() || inst.has_annular_antennas();
  os << (extended ? "sectorpack-instance v2\n" : "sectorpack-instance v1\n");
  os << std::setprecision(17);
  os << "customers " << inst.num_customers() << "\n";
  for (std::size_t i = 0; i < inst.num_customers(); ++i) {
    const Customer& c = inst.customer(i);
    os << c.pos.x << " " << c.pos.y << " " << c.demand;
    if (extended) os << " " << inst.value(i);
    os << "\n";
  }
  os << "antennas " << inst.num_antennas() << "\n";
  for (const AntennaSpec& a : inst.antennas()) {
    os << a.rho << " " << a.range << " " << a.capacity;
    if (extended) os << " " << a.min_range;
    os << "\n";
  }
}

Instance read_instance(std::istream& is) {
  const std::string header = next_line(is, "header");
  bool extended = false;
  if (header == "sectorpack-instance v2") {
    extended = true;
  } else if (header != "sectorpack-instance v1") {
    throw std::runtime_error("bad instance header");
  }
  const std::size_t n = expect_count(is, "customers");
  std::vector<Customer> customers;
  customers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::istringstream ls(next_line(is, "customer"));
    Customer c;
    if (!(ls >> c.pos.x >> c.pos.y >> c.demand)) {
      throw std::runtime_error("bad customer line");
    }
    if (extended && !(ls >> c.value)) {
      throw std::runtime_error("bad customer line (missing value column)");
    }
    customers.push_back(c);
  }
  const std::size_t k = expect_count(is, "antennas");
  std::vector<AntennaSpec> antennas;
  antennas.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::istringstream ls(next_line(is, "antenna"));
    AntennaSpec a;
    if (!(ls >> a.rho >> a.range >> a.capacity)) {
      throw std::runtime_error("bad antenna line");
    }
    if (extended && !(ls >> a.min_range)) {
      throw std::runtime_error("bad antenna line (missing min_range)");
    }
    antennas.push_back(a);
  }
  return Instance{std::move(customers), std::move(antennas)};
}

void write_solution(std::ostream& os, const Solution& sol) {
  os << "sectorpack-solution v1\n";
  os << std::setprecision(17);
  os << "alphas " << sol.alpha.size() << "\n";
  for (double a : sol.alpha) os << a << "\n";
  os << "assign " << sol.assign.size() << "\n";
  for (std::int32_t a : sol.assign) os << a << "\n";
}

Solution read_solution(std::istream& is) {
  if (next_line(is, "header") != "sectorpack-solution v1") {
    throw std::runtime_error("bad solution header");
  }
  Solution sol;
  const std::size_t k = expect_count(is, "alphas");
  sol.alpha.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    std::istringstream ls(next_line(is, "alpha"));
    double a = 0.0;
    if (!(ls >> a)) throw std::runtime_error("bad alpha line");
    sol.alpha.push_back(a);
  }
  const std::size_t n = expect_count(is, "assign");
  sol.assign.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::istringstream ls(next_line(is, "assign"));
    std::int32_t a = 0;
    if (!(ls >> a)) throw std::runtime_error("bad assign line");
    sol.assign.push_back(a);
  }
  return sol;
}

std::string to_string(const Instance& inst) {
  std::ostringstream os;
  write_instance(os, inst);
  return os.str();
}

Instance instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_instance(is);
}

std::string to_string(const Solution& sol) {
  std::ostringstream os;
  write_solution(os, sol);
  return os.str();
}

Solution solution_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_solution(is);
}

}  // namespace sectorpack::model
