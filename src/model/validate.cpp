#include "src/model/validate.hpp"

#include <cmath>
#include <sstream>

namespace sectorpack::model {

ValidationReport validate(const Instance& inst, const Solution& sol) {
  // status is deliberately not inspected: a kBudgetExhausted incumbent must
  // satisfy exactly the same feasibility contract as a complete solution --
  // deadlines degrade quality, never feasibility.
  ValidationReport report;

  if (sol.alpha.size() != inst.num_antennas()) {
    std::ostringstream os;
    os << "alpha size " << sol.alpha.size() << " != num_antennas "
       << inst.num_antennas();
    report.fail(os.str());
  }
  if (sol.assign.size() != inst.num_customers()) {
    std::ostringstream os;
    os << "assign size " << sol.assign.size() << " != num_customers "
       << inst.num_customers();
    report.fail(os.str());
  }
  if (!report.ok) return report;  // can't index safely past this point

  for (std::size_t j = 0; j < sol.alpha.size(); ++j) {
    if (!std::isfinite(sol.alpha[j])) {
      std::ostringstream os;
      os << "alpha[" << j << "] is not finite";
      report.fail(os.str());
    }
  }

  std::vector<double> loads(inst.num_antennas(), 0.0);
  for (std::size_t i = 0; i < sol.assign.size(); ++i) {
    const std::int32_t a = sol.assign[i];
    if (a == kUnserved) continue;
    if (a < 0 || static_cast<std::size_t>(a) >= inst.num_antennas()) {
      std::ostringstream os;
      os << "assign[" << i << "] = " << a << " out of range";
      report.fail(os.str());
      continue;
    }
    const auto j = static_cast<std::size_t>(a);
    const geom::Sector sec = inst.sector(j, sol.alpha[j]);
    if (!sec.contains(geom::Polar{inst.theta(i), inst.radius(i)})) {
      std::ostringstream os;
      os << "customer " << i << " (theta=" << inst.theta(i)
         << ", r=" << inst.radius(i) << ") not inside antenna " << j
         << " sector [alpha=" << sol.alpha[j]
         << ", rho=" << inst.antenna(j).rho
         << ", R=" << inst.antenna(j).range << "]";
      report.fail(os.str());
    }
    loads[j] += inst.demand(i);
  }

  for (std::size_t j = 0; j < loads.size(); ++j) {
    const double cap = inst.antenna(j).capacity;
    if (loads[j] > cap * (1.0 + kCapacitySlack) + kCapacitySlack) {
      std::ostringstream os;
      os << "antenna " << j << " overloaded: load " << loads[j]
         << " > capacity " << cap;
      report.fail(os.str());
    }
  }

  return report;
}

bool is_feasible(const Instance& inst, const Solution& sol) {
  return validate(inst, sol).ok;
}

}  // namespace sectorpack::model
