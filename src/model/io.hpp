#pragma once
// Plain-text serialization of instances and solutions.
//
// Instance format (line oriented, '#' starts a comment):
//   sectorpack-instance v1
//   customers <n>
//   <x> <y> <demand>          (n lines)
//   antennas <k>
//   <rho> <range> <capacity>  (k lines)
//
// Value-weighted instances use header "sectorpack-instance v2" and a fourth
// customer column <value>. write_instance picks the smallest format that
// preserves the instance; read_instance accepts both.
//
// Solution format:
//   sectorpack-solution v1
//   status budget_exhausted   (optional; absent means complete)
//   alphas <k>
//   <alpha>                   (k lines)
//   assign <n>
//   <antenna index or -1>     (n lines)
//
// Parsing is strict: counts are bounded (no forged-header allocations),
// and every line must contain exactly its expected fields -- trailing
// tokens are a parse error, not silently ignored. All malformed input
// raises std::runtime_error naming the offending line.

#include <iosfwd>
#include <string>

#include "src/model/solution.hpp"

namespace sectorpack::model {

void write_instance(std::ostream& os, const Instance& inst);
[[nodiscard]] Instance read_instance(std::istream& is);

/// Open `path` and parse it as an instance; "-" reads stdin. Open and parse
/// failures both raise std::runtime_error naming the path, so callers (the
/// CLI, the batch engine) report one uniform error shape per request.
[[nodiscard]] Instance read_instance_file(const std::string& path);

void write_solution(std::ostream& os, const Solution& sol);
[[nodiscard]] Solution read_solution(std::istream& is);

[[nodiscard]] std::string to_string(const Instance& inst);
[[nodiscard]] Instance instance_from_string(const std::string& text);
[[nodiscard]] std::string to_string(const Solution& sol);
[[nodiscard]] Solution solution_from_string(const std::string& text);

}  // namespace sectorpack::model
