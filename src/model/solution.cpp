#include "src/model/solution.hpp"

namespace sectorpack::model {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kComplete:
      return "complete";
    case SolveStatus::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "unknown";
}

Solution Solution::empty_for(const Instance& inst) {
  Solution s;
  s.alpha.assign(inst.num_antennas(), 0.0);
  s.assign.assign(inst.num_customers(), kUnserved);
  return s;
}

double served_demand(const Instance& inst, const Solution& sol) {
  double total = 0.0;
  for (std::size_t i = 0; i < sol.assign.size(); ++i) {
    if (sol.assign[i] != kUnserved) total += inst.demand(i);
  }
  return total;
}

double served_value(const Instance& inst, const Solution& sol) {
  double total = 0.0;
  for (std::size_t i = 0; i < sol.assign.size(); ++i) {
    if (sol.assign[i] != kUnserved) total += inst.value(i);
  }
  return total;
}

std::size_t served_count(const Solution& sol) {
  std::size_t n = 0;
  for (std::int32_t a : sol.assign) {
    if (a != kUnserved) ++n;
  }
  return n;
}

std::vector<double> antenna_loads(const Instance& inst, const Solution& sol) {
  std::vector<double> loads(inst.num_antennas(), 0.0);
  for (std::size_t i = 0; i < sol.assign.size(); ++i) {
    const std::int32_t j = sol.assign[i];
    if (j != kUnserved) loads[static_cast<std::size_t>(j)] += inst.demand(i);
  }
  return loads;
}

}  // namespace sectorpack::model
