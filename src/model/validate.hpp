#pragma once
// Feasibility validation. The validator uses exactly the same geometric
// predicates (geom::Sector::contains with the shared tolerances) as the
// solvers, so a solution a solver believes feasible is accepted here and
// vice versa.

#include <string>
#include <vector>

#include "src/model/solution.hpp"

namespace sectorpack::model {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;

  void fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }
};

/// Check structural shape (vector sizes, finite alphas, assignment indices),
/// geometric containment of every served customer in its antenna's oriented
/// sector, and per-antenna capacity. Capacity checks allow a relative slack
/// of kCapacitySlack to absorb floating-point summation noise.
inline constexpr double kCapacitySlack = 1e-9;

[[nodiscard]] ValidationReport validate(const Instance& inst,
                                        const Solution& sol);

/// Convenience: true iff validate(...).ok.
[[nodiscard]] bool is_feasible(const Instance& inst, const Solution& sol);

}  // namespace sectorpack::model
