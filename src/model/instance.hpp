#pragma once
// Problem model for "Packing to angles and sectors".
//
// A base station at the origin, n customers in the plane with positive
// demands, and k directional antennas. Antenna j has angular width rho_j,
// range R_j and capacity c_j. A solution orients each antenna and assigns
// each customer to at most one antenna whose (oriented) sector contains it,
// subject to the antenna capacities; the objective is the served demand.

#include <cstddef>
#include <span>
#include <vector>

#include "src/geom/sector.hpp"
#include "src/geom/vec2.hpp"

namespace sectorpack::model {

struct Customer {
  geom::Vec2 pos;
  double demand = 1.0;
  /// Objective contribution when served (revenue / priority). Negative
  /// means "use the demand" -- the paper's base objective where served
  /// demand is what counts. Capacity is always consumed by `demand`.
  double value = kValueIsDemand;

  static constexpr double kValueIsDemand = -1.0;
};

struct AntennaSpec {
  double rho = geom::kTwoPi;  // angular width, radians, in (0, 2*pi]
  double range = 1.0;         // coverage radius R, > 0
  double capacity = 1.0;      // total demand the antenna can serve, >= 0
  /// Near-field dead zone: customers closer than this are NOT coverable by
  /// this antenna. 0 (the default) gives the paper's plain sector.
  double min_range = 0.0;
};

/// Immutable problem instance with cached polar coordinates.
class Instance {
 public:
  Instance() = default;
  Instance(std::vector<Customer> customers, std::vector<AntennaSpec> antennas);

  [[nodiscard]] std::size_t num_customers() const noexcept {
    return customers_.size();
  }
  [[nodiscard]] std::size_t num_antennas() const noexcept {
    return antennas_.size();
  }

  [[nodiscard]] const Customer& customer(std::size_t i) const {
    return customers_[i];
  }
  [[nodiscard]] const AntennaSpec& antenna(std::size_t j) const {
    return antennas_[j];
  }
  [[nodiscard]] std::span<const Customer> customers() const noexcept {
    return customers_;
  }
  [[nodiscard]] std::span<const AntennaSpec> antennas() const noexcept {
    return antennas_;
  }

  /// Polar angle of customer i, normalized into [0, 2*pi).
  [[nodiscard]] double theta(std::size_t i) const { return thetas_[i]; }
  /// Distance of customer i from the base station.
  [[nodiscard]] double radius(std::size_t i) const { return radii_[i]; }
  [[nodiscard]] double demand(std::size_t i) const {
    return customers_[i].demand;
  }
  /// Objective contribution of customer i (== demand unless the instance
  /// is value-weighted).
  [[nodiscard]] double value(std::size_t i) const { return values_[i]; }
  [[nodiscard]] std::span<const double> thetas() const noexcept {
    return thetas_;
  }
  [[nodiscard]] std::span<const double> radii() const noexcept {
    return radii_;
  }

  /// True when customer i is within antenna j's radial band
  /// [min_range, range] (radial test only; angle is orientation-dependent).
  [[nodiscard]] bool in_range(std::size_t i, std::size_t j) const {
    return radii_[i] <= antennas_[j].range * (1.0 + geom::kRadiusEps) &&
           radii_[i] >= antennas_[j].min_range * (1.0 - geom::kRadiusEps);
  }

  /// The sector covered by antenna j when oriented at `alpha`.
  [[nodiscard]] geom::Sector sector(std::size_t j, double alpha) const {
    return geom::Sector{alpha, antennas_[j].rho, antennas_[j].range,
                        antennas_[j].min_range};
  }

  /// True when some antenna has a near-field dead zone (min_range > 0).
  [[nodiscard]] bool has_annular_antennas() const noexcept;

  [[nodiscard]] double total_demand() const noexcept { return total_demand_; }
  [[nodiscard]] double total_value() const noexcept { return total_value_; }
  [[nodiscard]] double total_capacity() const noexcept {
    return total_capacity_;
  }

  /// True when some customer's objective value differs from its demand.
  /// Several bounds (the flow relaxations) are only valid on unweighted
  /// instances and check this.
  [[nodiscard]] bool is_value_weighted() const noexcept {
    return value_weighted_;
  }

  /// True when all antennas have the same (rho, range, capacity).
  [[nodiscard]] bool antennas_identical() const noexcept;

  /// True when every customer is within every antenna's range -- the
  /// "packing to angles" special case where radii are irrelevant.
  [[nodiscard]] bool is_angles_only() const noexcept;

 private:
  std::vector<Customer> customers_;
  std::vector<AntennaSpec> antennas_;
  std::vector<double> thetas_;
  std::vector<double> radii_;
  std::vector<double> values_;  // resolved (kValueIsDemand -> demand)
  double total_demand_ = 0.0;
  double total_value_ = 0.0;
  double total_capacity_ = 0.0;
  bool value_weighted_ = false;
};

/// Fluent helper for building instances in examples and tests.
class InstanceBuilder {
 public:
  InstanceBuilder& add_customer(double x, double y, double demand) {
    customers_.push_back({{x, y}, demand});
    return *this;
  }
  InstanceBuilder& add_customer_polar(double theta, double r, double demand) {
    customers_.push_back({geom::from_polar(theta, r), demand});
    return *this;
  }
  /// Value-weighted customer: `value` is the objective contribution,
  /// `demand` what it consumes from the serving antenna's capacity.
  InstanceBuilder& add_weighted_customer_polar(double theta, double r,
                                               double demand, double value) {
    customers_.push_back({geom::from_polar(theta, r), demand, value});
    return *this;
  }
  InstanceBuilder& add_antenna(double rho, double range, double capacity,
                               double min_range = 0.0) {
    antennas_.push_back({rho, range, capacity, min_range});
    return *this;
  }
  InstanceBuilder& add_identical_antennas(std::size_t k, double rho,
                                          double range, double capacity) {
    for (std::size_t j = 0; j < k; ++j) add_antenna(rho, range, capacity);
    return *this;
  }
  [[nodiscard]] Instance build() const { return {customers_, antennas_}; }

 private:
  std::vector<Customer> customers_;
  std::vector<AntennaSpec> antennas_;
};

}  // namespace sectorpack::model
