#pragma once
// Problem model for "Packing to angles and sectors".
//
// A base station at the origin, n customers in the plane with positive
// demands, and k directional antennas. Antenna j has angular width rho_j,
// range R_j and capacity c_j. A solution orients each antenna and assigns
// each customer to at most one antenna whose (oriented) sector contains it,
// subject to the antenna capacities; the objective is the served demand.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/geom/polar_grid.hpp"
#include "src/geom/sector.hpp"
#include "src/geom/vec2.hpp"

namespace sectorpack::model {

struct Customer {
  geom::Vec2 pos;
  double demand = 1.0;
  /// Objective contribution when served (revenue / priority). Negative
  /// means "use the demand" -- the paper's base objective where served
  /// demand is what counts. Capacity is always consumed by `demand`.
  double value = kValueIsDemand;

  static constexpr double kValueIsDemand = -1.0;
};

struct AntennaSpec {
  double rho = geom::kTwoPi;  // angular width, radians, in (0, 2*pi]
  double range = 1.0;         // coverage radius R, > 0
  double capacity = 1.0;      // total demand the antenna can serve, >= 0
  /// Near-field dead zone: customers closer than this are NOT coverable by
  /// this antenna. 0 (the default) gives the paper's plain sector.
  double min_range = 0.0;
};

/// Immutable problem instance with cached polar coordinates.
///
/// Customer storage is SoA: theta/radius/demand/value live in separate
/// arrays (span accessors below) so bucket and sweep scans touch one dense
/// stream each; the `Customer` records remain available as a compatibility
/// view holding the Cartesian positions.
class Instance {
 public:
  Instance() = default;
  Instance(std::vector<Customer> customers, std::vector<AntennaSpec> antennas);

  [[nodiscard]] std::size_t num_customers() const noexcept {
    return customers_.size();
  }
  [[nodiscard]] std::size_t num_antennas() const noexcept {
    return antennas_.size();
  }

  [[nodiscard]] const Customer& customer(std::size_t i) const {
    return customers_[i];
  }
  [[nodiscard]] const AntennaSpec& antenna(std::size_t j) const {
    return antennas_[j];
  }
  [[nodiscard]] std::span<const Customer> customers() const noexcept {
    return customers_;
  }
  [[nodiscard]] std::span<const AntennaSpec> antennas() const noexcept {
    return antennas_;
  }

  /// Polar angle of customer i, normalized into [0, 2*pi).
  [[nodiscard]] double theta(std::size_t i) const { return thetas_[i]; }
  /// Distance of customer i from the base station.
  [[nodiscard]] double radius(std::size_t i) const { return radii_[i]; }
  [[nodiscard]] double demand(std::size_t i) const { return demands_[i]; }
  /// Objective contribution of customer i (== demand unless the instance
  /// is value-weighted).
  [[nodiscard]] double value(std::size_t i) const { return values_[i]; }
  [[nodiscard]] std::span<const double> thetas() const noexcept {
    return thetas_;
  }
  [[nodiscard]] std::span<const double> radii() const noexcept {
    return radii_;
  }
  [[nodiscard]] std::span<const double> demands() const noexcept {
    return demands_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }

  /// True when customer i is within antenna j's radial band
  /// [min_range, range] (radial test only; angle is orientation-dependent).
  [[nodiscard]] bool in_range(std::size_t i, std::size_t j) const {
    return radii_[i] <= antennas_[j].range * (1.0 + geom::kRadiusEps) &&
           radii_[i] >= antennas_[j].min_range * (1.0 - geom::kRadiusEps);
  }

  /// The sector covered by antenna j when oriented at `alpha`.
  [[nodiscard]] geom::Sector sector(std::size_t j, double alpha) const {
    return geom::Sector{alpha, antennas_[j].rho, antennas_[j].range,
                        antennas_[j].min_range};
  }

  /// True when some antenna has a near-field dead zone (min_range > 0).
  [[nodiscard]] bool has_annular_antennas() const noexcept;

  /// The polar grid spatial index over the customers, built lazily on first
  /// use and cached for the instance's lifetime. Thread-safe: concurrent
  /// first callers race to publish one grid (losers discard theirs).
  [[nodiscard]] const geom::PolarGrid& polar_grid() const;

  /// The grid if the crossover policy says to use it for this instance
  /// right now, nullptr for the flat path. Under kAuto the O(n log n) build
  /// is additionally deferred ski-rental style: the first
  /// geom::kGridBuildAfterQueries queries run flat (each costs one O(n)
  /// scan), and only an instance that keeps getting queried pays for a
  /// build -- a one-shot solve on a fresh instance (e.g. a shard sub-solve)
  /// never does. Forced modes bypass the deferral. Results are
  /// bit-identical either way; only wall time depends on the answer.
  [[nodiscard]] const geom::PolarGrid* spatial_index() const;

  /// Indices of the customers in antenna j's radial band, ascending --
  /// exactly the i with in_range(i, j), produced by the flat scan below the
  /// crossover threshold and by the grid above it (geom::use_spatial_index;
  /// both paths apply the same floating-point predicate, so the output is
  /// bit-identical either way). `out` is cleared and refilled.
  void in_range_customers(std::size_t j, std::vector<std::size_t>& out) const;

  [[nodiscard]] double total_demand() const noexcept { return total_demand_; }
  [[nodiscard]] double total_value() const noexcept { return total_value_; }
  [[nodiscard]] double total_capacity() const noexcept {
    return total_capacity_;
  }

  /// True when some customer's objective value differs from its demand.
  /// Several bounds (the flow relaxations) are only valid on unweighted
  /// instances and check this.
  [[nodiscard]] bool is_value_weighted() const noexcept {
    return value_weighted_;
  }

  /// True when all antennas have the same (rho, range, capacity).
  [[nodiscard]] bool antennas_identical() const noexcept;

  /// True when every customer is within every antenna's range -- the
  /// "packing to angles" special case where radii are irrelevant.
  [[nodiscard]] bool is_angles_only() const noexcept;

  // ------------------------------------------------------------- mutators
  //
  // Delta mutators for session serving (sectorpack serve). Each validates
  // its input exactly like the constructor (strong guarantee: throws
  // without mutating), applies the structural edit, then recomputes every
  // derived array and aggregate by replaying the constructor's loops --
  // same iteration order, same summation order -- so a mutated instance is
  // *bitwise* indistinguishable from one freshly constructed from the same
  // customer/antenna records (the serve byte-identity contract rests on
  // this). Each mutator also drops the cached spatial index and resets the
  // ski-rental deferral counter: the grid holds views into the old SoA
  // buffers and its bucket contents are stale after any customer edit, and
  // a mutated instance restarts its build amortization from zero.

  /// Append a customer; returns its index (== num_customers() - 1).
  std::size_t add_customer(const Customer& c);
  /// Remove customer `i`; customers above shift down by one (indices into
  /// any previously obtained Solution are stale). Throws std::out_of_range.
  void remove_customer(std::size_t i);
  /// Change customer `i`'s demand. A kValueIsDemand customer's objective
  /// value follows the new demand; an explicit value is left untouched
  /// (which can flip is_value_weighted() in either direction, exactly as a
  /// fresh construction would). Throws std::out_of_range /
  /// std::invalid_argument.
  void set_demand(std::size_t i, double demand);
  /// Append an antenna; returns its index (== num_antennas() - 1).
  std::size_t add_antenna(const AntennaSpec& a);

 private:
  /// Rebuild thetas_/radii_/demands_/values_, the totals, and the
  /// value-weighted flag from customers_/antennas_, replaying the
  /// constructor's order so results are bitwise identical to a fresh
  /// build. O(n + k) including a polar conversion per customer.
  void recompute_aggregates();
  /// The cheap half of recompute_aggregates: refold demands_/values_, the
  /// totals, and the value-weighted flag, leaving thetas_/radii_ alone
  /// (each is a pure per-customer function, so mutators maintain them
  /// element-wise). Same left-fold order as the constructor, so totals
  /// stay bitwise identical to a fresh build without the O(n) trig the
  /// full rebuild pays -- this is what keeps a serving delta on a big
  /// session cheap. Callers must have sized thetas_/radii_ to match
  /// customers_ already. O(n + k), additions and comparisons only.
  void refold_scalars();
  /// Drop the published grid and restart the ski-rental counter.
  void invalidate_spatial() noexcept;

  // Lazily published grid cache. A plain member type (instead of
  // std::once_flag or a mutex) keeps Instance copyable and movable: copies
  // drop the cache (their vectors own fresh buffers, so the old grid's
  // views would dangle), moves transfer it (vector moves keep the heap
  // buffers the grid views point into).
  struct GridSlot {
    mutable std::atomic<const geom::PolarGrid*> ptr{nullptr};
    // Queries answered flat while deferring the build (see spatial_index).
    // Deliberately not copied/moved: a new home means a new amortization.
    mutable std::atomic<std::uint32_t> flat_queries{0};

    GridSlot() noexcept = default;
    GridSlot(const GridSlot& /*other*/) noexcept {}
    GridSlot(GridSlot&& other) noexcept {
      ptr.store(other.ptr.exchange(nullptr, std::memory_order_acq_rel),
                std::memory_order_release);
    }
    GridSlot& operator=(const GridSlot& other) noexcept {
      if (this != &other) reset();
      return *this;
    }
    GridSlot& operator=(GridSlot&& other) noexcept {
      if (this != &other) {
        reset();
        ptr.store(other.ptr.exchange(nullptr, std::memory_order_acq_rel),
                  std::memory_order_release);
      }
      return *this;
    }
    ~GridSlot() { reset(); }
    void reset() noexcept {
      delete ptr.exchange(nullptr, std::memory_order_acq_rel);
    }
  };

  std::vector<Customer> customers_;
  std::vector<AntennaSpec> antennas_;
  std::vector<double> thetas_;
  std::vector<double> radii_;
  std::vector<double> demands_;
  std::vector<double> values_;  // resolved (kValueIsDemand -> demand)
  double total_demand_ = 0.0;
  double total_value_ = 0.0;
  double total_capacity_ = 0.0;
  bool value_weighted_ = false;
  GridSlot grid_;  // last member: assigned after the vectors on copy/move
};

/// Fluent helper for building instances in examples and tests.
class InstanceBuilder {
 public:
  InstanceBuilder& add_customer(double x, double y, double demand) {
    customers_.push_back({{x, y}, demand});
    return *this;
  }
  InstanceBuilder& add_customer_polar(double theta, double r, double demand) {
    customers_.push_back({geom::from_polar(theta, r), demand});
    return *this;
  }
  /// Value-weighted customer: `value` is the objective contribution,
  /// `demand` what it consumes from the serving antenna's capacity.
  InstanceBuilder& add_weighted_customer_polar(double theta, double r,
                                               double demand, double value) {
    customers_.push_back({geom::from_polar(theta, r), demand, value});
    return *this;
  }
  InstanceBuilder& add_antenna(double rho, double range, double capacity,
                               double min_range = 0.0) {
    antennas_.push_back({rho, range, capacity, min_range});
    return *this;
  }
  InstanceBuilder& add_identical_antennas(std::size_t k, double rho,
                                          double range, double capacity) {
    for (std::size_t j = 0; j < k; ++j) add_antenna(rho, range, capacity);
    return *this;
  }
  [[nodiscard]] Instance build() const { return {customers_, antennas_}; }

 private:
  std::vector<Customer> customers_;
  std::vector<AntennaSpec> antennas_;
};

}  // namespace sectorpack::model
