#include "src/sim/adversarial.hpp"

#include <cmath>

namespace sectorpack::sim {

KnapsackGadget greedy_half_gadget(double capacity) {
  KnapsackGadget g;
  g.capacity = capacity;
  const double half = std::floor(capacity / 2.0);
  // Equal value densities (value == weight): tie-break is by value, so the
  // big item is taken first and blocks both halves.
  g.items.push_back({half + 1.0, half + 1.0});
  g.items.push_back({half, half});
  g.items.push_back({half, half});
  g.opt_value = 2.0 * half;
  return g;
}

model::Instance single_antenna_trap(double capacity) {
  const KnapsackGadget g = greedy_half_gadget(capacity);
  model::InstanceBuilder b;
  // All gadget items at the SAME angle: every window that contains any of
  // them contains all of them, so the sweep cannot rescue the greedy oracle
  // by offering a sub-window that excludes the blocking item. A far-away
  // decoy ensures the sweep actually has to pick the gadget window.
  for (const knapsack::Item& it : g.items) {
    b.add_customer_polar(0.0, 10.0, it.weight);
  }
  b.add_customer_polar(geom::kPi, 10.0, 1.0);  // decoy worth 1
  b.add_antenna(geom::kPi / 4.0, 20.0, g.capacity);
  return b.build();
}

model::Instance range_shadow_trap() {
  model::InstanceBuilder b;
  // Both customers at angle 0; the separation is radial, not angular.
  b.add_customer_polar(0.0, 8.0, 4.9);  // u: only the long-range antenna
  b.add_customer_polar(0.0, 4.0, 5.0);  // v: visible to both
  b.add_antenna(geom::kPi / 3.0, 10.0, 5.0);  // antenna 0: long range
  b.add_antenna(geom::kPi / 3.0, 5.0, 5.0);   // antenna 1: short range
  // Greedy round 1: both antennas' best packing is {v} = 5 (4.9 + 5.0
  // exceeds the capacity 5); the tie goes to antenna 0, which strands u
  // (u is out of antenna 1's range). OPT: u -> antenna 0, v -> antenna 1.
  return b.build();
}

model::Instance fragmentation_trap() {
  model::InstanceBuilder b;
  // Four customers in one narrow cone seen by both antennas.
  // Demands 6, 4, 3, 3; capacities 7 and 9.
  // Exact: {4,3} -> 7 and {6,3} -> 9, serving 16 (everything).
  // Demand-descending best-fit: 6 -> antenna with residual 9 (best fit
  // 9), 4 -> residual 7, 3 -> residual 3 (antenna 0 now 7-4=3) fits, 3 ->
  // residuals {0, 3}: fits antenna 1's 3. That packs too; make it tight:
  // demands 5, 4, 3, 2, 2 with capacities 8 and 8:
  //   best-fit desc: 5->A(8), 4->B(8), 3->A(3), 2->B(4)? B residual 4 ->
  //   takes 2, residual 2; last 2 -> A residual 0, B residual 2 -> fits.
  // Still packs. Use the classic bin-packing miss: demands 4, 4, 3, 3, 2
  // capacities 8 and 8. Desc best-fit: 4->A, 4->B, 3->A(4), 3->B(4),
  // 2 -> residuals {1,1}: unserved. OPT: {4,4} and {3,3,2} serves all 16.
  double angle = 0.0;
  for (double d : {4.0, 4.0, 3.0, 3.0, 2.0}) {
    b.add_customer_polar(angle, 5.0, d);
    angle += 0.005;
  }
  b.add_identical_antennas(2, geom::kPi / 2.0, 10.0, 8.0);
  return b.build();
}

}  // namespace sectorpack::sim
