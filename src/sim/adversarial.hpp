#pragma once
// Adversarial gadget instances: constructions on which the approximation
// algorithms approach their proven floors. Used by experiment T6 and by
// tests that pin the floors from below.

#include "src/knapsack/knapsack.hpp"
#include "src/model/instance.hpp"

namespace sectorpack::sim {

/// Knapsack items on which density-greedy-with-best-single tends to 1/2:
/// three equal-density items {C/2 + 1, C/2, C/2} with capacity C. Greedy
/// (largest first on density ties) takes C/2+1 and nothing else fits;
/// OPT takes the two C/2 items. Ratio -> 1/2 as C grows.
struct KnapsackGadget {
  std::vector<knapsack::Item> items;
  double capacity = 0.0;
  double opt_value = 0.0;
};
[[nodiscard]] KnapsackGadget greedy_half_gadget(double capacity);

/// Single-antenna instance embedding greedy_half_gadget in one window, so
/// single::solve_greedy's ratio vs single::solve_exact approaches 1/2.
[[nodiscard]] model::Instance single_antenna_trap(double capacity);

/// Range-shadowing trap for the multi-antenna greedy (k = 2): customer v
/// (demand 5, close in) is visible to both antennas; customer u (demand
/// 4.9, far out) only to the long-range antenna. Both antennas have
/// capacity 5. Greedy's first round grabs v with the long-range antenna
/// (5 > 4.9), stranding u: greedy serves 5 while OPT serves 9.9 by giving
/// v to the short-range antenna. Ratio 5/9.9 ~ 0.505 -- essentially the
/// 1/2 floor for capacitated greedy, unreachable in the uncapacitated
/// coverage regime where greedy guarantees 1 - (1 - 1/k)^k.
[[nodiscard]] model::Instance range_shadow_trap();

/// Capacity-fragmentation trap for fixed-orientation greedy assignment:
/// two antennas see overlapping customer sets; demand-descending best-fit
/// strands capacity while the exact assignment packs perfectly.
[[nodiscard]] model::Instance fragmentation_trap();

}  // namespace sectorpack::sim
