#pragma once
// Synthetic workload generators.
//
// The paper's motivating scenario is a base station serving customers spread
// over a service area with heterogeneous demands. These generators produce
// the spatial and demand distributions the experiment suite sweeps over:
//   kUniformDisk -- customers uniform over a disk (area-uniform, not r-uniform)
//   kHotspots    -- Gaussian clusters (dense neighbourhoods / malls)
//   kRing        -- customers near a fixed radius (ring road)
//   kArcBand     -- customers concentrated in an angular band (coastal city)
// Demands: unit, uniform integer, or heavy-tailed Pareto rounded to integers
// (integer demands keep the exact DP applicable for reference solutions).

#include "src/model/instance.hpp"
#include "src/sim/rng.hpp"

namespace sectorpack::sim {

enum class Spatial { kUniformDisk, kHotspots, kRing, kArcBand };
enum class DemandDist { kUnit, kUniformInt, kParetoInt };

struct WorkloadConfig {
  std::size_t num_customers = 100;

  Spatial spatial = Spatial::kUniformDisk;
  double disk_radius = 100.0;
  std::size_t num_hotspots = 3;     // kHotspots
  double hotspot_sigma = 8.0;       // kHotspots
  double ring_radius = 80.0;        // kRing
  double ring_sigma = 5.0;          // kRing
  double band_center = 0.0;         // kArcBand: central angle
  double band_halfwidth = 0.6;      // kArcBand: angular half-width

  DemandDist demand = DemandDist::kUniformInt;
  std::int64_t demand_min = 1;      // kUniformInt
  std::int64_t demand_max = 20;     // kUniformInt
  double pareto_alpha = 1.5;        // kParetoInt
  std::int64_t pareto_cap = 1000;   // kParetoInt: truncation
};

[[nodiscard]] std::vector<model::Customer> generate_customers(
    const WorkloadConfig& config, Rng& rng);

/// Full instance: generated customers plus k identical antennas whose
/// capacity is chosen so that total capacity = load_factor_inverse of total
/// demand (capacity_j = total_demand * capacity_fraction / k).
struct AntennaConfig {
  std::size_t count = 1;
  double rho = geom::kPi / 3.0;   // 60 degree beam
  double range = 120.0;
  /// Total capacity as a fraction of total generated demand. 1.0 means the
  /// antennas could in principle serve everything.
  double capacity_fraction = 0.5;
};

[[nodiscard]] model::Instance make_instance(const WorkloadConfig& workload,
                                            const AntennaConfig& antennas,
                                            Rng& rng);

/// Shorthand used by tests: n customers uniform in a disk, unit demands,
/// k identical antennas with absolute capacity `capacity`.
[[nodiscard]] model::Instance uniform_disk_instance(std::size_t n,
                                                    std::size_t k, double rho,
                                                    double capacity,
                                                    std::uint64_t seed);

}  // namespace sectorpack::sim
