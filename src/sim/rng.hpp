#pragma once
// Deterministic, seedable random number generation (xoshiro256++ with
// splitmix64 seeding, implemented here so results are reproducible across
// standard libraries and platforms). All workload generators take an
// explicit Rng so every experiment is replayable from its seed.

#include <cstdint>

namespace sectorpack::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (one value per call; caches the pair).
  double normal() noexcept;
  double normal(double mean, double sigma) noexcept {
    return mean + sigma * normal();
  }

  /// Exponential with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed demands).
  double pareto(double xm, double alpha) noexcept;

  /// Derive an independent stream (for per-trial seeding in sweeps).
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sectorpack::sim
