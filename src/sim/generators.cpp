#include "src/sim/generators.hpp"

#include <algorithm>
#include <cmath>

namespace sectorpack::sim {

namespace {

geom::Vec2 sample_position(const WorkloadConfig& c, Rng& rng) {
  switch (c.spatial) {
    case Spatial::kUniformDisk: {
      // Area-uniform: r = R * sqrt(u).
      const double r = c.disk_radius * std::sqrt(rng.uniform01());
      const double theta = rng.uniform(0.0, geom::kTwoPi);
      return geom::from_polar(theta, r);
    }
    case Spatial::kHotspots: {
      const std::size_t h =
          c.num_hotspots == 0 ? 0 : rng.uniform_int(c.num_hotspots);
      // Hotspot centers are deterministic in the hotspot index so that a
      // given config yields stable geography across trials: evenly spaced
      // directions at 60% of the disk radius.
      const double center_theta =
          geom::kTwoPi * static_cast<double>(h) /
          static_cast<double>(std::max<std::size_t>(c.num_hotspots, 1));
      const geom::Vec2 center =
          geom::from_polar(center_theta, 0.6 * c.disk_radius);
      return {center.x + rng.normal(0.0, c.hotspot_sigma),
              center.y + rng.normal(0.0, c.hotspot_sigma)};
    }
    case Spatial::kRing: {
      const double r = std::max(0.0, rng.normal(c.ring_radius, c.ring_sigma));
      const double theta = rng.uniform(0.0, geom::kTwoPi);
      return geom::from_polar(theta, r);
    }
    case Spatial::kArcBand: {
      const double theta = geom::normalize(
          rng.uniform(c.band_center - c.band_halfwidth,
                      c.band_center + c.band_halfwidth));
      const double r = c.disk_radius * std::sqrt(rng.uniform01());
      return geom::from_polar(theta, r);
    }
  }
  return {};
}

double sample_demand(const WorkloadConfig& c, Rng& rng) {
  switch (c.demand) {
    case DemandDist::kUnit:
      return 1.0;
    case DemandDist::kUniformInt:
      return static_cast<double>(rng.uniform_int(c.demand_min, c.demand_max));
    case DemandDist::kParetoInt: {
      const double raw = rng.pareto(1.0, c.pareto_alpha);
      const auto d = static_cast<std::int64_t>(std::ceil(raw));
      return static_cast<double>(std::min(d, c.pareto_cap));
    }
  }
  return 1.0;
}

}  // namespace

std::vector<model::Customer> generate_customers(const WorkloadConfig& config,
                                                Rng& rng) {
  std::vector<model::Customer> customers;
  customers.reserve(config.num_customers);
  for (std::size_t i = 0; i < config.num_customers; ++i) {
    model::Customer c;
    c.pos = sample_position(config, rng);
    // Guard against a degenerate customer exactly at the base station (its
    // angle would be arbitrary); nudge it off the origin.
    // sp-lint: allow(float-eq) exact-zero guard: only a customer exactly at the origin has no polar angle; any nonzero norm is fine
    if (c.pos.norm2() == 0.0) c.pos.x = 1e-9;
    c.demand = sample_demand(config, rng);
    customers.push_back(c);
  }
  return customers;
}

model::Instance make_instance(const WorkloadConfig& workload,
                              const AntennaConfig& antennas, Rng& rng) {
  std::vector<model::Customer> customers =
      generate_customers(workload, rng);
  double total_demand = 0.0;
  for (const model::Customer& c : customers) total_demand += c.demand;

  const double per_antenna_capacity =
      antennas.count == 0
          ? 0.0
          : std::floor(total_demand * antennas.capacity_fraction /
                       static_cast<double>(antennas.count));

  std::vector<model::AntennaSpec> specs(
      antennas.count,
      model::AntennaSpec{antennas.rho, antennas.range, per_antenna_capacity});
  return model::Instance{std::move(customers), std::move(specs)};
}

model::Instance uniform_disk_instance(std::size_t n, std::size_t k,
                                      double rho, double capacity,
                                      std::uint64_t seed) {
  Rng rng(seed);
  WorkloadConfig wc;
  wc.num_customers = n;
  wc.spatial = Spatial::kUniformDisk;
  wc.demand = DemandDist::kUnit;
  std::vector<model::Customer> customers = generate_customers(wc, rng);
  std::vector<model::AntennaSpec> specs(
      k, model::AntennaSpec{rho, wc.disk_radius * 2.0, capacity});
  return model::Instance{std::move(customers), std::move(specs)};
}

}  // namespace sectorpack::sim
