#include "src/sim/rng.hpp"

#include <cmath>

namespace sectorpack::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (xoshiro's only fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double a = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(a);
  has_cached_normal_ = true;
  return r * std::cos(a);
}

double Rng::exponential(double rate) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

}  // namespace sectorpack::sim
