#pragma once
// P0 -- packing with *fixed* orientations.
//
// Once every antenna's orientation alpha_j is fixed, the remaining problem
// is a Multiple Knapsack with assignment restrictions (each customer is
// eligible only for the antennas whose oriented sector contains it; value ==
// weight == demand). Every higher-level solver (P1..P3) calls into this
// module, and it is also studied on its own in experiment T5.

#include <span>

#include "src/core/deadline.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/solution.hpp"

namespace sectorpack::assign {

// All solvers below honor opts.deadline: on expiry they stop at the next
// check point (customer block / antenna / node block), leave the remaining
// customers unserved, and return a feasible partial assignment with
// Solution::status == kBudgetExhausted.

/// Which antennas can see which customers under the given orientations.
struct Eligibility {
  /// per_antenna[j] = ascending customer indices inside antenna j's sector.
  std::vector<std::vector<std::size_t>> per_antenna;
  /// per_customer[i] = ascending antenna indices whose sector contains i.
  std::vector<std::vector<std::int32_t>> per_customer;
};

[[nodiscard]] Eligibility compute_eligibility(const model::Instance& inst,
                                              std::span<const double> alphas);

/// Greedy demand-descending best-fit: customers in decreasing demand order,
/// each placed on the eligible antenna with the largest residual capacity
/// that still fits it. Fast baseline (O(n log n + n k)).
[[nodiscard]] model::Solution solve_greedy(
    const model::Instance& inst, std::span<const double> alphas,
    const core::SolveOptions& opts = {});

/// Successive knapsack: antennas in decreasing capacity order; each solves a
/// knapsack (via `oracle`) over its still-unserved eligible customers and
/// commits the result. With an exact oracle this is the classic 1/2
/// approximation for Multiple Knapsack; with a beta-oracle the factor is
/// beta / (1 + beta).
[[nodiscard]] model::Solution solve_successive(
    const model::Instance& inst, std::span<const double> alphas,
    const knapsack::Oracle& oracle = knapsack::Oracle::exact(),
    const core::SolveOptions& opts = {});

/// Exact branch & bound over (customer -> eligible antenna | unserved)
/// decisions with a fractional pruning bound. Exponential worst case;
/// intended for n <= ~30 reference solutions. Throws std::runtime_error if
/// `node_limit` is exhausted. A deadline, by contrast, degrades: the search
/// stops at the next node block and the incumbent is returned with status
/// kBudgetExhausted.
[[nodiscard]] model::Solution solve_exact(const model::Instance& inst,
                                          std::span<const double> alphas,
                                          std::uint64_t node_limit = 1u << 26,
                                          const core::SolveOptions& opts = {});

/// LP rounding: solve the fractional-assignment LP exactly (max flow),
/// keep every customer the LP routes integrally to one antenna, then
/// repair the fractional remainder by demand-descending best fit. Strong
/// in practice because the flow LP has few fractional customers on
/// demand-style instances. Unweighted instances only (value == demand);
/// on weighted instances this falls back to solve_successive, which
/// optimizes value directly.
[[nodiscard]] model::Solution solve_lp_rounding(
    const model::Instance& inst, std::span<const double> alphas,
    const core::SolveOptions& opts = {});

}  // namespace sectorpack::assign
