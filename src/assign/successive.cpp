#include <algorithm>
#include <numeric>

#include "src/assign/assign.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::assign {

model::Solution solve_successive(const model::Instance& inst,
                                 std::span<const double> alphas,
                                 const knapsack::Oracle& oracle,
                                 const core::SolveOptions& opts) {
  const core::Deadline& deadline = opts.deadline;
  const Eligibility elig = compute_eligibility(inst, alphas);

  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha.assign(alphas.begin(), alphas.end());
  for (double& a : sol.alpha) a = geom::normalize(a);

  std::vector<std::size_t> antenna_order(inst.num_antennas());
  std::iota(antenna_order.begin(), antenna_order.end(), std::size_t{0});
  std::sort(antenna_order.begin(), antenna_order.end(),
            [&](std::size_t a, std::size_t b) {
              return inst.antenna(a).capacity > inst.antenna(b).capacity;
            });

  std::vector<bool> served(inst.num_customers(), false);
  std::vector<knapsack::Item> items;
  std::vector<std::size_t> item_customer;
  for (std::size_t j : antenna_order) {
    // Deadline check per antenna knapsack: antennas already committed form
    // a feasible partial assignment; the rest stay unserved.
    if (deadline.expired()) {
      sol.status = model::SolveStatus::kBudgetExhausted;
      core::note_expired("assign_successive");
      verify::debug_postcondition(inst, sol, "assign.successive");
      return sol;
    }
    items.clear();
    item_customer.clear();
    for (std::size_t i : elig.per_antenna[j]) {
      if (served[i]) continue;
      items.push_back({inst.value(i), inst.demand(i)});
      item_customer.push_back(i);
    }
    const knapsack::Result res =
        oracle.solve(items, inst.antenna(j).capacity);
    for (std::size_t pick : res.chosen) {
      const std::size_t i = item_customer[pick];
      served[i] = true;
      sol.assign[i] = static_cast<std::int32_t>(j);
    }
  }
  verify::debug_postcondition(inst, sol, "assign.successive");
  return sol;
}

}  // namespace sectorpack::assign
