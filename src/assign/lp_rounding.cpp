#include <algorithm>
#include <limits>
#include <numeric>

#include "src/assign/assign.hpp"
#include "src/bounds/dinic.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::assign {

model::Solution solve_lp_rounding(const model::Instance& inst,
                                  std::span<const double> alphas,
                                  const core::SolveOptions& opts) {
  if (inst.is_value_weighted()) {
    // Max-flow maximizes routed demand, not value; successive knapsack is
    // the right tool there.
    return solve_successive(inst, alphas, knapsack::Oracle::exact(), opts);
  }
  static const obs::Counter c_calls = obs::counter("assign.lp.calls");
  static const obs::Counter c_integral = obs::counter("assign.lp.integral");
  static const obs::Counter c_repair =
      obs::counter("assign.lp.repair_iterations");
  static const obs::Counter c_repaired = obs::counter("assign.lp.repaired");
  const obs::ScopedSpan span("assign.lp_rounding");
  c_calls.inc();

  const Eligibility elig = compute_eligibility(inst, alphas);
  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();

  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha.assign(alphas.begin(), alphas.end());
  for (double& a : sol.alpha) a = geom::normalize(a);
  if (n == 0 || k == 0) return sol;

  // Fractional LP via max flow; remember the customer->antenna edge ids.
  bounds::Dinic flow(n + k + 2);
  const std::size_t source = 0;
  const std::size_t sink = n + k + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, inst.demand(i));
  }
  // edge_of[i] maps to (antenna j, edge id) pairs.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> edge_of(n);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i : elig.per_antenna[j]) {
      edge_of[i].emplace_back(j, flow.add_edge(1 + i, 1 + n + j, kInf));
    }
    flow.add_edge(1 + n + j, sink, inst.antenna(j).capacity);
  }
  // A truncated flow is still a feasible flow: phase 1 keeps whichever
  // customers it routed integrally and phase 2's O(n k) repair fills the
  // rest, so expiry degrades rounding quality, never feasibility.
  (void)flow.max_flow(source, sink, opts.deadline);
  if (flow.truncated()) {
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("assign_lp");
  }

  // Phase 1: keep integrally-routed customers.
  std::vector<double> residual(k);
  for (std::size_t j = 0; j < k; ++j) {
    residual[j] = inst.antenna(j).capacity;
  }
  std::vector<std::size_t> leftover;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = inst.demand(i);
    std::int32_t whole = model::kUnserved;
    for (const auto& [j, edge] : edge_of[i]) {
      if (flow.edge_flow(edge) >= d * (1.0 - 1e-9)) {
        whole = static_cast<std::int32_t>(j);
      }
    }
    if (whole != model::kUnserved) {
      c_integral.inc();
      sol.assign[i] = whole;
      residual[static_cast<std::size_t>(whole)] -= d;
    } else {
      leftover.push_back(i);  // fractional in the LP, or untouched by it
    }
  }

  // Phase 2: repair -- place every remaining customer by demand-descending
  // best fit into the remaining capacity (not just the LP-fractional ones:
  // capacity the LP left idle is still capacity).
  std::sort(leftover.begin(), leftover.end(),
            [&](std::size_t a, std::size_t b) {
              if (inst.demand(a) != inst.demand(b)) {
                return inst.demand(a) > inst.demand(b);
              }
              return a < b;
            });
  for (std::size_t i : leftover) {
    c_repair.inc();
    const double d = inst.demand(i);
    std::int32_t best = model::kUnserved;
    double best_residual = -1.0;
    for (std::int32_t j : elig.per_customer[i]) {
      const auto ju = static_cast<std::size_t>(j);
      if (residual[ju] >= d && residual[ju] > best_residual) {
        best_residual = residual[ju];
        best = j;
      }
    }
    if (best != model::kUnserved) {
      c_repaired.inc();
      sol.assign[i] = best;
      residual[static_cast<std::size_t>(best)] -= d;
    }
  }
  verify::debug_postcondition(inst, sol, "assign.lp_rounding");
  return sol;
}

}  // namespace sectorpack::assign
