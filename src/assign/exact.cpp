#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/assign/assign.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::assign {

namespace {

struct ExactState {
  const model::Instance* inst = nullptr;
  const Eligibility* elig = nullptr;
  std::vector<std::size_t> order;     // customers, demand descending
  std::vector<double> suffix_value;   // sum of values of order[pos..]
  std::vector<double> suffix_density; // max value/demand over order[pos..]
  std::uint64_t node_limit = 0;
  std::uint64_t nodes = 0;
  core::Deadline deadline;
  bool stopped = false;  // deadline expired: unwind, keep the incumbent

  std::vector<double> residual;
  std::vector<std::int32_t> cur;   // per customer
  std::vector<std::int32_t> best;  // per customer
  double cur_value = 0.0;
  double best_value = 0.0;

  // Poll the deadline every 1024 nodes (including node 0, so an already-
  // expired deadline stops before any search).
  static constexpr std::uint64_t kCheckMask = 1023;

  void dfs(std::size_t pos) {
    if (stopped) return;
    if ((nodes & kCheckMask) == 0 && deadline.expired()) {
      stopped = true;
      return;
    }
    if (++nodes > node_limit) {
      throw std::runtime_error("assign::solve_exact: node limit exceeded");
    }
    if (cur_value > best_value) {
      best_value = cur_value;
      best = cur;
    }
    if (pos == order.size()) return;

    // Relaxation bound: remaining value is capped by the total remaining
    // value and by (residual capacity) * (best remaining value density).
    double total_residual = 0.0;
    for (double r : residual) total_residual += r;
    const double by_capacity = total_residual * suffix_density[pos];
    if (cur_value + std::min(suffix_value[pos], by_capacity) <= best_value) {
      return;
    }

    const std::size_t i = order[pos];
    const double d = inst->demand(i);
    const double v = inst->value(i);
    for (std::int32_t j : elig->per_customer[i]) {
      const auto ju = static_cast<std::size_t>(j);
      if (residual[ju] < d) continue;
      residual[ju] -= d;
      cur[i] = j;
      cur_value += v;
      dfs(pos + 1);
      cur_value -= v;
      cur[i] = model::kUnserved;
      residual[ju] += d;
    }
    dfs(pos + 1);  // leave customer i unserved
  }
};

}  // namespace

model::Solution solve_exact(const model::Instance& inst,
                            std::span<const double> alphas,
                            std::uint64_t node_limit,
                            const core::SolveOptions& opts) {
  const Eligibility elig = compute_eligibility(inst, alphas);

  ExactState st;
  st.inst = &inst;
  st.elig = &elig;
  st.node_limit = node_limit;
  st.deadline = opts.deadline;
  st.order.resize(inst.num_customers());
  std::iota(st.order.begin(), st.order.end(), std::size_t{0});
  std::sort(st.order.begin(), st.order.end(),
            [&](std::size_t a, std::size_t b) {
              if (inst.demand(a) != inst.demand(b)) {
                return inst.demand(a) > inst.demand(b);
              }
              return a < b;
            });
  st.suffix_value.assign(st.order.size() + 1, 0.0);
  st.suffix_density.assign(st.order.size() + 1, 0.0);
  for (std::size_t p = st.order.size(); p-- > 0;) {
    const std::size_t i = st.order[p];
    st.suffix_value[p] = st.suffix_value[p + 1] + inst.value(i);
    st.suffix_density[p] =
        std::max(st.suffix_density[p + 1], inst.value(i) / inst.demand(i));
  }
  st.residual.resize(inst.num_antennas());
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    st.residual[j] = inst.antenna(j).capacity;
  }
  st.cur.assign(inst.num_customers(), model::kUnserved);
  st.best.assign(inst.num_customers(), model::kUnserved);

  st.dfs(0);

  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha.assign(alphas.begin(), alphas.end());
  for (double& a : sol.alpha) a = geom::normalize(a);
  sol.assign = st.best;
  if (st.stopped) {
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("assign_exact");
  }
  verify::debug_postcondition(inst, sol, "assign.exact");
  return sol;
}

}  // namespace sectorpack::assign
