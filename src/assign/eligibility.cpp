#include <stdexcept>

#include "src/assign/assign.hpp"
#include "src/geom/polar_grid.hpp"

namespace sectorpack::assign {

Eligibility compute_eligibility(const model::Instance& inst,
                                std::span<const double> alphas) {
  if (alphas.size() != inst.num_antennas()) {
    throw std::invalid_argument("compute_eligibility: alphas size mismatch");
  }
  Eligibility e;
  e.per_antenna.resize(inst.num_antennas());
  e.per_customer.resize(inst.num_customers());
  if (const geom::PolarGrid* grid = inst.spatial_index()) {
    // Indexed path: each antenna's sector query returns the covered
    // customers ascending, and antennas are processed in ascending j --
    // the same (i, j) visit order as the flat double loop, so both the
    // per_antenna and per_customer lists come out identical to it.
    std::vector<std::size_t> covered;
    for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
      grid->collect_sector(inst.sector(j, alphas[j]), covered);
      e.per_antenna[j].reserve(covered.size());
      for (std::size_t i : covered) {
        e.per_antenna[j].push_back(i);
        e.per_customer[i].push_back(static_cast<std::int32_t>(j));
      }
    }
    return e;
  }
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    const geom::Sector sec = inst.sector(j, alphas[j]);
    for (std::size_t i = 0; i < inst.num_customers(); ++i) {
      if (sec.contains(geom::Polar{inst.theta(i), inst.radius(i)})) {
        e.per_antenna[j].push_back(i);
        e.per_customer[i].push_back(static_cast<std::int32_t>(j));
      }
    }
  }
  return e;
}

}  // namespace sectorpack::assign
