#include <algorithm>
#include <numeric>

#include "src/assign/assign.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::assign {

model::Solution solve_greedy(const model::Instance& inst,
                             std::span<const double> alphas,
                             const core::SolveOptions& opts) {
  const core::Deadline& deadline = opts.deadline;
  const Eligibility elig = compute_eligibility(inst, alphas);

  model::Solution sol = model::Solution::empty_for(inst);
  sol.alpha.assign(alphas.begin(), alphas.end());
  for (double& a : sol.alpha) a = geom::normalize(a);

  std::vector<std::size_t> order(inst.num_customers());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (inst.demand(a) != inst.demand(b)) {
      return inst.demand(a) > inst.demand(b);
    }
    return a < b;
  });

  std::vector<double> residual(inst.num_antennas());
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    residual[j] = inst.antenna(j).capacity;
  }

  std::size_t placed = 0;
  for (std::size_t i : order) {
    // Deadline check per 1024 placements; customers not yet placed simply
    // stay unserved, which keeps the partial assignment feasible.
    if ((placed++ & 1023) == 0 && deadline.expired()) {
      sol.status = model::SolveStatus::kBudgetExhausted;
      core::note_expired("assign_greedy");
      verify::debug_postcondition(inst, sol, "assign.greedy");
      return sol;
    }
    const double d = inst.demand(i);
    std::int32_t best = model::kUnserved;
    double best_residual = -1.0;
    for (std::int32_t j : elig.per_customer[i]) {
      const auto ju = static_cast<std::size_t>(j);
      if (residual[ju] >= d && residual[ju] > best_residual) {
        best_residual = residual[ju];
        best = j;
      }
    }
    if (best != model::kUnserved) {
      sol.assign[i] = best;
      residual[static_cast<std::size_t>(best)] -= d;
    }
  }
  verify::debug_postcondition(inst, sol, "assign.greedy");
  return sol;
}

}  // namespace sectorpack::assign
