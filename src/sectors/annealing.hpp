#pragma once
// Simulated-annealing metaheuristic for P3 orientations.
//
// The combinatorial core of the problem is the orientation vector; given
// orientations, assignment is handled well by successive knapsack. The
// annealer random-walks over candidate orientation vectors (leading edges
// at customer angles, so the walk stays on the lossless candidate grid),
// re-assigns after each move, and accepts by the Metropolis rule with a
// geometric cooling schedule. Purpose: an independent baseline against the
// constructive greedy/local-search pair in the experiment suite, and a
// polish pass for hard saturated instances.

#include "src/core/deadline.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/solution.hpp"
#include "src/sim/rng.hpp"

namespace sectorpack::sectors {

struct AnnealConfig {
  std::uint64_t seed = 1;
  std::size_t iterations = 2000;
  double initial_temperature = 0.0;  // 0 = auto: 5% of total demand
  double cooling = 0.995;            // temperature *= cooling per iteration
  knapsack::Oracle oracle = knapsack::Oracle::greedy();  // per-move assign
  /// Re-assign with an exact oracle at the end (the walk itself can use the
  /// cheap oracle).
  bool final_exact_assign = true;
  /// Deadline checked once per iteration; on expiry the walk stops, the
  /// final exact re-assign is skipped, and the best-so-far is returned with
  /// status kBudgetExhausted.
  core::SolveOptions solve;
};

/// Simulated annealing from the greedy solution. The returned solution is
/// feasible and never worse than the greedy start (best-so-far tracking).
[[nodiscard]] model::Solution solve_annealing(const model::Instance& inst,
                                              const AnnealConfig& config = {});

/// Simulated annealing from an explicit starting solution (warm start),
/// e.g. a portfolio race's shared incumbent. `start` must be feasible for
/// `inst`; the walk begins at its orientation vector and best-so-far
/// tracking guarantees the result is never worse. solve_annealing(inst, c)
/// is exactly anneal(inst, solve_greedy(inst, greedy-with-c.solve), c), so
/// warm-starting with that same greedy solution is byte-identical to the
/// cold path.
[[nodiscard]] model::Solution anneal(const model::Instance& inst,
                                     model::Solution start,
                                     const AnnealConfig& config = {});

}  // namespace sectorpack::sectors
