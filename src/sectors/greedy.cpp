#include <algorithm>

#include "src/assign/assign.hpp"
#include "src/knapsack/incremental.hpp"
#include "src/par/parallel_for.hpp"
#include "src/sectors/sectors.hpp"
#include "src/single/single.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::sectors {

namespace {

// One round's verdict for a single antenna: its best window over the still-
// unserved customers, with picks already remapped to instance indices.
struct AntennaPick {
  double value = 0.0;
  std::size_t j = 0;
  single::WindowChoice choice;
};

}  // namespace

model::Solution solve_greedy(const model::Instance& inst,
                             const GreedyConfig& config) {
  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();

  model::Solution sol = model::Solution::empty_for(inst);
  std::vector<bool> served(n, false);
  std::vector<bool> used(k, false);

  // When all antennas are identical, every unused antenna sees the same
  // sweep each round; compute it once and hand it to the lowest-index one.
  const bool identical = inst.antennas_identical();

  // Window memo, per antenna, surviving across rounds: away from the window
  // committed last round the unserved set -- and hence most windows' member
  // fingerprints -- is unchanged, so later rounds mostly replay cached
  // packings. Identical antennas share one cache (same capacity, same
  // windows).
  std::vector<knapsack::OracleCache> caches(identical ? 1 : k);

  // Evaluates antenna j against the current unserved set. Thread-confined:
  // scratch lives on the calling worker's stack, the shared cache is
  // internally synchronized, and `served`/`sol` are only read here.
  const auto evaluate = [&](std::size_t j, bool window_parallel) {
    AntennaPick pick;
    pick.j = j;
    // Radial filter via the crossover helper (flat below the threshold,
    // polar grid above; candidates come back in ascending instance order
    // either way, so the served-filter below sees the same sequence the
    // old flat loop produced).
    std::vector<std::size_t> in_band;
    inst.in_range_customers(j, in_band);
    std::vector<double> thetas;
    std::vector<double> values;
    std::vector<double> demands;
    std::vector<std::size_t> index;
    for (std::size_t i : in_band) {
      if (!served[i]) {
        thetas.push_back(inst.theta(i));
        values.push_back(inst.value(i));
        demands.push_back(inst.demand(i));
        index.push_back(i);
      }
    }
    pick.choice = single::best_window_weighted(
        thetas, values, demands, inst.antenna(j).rho, inst.antenna(j).capacity,
        config.oracle, window_parallel, nullptr,
        &caches[identical ? 0 : j], index, config.solve.deadline);
    pick.value = pick.choice.value;
    // Remap local picks to instance customer indices now, while the index
    // map for antenna j is live.
    for (std::size_t& c : pick.choice.chosen) c = index[c];
    return pick;
  };

  // Deadline check per greedy round: the committed prefix of rounds is a
  // feasible solution in its own right, so it is the natural incumbent.
  const core::Deadline& deadline = config.solve.deadline;
  for (std::size_t round = 0; round < k; ++round) {
    AntennaPick best;
    bool have_best = false;

    if (identical) {
      // Same result for every unused antenna: evaluate the lowest-index one
      // and parallelize across its windows instead.
      for (std::size_t j = 0; j < k; ++j) {
        if (used[j]) continue;
        best = evaluate(j, config.parallel);
        have_best = best.value > 0.0;
        break;
      }
    } else if (config.parallel && k > 1) {
      // Per-antenna argmax over the pool. Deterministic: chunks are
      // combined in ascending antenna order and a later antenna replaces
      // the incumbent only on strictly greater value, which reproduces the
      // serial "first antenna achieving the maximum" rule exactly.
      best = par::parallel_reduce<AntennaPick>(
          k, /*grain=*/1, AntennaPick{},
          [&](std::size_t b, std::size_t e) {
            AntennaPick chunk_best;
            for (std::size_t j = b; j < e; ++j) {
              if (used[j]) continue;
              AntennaPick pick = evaluate(j, false);
              if (pick.value > chunk_best.value) {
                chunk_best = std::move(pick);
              }
            }
            return chunk_best;
          },
          [](AntennaPick a, AntennaPick b) {
            return b.value > a.value ? std::move(b) : std::move(a);
          });
      have_best = best.value > 0.0;
    } else {
      for (std::size_t j = 0; j < k; ++j) {
        if (used[j]) continue;
        AntennaPick pick = evaluate(j, false);
        if (pick.value > best.value) {
          best = std::move(pick);
          have_best = true;
        }
      }
    }

    if (have_best) {
      used[best.j] = true;
      sol.alpha[best.j] = best.choice.alpha;
      for (std::size_t i : best.choice.chosen) {
        served[i] = true;
        sol.assign[i] = static_cast<std::int32_t>(best.j);
      }
    }
    // Expiry latches, so this also catches sweeps truncated mid-round: the
    // committed pick stays (it is feasible), later rounds are abandoned.
    if (deadline.expired()) {
      sol.status = model::SolveStatus::kBudgetExhausted;
      core::note_expired("sectors_greedy");
      verify::debug_postcondition(inst, sol, "sectors.greedy");
      return sol;
    }
    if (!have_best) break;  // no antenna can serve anything further
  }
  verify::debug_postcondition(inst, sol, "sectors.greedy");
  return sol;
}

model::Solution solve_uniform_orientations(const model::Instance& inst,
                                           const knapsack::Oracle& oracle,
                                           const core::SolveOptions& opts) {
  const std::size_t k = inst.num_antennas();
  std::vector<double> alphas(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    alphas[j] = geom::kTwoPi * static_cast<double>(j) /
                static_cast<double>(std::max<std::size_t>(k, 1));
  }
  model::Solution sol = assign::solve_successive(inst, alphas, oracle, opts);
  verify::debug_postcondition(inst, sol, "sectors.uniform");
  return sol;
}

}  // namespace sectorpack::sectors
