#include <algorithm>

#include "src/assign/assign.hpp"
#include "src/sectors/sectors.hpp"
#include "src/single/single.hpp"

namespace sectorpack::sectors {

model::Solution solve_greedy(const model::Instance& inst,
                             const GreedyConfig& config) {
  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();

  model::Solution sol = model::Solution::empty_for(inst);
  std::vector<bool> served(n, false);
  std::vector<bool> used(k, false);

  // When all antennas are identical, every unused antenna sees the same
  // sweep each round; compute it once and hand it to the lowest-index one.
  const bool identical = inst.antennas_identical();

  std::vector<double> thetas;
  std::vector<double> values;
  std::vector<double> demands;
  std::vector<std::size_t> index;

  for (std::size_t round = 0; round < k; ++round) {
    double best_value = 0.0;
    std::size_t best_j = k;
    single::WindowChoice best_choice;

    for (std::size_t j = 0; j < k; ++j) {
      if (used[j]) continue;
      thetas.clear();
      values.clear();
      demands.clear();
      index.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (!served[i] && inst.in_range(i, j)) {
          thetas.push_back(inst.theta(i));
          values.push_back(inst.value(i));
          demands.push_back(inst.demand(i));
          index.push_back(i);
        }
      }
      single::WindowChoice choice = single::best_window_weighted(
          thetas, values, demands, inst.antenna(j).rho,
          inst.antenna(j).capacity, config.oracle, config.parallel);
      if (choice.value > best_value) {
        best_value = choice.value;
        best_j = j;
        best_choice = std::move(choice);
        // Remap local picks to instance customer indices now, while the
        // index map for antenna j is live.
        for (std::size_t& c : best_choice.chosen) c = index[c];
      }
      if (identical) break;  // same result for every unused antenna
    }

    if (best_j == k) break;  // no antenna can serve anything further
    used[best_j] = true;
    sol.alpha[best_j] = best_choice.alpha;
    for (std::size_t i : best_choice.chosen) {
      served[i] = true;
      sol.assign[i] = static_cast<std::int32_t>(best_j);
    }
  }
  return sol;
}

model::Solution solve_uniform_orientations(const model::Instance& inst,
                                           const knapsack::Oracle& oracle) {
  const std::size_t k = inst.num_antennas();
  std::vector<double> alphas(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    alphas[j] = geom::kTwoPi * static_cast<double>(j) /
                static_cast<double>(std::max<std::size_t>(k, 1));
  }
  return assign::solve_successive(inst, alphas, oracle);
}

}  // namespace sectorpack::sectors
