#include "src/sectors/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "src/assign/assign.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sectors/sectors.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::sectors {

model::Solution solve_annealing(const model::Instance& inst,
                                const AnnealConfig& config) {
  GreedyConfig start_config;
  start_config.solve = config.solve;
  return anneal(inst, solve_greedy(inst, start_config), config);
}

model::Solution anneal(const model::Instance& inst, model::Solution start,
                       const AnnealConfig& config) {
  static const obs::Counter c_epochs = obs::counter("anneal.epochs");
  static const obs::Counter c_accepted = obs::counter("anneal.accepted");
  static const obs::Counter c_rejected = obs::counter("anneal.rejected");
  static const obs::Counter c_improved = obs::counter("anneal.improved_best");
  static const obs::Gauge g_temperature =
      obs::gauge("anneal.final_temperature");
  const obs::ScopedSpan span("sectors.solve_annealing");

  const core::Deadline& deadline = config.solve.deadline;
  const std::size_t k = inst.num_antennas();
  model::Solution best = std::move(start);
  if (k == 0 || inst.num_customers() == 0) return best;

  sim::Rng rng(config.seed);

  // Candidate orientations per antenna: angles of in-range customers
  // (radial filter via the flat/indexed crossover helper; same angles in
  // the same ascending order either way).
  std::vector<std::vector<double>> cands(k);
  std::vector<std::size_t> in_band;
  for (std::size_t j = 0; j < k; ++j) {
    inst.in_range_customers(j, in_band);
    for (std::size_t i : in_band) cands[j].push_back(inst.theta(i));
    if (cands[j].empty()) cands[j].push_back(0.0);
  }

  double best_value = model::served_value(inst, best);
  std::vector<double> current = best.alpha;
  double current_value = best_value;

  double temperature = config.initial_temperature > 0.0
                           ? config.initial_temperature
                           : 0.05 * inst.total_demand();
  if (temperature <= 0.0) temperature = 1.0;

  std::size_t completed_iterations = 0;
  bool expired = best.status == model::SolveStatus::kBudgetExhausted;
  for (std::size_t it = 0; it < config.iterations; ++it) {
    // Deadline check per annealing iteration (each one re-assigns the whole
    // instance, so this is the natural batch). Best-so-far tracking means
    // the incumbent at expiry is feasible and never worse than the start.
    if (expired || deadline.expired()) {
      expired = true;
      break;
    }
    // Move: re-point one random antenna at a random candidate.
    const std::size_t j = rng.uniform_int(k);
    std::vector<double> proposal = current;
    proposal[j] = cands[j][rng.uniform_int(cands[j].size())];

    const model::Solution assigned =
        assign::solve_successive(inst, proposal, config.oracle, config.solve);
    const double value = model::served_value(inst, assigned);

    const double delta = value - current_value;
    if (delta >= 0.0 ||
        rng.uniform01() < std::exp(delta / std::max(temperature, 1e-9))) {
      c_accepted.inc();
      current = std::move(proposal);
      current_value = value;
      if (value > best_value) {
        c_improved.inc();
        best_value = value;
        best = assigned;
      }
    } else {
      c_rejected.inc();
    }
    obs::trace_counter("anneal.temperature", temperature);
    obs::trace_counter("anneal.current_value", current_value);
    temperature *= config.cooling;
    ++completed_iterations;
  }
  c_epochs.add(completed_iterations);
  g_temperature.set(temperature);

  if (expired || deadline.expired()) {
    // The final exact re-assign is a whole extra pass; with the budget gone
    // the best-so-far incumbent is the answer.
    best.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("annealing");
    verify::debug_postcondition(inst, best, "sectors.annealing");
    return best;
  }

  if (config.final_exact_assign) {
    model::Solution polished = assign::solve_successive(
        inst, best.alpha, knapsack::Oracle::exact(), config.solve);
    polished.status = model::worst_of(polished.status, best.status);
    if (model::served_value(inst, polished) > best_value) {
      best = std::move(polished);
    }
  }
  verify::debug_postcondition(inst, best, "sectors.annealing");
  return best;
}

}  // namespace sectorpack::sectors
