#include <algorithm>

#include "src/assign/assign.hpp"
#include "src/knapsack/incremental.hpp"
#include "src/model/validate.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sectors/sectors.hpp"
#include "src/single/single.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::sectors {

model::Solution improve(const model::Instance& inst, model::Solution start,
                        const LocalSearchConfig& config) {
  static const obs::Counter c_passes = obs::counter("local_search.passes");
  static const obs::Counter c_tried =
      obs::counter("local_search.moves_tried");
  static const obs::Counter c_improving =
      obs::counter("local_search.moves_improving");
  const obs::ScopedSpan span("sectors.local_search");

  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();
  model::Solution sol = std::move(start);

  std::vector<double> thetas;
  std::vector<double> values;
  std::vector<double> demands;
  std::vector<std::size_t> index;
  std::vector<std::size_t> in_band;

  // Window memo per antenna, surviving across passes: antenna j's candidate
  // pool (unserved plus its own customers) only changes when some antenna's
  // assignment changed nearby, so most windows replay from cache after the
  // first pass. Keyed by member fingerprints over instance indices.
  std::vector<knapsack::OracleCache> caches(k);

  // Deadline check per antenna move (finer than per pass: one move is one
  // window sweep, the unit of work here). The solution between moves is
  // always feasible, so expiry just stops improving.
  const core::Deadline& deadline = config.solve.deadline;
  bool expired = false;

  bool improved_any = true;
  for (std::size_t pass = 0; pass < config.max_passes && improved_any;
       ++pass) {
    c_passes.inc();
    improved_any = false;
    for (std::size_t j = 0; j < k && !expired; ++j) {
      if (deadline.expired()) {
        expired = true;
        break;
      }
      c_tried.inc();
      // Objective value antenna j currently contributes.
      double current = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (sol.assign[i] == static_cast<std::int32_t>(j)) {
          current += inst.value(i);
        }
      }

      // Re-solve antenna j's window over unserved customers plus its own.
      // Radial candidates from the crossover helper (ascending instance
      // order, identical to the old flat scan), then the assignment filter.
      inst.in_range_customers(j, in_band);
      thetas.clear();
      values.clear();
      demands.clear();
      index.clear();
      for (std::size_t i : in_band) {
        const bool free_for_j =
            sol.assign[i] == model::kUnserved ||
            sol.assign[i] == static_cast<std::int32_t>(j);
        if (free_for_j) {
          thetas.push_back(inst.theta(i));
          values.push_back(inst.value(i));
          demands.push_back(inst.demand(i));
          index.push_back(i);
        }
      }
      const single::WindowChoice choice = single::best_window_weighted(
          thetas, values, demands, inst.antenna(j).rho,
          inst.antenna(j).capacity, config.oracle, config.parallel,
          /*pool=*/nullptr, &caches[j], index, deadline);
      if (!choice.complete) expired = true;
      // A truncated sweep's incumbent is still a valid (possibly weaker)
      // re-orientation; applying it when improving keeps monotonicity.
      if (choice.value > current + 1e-12) {
        c_improving.inc();
        for (std::size_t i = 0; i < n; ++i) {
          if (sol.assign[i] == static_cast<std::int32_t>(j)) {
            sol.assign[i] = model::kUnserved;
          }
        }
        sol.alpha[j] = choice.alpha;
        for (std::size_t local : choice.chosen) {
          sol.assign[index[local]] = static_cast<std::int32_t>(j);
        }
        improved_any = true;
      }
    }
    if (expired) break;
  }

  if (expired) {
    // Skip the global reassignment -- it is a full successive-knapsack pass
    // and the budget is gone. The current solution is the incumbent.
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("local_search");
    verify::debug_postcondition(inst, sol, "sectors.local_search");
    return sol;
  }

  // Global reassignment with the final orientations can consolidate
  // capacity across antennas; keep whichever is better.
  model::Solution reassigned =
      assign::solve_successive(inst, sol.alpha, config.oracle, config.solve);
  // Sticky status both ways: if either the start was truncated or the
  // reassignment ran out of budget, the overall result is best-effort.
  const model::SolveStatus status =
      model::worst_of(sol.status, reassigned.status);
  if (model::served_value(inst, reassigned) >
      model::served_value(inst, sol)) {
    reassigned.status = status;
    verify::debug_postcondition(inst, reassigned, "sectors.local_search");
    return reassigned;
  }
  sol.status = status;
  verify::debug_postcondition(inst, sol, "sectors.local_search");
  return sol;
}

model::Solution solve_local_search(const model::Instance& inst,
                                   const LocalSearchConfig& config) {
  GreedyConfig gc;
  gc.oracle = config.oracle;
  gc.parallel = config.parallel;
  gc.solve = config.solve;
  return improve(inst, solve_greedy(inst, gc), config);
}

}  // namespace sectorpack::sectors
