#pragma once
// P3 -- packing to sectors: the general problem. Multiple antennas with
// individual widths, ranges and capacities; choose all orientations and the
// assignment.
//
// solve_greedy implements the submodular-style greedy the approximation
// literature for this problem family builds on: k rounds, each committing
// the (antenna, orientation, packed set) triple of maximum marginal served
// demand over the still-unserved customers, where the per-round packing is
// delegated to a knapsack oracle with guarantee beta. For the coverage-type
// relaxation the classical analysis gives a (1 - e^{-beta}) factor; with
// binding capacities the greedy is the standard heuristic whose empirical
// ratio experiments T4/F1/F2 chart against certified upper bounds.
//
// solve_local_search improves any feasible solution by round-robin
// re-orientation (free one antenna's customers, re-solve its best window
// over everything unserved, keep if better) followed by a global
// reassignment; the result never degrades.
//
// solve_exact enumerates candidate orientation tuples (leading edges at
// customer angles -- lossless by the candidate-orientation lemma, applied
// per antenna since each customer is served by at most one antenna) with
// exact assignment per tuple. Exponential; reference for small instances.

#include "src/core/deadline.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/solution.hpp"

namespace sectorpack::sectors {

// Every solver here is deadline-aware: when config.solve.deadline expires
// it stops at the next check point (round / pass / iteration / tuple),
// finalizes, and returns its feasible incumbent with
// Solution::status == kBudgetExhausted. See docs/robustness.md.

struct GreedyConfig {
  knapsack::Oracle oracle = knapsack::Oracle::exact();
  bool parallel = false;  // parallelize each round's window sweeps
  core::SolveOptions solve;
};

[[nodiscard]] model::Solution solve_greedy(const model::Instance& inst,
                                           const GreedyConfig& config = {});

struct LocalSearchConfig {
  knapsack::Oracle oracle = knapsack::Oracle::exact();
  std::size_t max_passes = 16;  // full antenna sweeps without improvement cap
  bool parallel = false;
  core::SolveOptions solve;
};

/// Greedy start + local search + global reassignment.
[[nodiscard]] model::Solution solve_local_search(
    const model::Instance& inst, const LocalSearchConfig& config = {});

/// Improve a given feasible solution; the returned solution serves at least
/// as much demand as `start`.
[[nodiscard]] model::Solution improve(const model::Instance& inst,
                                      model::Solution start,
                                      const LocalSearchConfig& config = {});

/// Exact solver. Throws std::invalid_argument when the candidate tuple
/// space exceeds `tuple_limit` and std::runtime_error on assignment node
/// exhaustion. With a deadline, returns the best tuple examined so far
/// (status kBudgetExhausted) instead of proving optimality.
[[nodiscard]] model::Solution solve_exact(
    const model::Instance& inst, std::uint64_t tuple_limit = 1u << 20,
    std::uint64_t node_limit = 1u << 26,
    const core::SolveOptions& opts = {});

/// Baseline: orientations evenly spaced (alpha_j = j * 2*pi / k), customers
/// assigned by successive knapsack. What a non-adaptive deployment does.
[[nodiscard]] model::Solution solve_uniform_orientations(
    const model::Instance& inst,
    const knapsack::Oracle& oracle = knapsack::Oracle::exact(),
    const core::SolveOptions& opts = {});

}  // namespace sectorpack::sectors
