#include <algorithm>
#include <stdexcept>

#include "src/assign/assign.hpp"
#include "src/geom/sweep.hpp"
#include "src/sectors/sectors.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::sectors {

namespace {

// Candidate leading-edge orientations for antenna j: the angles of the
// customers within its range (an antenna serving nothing may point
// anywhere; 0.0 represents that choice).
std::vector<double> candidates_for(const model::Instance& inst,
                                   std::size_t j) {
  std::vector<std::size_t> in_band;
  inst.in_range_customers(j, in_band);
  std::vector<double> thetas;
  thetas.reserve(in_band.size());
  for (std::size_t i : in_band) thetas.push_back(inst.theta(i));
  std::vector<double> cands = geom::candidate_orientations(
      thetas, inst.antenna(j).rho, geom::CandidateEdges::kLeading);
  if (cands.empty()) cands.push_back(0.0);
  return cands;
}

}  // namespace

model::Solution solve_exact(const model::Instance& inst,
                            std::uint64_t tuple_limit,
                            std::uint64_t node_limit,
                            const core::SolveOptions& opts) {
  const core::Deadline& deadline = opts.deadline;
  const std::size_t k = inst.num_antennas();
  model::Solution best = model::Solution::empty_for(inst);
  if (k == 0 || inst.num_customers() == 0) return best;

  std::vector<std::vector<double>> cands(k);
  std::uint64_t tuples = 1;
  for (std::size_t j = 0; j < k; ++j) {
    cands[j] = candidates_for(inst, j);
    if (tuples > tuple_limit / cands[j].size() + 1) {
      throw std::invalid_argument(
          "sectors::solve_exact: candidate tuple space too large");
    }
    tuples *= cands[j].size();
  }
  if (tuples > tuple_limit) {
    throw std::invalid_argument(
        "sectors::solve_exact: candidate tuple space too large");
  }

  // Identical antennas are interchangeable: restrict to non-decreasing
  // candidate index tuples to avoid re-solving permutations.
  const bool identical = inst.antennas_identical();

  double best_value = -1.0;
  bool exhausted = false;
  std::vector<std::size_t> pick(k, 0);
  std::vector<double> alphas(k, 0.0);
  for (;;) {
    // Deadline check per candidate tuple (each tuple is one exact
    // assignment solve). Expiry turns the enumeration into an anytime
    // search over the tuples examined so far.
    if (deadline.expired()) {
      exhausted = true;
      break;
    }
    bool skip = false;
    if (identical) {
      for (std::size_t j = 1; j < k; ++j) {
        if (pick[j] < pick[j - 1]) {
          skip = true;
          break;
        }
      }
    }
    if (!skip) {
      for (std::size_t j = 0; j < k; ++j) alphas[j] = cands[j][pick[j]];
      model::Solution sol = assign::solve_exact(inst, alphas, node_limit,
                                                opts);
      if (sol.status == model::SolveStatus::kBudgetExhausted) {
        exhausted = true;  // this tuple's value is a lower estimate
      }
      const double value = model::served_value(inst, sol);
      if (value > best_value) {
        best_value = value;
        best = std::move(sol);
      }
    }
    // Next tuple (odometer).
    std::size_t pos = k;
    bool done = true;
    while (pos > 0) {
      --pos;
      if (++pick[pos] < cands[pos].size()) {
        done = false;
        break;
      }
      pick[pos] = 0;
    }
    if (done) break;
  }
  best.status = exhausted ? model::SolveStatus::kBudgetExhausted
                          : model::SolveStatus::kComplete;
  if (exhausted) core::note_expired("sectors_exact");
  verify::debug_postcondition(inst, best, "sectors.exact");
  return best;
}

}  // namespace sectorpack::sectors
