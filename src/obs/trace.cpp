#include "src/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <vector>

#include "src/core/sync.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::obs {

namespace {

using Clock = std::chrono::steady_clock;

enum class Phase : std::uint8_t { kComplete, kCounter, kInstant };

struct Event {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;  // complete spans only
  double value;         // counter samples only
  Phase phase;
};

// Buffers from threads that recorded in the current session. Each buffer is
// locked individually: writers only ever take their own (uncontended) lock,
// the serializer takes each in turn.
struct Buffer {
  core::Mutex mu;
  std::vector<Event> events SP_GUARDED_BY(mu);
  // Assigned once under Session::mu before the buffer is shared, const
  // thereafter -- safe to read without mu.
  std::uint32_t tid = 0;
  std::uint64_t dropped SP_GUARDED_BY(mu) = 0;
};

// Bound per-thread memory; beyond this events are counted but dropped.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct Session {
  core::Mutex mu;
  std::vector<std::shared_ptr<Buffer>> buffers SP_GUARDED_BY(mu);
  // Written under mu by trace_start() strictly before the release-store of
  // g_tracing; recorders acquire-load g_tracing (trace_enabled) before
  // calling now_us(), which orders this read. Not mu-guarded on purpose:
  // taking the session lock in now_us() would serialize every span.
  Clock::time_point start{};
  std::uint32_t next_tid SP_GUARDED_BY(mu) = 1;
};

std::atomic<bool> g_tracing{false};
std::atomic<std::uint64_t> g_epoch{0};  // bumped by trace_start

Session& session() {
  static Session s;
  return s;
}

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - session().start)
      .count();
}

Buffer* local_buffer() {
  thread_local std::shared_ptr<Buffer> buffer;
  thread_local std::uint64_t epoch = 0;
  const std::uint64_t current = g_epoch.load(std::memory_order_acquire);
  if (buffer == nullptr || epoch != current) {
    buffer = std::make_shared<Buffer>();
    epoch = current;
    Session& s = session();
    core::LockGuard lock(s.mu);
    buffer->tid = s.next_tid++;
    s.buffers.push_back(buffer);
  }
  return buffer.get();
}

void record(const char* name, Phase phase, std::int64_t ts_us,
            std::int64_t dur_us, double value) noexcept {
  Buffer* b = local_buffer();
  core::LockGuard lock(b->mu);
  if (b->events.size() >= kMaxEventsPerThread) {
    ++b->dropped;
    return;
  }
  b->events.push_back({name, ts_us, dur_us, value, phase});
}

}  // namespace

bool trace_enabled() noexcept {
  // Acquire pairs with trace_start()'s release-store and makes the
  // unlocked read of Session::start in now_us() well-ordered (a relaxed
  // load here would leave that read racy in principle).
  return g_tracing.load(std::memory_order_acquire);
}

void trace_start() {
  Session& s = session();
  {
    core::LockGuard lock(s.mu);
    s.buffers.clear();
    s.start = Clock::now();
    s.next_tid = 1;
  }
  g_epoch.fetch_add(1, std::memory_order_release);
  g_tracing.store(true, std::memory_order_release);
}

void trace_stop(std::ostream& os) {
  g_tracing.store(false, std::memory_order_release);
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    Session& s = session();
    core::LockGuard lock(s.mu);
    buffers = s.buffers;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers) {
    core::LockGuard lock(buffer->mu);
    dropped += buffer->dropped;
    for (const Event& e : buffer->events) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"sectorpack\",\"pid\":1,\"tid\":" << buffer->tid
         << ",\"ts\":" << e.ts_us;
      switch (e.phase) {
        case Phase::kComplete:
          os << ",\"ph\":\"X\",\"dur\":" << e.dur_us;
          break;
        case Phase::kCounter:
          os << ",\"ph\":\"C\",\"args\":{\"value\":" << json_number(e.value)
             << "}";
          break;
        case Phase::kInstant:
          os << ",\"ph\":\"i\",\"s\":\"t\"";
          break;
      }
      os << "}";
    }
  }
  os << "],\"otherData\":{\"droppedEvents\":" << dropped << "}}";
}

bool trace_stop_to_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    // Still end the session so collection does not keep growing.
    g_tracing.store(false, std::memory_order_release);
    return false;
  }
  trace_stop(out);
  return bool(out);
}

std::size_t trace_event_count() {
  std::size_t n = 0;
  Session& s = session();
  core::LockGuard lock(s.mu);
  for (const auto& buffer : s.buffers) {
    core::LockGuard block(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

ScopedSpan::ScopedSpan(const char* name) noexcept
    : name_(name), start_us_(-1) {
  if (trace_enabled()) start_us_ = now_us();
}

ScopedSpan::~ScopedSpan() {
  if (start_us_ < 0 || !trace_enabled()) return;
  const std::int64_t end = now_us();
  record(name_, Phase::kComplete, start_us_,
         std::max<std::int64_t>(end - start_us_, 0), 0.0);
}

void trace_counter(const char* name, double value) noexcept {
  if (!trace_enabled()) return;
  record(name, Phase::kCounter, now_us(), 0, value);
}

void trace_instant(const char* name) noexcept {
  if (!trace_enabled()) return;
  record(name, Phase::kInstant, now_us(), 0, 0.0);
}

}  // namespace sectorpack::obs
