#pragma once
// Rolling-window SLO tracking for the batch engine.
//
// Registry histograms answer "over the whole run"; an operator watching a
// long-lived batch needs "over the last W requests": is the deadline
// hit-rate degrading *now*, did tail latency move after a cache flush?
// SloTracker keeps a fixed ring of the last W request outcomes and computes
// window quantiles exactly (nearest-rank over the retained samples), so the
// summary is independent of histogram bucketing.
//
// Thread model: record() is called from engine worker threads and takes one
// short mutex (append to a preallocated ring); summary()/publish() are
// called rarely (drain, export ticks). This is intentionally simpler than
// the obs shard discipline -- the per-request cost is one lock around a few
// stores, far below a solve, and a window must see writes from all threads
// in one total order to mean anything.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/sync.hpp"

namespace sectorpack::obs {

class Registry;

/// How a recorded request was disposed of. The kind decides which rollup
/// lines a sample contributes to (see Summary): near-zero cache-hit
/// latencies and rejected requests must not dilute the solve percentiles,
/// and rejected requests must not be invisible to the deadline hit-rate.
enum class SloKind : std::uint8_t {
  kSolve = 0,     // a fresh solve ran (ok or budget_exhausted)
  kCacheHit = 1,  // answered from the result cache, no solve
  kRejected = 2,  // never started (drain / global budget); deadline_ok=false
};

class SloTracker {
 public:
  /// One request outcome inside the window.
  struct Sample {
    double latency_ms = 0.0;
    bool deadline_ok = false;  // finished without exhausting its budget
    SloKind kind = SloKind::kSolve;
  };

  /// Point-in-time rollup of the last `in_window` (<= window) requests.
  ///
  /// Semantics (documented in docs/observability.md "SLO tracker"):
  ///  * p50/p95/p99 are computed over kSolve samples only -- they answer
  ///    "how slow is a solve right now". Cache hits (near-zero latency)
  ///    and rejected requests are excluded so the tail cannot be diluted
  ///    toward zero by a hot cache or a drain storm.
  ///  * deadline_hit_rate is computed over ALL samples: a cache hit counts
  ///    as meeting its deadline, a rejected request counts as missing it.
  ///    It answers "what fraction of admitted requests got a full answer
  ///    in budget".
  ///  * cache_hit_rate = kCacheHit / (kSolve + kCacheHit): the fraction of
  ///    *answered* requests that skipped the solver. Rejected requests are
  ///    excluded from the denominator (they never consulted the cache).
  struct Summary {
    std::size_t window = 0;      // configured capacity W
    std::uint64_t total = 0;     // requests recorded since construction
    std::size_t in_window = 0;   // all retained samples (rates use these)
    std::size_t solves = 0;      // kSolve samples (percentiles use these)
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double deadline_hit_rate = 1.0;  // fraction of window with deadline_ok
    double cache_hit_rate = 0.0;     // hits / (hits + solves)
    [[nodiscard]] std::string to_string() const;
  };

  /// `window` is clamped to >= 1. Memory is `window * sizeof(Sample)`,
  /// allocated up front so record() never allocates.
  explicit SloTracker(std::size_t window = 512);

  void record(double latency_ms, bool deadline_ok, SloKind kind);

  [[nodiscard]] Summary summary() const;

  /// Write the summary into `registry` (nullptr = global) as `slo.*` gauges:
  /// slo.window, slo.samples, slo.solve_samples, slo.total, slo.p50_ms,
  /// slo.p95_ms, slo.p99_ms, slo.deadline_hit_rate, slo.cache_hit_rate.
  /// Call at drain or on export ticks so `--stats json` and the exporter
  /// carry the rolling view.
  void publish(Registry* registry = nullptr) const;

 private:
  mutable core::Mutex mu_;
  std::vector<Sample> ring_ SP_GUARDED_BY(mu_);
  std::size_t next_ SP_GUARDED_BY(mu_) = 0;
  std::size_t filled_ SP_GUARDED_BY(mu_) = 0;
  std::uint64_t total_ SP_GUARDED_BY(mu_) = 0;
};

}  // namespace sectorpack::obs
