#pragma once
// Periodic metric export for long-lived serving processes.
//
// End-of-run snapshots (`--stats json`) answer "what happened overall" but
// nothing mid-flight; a soak run or a dashboard needs the registry state
// *while* the batch is running. `Exporter` owns one background thread that
// snapshots a Registry every `interval_seconds` and
//  * appends a JSON-lines envelope (schema-versioned, ISO-8601 timestamped)
//    to `jsonl_path`, and/or
//  * atomically rewrites `prom_path` with the Prometheus text exposition
//    (format 0.0.4) of the snapshot -- write-to-temp + std::rename, so a
//    scraper never reads a half-written file.
//
// Shutdown is cooperative and prompt: stop() (also run by the destructor)
// wakes the thread, performs one final export so the last snapshot is never
// older than the run's end, and joins. The CLI calls stop() on drain and on
// SIGINT, so `--metrics-out` files are complete even for interrupted runs.
//
// The exporter only *reads* the registry (Registry::snapshot is safe against
// concurrent writers), so instrumented hot paths never block on export IO.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

#include "src/core/sync.hpp"
#include "src/obs/metrics.hpp"

namespace sectorpack::obs {

/// Version of the `--stats json` / JSONL snapshot envelope. Bump when a
/// field changes meaning; adding fields is backward-compatible and keeps
/// the version (see docs/observability.md).
inline constexpr int kStatsSchemaVersion = 1;

/// `name` mangled into a Prometheus metric name: `sectorpack_` prefix, every
/// character outside [a-zA-Z0-9_] replaced by '_'
/// (e.g. "srv.request_ms" -> "sectorpack_srv_request_ms").
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Prometheus text exposition (0.0.4) of a snapshot: counters as `counter`,
/// gauges as `gauge`, both histogram kinds as `histogram` with cumulative
/// `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum`/`_count`.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap);

/// Current UTC wall-clock time as "YYYY-MM-DDThh:mm:ss.mmmZ".
[[nodiscard]] std::string iso8601_utc_now();

/// The schema-versioned snapshot envelope shared by `--stats json` and the
/// JSONL exporter: `{"schema_version":1,"emitted_at":"...","wall_ms":...,
/// ["seq":...,]"counters":...}`. `wall_ms` is the caller's run wall clock;
/// `seq` (the export tick ordinal) is emitted only when >= 0.
[[nodiscard]] std::string stats_envelope_json(const Snapshot& snap,
                                              double wall_ms,
                                              long seq = -1);

struct ExporterConfig {
  double interval_seconds = 10.0;  // clamped to >= 0.01
  std::string prom_path;   // rewritten atomically each tick; empty = off
  std::string jsonl_path;  // appended each tick; empty = off
};

class Exporter {
 public:
  /// Starts the export thread unless both paths are empty (then the
  /// exporter is inert and stop() is a no-op). `registry` must outlive the
  /// exporter; nullptr means the process-global registry.
  explicit Exporter(ExporterConfig config, const Registry* registry = nullptr);
  ~Exporter();
  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Wake the thread, write one final export, and join. Idempotent and safe
  /// to call from signal-initiated cleanup paths (not async-signal-safe;
  /// call it from the normal control flow after the flag-style handler).
  void stop();

  /// Export ticks completed so far (including the final one after stop()).
  [[nodiscard]] std::uint64_t ticks() const noexcept;

  /// False once any export IO failed (unwritable path, rename error). The
  /// exporter keeps trying on later ticks; this flag stays false so the CLI
  /// can exit non-zero instead of silently dropping telemetry.
  [[nodiscard]] bool healthy() const noexcept;

 private:
  void run();
  void export_once();

  ExporterConfig config_;
  const Registry* registry_;  // nullptr = Registry::global()
  std::chrono::steady_clock::time_point start_;
  core::Mutex mu_;
  core::CondVar cv_;
  bool stop_requested_ SP_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> healthy_{true};
  bool stopped_ = false;  // join happened (main-thread only)
  std::thread thread_;
};

}  // namespace sectorpack::obs
