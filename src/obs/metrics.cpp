#include "src/obs/metrics.hpp"

#include "src/core/sync.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sectorpack::obs {

namespace {

std::atomic<bool> g_enabled{false};

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// sp-sync: relaxed on/off flag; recording is best-effort around the toggle
// and no other data is published through it.
bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

std::size_t histogram_bucket_index(double value) noexcept {
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  const auto e = static_cast<std::size_t>(std::ilogb(value));  // floor(log2)
  return std::min(e + 1, kHistogramBuckets - 1);
}

double histogram_bucket_lower(std::size_t bucket) noexcept {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1);
}

namespace {
unsigned clamp_sub_bits(unsigned sub_bits) noexcept {
  return std::clamp(sub_bits, 1u, kHdrMaxSubBits);
}
}  // namespace

std::size_t hdr_bucket_count(unsigned sub_bits) noexcept {
  return kHdrOctaves << clamp_sub_bits(sub_bits);
}

std::size_t hdr_bucket_index(double value, unsigned sub_bits) noexcept {
  const unsigned bits = clamp_sub_bits(sub_bits);
  const double lowest = std::ldexp(1.0, kHdrMinExp);
  if (!(value >= lowest)) return 0;  // also catches NaN, negatives, underflow
  const int e = std::ilogb(value);
  if (e > kHdrMaxExp) return hdr_bucket_count(bits) - 1;
  // Mantissa fraction in [0, 1) selects the linear sub-bucket.
  const double frac = std::ldexp(value, -e) - 1.0;
  const std::size_t sub_count = std::size_t{1} << bits;
  const auto sub = std::min(
      static_cast<std::size_t>(frac * static_cast<double>(sub_count)),
      sub_count - 1);
  return (static_cast<std::size_t>(e - kHdrMinExp) << bits) | sub;
}

double hdr_bucket_lower(std::size_t bucket, unsigned sub_bits) noexcept {
  const unsigned bits = clamp_sub_bits(sub_bits);
  const std::size_t sub_count = std::size_t{1} << bits;
  const int e = kHdrMinExp + static_cast<int>(bucket >> bits);
  const std::size_t sub = bucket & (sub_count - 1);
  return std::ldexp(
      1.0 + static_cast<double>(sub) / static_cast<double>(sub_count), e);
}

double hdr_bucket_upper(std::size_t bucket, unsigned sub_bits) noexcept {
  const unsigned bits = clamp_sub_bits(sub_bits);
  if (bucket + 1 >= hdr_bucket_count(bits)) return kInf;
  return hdr_bucket_lower(bucket + 1, bits);
}

namespace detail {

// One writer thread's slice of the registry. Only the owning thread writes;
// relaxed atomics let snapshot() read concurrently without tearing.
struct Shard {
  struct Hist {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{kInf};
    std::atomic<double> max{-kInf};
  };
  struct HdrSlot {
    std::array<std::atomic<std::uint64_t>, kHdrMaxBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{kInf};
    std::atomic<double> max{-kInf};
  };
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<Hist, kMaxHistograms> hists{};
  std::array<HdrSlot, kMaxHdrHistograms> hdr{};

  void zero() {
    // sp-sync: relaxed stores; zero() runs under the registry mutex
    // (Registry::reset) and concurrent writers/readers already tolerate
    // per-slot staleness, so no cross-slot ordering is needed.
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : hists) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(kInf, std::memory_order_relaxed);
      h.max.store(-kInf, std::memory_order_relaxed);
    }
    // sp-sync: as above.
    for (auto& h : hdr) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.min.store(kInf, std::memory_order_relaxed);
      h.max.store(-kInf, std::memory_order_relaxed);
    }
  }
};

struct State {
  const std::uint64_t uid;
  mutable core::Mutex mu;
  // Registration tables and the shard list are mu-guarded; the hot record
  // paths never touch them (they go through the thread-local shard cache
  // in local_shard()).
  std::vector<std::string> counter_names SP_GUARDED_BY(mu);  // slot -> name
  std::vector<std::string> gauge_names SP_GUARDED_BY(mu);
  std::vector<std::string> hist_names SP_GUARDED_BY(mu);
  std::vector<std::string> hdr_names SP_GUARDED_BY(mu);
  std::vector<unsigned> hdr_sub_bits SP_GUARDED_BY(mu);  // || to hdr_names
  std::vector<std::shared_ptr<Shard>> shards
      SP_GUARDED_BY(mu);  // one per writer thread, kept
  // Gauges are set rarely and need last-write-wins across threads, so they
  // live directly in the shared state rather than in shards.
  std::array<std::atomic<double>, kMaxGauges> gauges{};
  std::array<std::atomic<bool>, kMaxGauges> gauge_set{};

  explicit State(std::uint64_t id) : uid(id) {}
};

namespace {

bool contains_name(const std::vector<std::string>& names,
                   std::string_view name) {
  for (const std::string& n : names) {
    if (n == name) return true;
  }
  return false;
}

std::size_t register_name(State& st, std::vector<std::string>& names,
                          std::size_t limit, std::string_view name,
                          const char* kind) {
  core::LockGuard lock(st.mu);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  // A fixed-bucket and an HDR histogram under one name would collide as
  // duplicate keys in the snapshot's "histograms" JSON object.
  if (&names == &st.hist_names && contains_name(st.hdr_names, name)) {
    throw std::invalid_argument("obs: '" + std::string(name) +
                                "' is already an hdr histogram");
  }
  if (names.size() >= limit) {
    throw std::length_error(std::string("obs: too many ") + kind +
                            " metrics (limit " + std::to_string(limit) + ")");
  }
  names.emplace_back(name);
  return names.size() - 1;
}

std::size_t register_hdr(State& st, std::string_view name,
                         unsigned sub_bits) {
  core::LockGuard lock(st.mu);
  for (std::size_t i = 0; i < st.hdr_names.size(); ++i) {
    if (st.hdr_names[i] != name) continue;
    if (st.hdr_sub_bits[i] != sub_bits) {
      throw std::invalid_argument(
          "obs: hdr histogram '" + std::string(name) +
          "' re-registered with a different precision");
    }
    return i;
  }
  if (contains_name(st.hist_names, name)) {
    throw std::invalid_argument("obs: '" + std::string(name) +
                                "' is already a fixed-bucket histogram");
  }
  if (st.hdr_names.size() >= kMaxHdrHistograms) {
    throw std::length_error(
        "obs: too many hdr histograms (limit " +
        std::to_string(kMaxHdrHistograms) + ")");
  }
  st.hdr_names.emplace_back(name);
  st.hdr_sub_bits.push_back(sub_bits);
  return st.hdr_names.size() - 1;
}

// Thread-local cache of this thread's shard per registry. Keyed by the
// registry's never-reused uid, so a stale entry for a destroyed registry can
// never alias a new one; the shared_ptr keeps the shard memory valid even if
// the registry is gone.
Shard* local_shard(const std::shared_ptr<State>& state) {
  thread_local std::vector<std::pair<std::uint64_t, std::shared_ptr<Shard>>>
      cache;
  for (const auto& [uid, shard] : cache) {
    if (uid == state->uid) return shard.get();
  }
  auto shard = std::make_shared<Shard>();
  {
    core::LockGuard lock(state->mu);
    state->shards.push_back(shard);
  }
  cache.emplace_back(state->uid, shard);
  return cache.back().second.get();
}

}  // namespace

}  // namespace detail

void Counter::add(std::uint64_t delta) const noexcept {
  if (!enabled() || state_ == nullptr) return;
  // sp-sync: relaxed increment on a single-writer shard slot; snapshot()
  // sums slots and tolerates a slightly-stale per-thread value.
  detail::local_shard(state_)->counters[id_].fetch_add(
      delta, std::memory_order_relaxed);
}

void Gauge::set(double value) const noexcept {
  if (!enabled() || state_ == nullptr) return;
  // sp-sync: relaxed last-write-wins pair; a snapshot racing the first set
  // may miss the value for one tick, which gauges tolerate by contract.
  state_->gauges[id_].store(value, std::memory_order_relaxed);
  state_->gauge_set[id_].store(true, std::memory_order_relaxed);
}

void Histogram::observe(double value) const noexcept {
  if (!enabled() || state_ == nullptr) return;
  detail::Shard::Hist& h = detail::local_shard(state_)->hists[id_];
  // sp-sync: relaxed ops on single-writer shard slots; only the owning
  // thread writes, so load-modify-store without CAS is race-free, and
  // snapshot() accepts slightly-stale cross-thread reads.
  h.buckets[histogram_bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  // sp-sync: as above (single-writer slot).
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
}

void HdrHistogram::observe(double value) const noexcept {
  if (!enabled() || state_ == nullptr) return;
  detail::Shard::HdrSlot& h = detail::local_shard(state_)->hdr[id_];
  // sp-sync: relaxed ops on single-writer shard slots (see
  // Histogram::observe above).
  h.buckets[hdr_bucket_index(value, sub_bits_)].fetch_add(
      1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  // sp-sync: as above (single-writer slot).
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
}

Registry::Registry() {
  static std::atomic<std::uint64_t> next_uid{1};
  // sp-sync: relaxed uid allocation; uniqueness is all that matters and
  // fetch_add provides it at any memory order.
  state_ = std::make_shared<detail::State>(
      next_uid.fetch_add(1, std::memory_order_relaxed));
}

Registry::~Registry() = default;

Counter Registry::counter(std::string_view name) {
  const std::size_t id = detail::register_name(
      *state_, state_->counter_names, kMaxCounters, name, "counter");
  return Counter(state_, id);
}

Gauge Registry::gauge(std::string_view name) {
  const std::size_t id = detail::register_name(
      *state_, state_->gauge_names, kMaxGauges, name, "gauge");
  return Gauge(state_, id);
}

Histogram Registry::histogram(std::string_view name) {
  const std::size_t id = detail::register_name(
      *state_, state_->hist_names, kMaxHistograms, name, "histogram");
  return Histogram(state_, id);
}

HdrHistogram Registry::hdr_histogram(std::string_view name,
                                     unsigned sub_bits) {
  const unsigned bits = std::clamp(sub_bits, 1u, kHdrMaxSubBits);
  const std::size_t id = detail::register_hdr(*state_, name, bits);
  return HdrHistogram(state_, id, bits);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  core::LockGuard lock(state_->mu);

  // sp-sync: relaxed reads of single-writer slots throughout this
  // function; a snapshot is an instantaneous best-effort sum by contract
  // (writers keep recording while we read), so no acquire pairing exists.
  snap.counters.reserve(state_->counter_names.size());
  for (std::size_t i = 0; i < state_->counter_names.size(); ++i) {
    std::uint64_t total = 0;
    for (const auto& shard : state_->shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(state_->counter_names[i], total);
  }

  // sp-sync: as above (best-effort snapshot reads).
  for (std::size_t i = 0; i < state_->gauge_names.size(); ++i) {
    if (!state_->gauge_set[i].load(std::memory_order_relaxed)) continue;
    snap.gauges.emplace_back(
        state_->gauge_names[i],
        state_->gauges[i].load(std::memory_order_relaxed));
  }

  for (std::size_t i = 0; i < state_->hist_names.size(); ++i) {
    HistogramSnapshot h;
    h.name = state_->hist_names[i];
    h.min = kInf;
    h.max = -kInf;
    // sp-sync: as above (best-effort snapshot reads).
    for (const auto& shard : state_->shards) {
      const detail::Shard::Hist& sh = shard->hists[i];
      h.count += sh.count.load(std::memory_order_relaxed);
      h.sum += sh.sum.load(std::memory_order_relaxed);
      h.min = std::min(h.min, sh.min.load(std::memory_order_relaxed));
      h.max = std::max(h.max, sh.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        h.buckets[b] += sh.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (h.count == 0) {
      h.min = 0.0;
      h.max = 0.0;
    }
    snap.histograms.push_back(std::move(h));
  }

  std::vector<std::uint64_t> merged;
  for (std::size_t i = 0; i < state_->hdr_names.size(); ++i) {
    HdrHistogramSnapshot h;
    h.name = state_->hdr_names[i];
    h.sub_bits = state_->hdr_sub_bits[i];
    h.min = kInf;
    h.max = -kInf;
    const std::size_t buckets = hdr_bucket_count(h.sub_bits);
    merged.assign(buckets, 0);
    // sp-sync: as above (best-effort snapshot reads).
    for (const auto& shard : state_->shards) {
      const detail::Shard::HdrSlot& sh = shard->hdr[i];
      h.count += sh.count.load(std::memory_order_relaxed);
      h.sum += sh.sum.load(std::memory_order_relaxed);
      h.min = std::min(h.min, sh.min.load(std::memory_order_relaxed));
      h.max = std::max(h.max, sh.max.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < buckets; ++b) {
        merged[b] += sh.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (h.count == 0) {
      h.min = 0.0;
      h.max = 0.0;
    }
    for (std::size_t b = 0; b < buckets; ++b) {
      if (merged[b] != 0) {
        h.buckets.emplace_back(static_cast<std::uint32_t>(b), merged[b]);
      }
    }
    snap.hdr_histograms.push_back(std::move(h));
  }

  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  std::sort(snap.hdr_histograms.begin(), snap.hdr_histograms.end(),
            [](const HdrHistogramSnapshot& a, const HdrHistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void Registry::reset() {
  core::LockGuard lock(state_->mu);
  for (const auto& shard : state_->shards) shard->zero();
  // sp-sync: relaxed stores; reset is best-effort against concurrent
  // writers by the same contract as snapshot().
  for (auto& g : state_->gauges) g.store(0.0, std::memory_order_relaxed);
  for (auto& f : state_->gauge_set) f.store(false, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter counter(std::string_view name) {
  return Registry::global().counter(name);
}
Gauge gauge(std::string_view name) { return Registry::global().gauge(name); }
Histogram histogram(std::string_view name) {
  return Registry::global().histogram(name);
}
HdrHistogram hdr_histogram(std::string_view name, unsigned sub_bits) {
  return Registry::global().hdr_histogram(name, sub_bits);
}
Snapshot snapshot() { return Registry::global().snapshot(); }
void reset() { Registry::global().reset(); }

double HistogramSnapshot::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const auto next = static_cast<double>(seen + buckets[b]);
    if (next >= target) {
      // Interpolate inside bucket b, clamped to the observed range.
      double lo = std::max(histogram_bucket_lower(b), min);
      double hi = b + 1 < kHistogramBuckets
                      ? std::min(histogram_bucket_lower(b + 1), max)
                      : max;
      if (hi < lo) hi = lo;
      const double within =
          buckets[b] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen += buckets[b];
  }
  return max;
}

double HdrHistogramSnapshot::mean() const noexcept {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HdrHistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets) {
    const auto next = static_cast<double>(seen + n);
    if (next >= target) {
      // Interpolate by rank inside this bucket, clamped to the recorded
      // extremes so the range-clamping buckets never inflate an answer.
      // Bucket 0 also holds everything below the range (including 0), so
      // its effective lower bound is the recorded min, not 2^kHdrMinExp.
      const double lo =
          bucket == 0 ? min : std::max(hdr_bucket_lower(bucket, sub_bits), min);
      const double hi = std::min(hdr_bucket_upper(bucket, sub_bits), max);
      if (hi <= lo) return lo;
      const double within =
          (target - static_cast<double>(seen)) / static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    seen += n;
  }
  return max;
}

std::uint64_t Snapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HdrHistogramSnapshot* Snapshot::hdr_histogram(
    std::string_view name) const noexcept {
  for (const HdrHistogramSnapshot& h : hdr_histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(counters[i].first)
       << "\":" << counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(gauges[i].first)
       << "\":" << json_number(gauges[i].second);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i > 0) os << ",";
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum)
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"p50\":" << json_number(h.quantile(0.5))
       << ",\"p95\":" << json_number(h.quantile(0.95))
       << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "[" << json_number(histogram_bucket_lower(b)) << ","
         << h.buckets[b] << "]";
    }
    os << "]}";
  }
  for (std::size_t i = 0; i < hdr_histograms.size(); ++i) {
    const HdrHistogramSnapshot& h = hdr_histograms[i];
    if (i > 0 || !histograms.empty()) os << ",";
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << json_number(h.sum)
       << ",\"min\":" << json_number(h.min)
       << ",\"max\":" << json_number(h.max)
       << ",\"p50\":" << json_number(h.quantile(0.5))
       << ",\"p95\":" << json_number(h.quantile(0.95))
       << ",\"p99\":" << json_number(h.quantile(0.99))
       << ",\"precision_bits\":" << h.sub_bits << ",\"buckets\":[";
    bool first = true;
    for (const auto& [bucket, n] : h.buckets) {
      if (!first) os << ",";
      first = false;
      os << "[" << json_number(hdr_bucket_lower(bucket, h.sub_bits)) << ","
         << n << "]";
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string Snapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << name << " " << json_number(value) << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    os << h.name << " count=" << h.count << " mean=" << json_number(h.mean())
       << " min=" << json_number(h.min) << " p50="
       << json_number(h.quantile(0.5)) << " p95="
       << json_number(h.quantile(0.95)) << " max=" << json_number(h.max)
       << "\n";
  }
  for (const HdrHistogramSnapshot& h : hdr_histograms) {
    os << h.name << " count=" << h.count << " mean=" << json_number(h.mean())
       << " min=" << json_number(h.min) << " p50="
       << json_number(h.quantile(0.5)) << " p95="
       << json_number(h.quantile(0.95)) << " p99="
       << json_number(h.quantile(0.99)) << " max=" << json_number(h.max)
       << "\n";
  }
  return os.str();
}

}  // namespace sectorpack::obs
