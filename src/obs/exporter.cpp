#include "src/obs/exporter.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <utility>

namespace sectorpack::obs {

namespace {

bool prom_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// One cumulative `_bucket` line. `le` must be finite.
void prom_bucket_line(std::ostringstream& os, const std::string& name,
                      double le, std::uint64_t cumulative) {
  os << name << "_bucket{le=\"" << json_number(le) << "\"} " << cumulative
     << "\n";
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out = "sectorpack_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    out += prom_name_char(c) ? c : '_';
  }
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << json_number(value)
       << "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string n = prometheus_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
      cumulative += h.buckets[b];
      // Upper bound of bucket b is the lower bound of bucket b+1; the
      // unbounded last bucket is folded into the mandatory +Inf line.
      prom_bucket_line(os, n, histogram_bucket_lower(b + 1), cumulative);
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << json_number(h.sum) << "\n";
    os << n << "_count " << h.count << "\n";
  }
  for (const HdrHistogramSnapshot& h : snap.hdr_histograms) {
    const std::string n = prometheus_name(h.name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [bucket, count] : h.buckets) {
      const double upper = hdr_bucket_upper(bucket, h.sub_bits);
      if (!std::isfinite(upper)) break;  // tail lands in +Inf below
      cumulative += count;
      prom_bucket_line(os, n, upper, cumulative);
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << json_number(h.sum) << "\n";
    os << n << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string iso8601_utc_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

std::string stats_envelope_json(const Snapshot& snap, double wall_ms,
                                long seq) {
  std::ostringstream os;
  os << "{\"schema_version\":" << kStatsSchemaVersion << ",\"emitted_at\":\""
     << iso8601_utc_now() << "\",\"wall_ms\":" << json_number(wall_ms);
  if (seq >= 0) os << ",\"seq\":" << seq;
  // Splice the snapshot's own object fields into the envelope.
  const std::string body = snap.to_json();
  os << "," << std::string_view(body).substr(1);
  return os.str();
}

Exporter::Exporter(ExporterConfig config, const Registry* registry)
    : config_(std::move(config)),
      registry_(registry),
      start_(std::chrono::steady_clock::now()) {
  if (config_.interval_seconds < 0.01) config_.interval_seconds = 0.01;
  if (config_.prom_path.empty() && config_.jsonl_path.empty()) {
    stopped_ = true;  // inert: nothing to export, no thread to join
    return;
  }
  thread_ = std::thread([this] { run(); });
}

Exporter::~Exporter() { stop(); }

void Exporter::stop() {
  if (stopped_) return;
  {
    core::LockGuard lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  stopped_ = true;
}

std::uint64_t Exporter::ticks() const noexcept {
  return ticks_.load(std::memory_order_acquire);
}

bool Exporter::healthy() const noexcept {
  return healthy_.load(std::memory_order_acquire);
}

void Exporter::run() {
  const auto interval = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::duration<double>(config_.interval_seconds));
  core::UniqueLock lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] {
          mu_.assert_held();  // CondVar::wait_for re-acquires mu_ around us
          return stop_requested_;
        })) {
      break;
    }
    lock.unlock();
    export_once();
    lock.lock();
  }
  lock.unlock();
  // Final export so the files reflect the end of the run even when the
  // process stops between ticks (drain, SIGINT, short batches).
  export_once();
}

void Exporter::export_once() {
  const Registry& reg = registry_ != nullptr ? *registry_ : Registry::global();
  const Snapshot snap = reg.snapshot();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const auto seq =
      static_cast<long>(ticks_.fetch_add(1, std::memory_order_acq_rel));

  if (!config_.jsonl_path.empty()) {
    std::ofstream out(config_.jsonl_path, std::ios::app);
    out << stats_envelope_json(snap, wall_ms, seq) << "\n";
    out.flush();
    if (!out) healthy_.store(false, std::memory_order_release);
  }
  if (!config_.prom_path.empty()) {
    // Write-to-temp + rename: a concurrent scraper sees either the previous
    // complete exposition or the new one, never a torn file.
    const std::string tmp = config_.prom_path + ".tmp";
    bool ok = false;
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << to_prometheus(snap);
      out.flush();
      ok = static_cast<bool>(out);
    }
    if (!ok || std::rename(tmp.c_str(), config_.prom_path.c_str()) != 0) {
      healthy_.store(false, std::memory_order_release);
      std::remove(tmp.c_str());
    }
  }
}

}  // namespace sectorpack::obs
