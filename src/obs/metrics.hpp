#pragma once
// Solver telemetry: named counters, gauges, and fixed-bucket histograms
// behind a process-wide enable switch.
//
// Design:
//  * Hot-path writes go to lock-free per-thread shards: each shard is only
//    ever written by its owning thread (relaxed atomics so readers can merge
//    concurrently), so `par::thread_pool` workers never contend on a cache
//    line. Snapshots merge all shards under a mutex.
//  * Every write path is a no-op while obs is disabled (the default). The
//    only residual cost in instrumented code is one relaxed atomic load and
//    a well-predicted branch, which keeps solvers within the "zero overhead
//    when off" budget.
//  * Registration (name -> slot id) takes a mutex but is rare: call sites
//    hold a static handle (`static const obs::Counter c = obs::counter(...)`).
//  * Handles keep the registry state alive via shared_ptr, so a handle that
//    outlives its Registry degrades to writes nobody will read, never UB.
//
// Naming scheme (see docs/observability.md): `<subsystem>.<noun>[_<unit>]`,
// e.g. `anneal.accepted`, `dinic.augmenting_paths`, `cli.solve_ms`, and the
// batch engine's `srv.*` family (docs/serving.md).

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sectorpack::obs {

/// Process-wide switch; metric writes are dropped while disabled (default).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// Per-thread shards are fixed-size arrays so writers never race a
// reallocation; registering more names than a limit throws std::length_error.
inline constexpr std::size_t kMaxCounters = 128;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;

/// Histogram buckets are fixed powers of two: bucket 0 holds values < 1,
/// bucket i >= 1 holds [2^(i-1), 2^i), and the last bucket is unbounded.
/// Units are the caller's choice (latency metrics here use microseconds).
inline constexpr std::size_t kHistogramBuckets = 40;
[[nodiscard]] std::size_t histogram_bucket_index(double value) noexcept;
[[nodiscard]] double histogram_bucket_lower(std::size_t bucket) noexcept;

// ---------------------------------------------------------------------------
// Log-linear (HDR-style) histograms: each power-of-two octave is split into
// 2^sub_bits equal-width sub-buckets, so every bucket's relative width is at
// most 2^-sub_bits and quantile() answers with that relative error bound
// (<= 0.79% at the default precision of 7 bits). The value range covers
// octaves [2^kHdrMinExp, 2^(kHdrMaxExp+1)): in milliseconds that is ~1us up
// to ~12 days. Values below the range (including 0, negatives, NaN) land in
// bucket 0; values above clamp to the last bucket. Quantiles are clamped to
// the recorded min/max, so range clamping never inflates the extremes.

inline constexpr std::size_t kMaxHdrHistograms = 8;
inline constexpr int kHdrMinExp = -10;
inline constexpr int kHdrMaxExp = 30;
inline constexpr unsigned kHdrMaxSubBits = 7;   // 128 sub-buckets per octave
inline constexpr unsigned kHdrDefaultSubBits = kHdrMaxSubBits;
inline constexpr std::size_t kHdrOctaves =
    static_cast<std::size_t>(kHdrMaxExp - kHdrMinExp + 1);
inline constexpr std::size_t kHdrMaxBuckets = kHdrOctaves << kHdrMaxSubBits;

/// Buckets used by a histogram of the given precision (sub_bits is clamped
/// to [1, kHdrMaxSubBits], as at registration).
[[nodiscard]] std::size_t hdr_bucket_count(unsigned sub_bits) noexcept;
[[nodiscard]] std::size_t hdr_bucket_index(double value,
                                           unsigned sub_bits) noexcept;
[[nodiscard]] double hdr_bucket_lower(std::size_t bucket,
                                      unsigned sub_bits) noexcept;
/// Exclusive upper bound; +infinity for the last bucket.
[[nodiscard]] double hdr_bucket_upper(std::size_t bucket,
                                      unsigned sub_bits) noexcept;

namespace detail {
struct State;
}  // namespace detail

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept;
  /// Bucket-interpolated quantile estimate, q in [0, 1]. Exact at the
  /// recorded min/max; within a bucket, linear between its bounds.
  [[nodiscard]] double quantile(double q) const noexcept;
};

struct HdrHistogramSnapshot {
  std::string name;
  unsigned sub_bits = kHdrDefaultSubBits;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Non-empty buckets only, ascending by bucket index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  [[nodiscard]] double mean() const noexcept;
  /// Rank-interpolated quantile, q in [0, 1], clamped to the recorded
  /// min/max. Relative error is bounded by the bucket width, 2^-sub_bits.
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// A merged, point-in-time view of a Registry. Counters and gauges are
/// sorted by name; unset gauges are omitted.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<HdrHistogramSnapshot> hdr_histograms;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  /// Lookup by name; nullptr when absent. The pointer is into this
  /// snapshot, valid while the snapshot is alive and unmodified.
  [[nodiscard]] const HdrHistogramSnapshot* hdr_histogram(
      std::string_view name) const noexcept;
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;
};

/// Monotonic event count.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta) const noexcept;
  void inc() const noexcept { add(1); }

 private:
  friend class Registry;
  Counter(std::shared_ptr<detail::State> state, std::size_t id) noexcept
      : state_(std::move(state)), id_(id) {}
  std::shared_ptr<detail::State> state_;
  std::size_t id_ = 0;
};

/// Last-written value (temperature, scaling factor, fleet size, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept;

 private:
  friend class Registry;
  Gauge(std::shared_ptr<detail::State> state, std::size_t id) noexcept
      : state_(std::move(state)), id_(id) {}
  std::shared_ptr<detail::State> state_;
  std::size_t id_ = 0;
};

/// Fixed-bucket distribution with count/sum/min/max.
class Histogram {
 public:
  Histogram() = default;
  void observe(double value) const noexcept;

 private:
  friend class Registry;
  Histogram(std::shared_ptr<detail::State> state, std::size_t id) noexcept
      : state_(std::move(state)), id_(id) {}
  std::shared_ptr<detail::State> state_;
  std::size_t id_ = 0;
};

/// Log-linear distribution with accurate quantiles (see the constants
/// above); same lock-free per-thread shard discipline as Histogram.
class HdrHistogram {
 public:
  HdrHistogram() = default;
  void observe(double value) const noexcept;

 private:
  friend class Registry;
  HdrHistogram(std::shared_ptr<detail::State> state, std::size_t id,
               unsigned sub_bits) noexcept
      : state_(std::move(state)), id_(id), sub_bits_(sub_bits) {}
  std::shared_ptr<detail::State> state_;
  std::size_t id_ = 0;
  unsigned sub_bits_ = kHdrDefaultSubBits;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Fetch-or-register a metric by name. Repeated calls with the same name
  /// return handles to the same slot.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);
  /// sub_bits is clamped to [1, kHdrMaxSubBits]. Re-registering the same
  /// name with a different precision, or reusing a fixed-bucket histogram
  /// name (and vice versa), throws std::invalid_argument: one name must
  /// mean one distribution in the snapshot.
  [[nodiscard]] HdrHistogram hdr_histogram(
      std::string_view name, unsigned sub_bits = kHdrDefaultSubBits);

  /// Merge all shards into a point-in-time view. Safe to call while other
  /// threads keep writing (their in-flight writes may or may not be seen).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zero every recorded value; names stay registered.
  void reset();

  /// Process-wide registry used by the instrumented solvers and the free
  /// functions below.
  static Registry& global();

 private:
  std::shared_ptr<detail::State> state_;
};

/// Shorthands on the global registry.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name);
[[nodiscard]] HdrHistogram hdr_histogram(
    std::string_view name, unsigned sub_bits = kHdrDefaultSubBits);
[[nodiscard]] Snapshot snapshot();
void reset();

/// JSON string escaping (shared by the snapshot/trace/bench emitters).
[[nodiscard]] std::string json_escape(std::string_view s);
/// Format a double as a JSON number token; non-finite values become null.
[[nodiscard]] std::string json_number(double v);

}  // namespace sectorpack::obs
