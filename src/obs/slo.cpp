#include "src/obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/obs/metrics.hpp"

namespace sectorpack::obs {

namespace {

/// Nearest-rank percentile over a sorted window (the bench_util convention:
/// rank = ceil(p * n), 1-based, clamped). Exact, no interpolation.
double nearest_rank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  // The epsilon keeps e.g. p=0.5 over 10 samples at rank 5, not 6, when
  // p * n lands exactly on an integer boundary under rounding.
  auto rank = static_cast<std::size_t>(std::ceil(p * n - 1e-9));
  rank = std::clamp<std::size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

SloTracker::SloTracker(std::size_t window)
    : ring_(std::max<std::size_t>(window, 1)) {}

void SloTracker::record(double latency_ms, bool deadline_ok, SloKind kind) {
  const core::LockGuard lock(mu_);
  ring_[next_] = Sample{latency_ms, deadline_ok, kind};
  next_ = (next_ + 1) % ring_.size();
  filled_ = std::min(filled_ + 1, ring_.size());
  ++total_;
}

SloTracker::Summary SloTracker::summary() const {
  Summary s;
  std::vector<double> latencies;  // kSolve samples only (see slo.hpp)
  {
    const core::LockGuard lock(mu_);
    s.window = ring_.size();
    s.total = total_;
    s.in_window = filled_;
    if (filled_ == 0) return s;
    latencies.reserve(filled_);
    std::size_t deadline_ok = 0;
    std::size_t cache_hits = 0;
    for (std::size_t i = 0; i < filled_; ++i) {
      const Sample& sample = ring_[i];
      if (sample.kind == SloKind::kSolve) {
        latencies.push_back(sample.latency_ms);
      }
      deadline_ok += sample.deadline_ok ? 1 : 0;
      cache_hits += sample.kind == SloKind::kCacheHit ? 1 : 0;
    }
    s.solves = latencies.size();
    s.deadline_hit_rate =
        static_cast<double>(deadline_ok) / static_cast<double>(filled_);
    const std::size_t answered = s.solves + cache_hits;
    s.cache_hit_rate = answered > 0 ? static_cast<double>(cache_hits) /
                                          static_cast<double>(answered)
                                    : 0.0;
  }
  std::sort(latencies.begin(), latencies.end());
  s.p50_ms = nearest_rank(latencies, 0.50);
  s.p95_ms = nearest_rank(latencies, 0.95);
  s.p99_ms = nearest_rank(latencies, 0.99);
  return s;
}

std::string SloTracker::Summary::to_string() const {
  std::ostringstream os;
  os << "window=" << in_window << "/" << window << " total=" << total
     << " solves=" << solves
     << " p50_ms=" << p50_ms << " p95_ms=" << p95_ms << " p99_ms=" << p99_ms
     << " deadline_hit_rate=" << deadline_hit_rate
     << " cache_hit_rate=" << cache_hit_rate;
  return os.str();
}

void SloTracker::publish(Registry* registry) const {
  const Summary s = summary();
  Registry& reg = registry != nullptr ? *registry : Registry::global();
  reg.gauge("slo.window").set(static_cast<double>(s.window));
  reg.gauge("slo.samples").set(static_cast<double>(s.in_window));
  reg.gauge("slo.solve_samples").set(static_cast<double>(s.solves));
  reg.gauge("slo.total").set(static_cast<double>(s.total));
  reg.gauge("slo.p50_ms").set(s.p50_ms);
  reg.gauge("slo.p95_ms").set(s.p95_ms);
  reg.gauge("slo.p99_ms").set(s.p99_ms);
  reg.gauge("slo.deadline_hit_rate").set(s.deadline_hit_rate);
  reg.gauge("slo.cache_hit_rate").set(s.cache_hit_rate);
}

}  // namespace sectorpack::obs
