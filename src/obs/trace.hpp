#pragma once
// RAII tracing to Chrome trace-event JSON.
//
// A tracing session collects events into per-thread buffers (one brief,
// uncontended lock per event) and serializes them as the Trace Event Format
// that chrome://tracing / Perfetto load directly:
//
//   obs::trace_start();
//   { obs::ScopedSpan span("sectors.solve_annealing"); ... }
//   obs::trace_counter("anneal.temperature", t);   // plotted time series
//   obs::trace_stop_to_file("trace.json");
//
// While no session is active (the default), ScopedSpan construction is one
// relaxed atomic load; nothing is recorded. Span names must be string
// literals (or otherwise outlive the session) -- they are stored by pointer.

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sectorpack::obs {

/// True while a tracing session is collecting events.
[[nodiscard]] bool trace_enabled() noexcept;

/// Begin a session, discarding any events from a previous one.
void trace_start();

/// End the session and write chrome://tracing JSON to `os`. No-op events
/// recorded after this call are dropped. Safe to call with no session.
void trace_stop(std::ostream& os);

/// As trace_stop, writing to `path`. Returns false if the file can't be
/// opened (the session still ends).
bool trace_stop_to_file(const std::string& path);

/// Number of events recorded in the current session so far.
[[nodiscard]] std::size_t trace_event_count();

/// Record a complete-span ("ph":"X") event covering this object's lifetime.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_us_;  // < 0: tracing was off at construction
};

/// Record a counter ("ph":"C") sample; the trace viewer plots these as a
/// time series. No-op while tracing is off.
void trace_counter(const char* name, double value) noexcept;

/// Record an instant ("ph":"i") event. No-op while tracing is off.
void trace_instant(const char* name) noexcept;

}  // namespace sectorpack::obs
