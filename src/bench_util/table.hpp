#pragma once
// Fixed-width console tables for the experiment harness. Every bench binary
// prints its table/figure series through this, so outputs are uniform and
// easy to diff against EXPERIMENTS.md.

#include <iosfwd>
#include <string>
#include <vector>

namespace sectorpack::bench_util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; cells are stringified with `cell(...)` below.
  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, padded columns, and right-aligned numerics.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers: fixed precision for doubles, passthrough for strings.
[[nodiscard]] std::string cell(double v, int precision = 3);
[[nodiscard]] std::string cell(std::size_t v);
[[nodiscard]] std::string cell(long long v);
[[nodiscard]] std::string cell(int v);
[[nodiscard]] std::string cell(const char* s);
[[nodiscard]] std::string cell(std::string s);

/// Standard banner every experiment binary prints before its table.
void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& title);

}  // namespace sectorpack::bench_util
