#include "src/bench_util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sectorpack::bench_util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const std::size_t n = sorted.size();
  // Nearest-rank (inclusive): return the sample of rank ceil(p * n), i.e.
  // the smallest sample such that at least a fraction p of the data is <=
  // it. No interpolation: the result is always one of the observed samples,
  // so a p95 over 3 reps is honestly the max instead of a fabricated value
  // between samples. The kRankGuard subtraction compensates for p itself
  // being a binary double (0.95 * 20 evaluates to 19.000000000000004; naive
  // ceil would skip rank 19 and land on the max). The rank is clamped to
  // [1, n], so the selection can never index past the last sample.
  constexpr double kRankGuard = 1e-9;
  const double target = p * static_cast<double>(n) - kRankGuard;
  std::size_t rank =
      target <= 0.0 ? 1 : static_cast<std::size_t>(std::ceil(target));
  rank = std::clamp<std::size_t>(rank, 1, n);
  return sorted[rank - 1];
}

}  // namespace sectorpack::bench_util
