#include "src/bench_util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sectorpack::bench_util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.count);
  if (s.count > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace sectorpack::bench_util
