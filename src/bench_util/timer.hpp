#pragma once
// Wall-clock timing for the experiment harness.

#include <chrono>

namespace sectorpack::bench_util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sectorpack::bench_util
