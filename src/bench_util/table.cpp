#include "src/bench_util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sectorpack::bench_util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : headers_[c];
      os << "  " << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << "\n";
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string cell(std::size_t v) { return std::to_string(v); }
std::string cell(long long v) { return std::to_string(v); }
std::string cell(int v) { return std::to_string(v); }
std::string cell(const char* s) { return s; }
std::string cell(std::string s) { return s; }

void print_experiment_header(std::ostream& os, const std::string& id,
                             const std::string& title) {
  os << "\n=== " << id << ": " << title << " ===\n";
}

}  // namespace sectorpack::bench_util
