#pragma once
// Summary statistics over trial results.

#include <span>

namespace sectorpack::bench_util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// p in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::span<const double> values, double p);

}  // namespace sectorpack::bench_util
