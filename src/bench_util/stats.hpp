#pragma once
// Summary statistics over trial results.

#include <span>

namespace sectorpack::bench_util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// p in [0, 1], clamped. Nearest-rank selection: returns the sample of rank
/// ceil(p * n) (1-based, clamped to [1, n]) -- the smallest sample with at
/// least a fraction p of the data at or below it. Always one of the input
/// samples, never an interpolated value, and never reads past the last
/// sample for any p; see docs/performance.md ("Percentile semantics") for
/// the small-n behavior (p95 over <= 19 reps is the max by definition).
[[nodiscard]] double percentile(std::span<const double> values, double p);

}  // namespace sectorpack::bench_util
