#include "src/verify/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/geom/angle.hpp"
#include "src/model/validate.hpp"

namespace sectorpack::verify {

namespace {

void fail(VerifyReport& report, const char* invariant, std::string detail) {
  report.ok = false;
  report.violations.push_back({invariant, std::move(detail)});
}

}  // namespace

bool VerifyReport::has(std::string_view invariant) const noexcept {
  for (const Violation& v : violations) {
    if (v.invariant == invariant) return true;
  }
  return false;
}

std::string VerifyReport::to_string() const {
  if (ok) return "all invariants hold";
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i].invariant << ": " << violations[i].detail;
  }
  return os.str();
}

VerifyReport verify_solution(const model::Instance& inst,
                             const model::Solution& sol) {
  VerifyReport report;

  // -- status: the byte must hold a defined enumerator. Reading a solution
  // file cannot produce anything else, but an in-memory corruption (or a
  // future enumerator added without extending this table) should be caught
  // here, not by a confusing downstream switch.
  const auto status_raw = static_cast<unsigned>(sol.status);
  if (sol.status != model::SolveStatus::kComplete &&
      sol.status != model::SolveStatus::kBudgetExhausted) {
    std::ostringstream os;
    os << "SolveStatus byte " << status_raw << " is not a defined enumerator";
    fail(report, "status", os.str());
  }

  // -- shape: everything below indexes through these vectors, so a shape
  // mismatch ends the index-dependent checks.
  bool shape_ok = true;
  if (sol.alpha.size() != inst.num_antennas()) {
    std::ostringstream os;
    os << "alpha size " << sol.alpha.size() << " != num_antennas "
       << inst.num_antennas();
    fail(report, "shape", os.str());
    shape_ok = false;
  }
  if (sol.assign.size() != inst.num_customers()) {
    std::ostringstream os;
    os << "assign size " << sol.assign.size() << " != num_customers "
       << inst.num_customers();
    fail(report, "shape", os.str());
    shape_ok = false;
  }
  if (!shape_ok) return report;

  // -- alpha-normalized: finite and in [0, 2*pi). Solvers emit
  // geom::normalize()d orientations; anything else is corruption.
  for (std::size_t j = 0; j < sol.alpha.size(); ++j) {
    const double a = sol.alpha[j];
    if (!std::isfinite(a)) {
      std::ostringstream os;
      os << "alpha[" << j << "] = " << a << " is not finite";
      fail(report, "alpha-normalized", os.str());
    } else if (a < 0.0 || a >= geom::kTwoPi) {
      std::ostringstream os;
      os << "alpha[" << j << "] = " << a << " outside [0, 2*pi)";
      fail(report, "alpha-normalized", os.str());
    }
  }

  // -- assign-range / sector-containment / capacity / demand-conservation.
  std::vector<double> loads(inst.num_antennas(), 0.0);
  double served = 0.0;
  for (std::size_t i = 0; i < sol.assign.size(); ++i) {
    const std::int32_t a = sol.assign[i];
    if (a == model::kUnserved) continue;
    if (a < 0 || static_cast<std::size_t>(a) >= inst.num_antennas()) {
      std::ostringstream os;
      os << "assign[" << i << "] = " << a << " is neither kUnserved nor an "
         << "antenna index < " << inst.num_antennas();
      fail(report, "assign-range", os.str());
      continue;
    }
    const auto j = static_cast<std::size_t>(a);
    // Skip the containment predicate when the orientation itself is broken:
    // Sector::contains on a NaN alpha would report a misleading violation.
    if (std::isfinite(sol.alpha[j])) {
      const geom::Sector sec = inst.sector(j, sol.alpha[j]);
      if (!sec.contains(geom::Polar{inst.theta(i), inst.radius(i)})) {
        std::ostringstream os;
        os << "customer " << i << " (theta=" << inst.theta(i)
           << ", r=" << inst.radius(i) << ") outside antenna " << j
           << " sector [alpha=" << sol.alpha[j]
           << ", rho=" << inst.antenna(j).rho
           << ", range=" << inst.antenna(j).range << "]";
        fail(report, "sector-containment", os.str());
      }
    }
    loads[j] += inst.demand(i);
    served += inst.demand(i);
  }

  for (std::size_t j = 0; j < loads.size(); ++j) {
    const double cap = inst.antenna(j).capacity;
    if (loads[j] > cap * (1.0 + model::kCapacitySlack) +
                       model::kCapacitySlack) {
      std::ostringstream os;
      os << "antenna " << j << " overloaded: load " << loads[j]
         << " > capacity " << cap;
      fail(report, "capacity", os.str());
    }
  }

  // Conservation ties the two aggregate views together: the demand the
  // model helpers report as served must equal the demand the antennas
  // carry. Representation makes double-assignment impossible, so a break
  // here means a helper and this verifier disagree about what "served"
  // means -- a library bug worth its own named invariant.
  double load_sum = 0.0;
  for (const double l : loads) load_sum += l;
  const double reported = model::served_demand(inst, sol);
  const double scale = std::max({1.0, std::abs(load_sum), std::abs(served)});
  if (std::abs(load_sum - served) > 1e-9 * scale ||
      std::abs(reported - served) > 1e-9 * scale) {
    std::ostringstream os;
    os << "served demand disagrees: assignment sum " << served
       << ", antenna load sum " << load_sum << ", served_demand() "
       << reported;
    fail(report, "demand-conservation", os.str());
  }

  return report;
}

void debug_postcondition([[maybe_unused]] const model::Instance& inst,
                         [[maybe_unused]] const model::Solution& sol,
                         [[maybe_unused]] const char* where) {
#if defined(SECTORPACK_CONTRACTS)
  const VerifyReport report = verify_solution(inst, sol);
  if (!report.ok) {
    std::fprintf(stderr,
                 "sectorpack: postcondition violated: %s returned an "
                 "infeasible solution:\n%s\n",
                 where, report.to_string().c_str());
    std::fflush(stderr);
    std::abort();
  }
#endif
}

}  // namespace sectorpack::verify
