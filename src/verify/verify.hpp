#pragma once
// Solution verifier: turns the paper's feasibility definition into named,
// machine-checkable invariants.
//
// model::validate answers "is this solution feasible?" with free-form error
// strings; this module decomposes the same contract (plus the normalization
// and status conventions the solvers rely on) into named invariants so that
// tooling -- the `sectorpack verify` CLI subcommand, the contracts-build
// solver postconditions, and the test suite -- can assert not just *that* a
// solution is bad but *which* rule it breaks:
//
//   shape                alpha/assign vector sizes match the instance
//   alpha-normalized     every alpha is finite and in [0, 2*pi)
//   assign-range         every assignment is kUnserved or a valid antenna
//   sector-containment   every served customer lies in its antenna's
//                        oriented sector (geom::Sector::contains, shared
//                        tolerances -- identical predicate to the solvers)
//   capacity             no antenna's load exceeds its capacity (relative
//                        slack model::kCapacitySlack)
//   demand-conservation  per-antenna loads sum to the served demand: no
//                        customer is double-counted or dropped between the
//                        assignment view and the load view
//   status               SolveStatus holds a defined enumerator
//
// The verifier is strictly at-least-as-strong as model::validate: any
// solution it accepts is accepted by validate, and it additionally rejects
// de-normalized alphas (validate only requires finite) and corrupted
// status bytes. Solvers normalize every orientation they emit, so solver
// output always passes; hand-edited or bit-rotted solution files are what
// the stricter checks exist to catch.

#include <string>
#include <string_view>
#include <vector>

#include "src/model/solution.hpp"

namespace sectorpack::verify {

/// One broken invariant: `invariant` is a stable machine-readable name from
/// the table above; `detail` is the human-readable specifics.
struct Violation {
  std::string invariant;
  std::string detail;
};

struct VerifyReport {
  bool ok = true;
  std::vector<Violation> violations;

  /// True when some violation carries the given invariant name.
  [[nodiscard]] bool has(std::string_view invariant) const noexcept;

  /// "invariant: detail" lines joined with '\n' ("all invariants hold"
  /// when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Check every invariant in the table; never throws, never aborts. All
/// checks run even after the first failure so a report names every broken
/// rule (except index-dependent checks, skipped once `shape` fails).
[[nodiscard]] VerifyReport verify_solution(const model::Instance& inst,
                                           const model::Solution& sol);

/// Contracts-build postcondition for solver entry points: no-op unless
/// compiled with SECTORPACK_CONTRACTS, in which case a failed verification
/// reports the offending solver (`where`) plus the violation list and
/// aborts. Call on the final solution right before returning it. The batch
/// engine applies it to every response it emits, fresh and cache-hit alike
/// (`srv::batch(fresh)` / `srv::batch(cache-hit)`).
void debug_postcondition(const model::Instance& inst,
                         const model::Solution& sol, const char* where);

}  // namespace sectorpack::verify
