#include "src/shard/shard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "src/geom/angle.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/par/parallel_for.hpp"
#include "src/par/thread_pool.hpp"
#include "src/sectors/sectors.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::shard {

namespace {

// Geometric partition plus the antenna apportionment. Shard id layout is
// wedge-major: shard s = wedge * bands + band.
struct Partition {
  std::size_t wedges = 1;
  std::size_t bands = 1;
  std::vector<double> band_edges;  // bands+1 radius edges, last = +inf
  std::vector<std::vector<std::size_t>> customers;  // per shard, ascending
  std::vector<std::vector<std::size_t>> antennas;   // per shard, ascending
};

Partition make_partition(const model::Instance& inst,
                         const ShardConfig& config) {
  Partition part;
  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();
  part.wedges = config.wedges > 0
                    ? config.wedges
                    : std::clamp<std::size_t>(k, 1, 32);
  part.bands = std::clamp<std::size_t>(config.annuli, 1, 8);

  // Radial band edges at radius quantiles, like the polar grid's rings:
  // equal customer counts per band whatever the radial distribution.
  part.band_edges.push_back(0.0);
  if (part.bands > 1) {
    std::vector<double> sorted;
    sorted.reserve(n);
    for (double r : inst.radii()) {
      if (std::isfinite(r) && r >= 0.0) sorted.push_back(r);
    }
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t b = 1; b < part.bands && !sorted.empty(); ++b) {
      const double e = sorted[(b * sorted.size()) / part.bands];
      if (e > part.band_edges.back()) part.band_edges.push_back(e);
    }
  }
  part.band_edges.push_back(std::numeric_limits<double>::infinity());
  part.bands = part.band_edges.size() - 1;

  const std::size_t shards = part.wedges * part.bands;
  part.customers.resize(shards);
  part.antennas.resize(shards);

  const double wedge_scale =
      static_cast<double>(part.wedges) / geom::kTwoPi;
  std::vector<double> demand(shards, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t w =
        static_cast<std::size_t>(inst.theta(i) * wedge_scale);
    if (w >= part.wedges) w = part.wedges - 1;
    const double r = inst.radius(i);
    std::size_t b = 0;
    while (b + 1 < part.bands && !(r < part.band_edges[b + 1])) ++b;
    const std::size_t s = w * part.bands + b;
    part.customers[s].push_back(i);
    demand[s] += inst.demand(i);
  }

  // Apportion the k antennas to shards proportionally to shard demand
  // (largest remainder, ties to the lower shard id). Only shards with a
  // fractional remainder can receive a leftover seat, so zero-demand
  // shards never get an antenna. Antennas are dealt contiguously in
  // ascending index; heterogeneous fleets are matched by count, not
  // capability -- the repair pass and the measured quality metrics are
  // where any mismatch shows up.
  double total = 0.0;
  for (double d : demand) total += d;
  std::vector<std::size_t> quota(shards, 0);
  if (total > 0.0 && k > 0) {
    std::vector<std::pair<double, std::size_t>> rem;  // (-remainder, shard)
    std::size_t assigned = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const double share =
          static_cast<double>(k) * (demand[s] / total);
      quota[s] = static_cast<std::size_t>(share);
      assigned += quota[s];
      rem.emplace_back(-(share - std::floor(share)), s);
    }
    std::sort(rem.begin(), rem.end());
    for (std::size_t t = 0; t < rem.size() && assigned < k; ++t) {
      if (-rem[t].first > 0.0) {
        ++quota[rem[t].second];
        ++assigned;
      }
    }
    // Guard against floating-point shortfall in the remainders: any seats
    // still unassigned go to the highest-demand shards, ascending id ties.
    while (assigned < k) {
      std::size_t best = 0;
      for (std::size_t s = 1; s < shards; ++s) {
        if (demand[s] > demand[best]) best = s;
      }
      ++quota[best];
      ++assigned;
    }
  }
  std::size_t next = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t q = 0; q < quota[s]; ++q) {
      part.antennas[s].push_back(next++);
    }
  }
  return part;
}

}  // namespace

model::Solution solve(const model::Instance& inst, const ShardConfig& config,
                      ShardStats* stats) {
  static const obs::Counter c_shards = obs::counter("shard.count");
  static const obs::Counter c_repair = obs::counter("shard.repair_moved");
  const obs::ScopedSpan span("shard.solve");

  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();
  model::Solution sol = model::Solution::empty_for(inst);
  if (stats != nullptr) *stats = {};
  if (n == 0 || k == 0) return sol;

  const core::Deadline& global = config.solve.deadline;
  if (global.expired()) {
    sol.status = model::SolveStatus::kBudgetExhausted;
    core::note_expired("shard");
    return sol;
  }

  const Partition part = make_partition(inst, config);
  const std::size_t shards = part.customers.size();

  // Materialize sub-instances for the shards that have both customers and
  // antennas; everything else contributes nothing a solve could use (an
  // antenna-less shard's customers are only reachable via seam repair).
  struct Sub {
    std::size_t shard = 0;
    model::Instance inst;
    model::Solution sol;
  };
  std::vector<Sub> subs;
  for (std::size_t s = 0; s < shards; ++s) {
    if (part.customers[s].empty() || part.antennas[s].empty()) continue;
    std::vector<model::Customer> customers;
    customers.reserve(part.customers[s].size());
    for (std::size_t i : part.customers[s]) {
      customers.push_back(inst.customer(i));
    }
    std::vector<model::AntennaSpec> antennas;
    antennas.reserve(part.antennas[s].size());
    for (std::size_t j : part.antennas[s]) {
      antennas.push_back(inst.antenna(j));
    }
    subs.push_back(
        {s, model::Instance(std::move(customers), std::move(antennas)), {}});
  }

  // Deadline slices: shards run in waves of pool-size, so give each shard
  // remaining/waves seconds capped by the global budget. Each slice is
  // registered as a child of the global deadline
  // (core::Deadline::after_at_most), so an external cancel -- drain,
  // SIGINT -- interrupts in-flight shard sub-solves immediately instead of
  // being observed only between phases.
  core::SolveOptions sub_opts = config.solve;
  double slice_seconds = -1.0;
  if (global.limited() && !subs.empty()) {
    std::size_t lanes = 1;
    if (config.parallel) {
      lanes = std::max<std::size_t>(par::ThreadPool::global().size(), 1);
    }
    const std::size_t waves = (subs.size() + lanes - 1) / lanes;
    slice_seconds =
        global.remaining_seconds() / static_cast<double>(waves);
  }

  const auto solve_one = [&](Sub& sub) {
    sectors::GreedyConfig gc;
    gc.oracle = config.oracle;
    gc.parallel = false;  // parallelism lives across shards, not within
    gc.solve = sub_opts;
    if (global.limited()) {
      gc.solve.deadline = core::Deadline::after_at_most(slice_seconds, global);
    }
    sub.sol = sectors::solve_greedy(sub.inst, gc);
  };
  if (config.parallel && subs.size() > 1) {
    par::parallel_for(subs.size(), 1,
                      [&](std::size_t b, std::size_t e) {
                        for (std::size_t t = b; t < e; ++t) {
                          solve_one(subs[t]);
                        }
                      });
  } else {
    for (Sub& sub : subs) solve_one(sub);
  }

  // Merge: shards are customer- and antenna-disjoint, so the union of
  // their (feasible) solutions is feasible for the full instance.
  for (const Sub& sub : subs) {
    const std::vector<std::size_t>& cust = part.customers[sub.shard];
    const std::vector<std::size_t>& ants = part.antennas[sub.shard];
    for (std::size_t lj = 0; lj < ants.size(); ++lj) {
      sol.alpha[ants[lj]] = sub.sol.alpha[lj];
    }
    for (std::size_t li = 0; li < cust.size(); ++li) {
      const std::int32_t a = sub.sol.assign[li];
      if (a != model::kUnserved) {
        sol.assign[cust[li]] =
            static_cast<std::int32_t>(ants[static_cast<std::size_t>(a)]);
      }
    }
    sol.status = model::worst_of(sol.status, sub.sol.status);
  }

  // Boundary repair: pick up unserved customers near angular seams with
  // whatever residual capacity the final sectors have. Assign-only, so the
  // merged solution never degrades; first fitting antenna in ascending
  // index keeps it deterministic.
  std::size_t moved = 0;
  if (part.wedges > 1) {
    const double wedge_width = geom::kTwoPi / static_cast<double>(part.wedges);
    double eps = config.seam_eps;
    if (eps < 0.0) {
      double max_rho = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        max_rho = std::max(max_rho, inst.antenna(j).rho);
      }
      eps = std::min(max_rho, wedge_width);
    }
    std::vector<double> residual(k, 0.0);
    const std::vector<double> loads = model::antenna_loads(inst, sol);
    for (std::size_t j = 0; j < k; ++j) {
      residual[j] = inst.antenna(j).capacity - loads[j];
    }
    std::vector<geom::Sector> sectors;
    sectors.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      sectors.push_back(inst.sector(j, sol.alpha[j]));
    }
    // Track the largest residual so the common post-solve state -- every
    // antenna packed to capacity -- degenerates the repair walk to a cheap
    // scan that never touches the sector tests. Recomputed only after an
    // assignment (rare), so the walk stays O(n + moved * k).
    double max_residual = 0.0;
    for (double r : residual) max_residual = std::max(max_residual, r);
    bool expired = false;
    for (std::size_t i = 0; i < n && !expired; ++i) {
      if ((i & 4095u) == 0 && global.expired()) {
        expired = true;
        break;
      }
      if (sol.assign[i] != model::kUnserved) continue;
      const double d = inst.demand(i);
      if (d > max_residual) continue;
      const double offset =
          inst.theta(i) - wedge_width * std::floor(inst.theta(i) / wedge_width);
      const double seam_dist = std::min(offset, wedge_width - offset);
      if (seam_dist > eps) continue;
      const geom::Polar p{inst.theta(i), inst.radius(i)};
      for (std::size_t j = 0; j < k; ++j) {
        if (residual[j] >= d && sectors[j].contains(p)) {
          sol.assign[i] = static_cast<std::int32_t>(j);
          residual[j] -= d;
          ++moved;
          max_residual = 0.0;
          for (double r : residual) max_residual = std::max(max_residual, r);
          break;
        }
      }
    }
    if (expired) {
      sol.status = model::SolveStatus::kBudgetExhausted;
    }
  }

  if (sol.status == model::SolveStatus::kBudgetExhausted) {
    core::note_expired("shard");
  }
  c_shards.add(subs.size());
  c_repair.add(moved);
  if (stats != nullptr) {
    stats->shards = subs.size();
    stats->repair_moved = moved;
  }
  verify::debug_postcondition(inst, sol, "shard.solve");
  return sol;
}

}  // namespace sectorpack::shard
