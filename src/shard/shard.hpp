#pragma once
// Wedge x annulus sharding: divide-and-conquer for giant instances.
//
// The instance is partitioned geometrically -- W uniform angular wedges
// times A annular bands (band edges at customer-radius quantiles) -- and
// the antennas are apportioned to shards proportionally to shard demand
// (largest-remainder, deterministic). Each shard is an independent
// sub-instance solved with the sectors greedy on the work-stealing pool
// under a slice of the caller's deadline; the shard solutions compose into
// a feasible global solution because shards are customer- and
// antenna-disjoint.
//
// Sharding is lossy exactly at the seams: a sector chosen inside wedge w
// extends up to its width rho past the wedge's end, and customers there
// belong to the next shard which never saw that sector. The boundary-repair
// pass runs after the merge: every still-unserved customer within eps of an
// angular seam is re-tested against every antenna's *final* sector and
// assigned to the first (lowest-index) one with residual capacity. Repair
// only adds assignments, so it never degrades the merged solution;
// `shard.repair_moved` counts what it recovered, making the seam loss a
// measured quantity rather than an assumed-small one.
//
// Determinism: the partition depends only on the instance and config (never
// on pool size -- parallelism changes wall time, not output), sub-solves
// are deterministic, and the merge/repair walk ascending indices. Running
// with a deadline trades this for bounded latency, like every solver here.

#include <cstddef>

#include "src/core/deadline.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/instance.hpp"
#include "src/model/solution.hpp"

namespace sectorpack::shard {

struct ShardConfig {
  /// Angular wedges; 0 picks clamp(num_antennas, 1, 32) so every shard has
  /// roughly one antenna's worth of work and output stays machine-
  /// independent.
  std::size_t wedges = 0;
  /// Annular bands per wedge (radius-quantile edges). 1 = pure wedges.
  std::size_t annuli = 1;
  /// Angular half-width of the seam-repair zone, radians. Negative picks
  /// min(max antenna rho, wedge width): a sector cannot overhang its wedge
  /// by more than its own width, so a wider zone cannot recover more.
  double seam_eps = -1.0;
  /// Per-shard packing oracle. Greedy by default: sharding targets the
  /// n >= 1e6 regime where exact per-window packings are not affordable.
  knapsack::Oracle oracle = knapsack::Oracle::greedy();
  /// Solve shards concurrently on par::ThreadPool::global().
  bool parallel = true;
  core::SolveOptions solve;
};

struct ShardStats {
  std::size_t shards = 0;        // shards solved (non-empty partitions)
  std::size_t repair_moved = 0;  // customers assigned by seam repair
};

/// Partition, solve, merge, repair. Returns a feasible solution for `inst`;
/// status is the worst across shard solves (sticky kBudgetExhausted).
[[nodiscard]] model::Solution solve(const model::Instance& inst,
                                    const ShardConfig& config = {},
                                    ShardStats* stats = nullptr);

}  // namespace sectorpack::shard
