#pragma once
// P2 -- packing to angles: every customer is within range of every antenna,
// so only the angular coordinate matters.
//
// Uncapacitated case (capacities non-binding): choosing k arcs of equal
// width rho to maximize covered demand is polynomial. Structure theorem
// used by solve_uncap_dp (proof sketch, each step preserves coverage):
//   1. Any optimal set of arcs can be made pairwise disjoint: walk the arcs
//      in CCW order; when arc B starts inside arc A, rotate B CCW until its
//      start reaches A's end -- the overlap's customers stay covered by A
//      and B's span only gains new territory at its far end.
//   2. Each disjoint arc can then be rotated CCW until its start angle hits
//      the first customer it covers that is strictly after the previous
//      arc's end (customers skipped over are covered by the previous arc,
//      by the same cascade as in 1). Arcs covering no such customer are
//      dropped.
// Hence there is an optimum in which arcs are disjoint and every arc starts
// exactly at a customer angle, with each next arc starting strictly after
// the previous arc's end. If k * rho >= 2*pi, everything is coverable and
// we return the trivial all-covered solution. Otherwise some direction is
// uncovered and we may "cut" the circle there: for each candidate start
// position s we run a linear DP over the doubled angle array, giving
// O(n^2 k) total time and O(n k) memory.
//
// Capacitated case: NP-hard (knapsack embeds with k = 1). solve_capacitated
// runs the generic sector machinery (greedy + local search), and
// solve_capacitated_exact enumerates candidate orientation tuples for small
// instances, de-duplicating permutations when antennas are identical.

#include <span>

#include "src/core/deadline.hpp"
#include "src/knapsack/knapsack.hpp"
#include "src/model/solution.hpp"

namespace sectorpack::angles {

struct ArcCoverResult {
  std::vector<double> alphas;  // chosen arc starts (size <= k)
  double covered = 0.0;        // total demand covered
  std::vector<std::size_t> covered_customers;  // ascending indices
};

/// Optimal uncapacitated k-arc cover in O(n^2 k). `thetas` need not be
/// sorted; `demands` parallel to it.
[[nodiscard]] ArcCoverResult solve_uncap_dp(std::span<const double> thetas,
                                            std::span<const double> demands,
                                            double rho, std::size_t k);

/// Exhaustive reference: tries every k-combination of candidate starts
/// (leading edges at customer angles). Preconditions: n <= 12, k <= 3.
[[nodiscard]] ArcCoverResult solve_uncap_brute(std::span<const double> thetas,
                                               std::span<const double> demands,
                                               double rho, std::size_t k);

/// Capacitated P2 on an angles-only instance: greedy rounds of best
/// single-sector packings followed by round-robin re-orientation local
/// search. Delegates to sectors::; see sectors/sectors.hpp.
[[nodiscard]] model::Solution solve_capacitated(
    const model::Instance& inst,
    const knapsack::Oracle& oracle = knapsack::Oracle::exact(),
    const core::SolveOptions& opts = {});

/// Exact capacitated P2 by enumerating candidate orientation tuples
/// (sorted tuples when antennas are identical) with exact assignment.
/// Exponential: intended for n <= ~10, k <= 3. Deadline expiry returns the
/// best tuple examined so far (status kBudgetExhausted).
[[nodiscard]] model::Solution solve_capacitated_exact(
    const model::Instance& inst, std::uint64_t node_limit = 1u << 26,
    const core::SolveOptions& opts = {});

}  // namespace sectorpack::angles
