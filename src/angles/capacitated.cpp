#include <stdexcept>

#include "src/angles/angles.hpp"
#include "src/sectors/sectors.hpp"

namespace sectorpack::angles {

model::Solution solve_capacitated(const model::Instance& inst,
                                  const knapsack::Oracle& oracle,
                                  const core::SolveOptions& opts) {
  if (!inst.is_angles_only()) {
    throw std::invalid_argument(
        "angles::solve_capacitated: instance has out-of-range customers; "
        "use sectors::solve_local_search instead");
  }
  sectors::LocalSearchConfig config;
  config.oracle = oracle;
  config.solve = opts;
  return sectors::solve_local_search(inst, config);
}

model::Solution solve_capacitated_exact(const model::Instance& inst,
                                        std::uint64_t node_limit,
                                        const core::SolveOptions& opts) {
  if (!inst.is_angles_only()) {
    throw std::invalid_argument(
        "angles::solve_capacitated_exact: instance has out-of-range "
        "customers; use sectors::solve_exact instead");
  }
  return sectors::solve_exact(inst, /*tuple_limit=*/1u << 20, node_limit,
                              opts);
}

}  // namespace sectorpack::angles
