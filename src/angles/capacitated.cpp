#include <stdexcept>

#include "src/angles/angles.hpp"
#include "src/sectors/sectors.hpp"
#include "src/verify/verify.hpp"

namespace sectorpack::angles {

model::Solution solve_capacitated(const model::Instance& inst,
                                  const knapsack::Oracle& oracle,
                                  const core::SolveOptions& opts) {
  if (!inst.is_angles_only()) {
    throw std::invalid_argument(
        "angles::solve_capacitated: instance has out-of-range customers; "
        "use sectors::solve_local_search instead");
  }
  sectors::LocalSearchConfig config;
  config.oracle = oracle;
  config.solve = opts;
  model::Solution sol = sectors::solve_local_search(inst, config);
  verify::debug_postcondition(inst, sol, "angles.capacitated");
  return sol;
}

model::Solution solve_capacitated_exact(const model::Instance& inst,
                                        std::uint64_t node_limit,
                                        const core::SolveOptions& opts) {
  if (!inst.is_angles_only()) {
    throw std::invalid_argument(
        "angles::solve_capacitated_exact: instance has out-of-range "
        "customers; use sectors::solve_exact instead");
  }
  model::Solution sol = sectors::solve_exact(
      inst, /*tuple_limit=*/1u << 20, node_limit, opts);
  verify::debug_postcondition(inst, sol, "angles.capacitated_exact");
  return sol;
}

}  // namespace sectorpack::angles
