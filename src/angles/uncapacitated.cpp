#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/angles/angles.hpp"
#include "src/geom/arc.hpp"
#include "src/geom/sweep.hpp"

namespace sectorpack::angles {

namespace {

using geom::kAngleEps;
using geom::kTwoPi;

// Sorted-circle geometry for the k-arc DP, derived from geom::WindowSweep
// so the sort, angle doubling, and arc-reach two-pointer live in one place.
// A sweep window's position range [window_first, window_end) is exactly the
// closed arc starting at that angle, so the per-position reach `up` falls
// out of the window ranges: positions sharing a window's start angle share
// its reach, and the +2*pi copies repeat it shifted by n.
struct SortedCircle {
  std::vector<std::size_t> order;  // original index per sorted position
  std::vector<double> angle2;      // sorted angles, doubled (+2*pi copy)
  std::vector<double> prefix;      // prefix demand sums over angle2
  std::vector<std::size_t> up;     // first position strictly after p's arc
  std::vector<std::size_t> starts;  // distinct start positions (window firsts)
  std::size_t n = 0;
};

SortedCircle build_circle(const geom::WindowSweep& sweep,
                          std::span<const double> demands) {
  SortedCircle sc;
  sc.n = sweep.num_directions();
  const std::size_t n2 = 2 * sc.n;

  sc.order.resize(sc.n);
  sc.angle2.resize(n2);
  sc.prefix.assign(n2 + 1, 0.0);
  for (std::size_t p = 0; p < sc.n; ++p) sc.order[p] = sweep.sorted_index(p);
  for (std::size_t p = 0; p < n2; ++p) {
    sc.angle2[p] = sweep.sorted_angle(p);
    sc.prefix[p + 1] = sc.prefix[p] + demands[sweep.sorted_index(p)];
  }

  // up[p]: first position q > p with angle2[q] > angle2[p] + rho + eps,
  // i.e. the first customer strictly outside the closed arc starting at p.
  // Positions between consecutive window firsts share the first's angle
  // (the sweep merged them as duplicates), hence its reach; guard with
  // max(.., p+1) so a position always covers itself even when the merge
  // crossed the 0/2*pi wrap. Beyond the doubled range every angle is
  // covered (rho >= 2*pi is handled before the DP), so clamping is safe.
  sc.up.resize(n2);
  const std::size_t num_w = sweep.num_windows();
  sc.starts.reserve(num_w);
  for (std::size_t w = 0; w < num_w; ++w) {
    const std::size_t first = sweep.window_first(w);
    const std::size_t next =
        w + 1 < num_w ? sweep.window_first(w + 1) : sc.n;
    sc.starts.push_back(first);
    for (std::size_t p = first; p < next; ++p) {
      sc.up[p] = std::max(sweep.window_end(w), p + 1);
    }
  }
  for (std::size_t p = sc.n; p < n2; ++p) {
    sc.up[p] = std::min(sc.up[p - sc.n] + sc.n, n2);
  }
  return sc;
}

}  // namespace

ArcCoverResult solve_uncap_dp(std::span<const double> thetas,
                              std::span<const double> demands, double rho,
                              std::size_t k) {
  if (thetas.size() != demands.size()) {
    throw std::invalid_argument("solve_uncap_dp: span size mismatch");
  }
  ArcCoverResult result;
  const std::size_t n = thetas.size();
  if (n == 0 || k == 0) return result;

  // Everything coverable: k arcs laid end to end span the whole circle.
  if (static_cast<double>(k) * rho >= kTwoPi - kAngleEps) {
    for (std::size_t t = 0; t < k; ++t) {
      result.alphas.push_back(geom::normalize(static_cast<double>(t) * rho));
    }
    result.covered_customers.resize(n);
    std::iota(result.covered_customers.begin(),
              result.covered_customers.end(), std::size_t{0});
    for (double d : demands) result.covered += d;
    return result;
  }

  const geom::WindowSweep sweep(thetas, rho);
  const SortedCircle sc = build_circle(sweep, demands);

  // dp[t][l]: best demand using <= t arcs whose starts are at local
  // positions >= l (absolute position s + l), none covering the cut
  // direction just before angle2[s] + 2*pi.
  std::vector<std::vector<double>> dp(k + 1, std::vector<double>(n + 1, 0.0));

  double best_value = -1.0;
  std::size_t best_cut = 0;

  auto run_dp = [&](std::size_t s) {
    const double wrap_limit = sc.angle2[s] + kTwoPi;
    for (std::size_t t = 1; t <= k; ++t) {
      for (std::size_t l = n; l-- > 0;) {
        const std::size_t p = s + l;
        double v = dp[t][l + 1];  // skip this start
        if (sc.angle2[p] + rho + kAngleEps < wrap_limit) {
          const std::size_t next_abs = std::min(sc.up[p], s + n);
          const double gain = sc.prefix[next_abs] - sc.prefix[p];
          const std::size_t next_l = next_abs - s;
          const double take = gain + dp[t - 1][next_l];
          v = std::max(v, take);
        }
        dp[t][l] = v;
      }
    }
  };

  // Distinct cut directions are exactly the sweep's window starts; positions
  // the sweep merged as duplicate angles would rerun an identical DP.
  for (std::size_t s : sc.starts) {
    run_dp(s);
    if (dp[k][0] > best_value) {
      best_value = dp[k][0];
      best_cut = s;
    }
  }

  // Recompute the winning cut and walk the DP to extract arc starts.
  run_dp(best_cut);
  result.covered = dp[k][0];
  const std::size_t s = best_cut;
  const double wrap_limit = sc.angle2[s] + kTwoPi;
  std::size_t l = 0;
  std::size_t t = k;
  while (l < n && t > 0) {
    const std::size_t p = s + l;
    bool take = false;
    if (sc.angle2[p] + rho + kAngleEps < wrap_limit) {
      const std::size_t next_abs = std::min(sc.up[p], s + n);
      const double gain = sc.prefix[next_abs] - sc.prefix[p];
      if (gain + dp[t - 1][next_abs - s] > dp[t][l + 1]) take = true;
    }
    if (take) {
      result.alphas.push_back(geom::normalize(sc.angle2[p]));
      const std::size_t next_abs = std::min(sc.up[p], s + n);
      --t;
      l = next_abs - s;
    } else {
      ++l;
    }
  }

  // Covered customers, derived geometrically from the chosen arcs so the
  // result is self-consistent with geom::Arc::contains.
  std::vector<bool> covered(n, false);
  for (double alpha : result.alphas) {
    const geom::Arc arc(alpha, rho);
    for (std::size_t i = 0; i < n; ++i) {
      if (!covered[i] && arc.contains(geom::normalize(thetas[i]))) {
        covered[i] = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (covered[i]) result.covered_customers.push_back(i);
  }
  return result;
}

ArcCoverResult solve_uncap_brute(std::span<const double> thetas,
                                 std::span<const double> demands, double rho,
                                 std::size_t k) {
  const std::size_t n = thetas.size();
  if (n > 12 || k > 3) {
    throw std::invalid_argument("solve_uncap_brute: instance too large");
  }
  ArcCoverResult best;
  if (n == 0 || k == 0) return best;

  std::vector<double> cands;
  cands.reserve(n);
  for (double t : thetas) cands.push_back(geom::normalize(t));

  // Enumerate all k-tuples (with repetition; duplicates are harmless).
  std::vector<std::size_t> pick(k, 0);
  // sp-lint: allow(deadline-loop) bounded: n^k tuples under the documented preconditions n <= 12, k <= 3 (brute-force test reference)
  for (;;) {
    std::vector<bool> covered(n, false);
    double value = 0.0;
    for (std::size_t t = 0; t < k; ++t) {
      const geom::Arc arc(cands[pick[t]], rho);
      for (std::size_t i = 0; i < n; ++i) {
        if (!covered[i] && arc.contains(geom::normalize(thetas[i]))) {
          covered[i] = true;
          value += demands[i];
        }
      }
    }
    if (value > best.covered) {
      best.covered = value;
      best.alphas.clear();
      for (std::size_t t = 0; t < k; ++t) {
        best.alphas.push_back(cands[pick[t]]);
      }
      best.covered_customers.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (covered[i]) best.covered_customers.push_back(i);
      }
    }
    // Next tuple.
    std::size_t pos = k;
    while (pos > 0) {
      --pos;
      if (++pick[pos] < n) break;
      pick[pos] = 0;
      if (pos == 0) return best;
    }
    if (pos == 0 && pick[0] == 0) return best;
  }
}

}  // namespace sectorpack::angles
