#pragma once
// Certified upper bounds on the optimal served demand. Every bound here is
// provably >= OPT of the corresponding problem, so empirical approximation
// ratios reported as (solver value / bound) are conservative: the true ratio
// against OPT is at least as good.

#include <span>

#include "src/core/deadline.hpp"
#include "src/model/instance.hpp"

namespace sectorpack::bounds {

/// Exact value of the fractional-assignment LP for *fixed* orientations
/// (P0 relaxation), computed as a max flow: source -> customer (demand)
/// -> eligible antenna -> sink (capacity). >= OPT(P0) and tight whenever
/// the integral assignment LP has no integrality gap on the instance.
/// Requires an unweighted instance (value == demand); throws otherwise.
[[nodiscard]] double fixed_orientation_fractional_bound(
    const model::Instance& inst, std::span<const double> alphas);

/// Orientation-free bound valid for P1..P3 (weighted or not):
///   min( total value,  sum_j W_j )
/// where W_j is the best fractional knapsack VALUE over any window of width
/// rho_j among the customers within antenna j's range (the fractional
/// knapsack already enforces capacity_j). Valid because, in any solution,
/// the set served by antenna j is contained in some leading-edge window
/// (candidate-orientation lemma) and integral packing <= fractional.
[[nodiscard]] double orientation_free_bound(const model::Instance& inst);

/// Strengthened orientation-free bound: a max flow where customer i may
/// route to antenna j iff i is within j's range (any orientation could see
/// it), and antenna j's sink capacity is min(capacity_j, W_j) with W_j the
/// best fractional window value as in orientation_free_bound. Valid because
/// every feasible solution is such a flow; dominates orientation_free_bound
/// (which ignores that a customer can be served only once) and
/// trivial_bound. Costs one max-flow plus k window sweeps. Requires an
/// unweighted instance (value == demand); throws otherwise.
///
/// Deadline-aware: a truncated max flow is NOT a valid upper bound, so on
/// expiry this degrades to the always-valid (but looser) trivial_bound --
/// the returned value is >= OPT either way.
[[nodiscard]] double flow_window_bound(const model::Instance& inst,
                                       const core::SolveOptions& opts = {});

/// The trivial bound min(total demand, total capacity). Always valid;
/// used as a sanity ceiling in experiments.
[[nodiscard]] double trivial_bound(const model::Instance& inst);

}  // namespace sectorpack::bounds
