#include "src/bounds/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace sectorpack::bounds {

Dinic::Dinic(std::size_t num_nodes)
    : adj_(num_nodes), level_(num_nodes), iter_(num_nodes) {}

std::size_t Dinic::add_edge(std::size_t u, std::size_t v, double capacity) {
  const std::size_t pos_u = adj_[u].size();
  const std::size_t pos_v = adj_[v].size();
  adj_[u].push_back({v, pos_v, capacity, capacity});
  adj_[v].push_back({u, pos_u, 0.0, 0.0});
  edge_index_.emplace_back(u, pos_u);
  return edge_index_.size() - 1;
}

bool Dinic::bfs(std::size_t s, std::size_t t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<std::size_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (const Edge& e : adj_[u]) {
      if (e.cap > kFlowEps && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        q.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

double Dinic::dfs(std::size_t u, std::size_t t, double pushed) {
  if (u == t) return pushed;
  for (std::size_t& i = iter_[u]; i < adj_[u].size(); ++i) {
    Edge& e = adj_[u][i];
    if (e.cap > kFlowEps && level_[e.to] == level_[u] + 1) {
      const double got = dfs(e.to, t, std::min(pushed, e.cap));
      if (got > kFlowEps) {
        e.cap -= got;
        adj_[e.to][e.rev].cap += got;
        return got;
      }
    }
  }
  return 0.0;
}

double Dinic::max_flow(std::size_t s, std::size_t t,
                       const core::Deadline& deadline) {
  static const obs::Counter c_calls = obs::counter("dinic.max_flow_calls");
  static const obs::Counter c_phases = obs::counter("dinic.bfs_phases");
  static const obs::Counter c_paths = obs::counter("dinic.augmenting_paths");
  const obs::ScopedSpan span("dinic.max_flow");
  std::uint64_t phases = 0;
  std::uint64_t paths = 0;
  double flow = 0.0;
  truncated_ = false;
  // Deadline check per phase: stopping between phases leaves a consistent
  // residual network and a feasible (if sub-maximal) flow.
  while (!(truncated_ = deadline.expired()) && bfs(s, t)) {
    ++phases;
    std::fill(iter_.begin(), iter_.end(), std::size_t{0});
    // sp-lint: allow(deadline-loop) bounded: each iteration pushes >= kFlowEps flow along a shortest path; the enclosing while polls the deadline per phase
    for (;;) {
      const double got =
          dfs(s, t, std::numeric_limits<double>::infinity());
      if (got <= kFlowEps) break;
      ++paths;
      flow += got;
    }
  }
  c_calls.inc();
  c_phases.add(phases);
  c_paths.add(paths);
  if (truncated_) core::note_expired("dinic");
  return flow;
}

double Dinic::edge_flow(std::size_t id) const {
  // The reverse edge starts at capacity 0 and accumulates exactly the net
  // flow pushed forward; reading it works for infinite-capacity edges too
  // (where initial_cap - cap would be inf - inf).
  const auto& [u, pos] = edge_index_[id];
  const Edge& e = adj_[u][pos];
  return adj_[e.to][e.rev].cap;
}

}  // namespace sectorpack::bounds
