#pragma once
// Dinic max-flow on double capacities. Used to compute the exact value of
// the fractional-assignment LP for fixed orientations: source -> customer
// (cap = demand) -> eligible antenna (cap = inf) -> sink (cap = capacity).
// For such bipartite demand networks the number of augmentations is
// polynomial and floating-point error stays bounded by kFlowEps per phase.

#include <cstddef>
#include <vector>

#include "src/core/deadline.hpp"

namespace sectorpack::bounds {

inline constexpr double kFlowEps = 1e-9;

class Dinic {
 public:
  explicit Dinic(std::size_t num_nodes);

  /// Add a directed edge u -> v with the given capacity; returns edge id.
  std::size_t add_edge(std::size_t u, std::size_t v, double capacity);

  /// Maximum s -> t flow. May be called once per instance. `deadline` is
  /// polled once per phase (one BFS + its blocking flow): on expiry the
  /// routed-so-far flow is returned -- a feasible flow and hence a LOWER
  /// bound on the maximum; check truncated() before using the value as a
  /// max-flow certificate.
  [[nodiscard]] double max_flow(std::size_t s, std::size_t t,
                                const core::Deadline& deadline = {});

  /// True when the last max_flow call stopped on deadline expiry before
  /// reaching the maximum.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Flow currently routed through edge `id` (as returned by add_edge).
  [[nodiscard]] double edge_flow(std::size_t id) const;

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;  // index of the reverse edge in adj_[to]
    double cap;
    double initial_cap;
  };

  bool bfs(std::size_t s, std::size_t t);
  double dfs(std::size_t u, std::size_t t, double pushed);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_index_;  // (u, pos)
  bool truncated_ = false;
};

}  // namespace sectorpack::bounds
