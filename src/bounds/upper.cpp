#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/assign/assign.hpp"
#include "src/bounds/dinic.hpp"
#include "src/bounds/upper.hpp"
#include "src/geom/sweep.hpp"
#include "src/knapsack/knapsack.hpp"

namespace sectorpack::bounds {

double fixed_orientation_fractional_bound(const model::Instance& inst,
                                          std::span<const double> alphas) {
  if (inst.is_value_weighted()) {
    throw std::invalid_argument(
        "fixed_orientation_fractional_bound: max-flow relaxation is only "
        "valid when value == demand for every customer");
  }
  const assign::Eligibility elig =
      assign::compute_eligibility(inst, alphas);

  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();
  // Nodes: 0 = source, 1..n = customers, n+1..n+k = antennas, n+k+1 = sink.
  Dinic flow(n + k + 2);
  const std::size_t source = 0;
  const std::size_t sink = n + k + 1;

  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, inst.demand(i));
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i : elig.per_antenna[j]) {
      flow.add_edge(1 + i, 1 + n + j, kInf);
    }
    flow.add_edge(1 + n + j, sink, inst.antenna(j).capacity);
  }
  return flow.max_flow(source, sink);
}

double orientation_free_bound(const model::Instance& inst) {
  double per_antenna_total = 0.0;
  for (std::size_t j = 0; j < inst.num_antennas(); ++j) {
    const model::AntennaSpec& ant = inst.antenna(j);

    // Customers within this antenna's range.
    std::vector<double> thetas;
    std::vector<double> values;
    std::vector<double> demands;
    for (std::size_t i = 0; i < inst.num_customers(); ++i) {
      if (inst.in_range(i, j)) {
        thetas.push_back(inst.theta(i));
        values.push_back(inst.value(i));
        demands.push_back(inst.demand(i));
      }
    }

    // Best fractional window VALUE; the fractional knapsack already
    // enforces the capacity, so no extra clamp is needed (and for weighted
    // instances value and capacity are in different units anyway).
    double best_window = 0.0;
    const geom::WindowSweep sweep(thetas, ant.rho);
    std::vector<knapsack::Item> items;
    for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
      items.clear();
      for (std::size_t m : sweep.members(w)) {
        items.push_back({values[m], demands[m]});
      }
      best_window = std::max(
          best_window, knapsack::fractional_upper_bound(items, ant.capacity));
    }
    per_antenna_total += best_window;
  }
  return std::min(inst.total_value(), per_antenna_total);
}

double flow_window_bound(const model::Instance& inst,
                         const core::SolveOptions& opts) {
  if (inst.is_value_weighted()) {
    throw std::invalid_argument(
        "flow_window_bound: max-flow relaxation is only valid when value == "
        "demand for every customer; use orientation_free_bound instead");
  }
  const core::Deadline& deadline = opts.deadline;
  const std::size_t n = inst.num_customers();
  const std::size_t k = inst.num_antennas();

  // Per-antenna ceiling: min(capacity, best fractional window) -- computed
  // exactly as in orientation_free_bound.
  std::vector<double> ceiling(k, 0.0);
  std::vector<double> thetas;
  std::vector<knapsack::Item> items;
  for (std::size_t j = 0; j < k; ++j) {
    // Deadline check per antenna sweep. A truncated bound computation can
    // not certify anything, so degrade to the always-valid trivial bound
    // rather than return an under-estimate that is not an upper bound.
    if (deadline.expired()) {
      core::note_expired("flow_window_bound");
      return trivial_bound(inst);
    }
    const model::AntennaSpec& ant = inst.antenna(j);
    thetas.clear();
    std::vector<double> demands;
    for (std::size_t i = 0; i < n; ++i) {
      if (inst.in_range(i, j)) {
        thetas.push_back(inst.theta(i));
        demands.push_back(inst.demand(i));
      }
    }
    double best_window = 0.0;
    const geom::WindowSweep sweep(thetas, ant.rho);
    for (std::size_t w = 0; w < sweep.num_windows(); ++w) {
      items.clear();
      for (std::size_t m : sweep.members(w)) {
        items.push_back({demands[m], demands[m]});
      }
      best_window = std::max(
          best_window, knapsack::fractional_upper_bound(items, ant.capacity));
    }
    ceiling[j] = std::min(ant.capacity, best_window);
  }

  // Flow: source -> customer (demand) -> in-range antenna -> sink (ceiling).
  Dinic flow(n + k + 2);
  const std::size_t source = 0;
  const std::size_t sink = n + k + 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, inst.demand(i));
  }
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      if (inst.in_range(i, j)) flow.add_edge(1 + i, 1 + n + j, kInf);
    }
    flow.add_edge(1 + n + j, sink, ceiling[j]);
  }
  const double value = flow.max_flow(source, sink, deadline);
  if (flow.truncated()) {
    // Same reasoning: a partial max flow is a lower estimate of the LP
    // value, which is the wrong direction for an upper bound.
    core::note_expired("flow_window_bound");
    return trivial_bound(inst);
  }
  return value;
}

double trivial_bound(const model::Instance& inst) {
  return std::min(inst.total_demand(), inst.total_capacity());
}

}  // namespace sectorpack::bounds
